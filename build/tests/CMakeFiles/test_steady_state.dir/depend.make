# Empty dependencies file for test_steady_state.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_user_impact.
# This may be replaced when dependencies are built.

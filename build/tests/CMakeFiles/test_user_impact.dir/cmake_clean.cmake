file(REMOVE_RECURSE
  "CMakeFiles/test_user_impact.dir/test_user_impact.cpp.o"
  "CMakeFiles/test_user_impact.dir/test_user_impact.cpp.o.d"
  "test_user_impact"
  "test_user_impact.pdb"
  "test_user_impact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

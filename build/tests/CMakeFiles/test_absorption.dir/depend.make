# Empty dependencies file for test_absorption.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_absorption.dir/test_absorption.cpp.o"
  "CMakeFiles/test_absorption.dir/test_absorption.cpp.o.d"
  "test_absorption"
  "test_absorption.pdb"
  "test_absorption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_absorption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

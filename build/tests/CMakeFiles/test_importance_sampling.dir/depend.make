# Empty dependencies file for test_importance_sampling.
# This may be replaced when dependencies are built.

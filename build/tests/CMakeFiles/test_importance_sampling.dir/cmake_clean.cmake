file(REMOVE_RECURSE
  "CMakeFiles/test_importance_sampling.dir/test_importance_sampling.cpp.o"
  "CMakeFiles/test_importance_sampling.dir/test_importance_sampling.cpp.o.d"
  "test_importance_sampling"
  "test_importance_sampling.pdb"
  "test_importance_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_importance_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

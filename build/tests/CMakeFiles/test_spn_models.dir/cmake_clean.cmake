file(REMOVE_RECURSE
  "CMakeFiles/test_spn_models.dir/test_spn_models.cpp.o"
  "CMakeFiles/test_spn_models.dir/test_spn_models.cpp.o.d"
  "test_spn_models"
  "test_spn_models.pdb"
  "test_spn_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spn_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

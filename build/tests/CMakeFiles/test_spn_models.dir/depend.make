# Empty dependencies file for test_spn_models.
# This may be replaced when dependencies are built.

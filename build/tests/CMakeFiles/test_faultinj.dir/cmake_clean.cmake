file(REMOVE_RECURSE
  "CMakeFiles/test_faultinj.dir/test_faultinj.cpp.o"
  "CMakeFiles/test_faultinj.dir/test_faultinj.cpp.o.d"
  "test_faultinj"
  "test_faultinj.pdb"
  "test_faultinj[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faultinj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

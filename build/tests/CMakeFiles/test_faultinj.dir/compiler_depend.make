# Empty compiler generated dependencies file for test_faultinj.
# This may be replaced when dependencies are built.

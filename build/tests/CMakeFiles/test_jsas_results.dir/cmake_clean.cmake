file(REMOVE_RECURSE
  "CMakeFiles/test_jsas_results.dir/test_jsas_results.cpp.o"
  "CMakeFiles/test_jsas_results.dir/test_jsas_results.cpp.o.d"
  "test_jsas_results"
  "test_jsas_results.pdb"
  "test_jsas_results[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsas_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_jsas_results.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_model_file.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_model_file.dir/test_model_file.cpp.o"
  "CMakeFiles/test_model_file.dir/test_model_file.cpp.o.d"
  "test_model_file"
  "test_model_file.pdb"
  "test_model_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_gth.dir/test_gth.cpp.o"
  "CMakeFiles/test_gth.dir/test_gth.cpp.o.d"
  "test_gth"
  "test_gth.pdb"
  "test_gth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_gth.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_expm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_expm.dir/test_expm.cpp.o"
  "CMakeFiles/test_expm.dir/test_expm.cpp.o.d"
  "test_expm"
  "test_expm.pdb"
  "test_expm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_jsas_simulator.dir/test_jsas_simulator.cpp.o"
  "CMakeFiles/test_jsas_simulator.dir/test_jsas_simulator.cpp.o.d"
  "test_jsas_simulator"
  "test_jsas_simulator.pdb"
  "test_jsas_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsas_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_jsas_simulator.
# This may be replaced when dependencies are built.

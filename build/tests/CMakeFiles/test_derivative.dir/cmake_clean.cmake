file(REMOVE_RECURSE
  "CMakeFiles/test_derivative.dir/test_derivative.cpp.o"
  "CMakeFiles/test_derivative.dir/test_derivative.cpp.o.d"
  "test_derivative"
  "test_derivative.pdb"
  "test_derivative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derivative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_derivative.
# This may be replaced when dependencies are built.

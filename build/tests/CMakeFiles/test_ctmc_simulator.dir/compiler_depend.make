# Empty compiler generated dependencies file for test_ctmc_simulator.
# This may be replaced when dependencies are built.

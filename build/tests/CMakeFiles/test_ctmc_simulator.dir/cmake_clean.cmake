file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc_simulator.dir/test_ctmc_simulator.cpp.o"
  "CMakeFiles/test_ctmc_simulator.dir/test_ctmc_simulator.cpp.o.d"
  "test_ctmc_simulator"
  "test_ctmc_simulator.pdb"
  "test_ctmc_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_cut_sets.dir/test_cut_sets.cpp.o"
  "CMakeFiles/test_cut_sets.dir/test_cut_sets.cpp.o.d"
  "test_cut_sets"
  "test_cut_sets.pdb"
  "test_cut_sets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_cut_sets.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_erlang.dir/test_erlang.cpp.o"
  "CMakeFiles/test_erlang.dir/test_erlang.cpp.o.d"
  "test_erlang"
  "test_erlang.pdb"
  "test_erlang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_erlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

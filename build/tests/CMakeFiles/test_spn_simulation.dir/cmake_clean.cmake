file(REMOVE_RECURSE
  "CMakeFiles/test_spn_simulation.dir/test_spn_simulation.cpp.o"
  "CMakeFiles/test_spn_simulation.dir/test_spn_simulation.cpp.o.d"
  "test_spn_simulation"
  "test_spn_simulation.pdb"
  "test_spn_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spn_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

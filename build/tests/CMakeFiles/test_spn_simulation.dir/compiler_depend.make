# Empty compiler generated dependencies file for test_spn_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_web_tier.dir/test_web_tier.cpp.o"
  "CMakeFiles/test_web_tier.dir/test_web_tier.cpp.o.d"
  "test_web_tier"
  "test_web_tier.pdb"
  "test_web_tier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_web_tier.
# This may be replaced when dependencies are built.

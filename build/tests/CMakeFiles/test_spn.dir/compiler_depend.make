# Empty compiler generated dependencies file for test_spn.
# This may be replaced when dependencies are built.

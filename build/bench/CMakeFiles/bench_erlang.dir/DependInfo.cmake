
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_erlang.cpp" "bench/CMakeFiles/bench_erlang.dir/bench_erlang.cpp.o" "gcc" "bench/CMakeFiles/bench_erlang.dir/bench_erlang.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rascal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rascal_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/rascal_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/spn/CMakeFiles/rascal_spn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rascal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/rascal_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rascal_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

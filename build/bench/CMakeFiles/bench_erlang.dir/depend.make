# Empty dependencies file for bench_erlang.
# This may be replaced when dependencies are built.

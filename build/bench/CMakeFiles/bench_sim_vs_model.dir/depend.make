# Empty dependencies file for bench_sim_vs_model.
# This may be replaced when dependencies are built.

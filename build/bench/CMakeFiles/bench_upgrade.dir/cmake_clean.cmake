file(REMOVE_RECURSE
  "CMakeFiles/bench_upgrade.dir/bench_upgrade.cpp.o"
  "CMakeFiles/bench_upgrade.dir/bench_upgrade.cpp.o.d"
  "bench_upgrade"
  "bench_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_interval.dir/bench_interval.cpp.o"
  "CMakeFiles/bench_interval.dir/bench_interval.cpp.o.d"
  "bench_interval"
  "bench_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_spn.dir/bench_spn.cpp.o"
  "CMakeFiles/bench_spn.dir/bench_spn.cpp.o.d"
  "bench_spn"
  "bench_spn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_spn.
# This may be replaced when dependencies are built.

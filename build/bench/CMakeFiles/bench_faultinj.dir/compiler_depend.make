# Empty compiler generated dependencies file for bench_faultinj.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_faultinj.dir/bench_faultinj.cpp.o"
  "CMakeFiles/bench_faultinj.dir/bench_faultinj.cpp.o.d"
  "bench_faultinj"
  "bench_faultinj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faultinj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

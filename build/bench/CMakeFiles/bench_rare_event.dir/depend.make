# Empty dependencies file for bench_rare_event.
# This may be replaced when dependencies are built.

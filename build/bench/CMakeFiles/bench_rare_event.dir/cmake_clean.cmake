file(REMOVE_RECURSE
  "CMakeFiles/bench_rare_event.dir/bench_rare_event.cpp.o"
  "CMakeFiles/bench_rare_event.dir/bench_rare_event.cpp.o.d"
  "bench_rare_event"
  "bench_rare_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rare_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

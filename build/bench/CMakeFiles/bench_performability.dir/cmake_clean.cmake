file(REMOVE_RECURSE
  "CMakeFiles/bench_performability.dir/bench_performability.cpp.o"
  "CMakeFiles/bench_performability.dir/bench_performability.cpp.o.d"
  "bench_performability"
  "bench_performability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_performability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

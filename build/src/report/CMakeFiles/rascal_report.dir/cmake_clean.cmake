file(REMOVE_RECURSE
  "CMakeFiles/rascal_report.dir/ascii_plot.cpp.o"
  "CMakeFiles/rascal_report.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/rascal_report.dir/csv.cpp.o"
  "CMakeFiles/rascal_report.dir/csv.cpp.o.d"
  "CMakeFiles/rascal_report.dir/table.cpp.o"
  "CMakeFiles/rascal_report.dir/table.cpp.o.d"
  "librascal_report.a"
  "librascal_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

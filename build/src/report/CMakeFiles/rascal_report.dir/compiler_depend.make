# Empty compiler generated dependencies file for rascal_report.
# This may be replaced when dependencies are built.

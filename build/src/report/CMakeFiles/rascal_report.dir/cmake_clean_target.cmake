file(REMOVE_RECURSE
  "librascal_report.a"
)

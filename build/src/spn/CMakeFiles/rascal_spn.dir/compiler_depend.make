# Empty compiler generated dependencies file for rascal_spn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rascal_spn.dir/petri_net.cpp.o"
  "CMakeFiles/rascal_spn.dir/petri_net.cpp.o.d"
  "CMakeFiles/rascal_spn.dir/reachability.cpp.o"
  "CMakeFiles/rascal_spn.dir/reachability.cpp.o.d"
  "CMakeFiles/rascal_spn.dir/simulation.cpp.o"
  "CMakeFiles/rascal_spn.dir/simulation.cpp.o.d"
  "librascal_spn.a"
  "librascal_spn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_spn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

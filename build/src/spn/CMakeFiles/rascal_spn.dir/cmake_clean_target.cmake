file(REMOVE_RECURSE
  "librascal_spn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/absorption.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/absorption.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/absorption.cpp.o.d"
  "/root/repo/src/ctmc/builder.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/builder.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/builder.cpp.o.d"
  "/root/repo/src/ctmc/compose.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/compose.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/compose.cpp.o.d"
  "/root/repo/src/ctmc/ctmc.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/ctmc.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/erlang.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/erlang.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/erlang.cpp.o.d"
  "/root/repo/src/ctmc/lumping.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/lumping.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/lumping.cpp.o.d"
  "/root/repo/src/ctmc/steady_state.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/steady_state.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/steady_state.cpp.o.d"
  "/root/repo/src/ctmc/transient.cpp" "src/ctmc/CMakeFiles/rascal_ctmc.dir/transient.cpp.o" "gcc" "src/ctmc/CMakeFiles/rascal_ctmc.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/rascal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/rascal_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

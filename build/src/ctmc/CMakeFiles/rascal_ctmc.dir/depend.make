# Empty dependencies file for rascal_ctmc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rascal_ctmc.dir/absorption.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/absorption.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/builder.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/builder.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/compose.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/compose.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/ctmc.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/ctmc.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/erlang.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/erlang.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/lumping.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/lumping.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/steady_state.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/steady_state.cpp.o.d"
  "CMakeFiles/rascal_ctmc.dir/transient.cpp.o"
  "CMakeFiles/rascal_ctmc.dir/transient.cpp.o.d"
  "librascal_ctmc.a"
  "librascal_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librascal_ctmc.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("stats")
subdirs("expr")
subdirs("ctmc")
subdirs("core")
subdirs("analysis")
subdirs("spn")
subdirs("sim")
subdirs("faultinj")
subdirs("models")
subdirs("report")
subdirs("io")
subdirs("rbd")

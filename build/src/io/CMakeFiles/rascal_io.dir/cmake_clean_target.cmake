file(REMOVE_RECURSE
  "librascal_io.a"
)

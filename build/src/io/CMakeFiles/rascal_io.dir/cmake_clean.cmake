file(REMOVE_RECURSE
  "CMakeFiles/rascal_io.dir/dot_export.cpp.o"
  "CMakeFiles/rascal_io.dir/dot_export.cpp.o.d"
  "CMakeFiles/rascal_io.dir/model_file.cpp.o"
  "CMakeFiles/rascal_io.dir/model_file.cpp.o.d"
  "librascal_io.a"
  "librascal_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

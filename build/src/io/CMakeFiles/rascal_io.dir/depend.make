# Empty dependencies file for rascal_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rascal_rbd.dir/block.cpp.o"
  "CMakeFiles/rascal_rbd.dir/block.cpp.o.d"
  "CMakeFiles/rascal_rbd.dir/cut_sets.cpp.o"
  "CMakeFiles/rascal_rbd.dir/cut_sets.cpp.o.d"
  "librascal_rbd.a"
  "librascal_rbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rascal_rbd.
# This may be replaced when dependencies are built.

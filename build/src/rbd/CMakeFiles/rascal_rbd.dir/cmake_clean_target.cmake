file(REMOVE_RECURSE
  "librascal_rbd.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rascal_stats.dir/distributions.cpp.o"
  "CMakeFiles/rascal_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/estimators.cpp.o"
  "CMakeFiles/rascal_stats.dir/estimators.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/ks_test.cpp.o"
  "CMakeFiles/rascal_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/rng.cpp.o"
  "CMakeFiles/rascal_stats.dir/rng.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/sampling.cpp.o"
  "CMakeFiles/rascal_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/special_functions.cpp.o"
  "CMakeFiles/rascal_stats.dir/special_functions.cpp.o.d"
  "CMakeFiles/rascal_stats.dir/summary.cpp.o"
  "CMakeFiles/rascal_stats.dir/summary.cpp.o.d"
  "librascal_stats.a"
  "librascal_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

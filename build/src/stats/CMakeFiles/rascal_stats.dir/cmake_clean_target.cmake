file(REMOVE_RECURSE
  "librascal_stats.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/rascal_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/estimators.cpp" "src/stats/CMakeFiles/rascal_stats.dir/estimators.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/estimators.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/rascal_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/rascal_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/sampling.cpp" "src/stats/CMakeFiles/rascal_stats.dir/sampling.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/sampling.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/rascal_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/special_functions.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/rascal_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/rascal_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/rascal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

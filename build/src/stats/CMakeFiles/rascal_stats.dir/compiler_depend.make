# Empty compiler generated dependencies file for rascal_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rascal_models.dir/app_server.cpp.o"
  "CMakeFiles/rascal_models.dir/app_server.cpp.o.d"
  "CMakeFiles/rascal_models.dir/hadb_pair.cpp.o"
  "CMakeFiles/rascal_models.dir/hadb_pair.cpp.o.d"
  "CMakeFiles/rascal_models.dir/hadb_pair_explicit.cpp.o"
  "CMakeFiles/rascal_models.dir/hadb_pair_explicit.cpp.o.d"
  "CMakeFiles/rascal_models.dir/hadb_spares.cpp.o"
  "CMakeFiles/rascal_models.dir/hadb_spares.cpp.o.d"
  "CMakeFiles/rascal_models.dir/jsas_system.cpp.o"
  "CMakeFiles/rascal_models.dir/jsas_system.cpp.o.d"
  "CMakeFiles/rascal_models.dir/params.cpp.o"
  "CMakeFiles/rascal_models.dir/params.cpp.o.d"
  "CMakeFiles/rascal_models.dir/single_instance.cpp.o"
  "CMakeFiles/rascal_models.dir/single_instance.cpp.o.d"
  "CMakeFiles/rascal_models.dir/spn_variants.cpp.o"
  "CMakeFiles/rascal_models.dir/spn_variants.cpp.o.d"
  "CMakeFiles/rascal_models.dir/upgrade.cpp.o"
  "CMakeFiles/rascal_models.dir/upgrade.cpp.o.d"
  "CMakeFiles/rascal_models.dir/web_tier.cpp.o"
  "CMakeFiles/rascal_models.dir/web_tier.cpp.o.d"
  "librascal_models.a"
  "librascal_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

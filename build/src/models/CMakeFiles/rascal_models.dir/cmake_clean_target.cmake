file(REMOVE_RECURSE
  "librascal_models.a"
)

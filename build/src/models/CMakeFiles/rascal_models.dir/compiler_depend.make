# Empty compiler generated dependencies file for rascal_models.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/app_server.cpp" "src/models/CMakeFiles/rascal_models.dir/app_server.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/app_server.cpp.o.d"
  "/root/repo/src/models/hadb_pair.cpp" "src/models/CMakeFiles/rascal_models.dir/hadb_pair.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/hadb_pair.cpp.o.d"
  "/root/repo/src/models/hadb_pair_explicit.cpp" "src/models/CMakeFiles/rascal_models.dir/hadb_pair_explicit.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/hadb_pair_explicit.cpp.o.d"
  "/root/repo/src/models/hadb_spares.cpp" "src/models/CMakeFiles/rascal_models.dir/hadb_spares.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/hadb_spares.cpp.o.d"
  "/root/repo/src/models/jsas_system.cpp" "src/models/CMakeFiles/rascal_models.dir/jsas_system.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/jsas_system.cpp.o.d"
  "/root/repo/src/models/params.cpp" "src/models/CMakeFiles/rascal_models.dir/params.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/params.cpp.o.d"
  "/root/repo/src/models/single_instance.cpp" "src/models/CMakeFiles/rascal_models.dir/single_instance.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/single_instance.cpp.o.d"
  "/root/repo/src/models/spn_variants.cpp" "src/models/CMakeFiles/rascal_models.dir/spn_variants.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/spn_variants.cpp.o.d"
  "/root/repo/src/models/upgrade.cpp" "src/models/CMakeFiles/rascal_models.dir/upgrade.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/upgrade.cpp.o.d"
  "/root/repo/src/models/web_tier.cpp" "src/models/CMakeFiles/rascal_models.dir/web_tier.cpp.o" "gcc" "src/models/CMakeFiles/rascal_models.dir/web_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rascal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/rascal_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/rascal_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/spn/CMakeFiles/rascal_spn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rascal_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

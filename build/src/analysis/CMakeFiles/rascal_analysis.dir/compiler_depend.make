# Empty compiler generated dependencies file for rascal_analysis.
# This may be replaced when dependencies are built.

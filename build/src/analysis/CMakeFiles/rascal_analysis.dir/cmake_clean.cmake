file(REMOVE_RECURSE
  "CMakeFiles/rascal_analysis.dir/cost.cpp.o"
  "CMakeFiles/rascal_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/rascal_analysis.dir/exact_sensitivity.cpp.o"
  "CMakeFiles/rascal_analysis.dir/exact_sensitivity.cpp.o.d"
  "CMakeFiles/rascal_analysis.dir/parametric.cpp.o"
  "CMakeFiles/rascal_analysis.dir/parametric.cpp.o.d"
  "CMakeFiles/rascal_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/rascal_analysis.dir/sensitivity.cpp.o.d"
  "CMakeFiles/rascal_analysis.dir/uncertainty.cpp.o"
  "CMakeFiles/rascal_analysis.dir/uncertainty.cpp.o.d"
  "CMakeFiles/rascal_analysis.dir/user_impact.cpp.o"
  "CMakeFiles/rascal_analysis.dir/user_impact.cpp.o.d"
  "librascal_analysis.a"
  "librascal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

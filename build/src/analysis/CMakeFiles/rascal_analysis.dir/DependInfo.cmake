
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/exact_sensitivity.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/exact_sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/exact_sensitivity.cpp.o.d"
  "/root/repo/src/analysis/parametric.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/parametric.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/parametric.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/uncertainty.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/uncertainty.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/uncertainty.cpp.o.d"
  "/root/repo/src/analysis/user_impact.cpp" "src/analysis/CMakeFiles/rascal_analysis.dir/user_impact.cpp.o" "gcc" "src/analysis/CMakeFiles/rascal_analysis.dir/user_impact.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rascal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rascal_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/rascal_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/rascal_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librascal_analysis.a"
)

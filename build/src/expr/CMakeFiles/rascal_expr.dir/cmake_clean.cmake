file(REMOVE_RECURSE
  "CMakeFiles/rascal_expr.dir/ast.cpp.o"
  "CMakeFiles/rascal_expr.dir/ast.cpp.o.d"
  "CMakeFiles/rascal_expr.dir/expression.cpp.o"
  "CMakeFiles/rascal_expr.dir/expression.cpp.o.d"
  "CMakeFiles/rascal_expr.dir/lexer.cpp.o"
  "CMakeFiles/rascal_expr.dir/lexer.cpp.o.d"
  "CMakeFiles/rascal_expr.dir/parameter_set.cpp.o"
  "CMakeFiles/rascal_expr.dir/parameter_set.cpp.o.d"
  "librascal_expr.a"
  "librascal_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/ast.cpp" "src/expr/CMakeFiles/rascal_expr.dir/ast.cpp.o" "gcc" "src/expr/CMakeFiles/rascal_expr.dir/ast.cpp.o.d"
  "/root/repo/src/expr/expression.cpp" "src/expr/CMakeFiles/rascal_expr.dir/expression.cpp.o" "gcc" "src/expr/CMakeFiles/rascal_expr.dir/expression.cpp.o.d"
  "/root/repo/src/expr/lexer.cpp" "src/expr/CMakeFiles/rascal_expr.dir/lexer.cpp.o" "gcc" "src/expr/CMakeFiles/rascal_expr.dir/lexer.cpp.o.d"
  "/root/repo/src/expr/parameter_set.cpp" "src/expr/CMakeFiles/rascal_expr.dir/parameter_set.cpp.o" "gcc" "src/expr/CMakeFiles/rascal_expr.dir/parameter_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

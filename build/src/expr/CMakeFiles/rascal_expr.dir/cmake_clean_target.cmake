file(REMOVE_RECURSE
  "librascal_expr.a"
)

# Empty compiler generated dependencies file for rascal_expr.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rascal_linalg.
# This may be replaced when dependencies are built.

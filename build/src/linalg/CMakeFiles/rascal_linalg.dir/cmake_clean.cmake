file(REMOVE_RECURSE
  "CMakeFiles/rascal_linalg.dir/expm.cpp.o"
  "CMakeFiles/rascal_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/rascal_linalg.dir/gth.cpp.o"
  "CMakeFiles/rascal_linalg.dir/gth.cpp.o.d"
  "CMakeFiles/rascal_linalg.dir/iterative.cpp.o"
  "CMakeFiles/rascal_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/rascal_linalg.dir/lu.cpp.o"
  "CMakeFiles/rascal_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/rascal_linalg.dir/matrix.cpp.o"
  "CMakeFiles/rascal_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/rascal_linalg.dir/sparse.cpp.o"
  "CMakeFiles/rascal_linalg.dir/sparse.cpp.o.d"
  "librascal_linalg.a"
  "librascal_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

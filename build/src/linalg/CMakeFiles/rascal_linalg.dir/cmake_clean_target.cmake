file(REMOVE_RECURSE
  "librascal_linalg.a"
)

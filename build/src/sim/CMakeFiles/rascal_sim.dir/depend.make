# Empty dependencies file for rascal_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rascal_sim.dir/ctmc_simulator.cpp.o"
  "CMakeFiles/rascal_sim.dir/ctmc_simulator.cpp.o.d"
  "CMakeFiles/rascal_sim.dir/importance_sampling.cpp.o"
  "CMakeFiles/rascal_sim.dir/importance_sampling.cpp.o.d"
  "CMakeFiles/rascal_sim.dir/jsas_simulator.cpp.o"
  "CMakeFiles/rascal_sim.dir/jsas_simulator.cpp.o.d"
  "CMakeFiles/rascal_sim.dir/scheduler.cpp.o"
  "CMakeFiles/rascal_sim.dir/scheduler.cpp.o.d"
  "librascal_sim.a"
  "librascal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

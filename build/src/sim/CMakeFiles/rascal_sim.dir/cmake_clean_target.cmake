file(REMOVE_RECURSE
  "librascal_sim.a"
)

file(REMOVE_RECURSE
  "librascal_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rascal_core.dir/hierarchy.cpp.o"
  "CMakeFiles/rascal_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/rascal_core.dir/metrics.cpp.o"
  "CMakeFiles/rascal_core.dir/metrics.cpp.o.d"
  "librascal_core.a"
  "librascal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rascal_core.
# This may be replaced when dependencies are built.

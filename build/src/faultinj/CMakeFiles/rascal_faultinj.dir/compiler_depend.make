# Empty compiler generated dependencies file for rascal_faultinj.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librascal_faultinj.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rascal_faultinj.dir/injector.cpp.o"
  "CMakeFiles/rascal_faultinj.dir/injector.cpp.o.d"
  "CMakeFiles/rascal_faultinj.dir/testbed.cpp.o"
  "CMakeFiles/rascal_faultinj.dir/testbed.cpp.o.d"
  "librascal_faultinj.a"
  "librascal_faultinj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_faultinj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

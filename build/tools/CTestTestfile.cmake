# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_solve_hadb_pair "/root/repo/build/tools/rascal_cli" "solve" "/root/repo/examples/models/hadb_pair.rasc")
set_tests_properties(cli_solve_hadb_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_states_app_server "/root/repo/build/tools/rascal_cli" "states" "/root/repo/examples/models/app_server_2inst.rasc" "--set" "La_as=0.002")
set_tests_properties(cli_states_app_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_fir "/root/repo/build/tools/rascal_cli" "sweep" "/root/repo/examples/models/hadb_pair.rasc" "--param" "FIR" "--from" "0" "--to" "0.002" "--points" "5" "--metric" "downtime")
set_tests_properties(cli_sweep_fir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mttf_hadb_pair "/root/repo/build/tools/rascal_cli" "mttf" "/root/repo/examples/models/hadb_pair.rasc" "--start" "Ok")
set_tests_properties(cli_mttf_hadb_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lump_app_server "/root/repo/build/tools/rascal_cli" "lump" "/root/repo/examples/models/app_server_2inst.rasc")
set_tests_properties(cli_lump_app_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sens_hadb_pair "/root/repo/build/tools/rascal_cli" "sens" "/root/repo/examples/models/hadb_pair.rasc")
set_tests_properties(cli_sens_hadb_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot_hadb_pair "/root/repo/build/tools/rascal_cli" "dot" "/root/repo/examples/models/hadb_pair.rasc")
set_tests_properties(cli_dot_hadb_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/tools/rascal_cli" "solve" "/nonexistent.rasc")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_usage "/root/repo/build/tools/rascal_cli")
set_tests_properties(cli_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")

# Empty dependencies file for rascal_cli.
# This may be replaced when dependencies are built.

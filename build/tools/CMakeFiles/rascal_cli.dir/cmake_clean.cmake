file(REMOVE_RECURSE
  "CMakeFiles/rascal_cli.dir/rascal_cli.cpp.o"
  "CMakeFiles/rascal_cli.dir/rascal_cli.cpp.o.d"
  "rascal_cli"
  "rascal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

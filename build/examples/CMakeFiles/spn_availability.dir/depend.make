# Empty dependencies file for spn_availability.
# This may be replaced when dependencies are built.

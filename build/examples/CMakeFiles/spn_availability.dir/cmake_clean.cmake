file(REMOVE_RECURSE
  "CMakeFiles/spn_availability.dir/spn_availability.cpp.o"
  "CMakeFiles/spn_availability.dir/spn_availability.cpp.o.d"
  "spn_availability"
  "spn_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spn_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uncertainty_study.
# This may be replaced when dependencies are built.

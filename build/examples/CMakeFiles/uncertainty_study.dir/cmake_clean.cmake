file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_study.dir/uncertainty_study.cpp.o"
  "CMakeFiles/uncertainty_study.dir/uncertainty_study.cpp.o.d"
  "uncertainty_study"
  "uncertainty_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for datacenter_planning.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for failover_simulation.
# This may be replaced when dependencies are built.

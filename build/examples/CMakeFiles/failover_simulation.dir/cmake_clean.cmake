file(REMOVE_RECURSE
  "CMakeFiles/failover_simulation.dir/failover_simulation.cpp.o"
  "CMakeFiles/failover_simulation.dir/failover_simulation.cpp.o.d"
  "failover_simulation"
  "failover_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/hierarchy.h"

#include <gtest/gtest.h>

#include "core/units.h"
#include "ctmc/builder.h"
#include "models/hadb_pair.h"
#include "models/params.h"

namespace rascal::core {
namespace {

ctmc::SymbolicCtmc symbolic_two_state(const std::string& lambda,
                                      const std::string& mu) {
  ctmc::SymbolicCtmc m;
  m.state("Up", 1.0);
  m.state("Down", 0.0);
  m.rate("Up", "Down", lambda);
  m.rate("Down", "Up", mu);
  return m;
}

TEST(Hierarchy, ExportsFeedTheRootModel) {
  HierarchicalModel model;
  model.add_submodel({"sub",
                      symbolic_two_state("lambda_in", "mu_in"),
                      {{"La_sub", ExportKind::kLambdaEq},
                       {"Mu_sub", ExportKind::kMuEq}},
                      kDefaultUpThreshold});
  model.set_root(symbolic_two_state("La_sub", "Mu_sub"));

  const expr::ParameterSet inputs{{"lambda_in", 0.01}, {"mu_in", 2.0}};
  const HierarchicalResult result = model.solve(inputs);

  // A 2-state submodel collapses to itself: the root must reproduce
  // the submodel's availability exactly.
  ASSERT_EQ(result.submodels.size(), 1u);
  EXPECT_NEAR(result.system.availability,
              result.submodels[0].metrics.availability, 1e-12);
  EXPECT_NEAR(result.effective_params.get("La_sub"), 0.01, 1e-12);
  EXPECT_NEAR(result.effective_params.get("Mu_sub"), 2.0, 1e-9);
}

TEST(Hierarchy, LaterSubmodelSeesEarlierExports) {
  HierarchicalModel model;
  model.add_submodel({"first",
                      symbolic_two_state("lambda_in", "mu_in"),
                      {{"La_first", ExportKind::kLambdaEq}},
                      kDefaultUpThreshold});
  // The second submodel's failure rate is the first one's equivalent
  // failure rate scaled by 2.
  model.add_submodel({"second",
                      symbolic_two_state("2*La_first", "mu_in"),
                      {{"La_second", ExportKind::kLambdaEq},
                       {"Mu_second", ExportKind::kMuEq}},
                      kDefaultUpThreshold});
  model.set_root(symbolic_two_state("La_second", "Mu_second"));
  const auto result = model.solve({{"lambda_in", 0.02}, {"mu_in", 1.0}});
  EXPECT_NEAR(result.effective_params.get("La_second"), 0.04, 1e-10);
}

TEST(Hierarchy, AvailabilityAndFrequencyExports) {
  HierarchicalModel model;
  model.add_submodel({"sub",
                      symbolic_two_state("l", "m"),
                      {{"A_sub", ExportKind::kAvailability},
                       {"U_sub", ExportKind::kUnavailability},
                       {"F_sub", ExportKind::kFailureFrequency}},
                      kDefaultUpThreshold});
  model.set_root(symbolic_two_state("U_sub", "A_sub"));
  const auto result = model.solve({{"l", 1.0}, {"m", 3.0}});
  EXPECT_NEAR(result.effective_params.get("A_sub"), 0.75, 1e-12);
  EXPECT_NEAR(result.effective_params.get("U_sub"), 0.25, 1e-12);
  EXPECT_NEAR(result.effective_params.get("F_sub"), 0.75 * 1.0, 1e-12);
}

TEST(Hierarchy, RejectsDuplicates) {
  HierarchicalModel model;
  model.add_submodel({"sub",
                      symbolic_two_state("l", "m"),
                      {{"X", ExportKind::kLambdaEq}},
                      kDefaultUpThreshold});
  EXPECT_THROW(model.add_submodel({"sub",
                                   symbolic_two_state("l", "m"),
                                   {{"Y", ExportKind::kLambdaEq}},
                                   kDefaultUpThreshold}),
               std::invalid_argument);
  EXPECT_THROW(model.add_submodel({"other",
                                   symbolic_two_state("l", "m"),
                                   {{"X", ExportKind::kLambdaEq}},
                                   kDefaultUpThreshold}),
               std::invalid_argument);
}

TEST(Hierarchy, SolveWithoutRootThrows) {
  HierarchicalModel model;
  EXPECT_THROW((void)model.solve({}), std::logic_error);
}

TEST(Hierarchy, MissingInputNamesTheParameter) {
  HierarchicalModel model;
  model.set_root(symbolic_two_state("absent", "1"));
  EXPECT_THROW((void)model.solve({}), expr::UnknownParameterError);
}

// Validation against the paper's HADB submodel: the hierarchical
// two-state abstraction must reproduce the submodel's own
// availability when used alone at the root.
TEST(Hierarchy, HadbPairAbstractionPreservesAvailability) {
  HierarchicalModel model;
  model.add_submodel({"HADB Node Pair",
                      models::hadb_pair_model(),
                      {{"La_pair", ExportKind::kLambdaEq},
                       {"Mu_pair", ExportKind::kMuEq}},
                      kDefaultUpThreshold});
  model.set_root(symbolic_two_state("La_pair", "Mu_pair"));
  const auto result = model.solve(models::default_parameters());
  EXPECT_NEAR(result.system.availability,
              result.submodels[0].metrics.availability, 1e-13);
}

}  // namespace
}  // namespace rascal::core

// Paper-golden regression: the reproduced Sec. 5/7 headline numbers
// are locked into tests/golden/*.json with per-metric tolerances.  If
// a solver, model, or RNG-scheme change drifts any of them, this test
// names the metric; a deliberate re-baseline is
// `rascal_cli --update-golden tests/golden`.
#include <gtest/gtest.h>

#include "check/golden.h"
#include "check/paper_golden.h"

namespace rascal::check {
namespace {

std::string golden_dir() {
  return std::string(RASCAL_SOURCE_DIR) + "/tests/golden/";
}

class PaperGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperGolden, MatchesLockedValues) {
  const std::string group = GetParam();
  const GoldenRecord locked = load_golden(golden_dir() + group + ".json");
  EXPECT_FALSE(locked.empty());
  const GoldenRecord fresh = compute_paper_golden(group);
  const auto problems = compare_golden(locked, fresh);
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

INSTANTIATE_TEST_SUITE_P(Groups, PaperGolden,
                         ::testing::ValuesIn(paper_golden_groups()),
                         [](const auto& group_info) {
                           return group_info.param;
                         });

TEST(PaperGolden, RegenerationIsDeterministic) {
  // --update-golden must be reproducible run-to-run: two fresh
  // computations serialize byte-identically.
  for (const std::string& group : paper_golden_groups()) {
    EXPECT_EQ(to_json(compute_paper_golden(group)),
              to_json(compute_paper_golden(group)))
        << group;
  }
}

// ---- the golden-record machinery itself -------------------------------

TEST(GoldenRecordFormat, JsonRoundTripsExactly) {
  GoldenRecord record;
  record["a.metric"] = {0.99999330123456789, 0.0, 1e-6};
  record["b.metric"] = {-3.5e-7, 1e-9, 0.0};
  record["empty.tolerances"] = {42.0, 0.0, 0.0};
  const GoldenRecord parsed = parse_json(to_json(record));
  ASSERT_EQ(parsed.size(), record.size());
  for (const auto& [name, entry] : record) {
    const auto it = parsed.find(name);
    ASSERT_NE(it, parsed.end()) << name;
    EXPECT_EQ(it->second.value, entry.value) << name;
    EXPECT_EQ(it->second.abs_tol, entry.abs_tol) << name;
    EXPECT_EQ(it->second.rel_tol, entry.rel_tol) << name;
  }
}

TEST(GoldenRecordFormat, RejectsMalformedJson) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\": 1}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\": {\"abs_tol\": 1}}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\": {\"value\": 1}} trailing"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_json("{\"a\": {\"value\": 1, \"bogus\": 2}}"),
      std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\": {\"value\": nan}}"),
               std::runtime_error);
}

TEST(GoldenCompare, FlagsDriftMissingAndUnlockedMetrics) {
  GoldenRecord locked;
  locked["stable"] = {1.0, 0.0, 1e-6};
  locked["drifted"] = {2.0, 0.0, 1e-6};
  locked["vanished"] = {3.0, 0.0, 1e-6};
  GoldenRecord current;
  current["stable"] = {1.0 + 5e-7, 0.0, 0.0};   // within rel_tol
  current["drifted"] = {2.001, 0.0, 0.0};       // beyond rel_tol
  current["unlocked"] = {9.0, 0.0, 0.0};        // not in the golden file

  const auto problems = compare_golden(locked, current);
  ASSERT_EQ(problems.size(), 3u);
  EXPECT_NE(problems[0].find("drifted"), std::string::npos);
  EXPECT_NE(problems[1].find("vanished"), std::string::npos);
  EXPECT_NE(problems[2].find("unlocked"), std::string::npos);
}

TEST(GoldenCompare, ToleranceCombinesAbsoluteAndRelative)
{
  GoldenRecord locked;
  locked["m"] = {100.0, 0.5, 1e-3};  // tolerance = 0.5 + 0.1 = 0.6
  GoldenRecord near;
  near["m"] = {100.59, 0.0, 0.0};
  EXPECT_TRUE(compare_golden(locked, near).empty());
  GoldenRecord far;
  far["m"] = {100.61, 0.0, 0.0};
  EXPECT_EQ(compare_golden(locked, far).size(), 1u);
}

TEST(GoldenLoad, MissingFileSuggestsUpdateFlag) {
  try {
    (void)load_golden("/nonexistent/golden.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--update-golden"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rascal::check

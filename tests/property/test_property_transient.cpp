// Differential transient testing: Jensen uniformization against the
// dense Pade matrix exponential, plus internal consistency of the
// accumulated-reward integral (its long-run time average must meet
// the steady-state expected reward rate).
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "check/random_model.h"
#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "ctmc/transient.h"

namespace rascal::check {
namespace {

TEST(TransientConsensus, UniformizationMatchesExpmOn60RandomModels) {
  stats::RandomEngine root(0x7EA5);
  const double horizons[] = {0.05, 0.5, 2.0, 8.0};
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const double t = horizons[i % 4];
    const OracleReport report = check_transient_consensus(model.chain, t);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << ", t=" << t << "]\n"
        << report.summary();
  }
}

TEST(TransientConsensus, StationaryStartMakesIntervalRewardExact) {
  // Started in its stationary law, the chain's time-averaged interval
  // reward equals the steady-state expected reward rate for EVERY
  // horizon — a sharp identity tying the transient integrator to the
  // steady-state solvers with no mixing-time slack.
  stats::RandomEngine root(0x1A7E);
  const double horizons[] = {0.5, 10.0, 200.0};
  for (std::uint64_t i = 0; i < 20; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const auto metrics = core::solve_availability(model.chain);
    const auto steady = ctmc::solve_steady_state(model.chain);
    const auto interval = ctmc::expected_interval_reward(
        model.chain, steady.probabilities, horizons[i % 3]);
    EXPECT_NEAR(interval.time_averaged, metrics.expected_reward_rate, 1e-9)
        << model.description << " [stream " << i << ", t="
        << horizons[i % 3] << "]";
  }
}

TEST(TransientConsensus, ShortHorizonStaysNearInitialState) {
  // pi(dt) must concentrate on the initial state for dt much smaller
  // than every holding time — a sanity anchor independent of both
  // transient solvers' numerics.
  stats::RandomEngine rng(0xD7);
  const GeneratedModel model = random_ergodic_ctmc(rng);
  const auto result =
      ctmc::transient_distribution(model.chain, ctmc::StateId{0}, 1e-6);
  EXPECT_GT(result.probabilities[0], 0.999);
}

}  // namespace
}  // namespace rascal::check

// Key-discrimination and bit-identity properties of the solve cache.
//
// The whole determinism contract of the batch/serve mode rests on one
// claim: two solves share a cache slot only when every input that can
// change the computed bits is identical.  These tests attack the key
// from both sides — every SolveControl field, the method, validation,
// and every transition rate must discriminate (no stale hit can ever
// alias), while fields that cannot affect the solution (cancellation
// token, workspace pointer) must NOT discriminate (or warm caches
// would never hit).  The shared tier is then checked for byte-exact
// round-trips, bounded occupancy, and eviction behavior, plus the
// cross-worker oracle on seeded random models.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "check/oracle.h"
#include "check/random_model.h"
#include "ctmc/builder.h"
#include "ctmc/solve_cache.h"
#include "linalg/workspace.h"
#include "resil/cancel.h"

namespace rascal::check {
namespace {

ctmc::Ctmc repair_pair(double lambda = 0.002, double mu = 0.5) {
  ctmc::CtmcBuilder builder;
  const auto up = builder.state("Up", 1.0);
  const auto down = builder.state("Down", 0.0);
  builder.rate(up, down, lambda).rate(down, up, mu);
  return builder.build();
}

using ctmc::steady_state_key;
using Method = ctmc::SteadyStateMethod;

TEST(SolveCacheKey, EverySolveControlFieldDiscriminates) {
  const ctmc::Ctmc chain = repair_pair();
  const ctmc::SolveControl base;
  const std::uint64_t reference =
      steady_state_key(chain, Method::kGth, ctmc::Validation::kOn, base);

  std::set<std::uint64_t> keys = {reference};
  const auto expect_new_key = [&](const char* what,
                                  const ctmc::SolveControl& control,
                                  Method method = Method::kGth,
                                  ctmc::Validation validation =
                                      ctmc::Validation::kOn) {
    const std::uint64_t key =
        steady_state_key(chain, method, validation, control);
    EXPECT_TRUE(keys.insert(key).second)
        << what << " aliased an existing key";
  };

  ctmc::SolveControl changed;
  changed.max_iterations = 100;
  expect_new_key("max_iterations", changed);

  changed = {};
  changed.escalate = true;
  expect_new_key("escalate", changed);

  changed = {};
  changed.sparse_threshold = 64;
  expect_new_key("sparse_threshold", changed);

  changed = {};
  changed.precond = linalg::PrecondKind::kJacobi;
  expect_new_key("precond jacobi", changed);
  changed.precond = linalg::PrecondKind::kNone;
  expect_new_key("precond none", changed);

  changed = {};
  changed.gmres_restart = 25;
  expect_new_key("gmres_restart", changed);

  expect_new_key("validation off", base, Method::kGth,
                 ctmc::Validation::kOff);

  for (const Method method : {Method::kLu, Method::kPower,
                              Method::kGaussSeidel, Method::kGmres,
                              Method::kBiCgStab}) {
    expect_new_key("method", base, method);
  }
}

TEST(SolveCacheKey, NonSemanticFieldsDoNotDiscriminate) {
  // The cancel token and the workspace pointer never change the
  // computed bits; keying on them would make every warm lookup miss.
  const ctmc::Ctmc chain = repair_pair();
  const ctmc::SolveControl base;
  const std::uint64_t reference =
      steady_state_key(chain, Method::kGth, ctmc::Validation::kOn, base);

  resil::CancellationToken token;
  linalg::SolveWorkspace workspace;
  ctmc::SolveControl with_scratch;
  with_scratch.cancel = &token;
  with_scratch.workspace = &workspace;
  EXPECT_EQ(reference, steady_state_key(chain, Method::kGth,
                                        ctmc::Validation::kOn, with_scratch));
}

TEST(SolveCacheKey, EveryTransitionRateDiscriminates) {
  // Perturbing any single rate by one ulp must change the key: the
  // digest covers the exact bit pattern of every transition, so a
  // parametric sweep point can never be served another point's pi.
  const double lambda = 0.002;
  const double mu = 0.5;
  const std::uint64_t reference = steady_state_key(
      repair_pair(lambda, mu), Method::kGth, ctmc::Validation::kOn, {});
  const double lambda_up = std::nextafter(lambda, 1.0);
  const double mu_up = std::nextafter(mu, 1.0);
  EXPECT_NE(reference,
            steady_state_key(repair_pair(lambda_up, mu), Method::kGth,
                             ctmc::Validation::kOn, {}));
  EXPECT_NE(reference,
            steady_state_key(repair_pair(lambda, mu_up), Method::kGth,
                             ctmc::Validation::kOn, {}));
}

TEST(SolveCacheKey, StructureDiscriminates) {
  // Same rate multiset, different endpoints.
  ctmc::CtmcBuilder forward;
  const auto a1 = forward.state("A", 1.0);
  const auto b1 = forward.state("B", 0.0);
  forward.rate(a1, b1, 1.0).rate(b1, a1, 2.0);

  ctmc::CtmcBuilder reversed;
  const auto a2 = reversed.state("A", 1.0);
  const auto b2 = reversed.state("B", 0.0);
  reversed.rate(a2, b2, 2.0).rate(b2, a2, 1.0);

  EXPECT_NE(steady_state_key(forward.build(), Method::kGth,
                             ctmc::Validation::kOn, {}),
            steady_state_key(reversed.build(), Method::kGth,
                             ctmc::Validation::kOn, {}));
}

TEST(SharedSolveCache, RoundTripsByteExactCopies) {
  ctmc::SharedSolveCache cache;
  ASSERT_TRUE(cache.enabled());

  const ctmc::Ctmc chain = repair_pair();
  const ctmc::SteadyState solved = ctmc::solve_steady_state(chain);
  const std::uint64_t key =
      steady_state_key(chain, Method::kGth, ctmc::Validation::kOn, {});

  ctmc::SteadyState out;
  EXPECT_FALSE(cache.lookup(key, out));
  cache.insert(key, solved);
  ASSERT_TRUE(cache.lookup(key, out));
  ASSERT_EQ(out.probabilities.size(), solved.probabilities.size());
  for (std::size_t s = 0; s < solved.probabilities.size(); ++s) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.probabilities[s]),
              std::bit_cast<std::uint64_t>(solved.probabilities[s]));
  }
  EXPECT_EQ(out.residual, solved.residual);
  EXPECT_EQ(out.method, solved.method);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.occupancy, 1u);
}

TEST(SharedSolveCache, CapacityZeroDisablesCleanly) {
  ctmc::SharedSolveCache::Config config;
  config.capacity = 0;
  ctmc::SharedSolveCache cache(config);
  EXPECT_FALSE(cache.enabled());

  const ctmc::Ctmc chain = repair_pair();
  const ctmc::SteadyState solved = ctmc::solve_steady_state(chain);
  cache.insert(1, solved);  // dropped, not stored
  ctmc::SteadyState out;
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(cache.stats().capacity, 0u);
  EXPECT_EQ(cache.stats().occupancy, 0u);
}

TEST(SharedSolveCache, OccupancyStaysBoundedUnderEviction) {
  // Far more distinct keys than slots: occupancy must never exceed
  // capacity and the overflow must surface as evictions, not growth.
  ctmc::SharedSolveCache::Config config;
  config.capacity = 8;
  config.shards = 4;
  ctmc::SharedSolveCache cache(config);

  const ctmc::SteadyState solved =
      ctmc::solve_steady_state(repair_pair());
  for (std::uint64_t key = 1; key <= 256; ++key) {
    cache.insert(key, solved);
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.occupancy, stats.capacity);
  EXPECT_GE(stats.capacity, 8u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.insertions, 256u);

  cache.clear();
  EXPECT_EQ(cache.stats().occupancy, 0u);
}

TEST(SharedCacheConsensus, BitIdenticalOn60RandomErgodicModels) {
  stats::RandomEngine root(0x5EED0CAC);
  std::size_t total_checks = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const OracleReport report = check_shared_cache_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    total_checks += report.checks;
  }
  // 4 methods x 3 serving paths x (states + residual) + tier stats.
  EXPECT_GT(total_checks, 60u * 30u);
}

TEST(SharedCacheConsensus, BitIdenticalOnStiffModelsDirectOnly) {
  RandomModelOptions stiff;
  stiff.min_rate = 1e-3;
  stiff.max_rate = 1e3;
  OracleOptions options;
  options.include_iterative = false;
  stats::RandomEngine root(0x0CAC517F);
  for (std::uint64_t i = 0; i < 30; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng, stiff);
    const OracleReport report =
        check_shared_cache_consensus(model.chain, options);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

}  // namespace
}  // namespace rascal::check

// Property suite for the sparse Krylov engine: the differential
// oracle check_krylov_consensus (GMRES and BiCGStab under every
// preconditioner against dense GTH, refusal symmetry, workspace
// bit-identity) on seeded random families, metamorphic invariances
// (rate rescaling, state permutation), and the SPN sparse-emission
// path against the dense reachability path.  Fixed seeds keep the
// suite deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "check/oracle.h"
#include "check/random_model.h"
#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "linalg/gth.h"
#include "linalg/krylov.h"
#include "models/kofn_as.h"
#include "models/params.h"
#include "models/spn_variants.h"
#include "spn/reachability.h"

namespace rascal::check {
namespace {

TEST(KrylovConsensus, HoldsOn100RandomErgodicModels) {
  stats::RandomEngine root(0x6B52E5);
  std::size_t total_checks = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const OracleReport report = check_krylov_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    total_checks += report.checks;
  }
  // 6 Krylov variants x (residual + per-state + availability) plus
  // the workspace reps: well over 20 comparisons per model.
  EXPECT_GT(total_checks, 100u * 20u);
}

TEST(KrylovConsensus, HoldsOn100BirthDeathModelsWithClosedForm) {
  stats::RandomEngine root(0x6B52B1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_birth_death(rng);
    const OracleReport report = check_krylov_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    // The closed form pins the whole consensus to ground truth.
    ASSERT_TRUE(model.analytic_steady.has_value());
    const auto steady = ctmc::solve_steady_state(
        model.chain, ctmc::SteadyStateMethod::kGmres);
    for (std::size_t s = 0; s < model.chain.num_states(); ++s) {
      EXPECT_NEAR(steady.probabilities[s], (*model.analytic_steady)[s], 1e-9)
          << model.description << " state " << s;
    }
  }
}

TEST(KrylovConsensus, HoldsOnErlangChains) {
  stats::RandomEngine root(0x6B52E7);
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_erlang_chain(rng);
    const OracleReport report = check_krylov_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(KrylovConsensus, HoldsOn100KofnReplicationModels) {
  // The engine's reason to exist: seeded sweeps over the k-of-n
  // replicated-AS family (coupled repairs, no product form).  Small n
  // keeps the dense GTH reference affordable; the structure — stiff
  // coverage splits, shared-crew coupling — is the same at n = 11.
  stats::RandomEngine root(0x6B52A5);
  for (std::uint64_t i = 0; i < 100; ++i) {
    stats::RandomEngine rng = root.split(i);
    models::KofnAsConfig config;
    config.nodes = 4 + rng.uniform_index(2);  // 81 or 243 states
    config.quorum = 1 + rng.uniform_index(config.nodes);
    config.repair_crews = 1 + rng.uniform_index(config.nodes);
    config.failure_rate = std::exp(rng.uniform(std::log(1e-3), std::log(0.5)));
    config.restart_coverage = rng.uniform(0.0, 1.0);
    config.restart_rate = std::exp(rng.uniform(std::log(1.0), std::log(60.0)));
    config.rebuild_rate = std::exp(rng.uniform(std::log(0.05), std::log(2.0)));
    const ctmc::Ctmc chain = models::kofn_as_model(config);
    const OracleReport report = check_krylov_consensus(chain);
    EXPECT_TRUE(report.ok())
        << "kofn nodes=" << config.nodes
        << " quorum=" << config.quorum << " crews=" << config.repair_crews
        << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(KrylovConsensus, HoldsOnASixNodeTier) {
  // One larger instance (729 states) so the consensus also runs where
  // ILU(0) genuinely matters.
  models::KofnAsConfig config;
  config.nodes = 6;
  config.quorum = 4;
  config.repair_crews = 2;
  const OracleReport report =
      check_krylov_consensus(models::kofn_as_model(config));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(KrylovMetamorphic, StationaryDistributionIsRateScaleInvariant) {
  // pi(cQ) == pi(Q) for any c > 0: rescaling stresses the Krylov
  // tolerance handling (||b|| is unchanged but ||A|| scales).
  stats::RandomEngine root(0x6B52C1);
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const double factor = std::exp(rng.uniform(std::log(1e-3), std::log(1e3)));
    const ctmc::Ctmc scaled = rescale_rates(model.chain, factor);
    for (const auto method : {ctmc::SteadyStateMethod::kGmres,
                              ctmc::SteadyStateMethod::kBiCgStab}) {
      const auto base = ctmc::solve_steady_state(model.chain, method);
      const auto after = ctmc::solve_steady_state(scaled, method);
      for (std::size_t s = 0; s < model.chain.num_states(); ++s) {
        EXPECT_NEAR(after.probabilities[s], base.probabilities[s], 1e-8)
            << model.description << " x" << factor << " state " << s;
      }
    }
  }
}

TEST(KrylovMetamorphic, StationaryDistributionCommutesWithPermutation) {
  // pi_perm[perm[i]] == pi[i]: a solver biased by state order (the
  // augmented system pins the *last* balance row) would break this.
  stats::RandomEngine root(0x6B52D0);
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const auto perm = random_permutation(model.chain.num_states(), rng);
    const ctmc::Ctmc permuted = permute_states(model.chain, perm);
    for (const auto method : {ctmc::SteadyStateMethod::kGmres,
                              ctmc::SteadyStateMethod::kBiCgStab}) {
      const auto base = ctmc::solve_steady_state(model.chain, method);
      const auto after = ctmc::solve_steady_state(permuted, method);
      for (std::size_t s = 0; s < model.chain.num_states(); ++s) {
        EXPECT_NEAR(after.probabilities[perm[s]], base.probabilities[s],
                    1e-8)
            << model.description << " state " << s;
      }
    }
  }
}

TEST(KrylovMetamorphic, PermutationRejectsMalformedInput) {
  stats::RandomEngine rng(1);
  const GeneratedModel model = random_ergodic_ctmc(rng);
  const std::size_t n = model.chain.num_states();
  EXPECT_THROW((void)permute_states(model.chain,
                                    std::vector<std::size_t>(n - 1, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)permute_states(model.chain,
                                    std::vector<std::size_t>(n, 0)),
               std::invalid_argument);
}

TEST(SpnSparsePath, MatchesDenseReachabilityOnPaperModels) {
  // The CSR-direct SPN emission must describe the same chain as the
  // dense path: same state count, same rewards, same generator, and a
  // GMRES solve of the sparse generator must land on the dense GTH
  // availability.
  const auto params = models::default_parameters();
  struct Case {
    spn::PetriNet net;
    spn::RewardFunction reward;
  };
  const Case cases[] = {
      {models::hadb_pair_spn(params), models::hadb_pair_spn_reward()},
      {models::app_server_spn(3, params), models::app_server_spn_reward()},
  };
  for (const Case& c : cases) {
    const auto dense = spn::generate_ctmc(c.net, c.reward);
    const auto sparse = spn::generate_sparse_ctmc(c.net, c.reward);
    const std::size_t n = dense.chain.num_states();
    ASSERT_EQ(sparse.generator.rows(), n);
    ASSERT_EQ(sparse.markings.size(), dense.markings.size());
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(sparse.markings[s], dense.markings[s]) << "state " << s;
      EXPECT_DOUBLE_EQ(sparse.rewards[s], dense.chain.states()[s].reward);
    }
    // Generators agree entry-by-entry (duplicate rates may have been
    // summed in a different order, hence the tolerance).
    const linalg::Matrix a = sparse.generator.to_dense();
    const linalg::Matrix b = dense.chain.generator();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t col = 0; col < n; ++col) {
        EXPECT_NEAR(a(r, col), b(r, col), 1e-13) << r << "," << col;
      }
    }
    const linalg::Vector reference = linalg::gth_stationary(b);
    linalg::KrylovOptions options;
    options.precond = linalg::PrecondKind::kIlu0;
    const auto solved = linalg::gmres_stationary(sparse.generator, options);
    ASSERT_TRUE(solved.converged);
    double avail_sparse = 0.0;
    double avail_dense = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      avail_sparse += solved.x[s] * sparse.rewards[s];
      avail_dense += reference[s] * dense.chain.states()[s].reward;
    }
    EXPECT_NEAR(avail_sparse, avail_dense, 1e-10);
  }
}

}  // namespace
}  // namespace rascal::check

// Differential steady-state testing: every solver path (GTH, LU,
// power iteration, Gauss-Seidel) must agree pairwise on >= 100 seeded
// random models per run, and all of them must match the closed-form
// stationary distribution of random birth-death chains.  Fixed seeds
// keep the randomized suite deterministic.
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "check/random_model.h"

namespace rascal::check {
namespace {

TEST(SteadyStateConsensus, AllFourSolversAgreeOn110RandomModels) {
  stats::RandomEngine root(0x5EEDC0DE);
  std::size_t total_checks = 0;
  for (std::uint64_t i = 0; i < 110; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const OracleReport report = check_steady_state_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    total_checks += report.checks;
  }
  // 110 models x (residuals + 6 solver pairs x (states + availability)).
  EXPECT_GT(total_checks, 110u * 10u);
}

TEST(SteadyStateConsensus, SolversMatchBirthDeathClosedFormOn60Models) {
  stats::RandomEngine root(0xB1D7);
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_birth_death(rng);
    ASSERT_TRUE(model.analytic_steady.has_value());
    const OracleReport report =
        check_steady_state_against(model.chain, *model.analytic_steady);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(SteadyStateConsensus, DirectSolversAgreeOnStiffModels) {
  // Six orders of magnitude between the slowest and fastest rate —
  // the regime availability models live in, where iterative methods
  // need millions of uniformized sweeps but GTH and LU stay exact.
  RandomModelOptions stiff;
  stiff.min_rate = 1e-3;
  stiff.max_rate = 1e3;
  OracleOptions oracle;
  oracle.include_iterative = false;
  stats::RandomEngine root(0x571FF);
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng, stiff);
    const OracleReport report =
        check_steady_state_consensus(model.chain, oracle);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(SteadyStateConsensus, ReportsDisagreementWhenFedDifferentChains) {
  // The oracle itself is under test here: a hand-broken comparison
  // must produce a failure line, not silent acceptance.
  OracleReport report;
  report.expect_close("intentionally wrong", 1.0, 2.0, 1e-9);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.checks, 1u);
  EXPECT_NE(report.summary().find("intentionally wrong"),
            std::string::npos);
}

}  // namespace
}  // namespace rascal::check

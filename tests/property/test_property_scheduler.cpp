// Calendar-queue vs binary-heap equivalence: the two Scheduler
// backends must fire the same events at the same times in the same
// order on randomized event streams with interleaved cancellations,
// and the standalone CalendarQueue must pop in exact (time, id) order
// while its ring resizes underneath.  Fixed seeds keep the randomized
// suite deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/scheduler.h"
#include "stats/rng.h"

namespace rascal::sim {
namespace {

using FiredLog = std::vector<std::pair<double, int>>;

// Drives a scheduler through a seeded script of bursty schedules,
// random cancellations (some stale on purpose), and horizon advances.
// Both backends see the identical script — same rng stream, same
// issued-id sequence — so their fired logs must match exactly.
FiredLog drive(QueueKind kind, std::uint64_t seed) {
  stats::RandomEngine rng(seed);
  Scheduler s(kind);
  FiredLog fired;
  std::vector<EventId> issued;
  int tag = 0;
  for (int round = 0; round < 150; ++round) {
    const int burst = 1 + static_cast<int>(rng.uniform(0.0, 8.0));
    for (int b = 0; b < burst; ++b) {
      double delay = rng.uniform(0.0, 50.0);
      // Quantize a third of the delays so equal timestamps actually
      // occur and the (time, id) tie-break is exercised.
      if (rng.uniform01() < 0.34) delay = std::floor(delay);
      const int my_tag = tag++;
      issued.push_back(s.schedule_after(
          delay, [&fired, &s, my_tag] { fired.emplace_back(s.now(), my_tag); }));
    }
    if (rng.uniform01() < 0.6) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(issued.size())));
      // May target an already-fired or already-cancelled id: both
      // backends must agree that stale cancels are no-ops.
      (void)s.cancel(issued[std::min(pick, issued.size() - 1)]);
    }
    s.run_until(s.now() + rng.uniform(0.0, 10.0));
  }
  s.run_until(1e9);
  EXPECT_EQ(s.pending(), 0u);
  return fired;
}

TEST(SchedulerEquivalence, CalendarMatchesBinaryHeapOn20SeededStreams) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const FiredLog heap = drive(QueueKind::kBinaryHeap, seed);
    const FiredLog calendar = drive(QueueKind::kCalendar, seed);
    ASSERT_EQ(heap.size(), calendar.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i].first, calendar[i].first)
          << "seed " << seed << " event " << i;
      EXPECT_EQ(heap[i].second, calendar[i].second)
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(CalendarQueue, PopsInExactTimeIdOrder) {
  stats::RandomEngine rng(0xCA1E);
  CalendarQueue q;
  std::vector<std::pair<double, EventId>> expected;
  for (EventId id = 1; id <= 500; ++id) {
    double time = rng.uniform(0.0, 200.0);
    if (rng.uniform01() < 0.4) time = std::floor(time);  // force ties
    q.push({time, id, {}});
    expected.emplace_back(time, id);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(q.size(), expected.size());
  for (const auto& [time, id] : expected) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.min().id, id);
    const Event event = q.pop_min();
    EXPECT_EQ(event.time, time);
    EXPECT_EQ(event.id, id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, RingGrowsAndShrinksWithOccupancy) {
  CalendarQueue q;
  const std::size_t initial = q.bucket_count();
  for (EventId id = 1; id <= 1000; ++id) {
    q.push({static_cast<double>(id) * 0.25, id, {}});
  }
  EXPECT_GT(q.bucket_count(), initial);
  while (!q.empty()) (void)q.pop_min();
  EXPECT_EQ(q.bucket_count(), initial);
}

TEST(CalendarQueue, InterleavedPushPopStaysOrdered) {
  // Monotone pushes interleaved with pops — the scheduler's access
  // pattern — including events far beyond one ring revolution.
  stats::RandomEngine rng(0x1D1E);
  CalendarQueue q;
  EventId id = 1;
  double now = 0.0;
  double last_popped = 0.0;
  for (int round = 0; round < 400; ++round) {
    const int pushes = static_cast<int>(rng.uniform(0.0, 4.0));
    for (int p = 0; p < pushes; ++p) {
      const double horizon = rng.uniform01() < 0.1 ? 1e6 : 20.0;
      q.push({now + rng.uniform(0.0, horizon), id++, {}});
    }
    if (!q.empty() && rng.uniform01() < 0.7) {
      const Event event = q.pop_min();
      EXPECT_GE(event.time, last_popped);
      last_popped = event.time;
      now = event.time;
    }
  }
  while (!q.empty()) {
    const Event event = q.pop_min();
    EXPECT_GE(event.time, last_popped);
    last_popped = event.time;
  }
}

TEST(CalendarQueue, RejectsNegativeAndNonFiniteTimes) {
  CalendarQueue q;
  EXPECT_THROW(q.push({-1.0, 1, {}}), std::invalid_argument);
  EXPECT_THROW(
      q.push({std::numeric_limits<double>::infinity(), 1, {}}),
      std::invalid_argument);
  EXPECT_THROW(q.push({std::nan(""), 1, {}}), std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace rascal::sim

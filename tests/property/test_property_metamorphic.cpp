// Metamorphic properties: known input transformations with known
// output transformations.  These catch shared biases that differential
// testing cannot (all solvers could be wrong the same way; they cannot
// all violate rate-rescaling covariance the same way by accident).
#include <gtest/gtest.h>

#include <cmath>

#include "check/random_model.h"
#include "core/metrics.h"
#include "ctmc/absorption.h"
#include "ctmc/builder.h"
#include "ctmc/compose.h"
#include "ctmc/erlang.h"
#include "ctmc/lumping.h"
#include "ctmc/steady_state.h"

namespace rascal::check {
namespace {

// Uniformly speeding a chain up by c leaves the stationary law
// untouched and divides every first-passage time by c.
TEST(Metamorphic, RateRescalingScalesMttfInversely) {
  stats::RandomEngine root(0x5CA1E);
  const double factors[] = {0.25, 3.0, 40.0};
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const double c = factors[i % 3];
    const ctmc::Ctmc scaled = rescale_rates(model.chain, c);

    const auto base = ctmc::solve_steady_state(model.chain);
    const auto fast = ctmc::solve_steady_state(scaled);
    for (std::size_t s = 0; s < model.chain.num_states(); ++s) {
      EXPECT_NEAR(base.probabilities[s], fast.probabilities[s], 1e-10)
          << model.description << " state " << s;
    }

    const auto down = model.chain.states_with_reward_below(0.5);
    ASSERT_FALSE(down.empty());
    const auto mttf = ctmc::mean_time_to_absorption(model.chain, down);
    const auto mttf_scaled = ctmc::mean_time_to_absorption(scaled, down);
    EXPECT_NEAR(mttf_scaled[0], mttf[0] / c, 1e-9 * mttf[0] / c + 1e-12)
        << model.description << " [stream " << i << "]";
  }
}

TEST(Metamorphic, ErlangChainMttaMatchesClosedForm) {
  stats::RandomEngine root(0xE51A);
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_erlang_chain(rng);
    ASSERT_TRUE(model.analytic_mtta.has_value());
    const auto absorbed = model.chain.state("absorbed");
    const auto times =
        ctmc::mean_time_to_absorption(model.chain, {absorbed});
    EXPECT_NEAR(times[0], *model.analytic_mtta,
                1e-9 * *model.analytic_mtta)
        << model.description << " [stream " << i << "]";
  }
}

// Lumping instance identities out of a symmetric redundant system
// must preserve every reward-level metric — exactly the quotient the
// paper takes from per-node chains to occupancy counts.
TEST(Metamorphic, LumpingIdenticalUnitsPreservesMetrics) {
  stats::RandomEngine root(0x10FF);
  for (std::uint64_t i = 0; i < 15; ++i) {
    stats::RandomEngine rng = root.split(i);
    const double lambda = rng.uniform(0.05, 2.0);
    const double mu = rng.uniform(0.5, 20.0);
    const std::size_t units = 2 + rng.uniform_index(3);  // 2..4

    ctmc::CtmcBuilder unit;
    unit.state("up", 1.0);
    unit.state("down", 0.0);
    unit.rate(0, 1, lambda).rate(1, 0, mu);
    const std::vector<ctmc::Ctmc> parts(units, unit.build());
    const ctmc::Ctmc joint = ctmc::compose_independent(parts);

    const ctmc::Partition partition =
        ctmc::coarsest_ordinary_lumping(joint);
    // Identical units lump to occupancy counts: units + 1 blocks.
    EXPECT_EQ(partition.size(), units + 1)
        << "units=" << units << " [stream " << i << "]";
    ASSERT_TRUE(ctmc::is_lumpable(joint, partition));
    const ctmc::Ctmc quotient = ctmc::lump(joint, partition);

    const auto full = core::solve_availability(joint);
    const auto lumped = core::solve_availability(quotient);
    EXPECT_NEAR(full.availability, lumped.availability, 1e-12);
    EXPECT_NEAR(full.failure_frequency, lumped.failure_frequency,
                1e-12 + 1e-9 * full.failure_frequency);
    EXPECT_NEAR(full.expected_reward_rate, lumped.expected_reward_rate,
                1e-12);
  }
}

// Independent submodels in series: the exact product-space model's
// availability is the product of component availabilities.
TEST(Metamorphic, ComposeOfIndependentModelsIsProductModel) {
  stats::RandomEngine root(0xA0D);
  RandomModelOptions small;
  small.min_states = 3;
  small.max_states = 6;
  for (std::uint64_t i = 0; i < 25; ++i) {
    stats::RandomEngine rng = root.split(i);
    std::vector<ctmc::Ctmc> parts;
    double product = 1.0;
    for (int k = 0; k < 2; ++k) {
      const GeneratedModel model = random_ergodic_ctmc(rng, small);
      product *= core::solve_availability(model.chain).availability;
      parts.push_back(model.chain);
    }
    const ctmc::Ctmc joint = ctmc::compose_independent(parts);
    const auto metrics = core::solve_availability(joint);
    EXPECT_NEAR(metrics.availability, product, 1e-10)
        << "[stream " << i << "]";
  }
}

// The RAScad hierarchy abstraction: a submodel's two-state equivalent
// must preserve its availability and failure frequency exactly.
TEST(Metamorphic, TwoStateEquivalentPreservesAvailabilityAndFrequency) {
  stats::RandomEngine root(0x2E0);
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const auto steady = ctmc::solve_steady_state(model.chain);
    const auto metrics = core::availability_metrics(model.chain, steady);
    const auto equivalent =
        core::two_state_equivalent(model.chain, steady);

    ctmc::CtmcBuilder b;
    b.state("Up", 1.0);
    b.state("Down", 0.0);
    b.rate(0, 1, equivalent.lambda_eq).rate(1, 0, equivalent.mu_eq);
    const auto collapsed = core::solve_availability(b.build());
    EXPECT_NEAR(collapsed.availability, metrics.availability, 1e-10)
        << model.description << " [stream " << i << "]";
    EXPECT_NEAR(collapsed.failure_frequency, metrics.failure_frequency,
                1e-10 + 1e-9 * metrics.failure_frequency)
        << model.description << " [stream " << i << "]";
  }
}

// Erlang stage expansion keeps the repair-time mean, and alternating
// renewal availability depends only on the means — so availability
// and MTTF are invariant under erlangization of the repair edge.
TEST(Metamorphic, ErlangizingRepairPreservesAvailability) {
  stats::RandomEngine root(0xE12);
  for (std::uint64_t i = 0; i < 20; ++i) {
    stats::RandomEngine rng = root.split(i);
    const double lambda = rng.uniform(0.01, 1.0);
    const double mu = rng.uniform(1.0, 30.0);
    const std::size_t stages = 2 + rng.uniform_index(5);  // 2..6

    ctmc::CtmcBuilder b;
    const auto up = b.state("Up", 1.0);
    const auto down = b.state("Down", 0.0);
    b.rate(up, down, lambda).rate(down, up, mu);
    const ctmc::Ctmc base = b.build();
    const ctmc::Ctmc staged = ctmc::erlangize(base, down, up, stages);
    EXPECT_EQ(staged.num_states(), 1 + stages);

    const auto before = core::solve_availability(base);
    const auto after = core::solve_availability(staged);
    EXPECT_NEAR(after.availability, before.availability, 1e-11)
        << "stages=" << stages << " [stream " << i << "]";
    EXPECT_NEAR(after.mttr_hours, before.mttr_hours,
                1e-9 * before.mttr_hours)
        << "stages=" << stages << " [stream " << i << "]";
  }
}

}  // namespace
}  // namespace rascal::check

// Retry/fallback bit-identity oracle over seeded random models.
//
// The serve supervision layer promises that a request which recovers
// from transient faults is indistinguishable — byte for byte — from a
// request the fault never touched, at every RASCAL_THREADS and across
// kill/resume.  check_retry_consensus() attacks that claim per model:
// every absorbable fault count must reproduce the direct solve
// exactly, exhaustion must throw (never return partial bits), and the
// fallback ladder must be a pure function of its inputs.  Running it
// over many seeded ergodic and stiff chains is what turns the claim
// from "passed on the fixtures" into a property of the engine.
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "check/random_model.h"
#include "stats/rng.h"

namespace rascal::check {
namespace {

TEST(RetryConsensus, BitIdenticalOn60RandomErgodicModels) {
  stats::RandomEngine root(0x2E7241AA);
  std::size_t total_checks = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const OracleReport report = check_retry_consensus(model.chain);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    total_checks += report.checks;
  }
  // 5 methods x 3 fault counts x (states + bookkeeping) per model.
  EXPECT_GT(total_checks, 60u * 50u);
}

TEST(RetryConsensus, BitIdenticalOnStiffModelsDirectOnly) {
  RandomModelOptions stiff;
  stiff.min_rate = 1e-3;
  stiff.max_rate = 1e3;
  OracleOptions options;
  options.include_iterative = false;
  stats::RandomEngine root(0x2E7241BB);
  for (std::uint64_t i = 0; i < 30; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng, stiff);
    const OracleReport report = check_retry_consensus(model.chain, options);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(RetryConsensus, BirthDeathChainsAgreeWithClosedForm) {
  // Retry recovery must also hold on chains with known ground truth:
  // the supervised bits equal the direct bits, and the direct bits
  // are already gated against the closed-form stationary vector.
  stats::RandomEngine root(0x2E7241CC);
  for (std::uint64_t i = 0; i < 20; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_birth_death(rng);
    const OracleReport retry = check_retry_consensus(model.chain);
    EXPECT_TRUE(retry.ok())
        << model.description << " [stream " << i << "]\n"
        << retry.summary();
    ASSERT_TRUE(model.analytic_steady.has_value());
    const OracleReport analytic =
        check_steady_state_against(model.chain, *model.analytic_steady);
    EXPECT_TRUE(analytic.ok())
        << model.description << " [stream " << i << "]\n"
        << analytic.summary();
  }
}

}  // namespace
}  // namespace rascal::check

// Bit-identity property tests for the allocation-free solve hot
// path: solves through a reused SolveWorkspace, repeated SolveCache
// hits, and batched multi-RHS interval rewards must reproduce the
// fresh-allocation path bit for bit (oracle tolerance zero) on seeded
// random models, across all four steady-state methods and both
// transient evaluators.  Fixed seeds keep the suite deterministic.
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "check/random_model.h"
#include "ctmc/solve_cache.h"

namespace rascal::check {
namespace {

TEST(WorkspaceConsensus, BitIdenticalOn80RandomErgodicModels) {
  stats::RandomEngine root(0xCAFE5EED);
  std::size_t total_checks = 0;
  for (std::uint64_t i = 0; i < 80; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const OracleReport report = check_workspace_consensus(model.chain, 0.75);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
    total_checks += report.checks;
  }
  // Per model: 4 methods x (2 workspace reps + cache) x states, plus
  // the transient and batched-reward comparisons.
  EXPECT_GT(total_checks, 80u * 30u);
}

TEST(WorkspaceConsensus, BitIdenticalOnBirthDeathModels) {
  stats::RandomEngine root(0xB17B1D7);
  for (std::uint64_t i = 0; i < 40; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_birth_death(rng);
    const OracleReport report = check_workspace_consensus(model.chain, 0.5);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(WorkspaceConsensus, BitIdenticalOnStiffModelsDirectOnly) {
  // Six orders of magnitude between rates: the availability regime.
  // Iterative methods may honestly refuse these; the workspace gate
  // only needs the direct methods to stay bit-stable.
  RandomModelOptions stiff;
  stiff.min_rate = 1e-3;
  stiff.max_rate = 1e3;
  OracleOptions options;
  options.include_iterative = false;
  stats::RandomEngine root(0x571FF);
  for (std::uint64_t i = 0; i < 30; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng, stiff);
    const OracleReport report =
        check_workspace_consensus(model.chain, 0.01, options);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(WorkspaceConsensus, CacheDistinguishesDifferentChains) {
  // The generator digest must key the memo: alternating between two
  // structurally different chains can never hit the single-entry
  // cache, while repeating one chain always hits.
  stats::RandomEngine rng_a(1);
  stats::RandomEngine rng_b(2);
  const GeneratedModel a = random_ergodic_ctmc(rng_a);
  const GeneratedModel b = random_ergodic_ctmc(rng_b);
  ASSERT_NE(ctmc::SolveCache::generator_digest(a.chain),
            ctmc::SolveCache::generator_digest(b.chain));

  ctmc::SolveCache cache;
  (void)cache.steady_state(a.chain);
  (void)cache.steady_state(b.chain);
  (void)cache.steady_state(a.chain);
  EXPECT_EQ(cache.hits(), 0u);
  (void)cache.steady_state(a.chain);
  EXPECT_EQ(cache.hits(), 1u);
  cache.invalidate();
  (void)cache.steady_state(a.chain);
  EXPECT_EQ(cache.hits(), 1u);
}

}  // namespace
}  // namespace rascal::check

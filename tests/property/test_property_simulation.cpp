// Statistical oracles: the analytic solvers versus Monte Carlo
// trajectory simulation (CI-aware tolerances throughout), and
// importance sampling versus plain simulation.  Seeds are fixed, so
// every run is deterministic; the CI factor (4x a 95% interval) keeps
// the checks meaningful rather than vacuously wide.
#include <gtest/gtest.h>

#include <cmath>

#include "check/oracle.h"
#include "check/random_model.h"
#include "core/metrics.h"
#include "ctmc/builder.h"
#include "models/hadb_pair.h"
#include "models/params.h"
#include "sim/importance_sampling.h"

namespace rascal::check {
namespace {

TEST(SimulationConsensus, SimulatorMatchesSolversOn100RandomModels) {
  stats::RandomEngine root(0x51AB);
  RandomModelOptions options;
  options.min_rate = 0.2;  // keep trajectories event-dense
  options.max_rate = 8.0;
  sim::CtmcSimOptions sim_options;
  sim_options.duration = 400.0;
  sim_options.replications = 6;
  for (std::uint64_t i = 0; i < 100; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng, options);
    sim_options.seed = 0x900D ^ i;
    const OracleReport report =
        check_simulation_consensus(model.chain, sim_options);
    EXPECT_TRUE(report.ok())
        << model.description << " [stream " << i << "]\n"
        << report.summary();
  }
}

TEST(SimulationConsensus, ImportanceSamplingMatchesAnalyticRareEvent) {
  // Figure-3 HADB pair: unavailability ~1e-6, invisible to plain
  // simulation at any sane budget, squarely in the regime where CTMC
  // solvers and simulators have been shown to drift apart.
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  const double exact = core::solve_availability(chain).unavailability;

  sim::ImportanceSamplingOptions options;
  options.cycles = 20000;
  options.plain_cycles = 20000;
  const auto result = sim::estimate_unavailability(chain, options);
  const double half_width = 0.5 * (result.unavailability_ci95.upper -
                                   result.unavailability_ci95.lower);
  EXPECT_NEAR(result.unavailability, exact, 4.0 * half_width)
      << "exact " << exact << " IS " << result.unavailability;
}

TEST(SimulationConsensus, ImportanceSamplingMatchesPlainSimulation) {
  // Failure biasing is a rare-event technique: it assumes repairs are
  // much faster than failures (the regime the default failure
  // predicate classifies).  So the metamorphic check uses randomized
  // REPAIRABLE models — a 3-component birth-death over the failed
  // count, down when >= 2 have failed — rare enough to be interesting,
  // busy enough that the unbiased estimator still observes downtime.
  stats::RandomEngine root(0xFA57);
  for (std::uint64_t i = 0; i < 5; ++i) {
    stats::RandomEngine rng = root.split(i);
    const double lambda = rng.uniform(0.01, 0.05);
    const double mu = rng.uniform(0.5, 2.0);

    ctmc::CtmcBuilder b;
    b.state("all_up", 1.0);
    b.state("one_failed", 1.0);
    b.state("two_failed", 0.0);
    b.state("three_failed", 0.0);
    b.rate(0, 1, 3.0 * lambda).rate(1, 2, 2.0 * lambda).rate(2, 3, lambda);
    b.rate(1, 0, mu).rate(2, 1, mu).rate(3, 2, mu);
    const ctmc::Ctmc chain = b.build();
    const double exact = core::solve_availability(chain).unavailability;

    sim::ImportanceSamplingOptions biased;
    biased.cycles = 15000;
    biased.plain_cycles = 15000;
    biased.seed = 0x900D + i;
    const auto with_is = sim::estimate_unavailability(chain, biased);

    sim::ImportanceSamplingOptions plain = biased;
    plain.failure_bias = 0.0;
    plain.seed = 0x1234 + i;
    const auto without_is = sim::estimate_unavailability(chain, plain);

    const auto half = [](const sim::ImportanceSamplingResult& r) {
      return 0.5 *
             (r.unavailability_ci95.upper - r.unavailability_ci95.lower);
    };
    const double tolerance =
        4.0 * (half(with_is) + half(without_is)) + 1e-12;
    EXPECT_NEAR(with_is.unavailability, without_is.unavailability, tolerance)
        << "lambda=" << lambda << " mu=" << mu << " [trial " << i << "]";
    EXPECT_NEAR(with_is.unavailability, exact, 4.0 * half(with_is) + 1e-12)
        << "[trial " << i << "]";
    EXPECT_NEAR(without_is.unavailability, exact,
                4.0 * half(without_is) + 1e-12)
        << "[trial " << i << "]";
  }
}

}  // namespace
}  // namespace rascal::check

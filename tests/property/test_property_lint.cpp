// Property tests for the model linter, driven by the seeded random
// model generators in src/check:
//
//   1. Every generated model lints clean — the generators' structural
//      guarantees (Hamiltonian cycle, birth-death skeleton) satisfy
//      every linter invariant, so a diagnostic on generator output is
//      a linter false positive.
//   2. Injecting any single fault from all_model_faults() never lints
//      clean, and the report carries the fault's expected code — no
//      false negatives, and the code-to-defect mapping is stable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/random_model.h"
#include "lint/lint.h"
#include "report/diagnostics.h"
#include "stats/rng.h"

namespace rascal::check {
namespace {

constexpr int kTrials = 40;

lint::LintOptions lenient_numerics() {
  // Random rates span [0.1, 10]; keep default thresholds but make the
  // intent explicit: these options must never flag generator output.
  return lint::LintOptions{};
}

TEST(PropertyLint, ErgodicGeneratorAlwaysLintsClean) {
  stats::RandomEngine root(0x11A7C1EA);
  for (int i = 0; i < kTrials; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_ergodic_ctmc(rng);
    const lint::LintReport report =
        lint::lint_ctmc(model.chain, lenient_numerics());
    EXPECT_TRUE(report.empty())
        << model.description << " (trial " << i << "):\n"
        << report::render_diagnostics_text(report);
  }
}

TEST(PropertyLint, BirthDeathGeneratorAlwaysLintsClean) {
  stats::RandomEngine root(0xB1D7C1EA);
  for (int i = 0; i < kTrials; ++i) {
    stats::RandomEngine rng = root.split(i);
    const GeneratedModel model = random_birth_death(rng);
    const lint::LintReport report =
        lint::lint_ctmc(model.chain, lenient_numerics());
    EXPECT_TRUE(report.empty())
        << model.description << " (trial " << i << "):\n"
        << report::render_diagnostics_text(report);
  }
}

TEST(PropertyLint, SingleFaultMutantsNeverLintClean) {
  stats::RandomEngine root(0x0BADC0DE);
  int trial = 0;
  for (int i = 0; i < kTrials; ++i) {
    stats::RandomEngine model_rng = root.split(trial++);
    const GeneratedModel model = random_ergodic_ctmc(model_rng);
    const RawModel healthy = raw_model(model.chain);
    // The healthy raw model is the control: it must lint clean, or
    // the mutant assertions below would be vacuous.
    ASSERT_TRUE(
        lint::lint_raw_model(healthy.states, healthy.transitions).empty())
        << model.description;
    for (ModelFault fault : all_model_faults()) {
      stats::RandomEngine fault_rng = root.split(trial++);
      const RawModel mutant = inject_fault(healthy, fault, fault_rng);
      const lint::LintReport report =
          lint::lint_raw_model(mutant.states, mutant.transitions);
      // kDuplicateTransition only warrants a warning, so the property
      // is "report is non-empty", not "report has errors".
      EXPECT_FALSE(report.empty())
          << model.description << ", fault " << expected_code(fault);
      EXPECT_TRUE(report.has_code(expected_code(fault)))
          << model.description << ", fault " << expected_code(fault)
          << " missing from:\n"
          << report::render_diagnostics_text(report);
    }
  }
}

TEST(PropertyLint, MutantCodesAreDistinctPerFault) {
  std::vector<std::string> seen;
  for (ModelFault fault : all_model_faults()) {
    const std::string code = expected_code(fault);
    for (const std::string& other : seen) {
      EXPECT_NE(code, other);
    }
    seen.push_back(code);
  }
  EXPECT_EQ(seen.size(), all_model_faults().size());
}

}  // namespace
}  // namespace rascal::check

// End-to-end guarantees of the resilient execution engine:
//
//   * a run interrupted mid-flight (cancel request, injected worker
//     fault, in-process SIGTERM) and resumed from its checkpoint
//     produces results bit-identical to an uninterrupted run, at any
//     thread count;
//   * a sample whose solve fails under chaos is recorded with its
//     parameter draw and skipped, never fatal;
//   * the solver escalation cascade rescues forced nonconvergence via
//     GTH, and refuses to mask cancellation as nonconvergence.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/uncertainty.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "faultinj/injector.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "models/kofn_as.h"
#include "obs/obs.h"
#include "resil/chaos.h"
#include "resil/resil.h"
#include "sim/jsas_simulator.h"

namespace rascal {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "rascal_resilexec_" + name;
}

// Clears the chaos spec even when a test fails mid-way, so later
// tests (and later suites in the same binary) start clean.
class ChaosGuard {
 public:
  ~ChaosGuard() { resil::chaos::configure(""); }
};

const analysis::ModelFunction kQuadratic =
    [](const expr::ParameterSet& p) {
      const double x = p.get("x");
      return p.get("a") * x * x + p.get("b");
    };

const expr::ParameterSet kBase{{"a", 2.0}, {"b", 1.0}, {"x", 3.0}};
const std::vector<stats::ParameterRange> kRanges = {{"x", 0.0, 2.0},
                                                    {"b", -1.0, 1.0}};

void expect_bit_identical(const analysis::UncertaintyResult& actual,
                          const analysis::UncertaintyResult& expected) {
  ASSERT_EQ(actual.metrics.size(), expected.metrics.size());
  for (std::size_t i = 0; i < expected.metrics.size(); ++i) {
    EXPECT_EQ(actual.metrics[i], expected.metrics[i]) << i;
    EXPECT_EQ(actual.samples[i].parameters, expected.samples[i].parameters)
        << i;
  }
  EXPECT_EQ(actual.mean, expected.mean);
  EXPECT_EQ(actual.interval80.lower, expected.interval80.lower);
  EXPECT_EQ(actual.interval80.upper, expected.interval80.upper);
  EXPECT_EQ(actual.interval90.lower, expected.interval90.lower);
  EXPECT_EQ(actual.interval90.upper, expected.interval90.upper);
  EXPECT_EQ(actual.summary.variance(), expected.summary.variance());
}

TEST(ResilientUncertainty, CancelledRunResumesBitIdentically) {
  const std::string path = temp_path("uncertainty_resume.json");
  std::remove(path.c_str());

  analysis::UncertaintyOptions options;
  options.samples = 64;
  options.seed = 17;
  options.threads = 4;
  const std::uint64_t digest =
      analysis::uncertainty_checkpoint_digest(options, kRanges);

  const auto straight =
      analysis::uncertainty_analysis(kQuadratic, kBase, kRanges, options);

  // Pass 1: request cancellation from inside the model function after
  // ten solves.  Which indices finish depends on scheduling, but that
  // must not matter — every completed index carries exact bits and
  // every pending index is recomputed from its own substream.
  std::atomic<int> calls{0};
  resil::CancellationToken cancel;
  const analysis::ModelFunction cancelling_model =
      [&](const expr::ParameterSet& p) {
        if (calls.fetch_add(1) + 1 == 10) cancel.request_cancel();
        return kQuadratic(p);
      };
  resil::Checkpointer first(path, "uncertainty", digest, options.samples);
  first.set_flush_every(1);
  options.control.cancel = &cancel;
  options.control.checkpoint = &first;
  const auto partial = analysis::uncertainty_analysis(cancelling_model, kBase,
                                                      kRanges, options);
  ASSERT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.interrupt_reason, "cancellation requested");
  EXPECT_LT(partial.completed, partial.requested);
  EXPECT_GE(partial.completed, 1u);

  // Pass 2: resume from disk with a fresh token, different thread
  // count, and the plain model.
  resil::Checkpointer second(path, "uncertainty", digest, options.samples);
  EXPECT_EQ(second.resume_from_disk(), partial.completed);
  options.control.cancel = nullptr;
  options.control.checkpoint = &second;
  options.threads = 1;
  const auto resumed =
      analysis::uncertainty_analysis(kQuadratic, kBase, kRanges, options);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed, resumed.requested);
  expect_bit_identical(resumed, straight);
  std::remove(path.c_str());
}

TEST(ResilientUncertainty, ChaosWorkerFaultIsRecordedAndSkipped) {
  ChaosGuard guard;
  resil::chaos::configure("worker-throw@3");

  analysis::UncertaintyOptions options;
  options.samples = 8;
  options.seed = 17;
  options.threads = 1;
  options.control.skip_failures = true;
  const auto result =
      analysis::uncertainty_analysis(kQuadratic, kBase, kRanges, options);

  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.completed, 7u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 3u);
  EXPECT_EQ(result.failures[0].parameters.size(), kRanges.size());
  EXPECT_NE(result.failures[0].error.find("chaos"), std::string::npos);
  // Surviving samples are the straight run's, minus the dropped draw.
  EXPECT_EQ(result.metrics.size(), 7u);
}

TEST(ResilientUncertainty, ChaosWorkerFaultIsFatalWithoutSkipFailures) {
  ChaosGuard guard;
  resil::chaos::configure("worker-throw@3");
  analysis::UncertaintyOptions options;
  options.samples = 8;
  options.seed = 17;
  options.threads = 1;
  options.control.skip_failures = false;
  EXPECT_THROW(
      analysis::uncertainty_analysis(kQuadratic, kBase, kRanges, options),
      resil::chaos::ChaosError);
}

TEST(ResilientUncertainty, WrongTotalCheckpointIsRejected) {
  const std::string path = temp_path("uncertainty_mismatch.json");
  std::remove(path.c_str());
  analysis::UncertaintyOptions options;
  options.samples = 8;
  options.threads = 1;
  const std::uint64_t digest =
      analysis::uncertainty_checkpoint_digest(options, kRanges);
  resil::Checkpointer checkpoint(path, "uncertainty", digest,
                                 options.samples + 1);
  options.control.checkpoint = &checkpoint;
  EXPECT_THROW(
      analysis::uncertainty_analysis(kQuadratic, kBase, kRanges, options),
      resil::CheckpointError);
  std::remove(path.c_str());
}

TEST(ResilientCampaign, SigtermMidCampaignResumesBitIdentically) {
  ChaosGuard guard;
  const std::string path = temp_path("campaign_resume.json");
  std::remove(path.c_str());

  faultinj::CampaignOptions options;
  options.trials = 120;
  options.seed = 1973;
  options.threads = 1;
  const std::uint64_t digest = faultinj::campaign_checkpoint_digest(options);

  const auto straight = faultinj::run_campaign(options);

  // Pass 1: a chaos site raises a real SIGTERM when trial 40 starts;
  // the installed handler latches the token and the engine drains.
  resil::CancellationToken cancel;
  resil::install_signal_handlers(cancel);
  resil::chaos::configure("sigterm@40");
  resil::Checkpointer first(path, "campaign", digest, options.trials);
  first.set_flush_every(1);
  options.control.cancel = &cancel;
  options.control.checkpoint = &first;
  const auto partial = faultinj::run_campaign(options);
  resil::chaos::configure("");
  ASSERT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.interrupt_reason, "signal SIGTERM");
  EXPECT_LT(partial.trials, options.trials);

  // Pass 2: resume at a different thread count.
  resil::Checkpointer second(path, "campaign", digest, options.trials);
  EXPECT_GE(second.resume_from_disk(), 1u);
  options.control.cancel = nullptr;
  options.control.checkpoint = &second;
  options.threads = 4;
  const auto resumed = faultinj::run_campaign(options);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.trials, straight.trials);
  EXPECT_EQ(resumed.successes, straight.successes);
  ASSERT_EQ(resumed.records.size(), straight.records.size());
  for (std::size_t i = 0; i < straight.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].fault, straight.records[i].fault) << i;
    EXPECT_EQ(resumed.records[i].workload, straight.records[i].workload)
        << i;
    EXPECT_EQ(resumed.records[i].recovery_time_hours,
              straight.records[i].recovery_time_hours)
        << i;
  }
  EXPECT_EQ(resumed.hadb_restart_times.mean(),
            straight.hadb_restart_times.mean());
  EXPECT_EQ(resumed.recovery_by_workload[1].variance(),
            straight.recovery_by_workload[1].variance());
  std::remove(path.c_str());
}

TEST(ResilientSimulation, FaultedReplicationResumesBitIdentically) {
  ChaosGuard guard;
  const std::string path = temp_path("sim_resume.json");
  std::remove(path.c_str());

  const models::JsasConfig config = models::JsasConfig::config1();
  const expr::ParameterSet params = models::default_parameters();
  sim::JsasSimOptions options;
  options.duration = 8760.0;
  options.replications = 6;
  options.seed = 33;
  options.threads = 4;
  const std::uint64_t digest =
      sim::jsas_sim_checkpoint_digest(config, params, options);

  const auto straight = sim::simulate_jsas(config, params, options);

  // Pass 1 (serial so exactly replications 0 and 1 are on disk): the
  // chaos fault aborts the run, but recorded entries survive.
  resil::chaos::configure("worker-throw@2");
  resil::Checkpointer first(path, "jsas-sim", digest, options.replications);
  first.set_flush_every(1);
  options.threads = 1;
  options.control.checkpoint = &first;
  EXPECT_THROW(sim::simulate_jsas(config, params, options),
               resil::chaos::ChaosError);
  resil::chaos::configure("");

  // Pass 2: resume in parallel.
  resil::Checkpointer second(path, "jsas-sim", digest, options.replications);
  EXPECT_EQ(second.resume_from_disk(), 2u);
  options.control.checkpoint = &second;
  options.threads = 4;
  const auto resumed = sim::simulate_jsas(config, params, options);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed_replications, options.replications);
  EXPECT_EQ(resumed.availability, straight.availability);
  EXPECT_EQ(resumed.availability_ci95.lower, straight.availability_ci95.lower);
  EXPECT_EQ(resumed.downtime_minutes_per_year,
            straight.downtime_minutes_per_year);
  EXPECT_EQ(resumed.system_failures, straight.system_failures);
  EXPECT_EQ(resumed.as_instance_failures, straight.as_instance_failures);
  EXPECT_EQ(resumed.hadb_node_failures, straight.hadb_node_failures);
  EXPECT_EQ(resumed.events_simulated, straight.events_simulated);
  std::remove(path.c_str());
}

// --- Solver escalation ---------------------------------------------------

ctmc::Ctmc availability_chain() {
  ctmc::CtmcBuilder b;
  b.state("Ok", 1.0);
  b.state("Degraded", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 1e-4).rate(1, 0, 60.0).rate(1, 2, 2e-4).rate(2, 0, 1.0);
  return b.build();
}

TEST(SolverEscalation, ForcedNonConvergenceEscalatesToGth) {
  ChaosGuard guard;
  const ctmc::Ctmc chain = availability_chain();
  const ctmc::SteadyState reference =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);

  resil::chaos::configure("solver-nonconverge@0");
  ctmc::SolveControl control;
  control.escalate = true;
  const ctmc::SteadyState rescued = ctmc::solve_steady_state(
      chain, ctmc::SteadyStateMethod::kPower, ctmc::Validation::kOn, control);

  EXPECT_TRUE(rescued.escalated);
  ASSERT_EQ(rescued.probabilities.size(), reference.probabilities.size());
  for (std::size_t i = 0; i < reference.probabilities.size(); ++i) {
    EXPECT_EQ(rescued.probabilities[i], reference.probabilities[i]) << i;
  }
}

TEST(SolverEscalation, NonConvergenceWithoutEscalationThrows) {
  const ctmc::Ctmc chain = availability_chain();
  ctmc::SolveControl control;
  control.max_iterations = 1;
  control.escalate = false;
  try {
    (void)ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kPower,
                                   ctmc::Validation::kOn, control);
    FAIL() << "expected NonConvergenceError";
  } catch (const ctmc::NonConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did not converge"), std::string::npos) << what;
    EXPECT_NE(what.find("power"), std::string::npos) << what;
  }
}

TEST(SolverEscalation, UnforcedSolveDoesNotEscalate) {
  ctmc::SolveControl control;
  control.escalate = true;
  const ctmc::SteadyState s = ctmc::solve_steady_state(
      availability_chain(), ctmc::SteadyStateMethod::kPower,
      ctmc::Validation::kOn, control);
  EXPECT_FALSE(s.escalated);
  EXPECT_LT(s.residual, 1e-8);
}

TEST(SolverEscalation, CancelledSolveThrowsCancelledNotNonConvergence) {
  resil::CancellationToken cancel;
  cancel.request_cancel();
  ctmc::SolveControl control;
  control.cancel = &cancel;
  control.escalate = true;  // must NOT mask cancellation via GTH
  EXPECT_THROW(
      (void)ctmc::solve_steady_state(availability_chain(),
                                     ctmc::SteadyStateMethod::kGaussSeidel,
                                     ctmc::Validation::kOn, control),
      resil::CancelledError);
}

// --- Sparse Krylov path ---------------------------------------------------

TEST(SparseSolverEscalation, ForcedKrylovNonConvergenceEscalatesToGth) {
  ChaosGuard guard;
  const ctmc::Ctmc chain = availability_chain();
  const ctmc::SteadyState reference =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);

  obs::set_enabled(true);
  obs::reset();
  resil::chaos::configure("solver-nonconverge@0");
  ctmc::SolveControl control;
  control.escalate = true;
  const ctmc::SteadyState rescued = ctmc::solve_steady_state(
      chain, ctmc::SteadyStateMethod::kGmres, ctmc::Validation::kOn, control);
  obs::set_enabled(false);

  EXPECT_TRUE(rescued.escalated);
  EXPECT_EQ(rescued.effective_method, ctmc::SteadyStateMethod::kGmres);
  ASSERT_EQ(rescued.probabilities.size(), reference.probabilities.size());
  for (std::size_t i = 0; i < reference.probabilities.size(); ++i) {
    EXPECT_EQ(rescued.probabilities[i], reference.probabilities[i]) << i;
  }
  EXPECT_EQ(obs::counter("ctmc.solver.escalated.gmres_to_gth").value(), 1u);
  EXPECT_EQ(obs::counter("ctmc.solver.nonconverged").value(), 1u);
}

TEST(SparseSolverEscalation, RefusesToDensifyAboveTheSparseThreshold) {
  // The explicit dense/sparse boundary: with the threshold below the
  // state count, a nonconverging Krylov solve may NOT escalate into a
  // dense GTH (that would materialize the n x n matrix the caller
  // asked to avoid) — it must throw instead.
  ChaosGuard guard;
  const ctmc::Ctmc chain = availability_chain();
  resil::chaos::configure("solver-nonconverge@0");
  ctmc::SolveControl control;
  control.escalate = true;
  control.sparse_threshold = 2;  // chain has 3 states
  try {
    (void)ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGmres,
                                   ctmc::Validation::kOn, control);
    FAIL() << "expected NonConvergenceError";
  } catch (const ctmc::NonConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exceed the sparse threshold"), std::string::npos)
        << what;
    EXPECT_NE(what.find("gmres"), std::string::npos) << what;
  }

  // Same forced failure with the threshold at/above the state count:
  // dense escalation is allowed again and must equal GTH exactly.
  const ctmc::SteadyState reference =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);
  resil::chaos::configure("solver-nonconverge@0");
  control.sparse_threshold = chain.num_states();
  const ctmc::SteadyState rescued = ctmc::solve_steady_state(
      chain, ctmc::SteadyStateMethod::kGmres, ctmc::Validation::kOn, control);
  EXPECT_TRUE(rescued.escalated);
  for (std::size_t i = 0; i < reference.probabilities.size(); ++i) {
    EXPECT_EQ(rescued.probabilities[i], reference.probabilities[i]) << i;
  }
}

TEST(SparseSolverEscalation, DenseMethodsRerouteToGmresAboveTheThreshold) {
  // A kGth request above the threshold silently runs the sparse
  // engine instead (recorded in effective_method and the obs counter)
  // and still produces the stationary distribution.
  models::KofnAsConfig config;
  config.nodes = 2;  // 9 states
  config.quorum = 1;
  config.repair_crews = 1;
  const ctmc::Ctmc chain = models::kofn_as_model(config);
  const ctmc::SteadyState reference =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGth);

  obs::set_enabled(true);
  obs::reset();
  ctmc::SolveControl control;
  control.sparse_threshold = 4;
  const ctmc::SteadyState rerouted = ctmc::solve_steady_state(
      chain, ctmc::SteadyStateMethod::kGth, ctmc::Validation::kOn, control);
  obs::set_enabled(false);

  EXPECT_EQ(rerouted.method, ctmc::SteadyStateMethod::kGth);
  EXPECT_EQ(rerouted.effective_method, ctmc::SteadyStateMethod::kGmres);
  EXPECT_FALSE(rerouted.escalated);
  EXPECT_EQ(obs::counter("ctmc.solver.sparse_rerouted").value(), 1u);
  EXPECT_EQ(obs::counter("ctmc.solver.solves.gmres").value(), 1u);
  ASSERT_EQ(rerouted.probabilities.size(), reference.probabilities.size());
  for (std::size_t i = 0; i < reference.probabilities.size(); ++i) {
    EXPECT_NEAR(rerouted.probabilities[i], reference.probabilities[i], 1e-10)
        << i;
  }
}

TEST(SparseSolverEscalation, CancelledKrylovSolveThrowsCancelled) {
  resil::CancellationToken cancel;
  cancel.request_cancel();
  ctmc::SolveControl control;
  control.cancel = &cancel;
  control.escalate = true;  // must NOT mask cancellation via GTH
  EXPECT_THROW(
      (void)ctmc::solve_steady_state(availability_chain(),
                                     ctmc::SteadyStateMethod::kGmres,
                                     ctmc::Validation::kOn, control),
      resil::CancelledError);
}

// Availability of a small k-of-n tier solved strictly through the
// sparse Krylov path (the threshold below the state count guarantees
// no dense matrix is ever built).
const analysis::ModelFunction kSparseKofnModel =
    [](const expr::ParameterSet& p) {
      models::KofnAsConfig config;
      config.nodes = 3;  // 27 states
      config.quorum = 2;
      config.repair_crews = 1;
      config.failure_rate = p.get("fr");
      config.rebuild_rate = p.get("rb");
      const ctmc::Ctmc chain = models::kofn_as_model(config);
      ctmc::SolveControl control;
      control.sparse_threshold = 8;  // force the Krylov path
      control.escalate = false;
      const auto steady = ctmc::solve_steady_state(
          chain, ctmc::SteadyStateMethod::kGmres, ctmc::Validation::kOn,
          control);
      double availability = 0.0;
      for (std::size_t i = 0; i < chain.num_states(); ++i) {
        availability += steady.probabilities[i] * chain.states()[i].reward;
      }
      return availability;
    };

TEST(ResilientUncertainty, SparsePathResumesBitIdenticallyAcrossThreads) {
  // Checkpoint/resume bit-identity for an uncertainty run whose every
  // sample solves through the sparse Krylov path: interrupt a
  // 4-thread run, resume single-threaded, and demand the merged
  // output equal an uninterrupted run bit for bit.
  const std::string path = temp_path("uncertainty_sparse_resume.json");
  std::remove(path.c_str());

  const expr::ParameterSet base{{"fr", 0.02}, {"rb", 0.5}};
  const std::vector<stats::ParameterRange> ranges = {{"fr", 0.005, 0.1},
                                                     {"rb", 0.1, 1.0}};
  analysis::UncertaintyOptions options;
  options.samples = 32;
  options.seed = 23;
  options.threads = 4;
  const std::uint64_t digest =
      analysis::uncertainty_checkpoint_digest(options, ranges);

  const auto straight =
      analysis::uncertainty_analysis(kSparseKofnModel, base, ranges, options);

  std::atomic<int> calls{0};
  resil::CancellationToken cancel;
  const analysis::ModelFunction cancelling_model =
      [&](const expr::ParameterSet& p) {
        if (calls.fetch_add(1) + 1 == 6) cancel.request_cancel();
        return kSparseKofnModel(p);
      };
  resil::Checkpointer first(path, "uncertainty", digest, options.samples);
  first.set_flush_every(1);
  options.control.cancel = &cancel;
  options.control.checkpoint = &first;
  const auto partial = analysis::uncertainty_analysis(cancelling_model, base,
                                                      ranges, options);
  ASSERT_TRUE(partial.interrupted);
  EXPECT_LT(partial.completed, partial.requested);

  resil::Checkpointer second(path, "uncertainty", digest, options.samples);
  EXPECT_EQ(second.resume_from_disk(), partial.completed);
  options.control.cancel = nullptr;
  options.control.checkpoint = &second;
  options.threads = 1;
  const auto resumed =
      analysis::uncertainty_analysis(kSparseKofnModel, base, ranges, options);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed, resumed.requested);
  expect_bit_identical(resumed, straight);
  std::remove(path.c_str());
}

// --- Digests -------------------------------------------------------------

TEST(CheckpointDigests, ChangeWithAnyResultAffectingSetting) {
  analysis::UncertaintyOptions u;
  u.samples = 16;
  u.seed = 1;
  const std::uint64_t base =
      analysis::uncertainty_checkpoint_digest(u, kRanges);
  u.seed = 2;
  EXPECT_NE(analysis::uncertainty_checkpoint_digest(u, kRanges), base);
  u.seed = 1;
  u.samples = 17;
  EXPECT_NE(analysis::uncertainty_checkpoint_digest(u, kRanges), base);
  u.samples = 16;
  u.latin_hypercube = true;
  EXPECT_NE(analysis::uncertainty_checkpoint_digest(u, kRanges), base);
  u.latin_hypercube = false;
  auto shifted = kRanges;
  shifted[0].hi = 3.0;
  EXPECT_NE(analysis::uncertainty_checkpoint_digest(u, shifted), base);
  // Thread count and control settings are resume-legal: same digest.
  u.threads = 8;
  u.control.skip_failures = true;
  EXPECT_EQ(analysis::uncertainty_checkpoint_digest(u, kRanges), base);

  faultinj::CampaignOptions c;
  c.trials = 64;
  c.seed = 5;
  const std::uint64_t campaign_base = faultinj::campaign_checkpoint_digest(c);
  c.seed = 6;
  EXPECT_NE(faultinj::campaign_checkpoint_digest(c), campaign_base);
  c.seed = 5;
  c.recovery.true_imperfect_recovery = 0.25;
  EXPECT_NE(faultinj::campaign_checkpoint_digest(c), campaign_base);
  c.recovery.true_imperfect_recovery = 0.0;
  c.threads = 16;
  EXPECT_EQ(faultinj::campaign_checkpoint_digest(c), campaign_base);
}

}  // namespace
}  // namespace rascal

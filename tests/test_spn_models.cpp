// Cross-validation: the GSPN formulations of the paper's submodels
// must generate chains equivalent to the hand-built Figure 3/4 models.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/params.h"
#include "models/spn_variants.h"
#include "spn/reachability.h"

namespace rascal::models {
namespace {

TEST(HadbPairSpn, GeneratesSixTangibleStates) {
  const auto params = default_parameters();
  const auto generated =
      spn::generate_ctmc(hadb_pair_spn(params), hadb_pair_spn_reward());
  EXPECT_EQ(generated.chain.num_states(), 6u);
}

TEST(HadbPairSpn, MatchesHandBuiltModelExactly) {
  const auto params = default_parameters();
  const auto direct = core::solve_availability(hadb_pair_model().bind(params));
  const auto generated =
      spn::generate_ctmc(hadb_pair_spn(params), hadb_pair_spn_reward());
  const auto from_spn = core::solve_availability(generated.chain);

  EXPECT_NEAR(from_spn.availability, direct.availability, 1e-14);
  EXPECT_NEAR(from_spn.failure_frequency, direct.failure_frequency, 1e-16);
  EXPECT_NEAR(from_spn.mtbf_hours, direct.mtbf_hours, direct.mtbf_hours * 1e-9);
}

TEST(HadbPairSpn, ZeroFirStillBuilds) {
  auto params = default_parameters();
  params.set("hadb_FIR", 0.0);
  const auto generated =
      spn::generate_ctmc(hadb_pair_spn(params), hadb_pair_spn_reward());
  const auto direct = core::solve_availability(hadb_pair_model().bind(params));
  const auto from_spn = core::solve_availability(generated.chain);
  EXPECT_NEAR(from_spn.availability, direct.availability, 1e-14);
}

class AppServerSpnSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AppServerSpnSizes, MatchesDirectNInstanceModel) {
  const std::size_t n = GetParam();
  const auto params = default_parameters();
  const auto generated = spn::generate_ctmc(app_server_spn(n, params),
                                            app_server_spn_reward());
  // Tangible states must match the direct model's count.
  EXPECT_EQ(generated.chain.num_states(),
            app_server_n_instance_state_count(n));

  const auto direct =
      core::solve_availability(app_server_n_instance_model(n).bind(params));
  const auto from_spn = core::solve_availability(generated.chain);
  EXPECT_NEAR(from_spn.availability, direct.availability,
              1e-11 * direct.availability + 1e-15);
  EXPECT_NEAR(from_spn.failure_frequency, direct.failure_frequency,
              1e-9 * direct.failure_frequency + 1e-20);
}

INSTANTIATE_TEST_SUITE_P(Ns, AppServerSpnSizes,
                         ::testing::Values(2, 3, 4, 5));

TEST(AppServerSpn, VanishingFlushAbandonsInFlightRestarts) {
  // The tangible chain must contain the pure ClusterDown marking and
  // no marking combining ClusterDown with leftover restart tokens.
  const auto params = default_parameters();
  const auto generated =
      spn::generate_ctmc(app_server_spn(3, params), app_server_spn_reward());
  bool found_pure_down = false;
  for (std::size_t i = 0; i < generated.chain.num_states(); ++i) {
    const std::string& name = generated.chain.state_name(i);
    if (name.find("ClusterDown") != std::string::npos) {
      EXPECT_EQ(name, "ClusterDown=1");
      found_pure_down = true;
    }
  }
  EXPECT_TRUE(found_pure_down);
}

TEST(AppServerSpn, RejectsSingleInstance) {
  EXPECT_THROW((void)app_server_spn(1, default_parameters()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::models

// Unit tests for the sparse Krylov engine (linalg/krylov.h): exact
// small solves, restart-boundary GMRES(m), BiCGStab breakdown
// detection, singular-system refusal, cancellation poll cadence,
// stationary wrappers against dense GTH, workspace bit-identity, and
// the large-state-space memory-footprint acceptance on the k-of-n
// replicated-AS model.
#include "linalg/krylov.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/gth.h"
#include "linalg/sparse.h"
#include "linalg/workspace.h"
#include "models/kofn_as.h"
#include "resil/cancel.h"

namespace rascal::linalg {
namespace {

double max_abs_diff(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// A small nonsymmetric, diagonally dominant system with a known
// solution x, as b = A x.
CsrMatrix small_system(Vector& b, Vector& x) {
  const CsrMatrix a(4, 4,
                    {{0, 0, 5.0}, {0, 1, 1.0}, {1, 0, -2.0}, {1, 1, 6.0},
                     {1, 3, 1.0}, {2, 2, 4.0}, {2, 0, 0.5}, {3, 3, 7.0},
                     {3, 2, -1.0}});
  x = {1.0, -2.0, 0.5, 3.0};
  b = a.multiply(x);
  return a;
}

TEST(Gmres, SolvesSmallSystemExactlyUnderEveryPrecond) {
  Vector b;
  Vector x;
  const CsrMatrix a = small_system(b, x);
  for (const PrecondKind kind :
       {PrecondKind::kNone, PrecondKind::kJacobi, PrecondKind::kIlu0}) {
    KrylovOptions options;
    options.precond = kind;
    const KrylovResult result = gmres(a, b, options);
    EXPECT_TRUE(result.converged) << precond_name(kind);
    EXPECT_FALSE(result.breakdown);
    EXPECT_LE(result.iterations, 8u) << precond_name(kind);
    EXPECT_LT(max_abs_diff(result.x, x), 1e-10) << precond_name(kind);
  }
}

TEST(BiCgStab, SolvesSmallSystemExactlyUnderEveryPrecond) {
  Vector b;
  Vector x;
  const CsrMatrix a = small_system(b, x);
  for (const PrecondKind kind :
       {PrecondKind::kNone, PrecondKind::kJacobi, PrecondKind::kIlu0}) {
    KrylovOptions options;
    options.precond = kind;
    const KrylovResult result = bicgstab(a, b, options);
    EXPECT_TRUE(result.converged) << precond_name(kind);
    EXPECT_LT(max_abs_diff(result.x, x), 1e-9) << precond_name(kind);
  }
}

TEST(Gmres, ZeroRhsReturnsZeroImmediately) {
  Vector b;
  Vector x;
  const CsrMatrix a = small_system(b, x);
  const KrylovResult result = gmres(a, Vector(4, 0.0), {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.x, Vector(4, 0.0));
}

TEST(Gmres, ShapeMismatchThrows) {
  const CsrMatrix a(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW((void)gmres(a, Vector{1.0, 2.0}, {}), std::invalid_argument);
  const CsrMatrix sq(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW((void)gmres(sq, Vector{1.0, 2.0, 3.0}, {}),
               std::invalid_argument);
}

TEST(Gmres, ConvergesAcrossRestartBoundaries) {
  // restart = 2 on a 30-state chain system: the subspace is rebuilt
  // many times and the true-residual restart bookkeeping has to carry
  // the iterate across each boundary.
  constexpr std::size_t n = 30;
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 4.0});
    if (i + 1 < n) triplets.push_back({i, i + 1, -1.0});
    if (i > 0) triplets.push_back({i, i - 1, -1.5});
  }
  const CsrMatrix a(n, n, triplets);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(static_cast<double>(i));
  }
  const Vector b = a.multiply(x);
  KrylovOptions options;
  options.restart = 2;
  options.precond = PrecondKind::kNone;
  const KrylovResult result = gmres(a, b, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 2u);  // must actually have restarted
  EXPECT_LT(max_abs_diff(result.x, x), 1e-8);
}

TEST(Gmres, InitialGuessAtTheSolutionConvergesInstantly) {
  Vector b;
  Vector x;
  const CsrMatrix a = small_system(b, x);
  KrylovOptions options;
  options.initial_guess = &x;
  const KrylovResult result = gmres(a, b, options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.x, x);
}

TEST(BiCgStab, DetectsBreakdownInsteadOfProducingNaN) {
  // The classic rotation matrix: rhat = r = b makes the very first
  // dot(rhat, A p) vanish, so the rho/den recurrence has no valid
  // continuation.  The solver must report breakdown, not NaN.
  const CsrMatrix a(2, 2, {{0, 1, 1.0}, {1, 0, -1.0}});
  KrylovOptions options;
  options.precond = PrecondKind::kNone;  // the diagonal is empty
  const KrylovResult result = bicgstab(a, Vector{1.0, 0.0}, options);
  EXPECT_TRUE(result.breakdown);
  EXPECT_FALSE(result.converged);
  for (const double v : result.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gmres, SingularSystemDoesNotConverge) {
  // Rank-1 matrix with an inconsistent right-hand side: no x exists,
  // and the solver has to say so rather than loop forever.
  const CsrMatrix a(2, 2,
                    {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  KrylovOptions options;
  options.precond = PrecondKind::kNone;
  options.max_iterations = 64;
  const KrylovResult result = gmres(a, Vector{1.0, 0.0}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.residual, 1e-3);
  for (const double v : result.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Krylov, PreArmedCancelStopsBeforeTheFirstMatvec) {
  // The poll cadence is once per iteration, checked at the top: a
  // token cancelled before the solve starts must yield zero matvecs.
  Vector b;
  Vector x;
  const CsrMatrix a = small_system(b, x);
  resil::CancellationToken cancel;
  cancel.request_cancel();
  KrylovOptions options;
  options.cancel = &cancel;
  const KrylovResult g = gmres(a, b, options);
  EXPECT_TRUE(g.cancelled);
  EXPECT_FALSE(g.converged);
  EXPECT_EQ(g.iterations, 0u);
  const KrylovResult bi = bicgstab(a, b, options);
  EXPECT_TRUE(bi.cancelled);
  EXPECT_FALSE(bi.converged);
  EXPECT_EQ(bi.iterations, 0u);
}

// A small ergodic generator (5-state availability-style chain).
CsrMatrix small_generator() {
  std::vector<Triplet> triplets;
  const auto add = [&](std::size_t from, std::size_t to, double rate) {
    triplets.push_back({from, to, rate});
    triplets.push_back({from, from, -rate});
  };
  add(0, 1, 0.02);
  add(0, 2, 0.005);
  add(1, 0, 12.0);
  add(1, 3, 0.01);
  add(2, 0, 0.5);
  add(3, 4, 2.0);
  add(4, 0, 6.0);
  return CsrMatrix(5, 5, std::move(triplets));
}

TEST(Stationary, WrappersMatchDenseGth) {
  const CsrMatrix q = small_generator();
  const Vector reference = gth_stationary(q.to_dense());
  for (const PrecondKind kind :
       {PrecondKind::kNone, PrecondKind::kJacobi, PrecondKind::kIlu0}) {
    KrylovOptions options;
    options.precond = kind;
    const KrylovResult g = gmres_stationary(q, options);
    EXPECT_TRUE(g.converged) << precond_name(kind);
    EXPECT_LT(max_abs_diff(g.x, reference), 1e-9) << precond_name(kind);
    const KrylovResult bi = bicgstab_stationary(q, options);
    EXPECT_TRUE(bi.converged) << precond_name(kind);
    EXPECT_LT(max_abs_diff(bi.x, reference), 1e-9) << precond_name(kind);
  }
}

TEST(Stationary, SolutionIsAProbabilityVector) {
  const CsrMatrix q = small_generator();
  const KrylovResult result = gmres_stationary(q, {});
  ASSERT_TRUE(result.converged);
  double sum = 0.0;
  for (const double p : result.x) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Stationary, AugmentedSystemHasTheNormalizationRow) {
  const CsrMatrix q = small_generator();
  const CsrMatrix a = stationary_system(q);
  ASSERT_EQ(a.rows(), 5u);
  ASSERT_EQ(a.cols(), 5u);
  // The last row is all ones (fully dense).
  const auto last = a.row(4);
  ASSERT_EQ(last.size(), 5u);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(last[j].first, j);
    EXPECT_DOUBLE_EQ(last[j].second, 1.0);
  }
  // The other rows are Q^T with the last balance row dropped:
  // a(i, j) = q(j, i) for i < n-1.
  const Matrix dense_q = q.to_dense();
  const Matrix dense_a = a.to_dense();
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(dense_a(i, j), dense_q(j, i)) << i << "," << j;
    }
  }
}

TEST(Krylov, DirtyWorkspaceReuseIsBitIdentical) {
  const CsrMatrix q = small_generator();
  const KrylovResult fresh = gmres_stationary(q, {});
  ASSERT_TRUE(fresh.converged);

  SolveWorkspace workspace;
  // Dirty the pools with a solve of a different shape first.
  Vector b;
  Vector x;
  const CsrMatrix other = small_system(b, x);
  KrylovOptions dirty;
  dirty.workspace = &workspace;
  (void)gmres(other, b, dirty);
  (void)bicgstab(other, b, dirty);

  for (int rep = 0; rep < 2; ++rep) {
    KrylovOptions options;
    options.workspace = &workspace;
    const KrylovResult reused = gmres_stationary(q, options);
    ASSERT_TRUE(reused.converged);
    ASSERT_EQ(reused.x.size(), fresh.x.size());
    EXPECT_EQ(std::memcmp(reused.x.data(), fresh.x.data(),
                          fresh.x.size() * sizeof(double)),
              0)
        << "rep " << rep;
    EXPECT_EQ(reused.iterations, fresh.iterations);
    EXPECT_EQ(reused.residual, fresh.residual);
  }
}

TEST(KofnAs, SparseModelMatchesDenseGthAtSmallN) {
  // The CSR-direct generator and the named-Ctmc generator must be the
  // same chain: solve the sparse one with GMRES and compare with GTH
  // on the dense generator of the Ctmc path.
  models::KofnAsConfig config;
  config.nodes = 4;
  config.quorum = 3;
  config.repair_crews = 2;
  const models::KofnAsSparseModel sparse =
      models::kofn_as_sparse_model(config);
  const ctmc::Ctmc chain = models::kofn_as_model(config);
  ASSERT_EQ(sparse.generator.rows(), chain.num_states());
  const Vector reference = gth_stationary(chain.generator());
  KrylovOptions options;
  options.precond = PrecondKind::kIlu0;
  const KrylovResult result = gmres_stationary(sparse.generator, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.x, reference), 1e-9);
  // Rewards agree with the named states' rewards.
  ASSERT_EQ(sparse.rewards.size(), chain.num_states());
  for (std::size_t i = 0; i < chain.num_states(); ++i) {
    EXPECT_DOUBLE_EQ(sparse.rewards[i], chain.states()[i].reward);
  }
}

TEST(KofnAs, HundredThousandStateSolveStaysUnderDenseMemory) {
  // The acceptance gate for the sparse engine: an 11-node k-of-n AS
  // tier (3^11 = 177,147 states) solves via GMRES + ILU(0) while
  // every byte the solver holds — CSR generator, factorization,
  // Krylov basis — stays far below the 8 n^2 bytes a dense Matrix
  // would need (~251 GB here).
  models::KofnAsConfig config;
  config.nodes = 11;
  config.quorum = 8;
  config.repair_crews = 3;
  const std::size_t n = models::kofn_as_state_count(config);
  ASSERT_GE(n, 100000u);
  const models::KofnAsSparseModel model =
      models::kofn_as_sparse_model(config);
  ASSERT_EQ(model.generator.rows(), n);

  KrylovOptions options;
  options.precond = PrecondKind::kIlu0;
  options.restart = 40;
  const auto precond =
      make_preconditioner(PrecondKind::kIlu0, model.generator);
  const std::size_t csr_bytes =
      model.generator.non_zeros() * (sizeof(double) + sizeof(std::size_t)) +
      (n + 1) * sizeof(std::size_t);
  const std::size_t basis_bytes = (options.restart + 1) * n * sizeof(double);
  const std::size_t sparse_bytes =
      csr_bytes + precond->memory_bytes() + basis_bytes;
  // 8 n^2 would overflow nothing here (n^2 ~ 3.1e10) but dwarfs the
  // sparse footprint by more than three orders of magnitude.
  EXPECT_LT(sparse_bytes, n * n * sizeof(double) / 1000);

  const KrylovResult result = gmres_stationary(model.generator, options);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.residual, 1e-10);

  double sum = 0.0;
  double availability = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += result.x[i];
    availability += result.x[i] * model.rewards[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(availability, 0.99);  // fast restarts dominate
  EXPECT_LT(availability, 1.0);

  // Differential check at scale: BiCGStab must land on the same
  // stationary vector without ever seeing GMRES's iterates.
  const KrylovResult cross = bicgstab_stationary(model.generator, options);
  ASSERT_TRUE(cross.converged);
  EXPECT_LT(max_abs_diff(cross.x, result.x), 1e-8);
}

}  // namespace
}  // namespace rascal::linalg

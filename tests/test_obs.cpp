// Unit tests for the observability subsystem: registry semantics,
// zero-overhead-when-disabled behaviour, span aggregation paths, the
// Chrome trace exporter, and the summary renderer.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/progress.h"
#include "obs/trace.h"

namespace rascal::obs {
namespace {

// Each test drives the process-wide registry; serialize via fixture.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_event_recording(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    set_event_recording(false);
    reset();
  }
};

TEST_F(ObsTest, CounterRegistersAccumulatesAndResets) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  // Same name returns the same counter.
  EXPECT_EQ(&counter("test.counter"), &c);
  EXPECT_NE(&counter("test.other"), &c);
  reset();
  EXPECT_EQ(c.value(), 0u);  // reference survives reset
}

TEST_F(ObsTest, GaugeTracksLastAndMax) {
  Gauge& g = gauge("test.gauge");
  g.record_max(2.0);
  g.record_max(5.0);
  g.record_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST_F(ObsTest, SpansRecordNothingWhileDisabled) {
  ASSERT_FALSE(enabled());
  { const Span span("test.disabled"); }
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.events.empty());
}

TEST_F(ObsTest, SpansAggregateUnderNestedPaths) {
  set_enabled(true);
  {
    const Span outer("outer");
    { const Span inner("inner"); }
    { const Span inner("inner"); }
  }
  { const Span other("other"); }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);  // sorted by path
  EXPECT_EQ(snap.spans[0].path, "other");
  EXPECT_EQ(snap.spans[1].path, "outer");
  EXPECT_EQ(snap.spans[2].path, "outer/inner");
  EXPECT_EQ(snap.spans[2].count, 2u);
  EXPECT_GE(snap.spans[1].wall_ms, snap.spans[2].wall_ms);
}

TEST_F(ObsTest, SpanPathsAreThreadLocal) {
  set_enabled(true);
  const Span outer("parent");
  std::thread worker([] { const Span span("child"); });
  worker.join();
  const Snapshot snap = snapshot();
  // The worker's span must not inherit this thread's open "parent".
  bool found_bare_child = false;
  for (const SpanStat& s : snap.spans) {
    EXPECT_NE(s.path, "parent/child");
    if (s.path == "child") found_bare_child = true;
  }
  EXPECT_TRUE(found_bare_child);
}

TEST_F(ObsTest, EventRecordingHonoursTheCap) {
  set_enabled(true);
  set_event_recording(true, 4);
  for (int i = 0; i < 10; ++i) {
    const Span span("test.capped");
  }
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped_events, 6u);
}

TEST_F(ObsTest, TraceSessionCollectsAndStops) {
  {
    TraceSession session;
    EXPECT_TRUE(enabled());
    counter("test.session").add(7);
    { const Span span("test.span"); }
    const Snapshot snap = session.stop();
    EXPECT_FALSE(enabled());
    bool found = false;
    for (const CounterValue& c : snap.counters) {
      if (c.name == "test.session" && c.value == 7) found = true;
    }
    EXPECT_TRUE(found);
    ASSERT_FALSE(snap.events.empty());
    EXPECT_EQ(snap.events[0].path, "test.span");
    // stop() is idempotent.
    EXPECT_EQ(session.stop().counters.size(), snap.counters.size());
  }
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, ChromeTraceJsonHasExpectedShape) {
  TraceSession session;
  counter("shape.counter").add(42);
  gauge("shape.gauge").set(0.5);
  { const Span span("shape.span"); }
  const std::string json = chrome_trace_json(session.stop());

  // Structural smoke checks; full JSON validity is asserted end to end
  // by the cli_trace_valid_json ctest through python3 -m json.tool.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"shape.span\""), std::string::npos);
  EXPECT_NE(json.find("\"shape.counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"shape.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, JsonEscapesControlCharactersInNames) {
  TraceSession session;
  counter("weird\"name\\with\ncontrol").add(1);
  const std::string json = chrome_trace_json(session.stop());
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrol"), std::string::npos);
}

TEST_F(ObsTest, RenderSummaryListsSpansCountersGauges) {
  TraceSession session;
  counter("sum.counter").add(3);
  gauge("sum.gauge").set(2.25);
  { const Span span("sum.span"); }
  const std::string text = render_summary(session.stop());
  EXPECT_NE(text.find("sum.counter"), std::string::npos);
  EXPECT_NE(text.find("sum.gauge"), std::string::npos);
  EXPECT_NE(text.find("sum.span"), std::string::npos);
}

TEST_F(ObsTest, ProgressIsSilentWhenDisabled) {
  ASSERT_FALSE(enabled());
  Progress progress("quiet", 10);
  for (int i = 0; i < 10; ++i) progress.tick();
  progress.finish();  // must not print or crash
}

TEST_F(ObsTest, ProgressCountsTicksWhenEnabled) {
  set_enabled(true);
  ::testing::internal::CaptureStderr();
  {
    Progress progress("ticks", 3);
    progress.tick();
    progress.tick(2);
    progress.finish();
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ticks: 3/3"), std::string::npos);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  set_enabled(true);
  Counter& c = counter("test.mt");
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

}  // namespace
}  // namespace rascal::obs

// Unit tests for the model linter: every diagnostic code R001-R044 on
// a minimal broken model, the rendering paths (text + JSON), the
// diagnostics-carrying LintError, and the clean bill of health for
// every paper model in src/models.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ctmc/absorption.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "ctmc/transient.h"
#include "ctmc/validate.h"
#include "io/model_file.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/hadb_pair_explicit.h"
#include "models/hadb_spares.h"
#include "models/params.h"
#include "models/single_instance.h"
#include "models/upgrade.h"
#include "models/web_tier.h"
#include "report/diagnostics.h"

namespace rascal::lint {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ctmc::Ctmc two_state(double lambda = 1.0, double mu = 2.0) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

// ---------------------------------------------------------------- raw model

TEST(LintRawModel, CleanModelHasNoDiagnostics) {
  const ctmc::Ctmc chain = two_state();
  const LintReport report =
      lint_raw_model(chain.states(), chain.transitions());
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

TEST(LintRawModel, R001NonPositiveRate) {
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"b", 0.0}}, {{0, 1, -2.5}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kNonPositiveRate));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintRawModel, R002NonFiniteRate) {
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"b", 0.0}}, {{0, 1, kNan}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kNonFiniteRate));
}

TEST(LintRawModel, R003SelfLoop) {
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"b", 0.0}}, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kSelfLoop));
}

TEST(LintRawModel, R004DuplicateTransitionIsAWarning) {
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"b", 0.0}}, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kDuplicateTransition));
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
}

TEST(LintRawModel, R005EndpointOutOfRange) {
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"b", 0.0}}, {{0, 7, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kEndpointOutOfRange));
}

TEST(LintRawModel, R008NonFiniteReward) {
  const LintReport report = lint_raw_model(
      {{"a", kInf}, {"b", 0.0}}, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kNonFiniteReward));
}

TEST(LintRawModel, R009DuplicateAndEmptyStateNames) {
  const LintReport duplicate = lint_raw_model(
      {{"a", 1.0}, {"a", 0.0}}, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(duplicate.has_code(codes::kBadStateName));
  const LintReport empty = lint_raw_model(
      {{"", 1.0}, {"b", 0.0}}, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(empty.has_code(codes::kBadStateName));
}

TEST(LintRawModel, ReportsEveryViolationAtOnce) {
  // The Ctmc constructor stops at the first problem; the linter must
  // keep going and name all three.
  const LintReport report = lint_raw_model(
      {{"a", 1.0}, {"a", kInf}},
      {{0, 0, 1.0}, {0, 1, -1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(report.has_code(codes::kBadStateName));
  EXPECT_TRUE(report.has_code(codes::kNonFiniteReward));
  EXPECT_TRUE(report.has_code(codes::kSelfLoop));
  EXPECT_TRUE(report.has_code(codes::kNonPositiveRate));
  EXPECT_GE(report.size(), 4u);
}

// ---------------------------------------------------------------- generator

TEST(LintGenerator, R006RowSumViolation) {
  linalg::Matrix q(2, 2);
  q(0, 0) = -1.0;
  q(0, 1) = 2.0;  // row sums to 1, not 0
  q(1, 0) = 1.0;
  q(1, 1) = -1.0;
  const LintReport report = lint_generator(q);
  EXPECT_TRUE(report.has_code(codes::kRowSumViolation));
}

TEST(LintGenerator, R007NegativeOffDiagonal) {
  linalg::Matrix q(2, 2);
  q(0, 0) = 1.0;
  q(0, 1) = -1.0;
  q(1, 0) = 1.0;
  q(1, 1) = -1.0;
  const LintReport report = lint_generator(q);
  EXPECT_TRUE(report.has_code(codes::kNegativeOffDiagonal));
}

TEST(LintGenerator, NonSquareAndNonFiniteRejected) {
  EXPECT_TRUE(lint_generator(linalg::Matrix(2, 3))
                  .has_code(codes::kRowSumViolation));
  linalg::Matrix q(2, 2);
  q(0, 1) = kNan;
  EXPECT_TRUE(lint_generator(q).has_code(codes::kNonFiniteRate));
}

TEST(LintGenerator, AcceptsValidGenerator) {
  const LintReport report = lint_generator(two_state().generator());
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

// ---------------------------------------------------------------- structure

TEST(LintCtmc, R010R011R014OnUnreachableTail) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.state("Orphan", 1.0);
  b.rate(0, 1, 1.0).rate(1, 0, 2.0).rate(2, 0, 1.0);
  const LintReport report = lint_ctmc(b.build());
  EXPECT_TRUE(report.has_code(codes::kNotIrreducible));
  EXPECT_TRUE(report.has_code(codes::kUnreachableState));
  EXPECT_TRUE(report.has_code(codes::kDeadTransition));
}

TEST(LintCtmc, R012AbsorbingState) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Trap", 0.0);
  b.rate(0, 1, 1.0);  // no way back
  const LintReport report = lint_ctmc(b.build());
  EXPECT_TRUE(report.has_code(codes::kAbsorbingState));
  EXPECT_TRUE(report.has_code(codes::kNotIrreducible));
}

TEST(LintCtmc, R013ClosedClass) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("IslandA", 0.0);
  b.state("IslandB", 0.0);
  b.rate(0, 1, 1.0).rate(1, 2, 1.0).rate(2, 1, 1.0);
  const LintReport report = lint_ctmc(b.build());
  EXPECT_TRUE(report.has_code(codes::kAbsorbingClass));
}

TEST(LintCtmc, CleanChainLintsClean) {
  const LintReport report = lint_ctmc(two_state());
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

// ---------------------------------------------------------------- numerics

TEST(LintCtmc, R030StiffChainWarning) {
  const LintReport report = lint_ctmc(two_state(1e-8, 1e4));
  EXPECT_TRUE(report.has_code(codes::kStiffChain));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintCtmc, R031NearZeroRateWarning) {
  ctmc::CtmcBuilder b;
  b.state("a", 1.0);
  b.state("b", 0.0);
  b.state("c", 0.0);
  b.rate(0, 1, 1e-20).rate(1, 0, 1.0).rate(0, 2, 1.0).rate(2, 0, 1.0);
  const LintReport report = lint_ctmc(b.build());
  EXPECT_TRUE(report.has_code(codes::kNearZeroRate));
}

TEST(LintCtmc, StiffnessThresholdIsConfigurable) {
  LintOptions options;
  options.stiffness_warn_ratio = 1e3;
  EXPECT_TRUE(lint_ctmc(two_state(1.0, 1e4), options)
                  .has_code(codes::kStiffChain));
  EXPECT_TRUE(lint_ctmc(two_state(1.0, 1e4)).empty());
}

// ---------------------------------------------------------------- symbolic

TEST(LintSymbolic, R020UndefinedParameter) {
  ctmc::SymbolicCtmc model;
  (void)model.state("Up", 1.0);
  (void)model.state("Down", 0.0);
  model.rate("Up", "Down", "La_missing").rate("Down", "Up", "60");
  const LintReport report = lint_symbolic(model, expr::ParameterSet{});
  EXPECT_TRUE(report.has_code(codes::kUndefinedParameter));
}

TEST(LintSymbolic, R021UnusedParameterOnlyWhenEnabled) {
  ctmc::SymbolicCtmc model;
  (void)model.state("Up", 1.0);
  (void)model.state("Down", 0.0);
  model.rate("Up", "Down", "La").rate("Down", "Up", "Mu");
  expr::ParameterSet params;
  params.set("La", 0.1).set("Mu", 2.0).set("Zombie", 42.0);
  EXPECT_TRUE(lint_symbolic(model, params).empty());
  LintOptions options;
  options.warn_unused_parameters = true;
  const LintReport report = lint_symbolic(model, params, options);
  EXPECT_TRUE(report.has_code(codes::kUnusedParameter));
  EXPECT_FALSE(report.has_errors());
}

TEST(LintSymbolic, R022GuaranteedDivisionByZero) {
  ctmc::SymbolicCtmc model;
  (void)model.state("Up", 1.0);
  (void)model.state("Down", 0.0);
  model.rate("Up", "Down", "1/T").rate("Down", "Up", "60");
  expr::ParameterSet params;
  params.set("T", 0.0);
  const LintReport report = lint_symbolic(model, params);
  EXPECT_TRUE(report.has_code(codes::kDivisionByZero));
}

TEST(LintSymbolic, R024ZeroRateWarningAndR025NegativeRate) {
  ctmc::SymbolicCtmc model;
  (void)model.state("Up", 1.0);
  (void)model.state("Down", 0.0);
  model.rate("Up", "Down", "La").rate("Down", "Up", "Mu");
  expr::ParameterSet params;
  params.set("La", 0.0).set("Mu", -3.0);
  const LintReport report = lint_symbolic(model, params);
  EXPECT_TRUE(report.has_code(codes::kZeroRate));
  EXPECT_TRUE(report.has_code(codes::kNegativeRateExpr));
  EXPECT_EQ(report.count(Severity::kError), 1u);    // only the negative
  EXPECT_EQ(report.count(Severity::kWarning), 1u);  // only the zero
}

// ---------------------------------------------------------------- ranges

TEST(LintRanges, R023BadAndDegenerateBounds) {
  expr::ParameterSet params;
  params.set("La", 1.0);
  const LintReport report = lint_ranges(
      {{"La", 2.0, 1.0}, {"La", 1.0, 1.0}, {"La", 0.0, kInf}, {"", 0.0, 1.0}},
      params);
  EXPECT_TRUE(report.has_code(codes::kBadRange));
  EXPECT_GE(report.count(Severity::kError), 3u);   // inverted, inf, unnamed
  EXPECT_GE(report.count(Severity::kWarning), 1u);  // degenerate
}

TEST(LintRanges, R020UnboundRangeParameterIsAWarning) {
  const LintReport report =
      lint_ranges({{"Ghost", 0.0, 1.0}}, expr::ParameterSet{});
  EXPECT_TRUE(report.has_code(codes::kUndefinedParameter));
  EXPECT_FALSE(report.has_errors());
}

// ------------------------------------------------------------- composition

TEST(LintComposition, R040EmptyComposition) {
  EXPECT_TRUE(lint_composition({}).has_code(codes::kEmptyComposition));
}

TEST(LintComposition, R041ReducibleComponent) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Trap", 0.0);
  b.rate(0, 1, 1.0);
  const LintReport report = lint_composition({two_state(), b.build()});
  EXPECT_TRUE(report.has_code(codes::kReducibleComponent));
}

TEST(LintComposition, R042ProductSpaceBlowup) {
  LintOptions options;
  options.compose_warn_states = 3;
  const LintReport report =
      lint_composition({two_state(), two_state()},
                       ctmc::min_reward_combiner(), options);
  EXPECT_TRUE(report.has_code(codes::kProductSpaceLarge));
}

TEST(LintComposition, R043ConstantComponentReward) {
  ctmc::CtmcBuilder b;
  b.state("a", 1.0);
  b.state("b", 1.0);  // same reward everywhere
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const LintReport report = lint_composition({two_state(), b.build()});
  EXPECT_TRUE(report.has_code(codes::kConstantComponentReward));
}

TEST(LintComposition, R044DegenerateCompositeReward) {
  // min() over a component that is always down flattens the composite
  // reward to a constant 0.
  ctmc::CtmcBuilder b;
  b.state("a", 0.0);
  b.state("b", 0.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const LintReport report = lint_composition({two_state(), b.build()});
  EXPECT_TRUE(report.has_code(codes::kDegenerateCompositeReward));
}

TEST(LintComposition, CleanCompositionLintsClean) {
  const LintReport report = lint_composition({two_state(), two_state(3.0)});
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

// -------------------------------------------------------------- fail-fast

TEST(FailFast, SteadyStateThrowsLintErrorWithTwoClosedClasses) {
  ctmc::CtmcBuilder two_islands;
  two_islands.state("a1", 1.0);
  two_islands.state("a2", 0.0);
  two_islands.state("b1", 1.0);
  two_islands.state("b2", 0.0);
  two_islands.rate(0, 1, 1.0).rate(1, 0, 1.0);
  two_islands.rate(2, 3, 1.0).rate(3, 2, 1.0);
  try {
    (void)ctmc::solve_steady_state(two_islands.build());
    FAIL() << "expected lint::LintError";
  } catch (const LintError& e) {
    EXPECT_TRUE(e.report().has_code(codes::kNotIrreducible));
    EXPECT_TRUE(e.report().has_code(codes::kAbsorbingClass));
    EXPECT_GE(e.report().count(Severity::kError), 3u);  // R010 + 2x R013
  }
}

TEST(FailFast, SteadyStateToleratesTransientStates) {
  // Unreachable states with an escape path get probability zero; the
  // solve stays well-posed and must not be rejected.
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.state("Ghost", 1.0);
  b.rate(0, 1, 1.0).rate(1, 0, 2.0).rate(2, 0, 5.0);
  const auto steady = ctmc::solve_steady_state(b.build());
  EXPECT_DOUBLE_EQ(steady.probability(2), 0.0);
}

TEST(FailFast, AbsorptionReportsEveryUnreachableSource) {
  ctmc::CtmcBuilder b;
  b.state("a", 1.0);
  b.state("target", 0.0);
  b.state("island1", 1.0);
  b.state("island2", 1.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  b.rate(2, 3, 1.0).rate(3, 2, 1.0);
  const ctmc::Ctmc chain = b.build();
  try {
    (void)ctmc::mean_time_to_absorption(chain, {1});
    FAIL() << "expected lint::LintError";
  } catch (const LintError& e) {
    EXPECT_EQ(e.report().count(Severity::kError), 2u);  // both islands
    EXPECT_TRUE(e.report().has_code(codes::kTargetUnreachable));
  }
}

TEST(FailFast, TransientRejectsInfeasibleHorizonWithR032) {
  ctmc::TransientOptions options;
  options.max_terms = 100;
  try {
    (void)ctmc::transient_distribution(two_state(1e6, 1e6),
                                       ctmc::StateId{0}, 1e6, options);
    FAIL() << "expected lint::LintError";
  } catch (const LintError& e) {
    EXPECT_TRUE(e.report().has_code(codes::kHorizonInfeasible));
  }
}

TEST(FailFast, LintErrorIsADomainErrorAndNothrowCopyable) {
  static_assert(std::is_base_of_v<std::domain_error, LintError>);
  static_assert(std::is_nothrow_copy_constructible_v<LintError>);
  LintReport report;
  Diagnostic d;
  d.code = codes::kNotIrreducible;
  d.severity = Severity::kError;
  d.message = "broken";
  report.add(d);
  const LintError error(report);
  EXPECT_NE(std::string(error.what()).find("R010"), std::string::npos);
  EXPECT_EQ(error.report().size(), 1u);
}

// ------------------------------------------------------------- model files

TEST(LintModelFile, DiagnosticsCarryLineAndColumn) {
  const io::ModelFile file = io::parse_model_text(
      "param Mu 60\n"
      "param Zombie 1\n"
      "state Up reward 1\n"
      "state Down reward 0\n"
      "rate Up Down La_missing\n"
      "rate Down Up Mu\n");
  const LintReport report = io::lint_model_file(file);
  ASSERT_TRUE(report.has_code(codes::kUndefinedParameter));
  ASSERT_TRUE(report.has_code(codes::kUnusedParameter));
  for (const Diagnostic& d : report) {
    if (d.code == codes::kUndefinedParameter) {
      EXPECT_EQ(d.location.line, 5u);
      EXPECT_EQ(d.location.column, 6u);  // the 'Up' token
    }
    if (d.code == codes::kUnusedParameter) {
      EXPECT_EQ(d.location.line, 2u);
      EXPECT_EQ(d.location.column, 7u);  // the 'Zombie' token
    }
  }
}

TEST(LintModelFile, ParamsUsedByOtherParamsAreNotUnused) {
  // La_as/La_os only appear inside another param's value, which is
  // evaluated eagerly at parse time; R021 must not flag them.
  const io::ModelFile file = io::parse_model_text(
      "param La_as 1/8760\n"
      "param La_os 2/8760\n"
      "param La La_as+La_os\n"
      "state Up reward 1\n"
      "state Down reward 0\n"
      "rate Up Down La\n"
      "rate Down Up 60\n");
  const LintReport report = io::lint_model_file(file);
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

TEST(LintModelFile, LoadModelFailsFastOnErrors) {
  // Written through a temp file because load_model wants a path.
  const std::string path = ::testing::TempDir() + "/broken_lint.rasc";
  {
    std::ofstream out(path);
    out << "state Up reward 1\nstate Down reward 0\n"
           "rate Up Down La_missing\nrate Down Up 60\n";
  }
  EXPECT_THROW((void)io::load_model(path), LintError);
  EXPECT_NO_THROW((void)io::load_model(path, io::LintOnLoad::kOff));
}

TEST(LintModelFile, ParseErrorsReportLineAndColumn) {
  try {
    (void)io::parse_model_text("state Up reward 1\nbogus directive\n");
    FAIL() << "expected ModelFileError";
  } catch (const io::ModelFileError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 1u);
    EXPECT_EQ(e.message(), "unknown directive 'bogus'");
  }
}

// ------------------------------------------------------------- paper models

TEST(LintPaperModels, AllSevenPaperModelsLintClean) {
  const expr::ParameterSet params = models::default_parameters();
  const std::vector<std::pair<std::string, ctmc::Ctmc>> chains = {
      {"single_instance", models::single_instance_model().bind(params)},
      {"app_server_2inst",
       models::app_server_two_instance_model().bind(params)},
      {"app_server_4inst",
       models::app_server_n_instance_model(4).bind(params)},
      {"hadb_pair", models::hadb_pair_model().bind(params)},
      {"hadb_pair_explicit", models::hadb_pair_explicit_model(params)},
      {"web_tier",
       models::web_tier_model(2).bind(models::default_web_parameters())},
      {"upgrade",
       models::dual_cluster_upgrade_model().bind(
           models::upgrade_parameters_for(params, 2, 2, 12.0, 2.0,
                                          30.0 / 3600.0))},
  };
  for (const auto& [name, chain] : chains) {
    const LintReport report = lint_ctmc(chain);
    EXPECT_TRUE(report.empty())
        << name << ":\n" << report::render_diagnostics_text(report);
  }
}

TEST(LintPaperModels, SparesModelLintsClean) {
  expr::ParameterSet params = models::default_parameters();
  params.set(models::kTreplenishParam, 24.0);
  const LintReport report =
      lint_ctmc(models::hadb_pair_with_spares_model(2, params));
  EXPECT_TRUE(report.empty()) << report::render_diagnostics_text(report);
}

TEST(LintPaperModels, SymbolicPaperModelsLintCleanViaLintModel) {
  const expr::ParameterSet params = models::default_parameters();
  for (const auto& model :
       {models::hadb_pair_model(), models::single_instance_model(),
        models::app_server_two_instance_model()}) {
    const LintReport report = lint_model(model, params);
    EXPECT_TRUE(report.empty())
        << report::render_diagnostics_text(report);
  }
}

// --------------------------------------------------------------- rendering

TEST(Rendering, TextFormatShowsLocationCodeAndHint) {
  LintReport report;
  Diagnostic d;
  d.code = codes::kNegativeRateExpr;
  d.severity = Severity::kError;
  d.message = "rate is negative";
  d.location.file = "m.rasc";
  d.location.line = 12;
  d.location.column = 8;
  d.location.from = "Ok";
  d.location.to = "Down";
  d.fix_hint = "flip the sign";
  report.add(d);
  const std::string text = report::render_diagnostics_text(report);
  EXPECT_NE(text.find("m.rasc:12:8"), std::string::npos) << text;
  EXPECT_NE(text.find("error [R025] rate is negative"), std::string::npos);
  EXPECT_NE(text.find("hint: flip the sign"), std::string::npos);
  EXPECT_NE(text.find("1 error, 0 warnings, 0 notes"), std::string::npos);
}

TEST(Rendering, JsonFormatIsDeterministicAndEscaped) {
  LintReport report;
  Diagnostic d;
  d.code = codes::kBadStateName;
  d.severity = Severity::kWarning;
  d.message = "name has a \"quote\" and a\nnewline";
  d.location.state = "s0";
  report.add(d);
  const std::string json = report::render_diagnostics_json(report);
  EXPECT_NE(json.find("\"code\": \"R009\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // single line + newline
}

TEST(Rendering, EmptyReportRendersZeroTallies) {
  const LintReport report;
  EXPECT_EQ(report::render_diagnostics_text(report),
            "0 errors, 0 warnings, 0 notes\n");
  EXPECT_NE(report::render_diagnostics_json(report).find("\"errors\": 0"),
            std::string::npos);
}

}  // namespace
}  // namespace rascal::lint

#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rascal::stats {
namespace {

TEST(Rng, DeterministicFromSeed) {
  RandomEngine a(123);
  RandomEngine b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  RandomEngine a(1);
  RandomEngine b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01StaysInRange) {
  RandomEngine rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  RandomEngine rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ExponentialHasCorrectMean) {
  RandomEngine rng(11);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 5.0 / (rate * std::sqrt(double(n))));
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  RandomEngine rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, p, 0.01);
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
  RandomEngine rng(17);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStreams) {
  const RandomEngine root(42);
  RandomEngine s0 = root.split(0);
  RandomEngine s1 = root.split(1);
  // Streams must differ from each other...
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.uniform01() == s1.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 3);
  // ...and be reproducible.
  RandomEngine s0_again = root.split(0);
  RandomEngine s0_ref = root.split(0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(s0_again.uniform01(), s0_ref.uniform01());
  }
}

TEST(Rng, NormalHasUnitVariance) {
  RandomEngine rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal01();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

}  // namespace
}  // namespace rascal::stats

// Tier-1 guarantee of the parallel sampling engine: every thread
// count — including 1 — produces bit-identical metrics, intervals,
// and summaries, because each sample/trial/replication draws from its
// own RandomEngine::split(index) substream and aggregation happens in
// index order after the parallel region.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "analysis/sensitivity.h"
#include "analysis/uncertainty.h"
#include "faultinj/injector.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "obs/trace.h"
#include "sim/jsas_simulator.h"
#include "stats/rng.h"

namespace rascal {
namespace {

const analysis::ModelFunction kQuadratic =
    [](const expr::ParameterSet& p) {
      const double x = p.get("x");
      return p.get("a") * x * x + p.get("b");
    };

const expr::ParameterSet kBase{{"a", 2.0}, {"b", 1.0}, {"x", 3.0}};

TEST(ParallelDeterminism, UncertaintyAnalysisIsThreadCountInvariant) {
  const std::vector<stats::ParameterRange> ranges = {{"x", 0.0, 2.0},
                                                     {"b", -1.0, 1.0}};
  analysis::UncertaintyOptions options;
  options.samples = 600;
  options.seed = 99;
  options.threads = 1;
  const auto serial =
      analysis::uncertainty_analysis(kQuadratic, kBase, ranges, options);
  options.threads = 8;
  const auto parallel =
      analysis::uncertainty_analysis(kQuadratic, kBase, ranges, options);

  ASSERT_EQ(parallel.metrics.size(), serial.metrics.size());
  for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
    EXPECT_EQ(parallel.metrics[i], serial.metrics[i]) << i;
    EXPECT_EQ(parallel.samples[i].parameters, serial.samples[i].parameters)
        << i;
  }
  EXPECT_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.interval80.lower, serial.interval80.lower);
  EXPECT_EQ(parallel.interval80.upper, serial.interval80.upper);
  EXPECT_EQ(parallel.interval90.lower, serial.interval90.lower);
  EXPECT_EQ(parallel.interval90.upper, serial.interval90.upper);
  EXPECT_EQ(parallel.summary.variance(), serial.summary.variance());
}

TEST(ParallelDeterminism, JsasUncertaintyWorkloadMatchesToo) {
  // A slice of the real Figure 7 workload: full model solves, not a
  // toy closed form.
  const models::JsasConfig config = models::JsasConfig::config1();
  analysis::UncertaintyOptions options;
  options.samples = 48;
  options.threads = 1;
  const std::vector<stats::ParameterRange> ranges = {
      {"as_La_as", 10.0 / 8760.0, 50.0 / 8760.0},
      {"hadb_FIR", 0.0, 0.002}};
  const analysis::ModelFunction model =
      [&config](const expr::ParameterSet& params) {
        return models::solve_jsas(config, params).downtime_minutes_per_year;
      };
  const auto serial = analysis::uncertainty_analysis(
      model, models::default_parameters(), ranges, options);
  options.threads = 8;
  const auto parallel = analysis::uncertainty_analysis(
      model, models::default_parameters(), ranges, options);
  EXPECT_EQ(parallel.metrics, serial.metrics);
  EXPECT_EQ(parallel.mean, serial.mean);
}

TEST(ParallelDeterminism, CampaignIsThreadCountInvariant) {
  faultinj::CampaignOptions options;
  options.trials = 1000;
  options.seed = 1973;
  options.threads = 1;
  const auto serial = faultinj::run_campaign(options);
  options.threads = 8;
  const auto parallel = faultinj::run_campaign(options);

  EXPECT_EQ(parallel.trials, serial.trials);
  EXPECT_EQ(parallel.successes, serial.successes);
  ASSERT_EQ(parallel.records.size(), serial.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(parallel.records[i].fault, serial.records[i].fault) << i;
    EXPECT_EQ(parallel.records[i].target, serial.records[i].target) << i;
    EXPECT_EQ(parallel.records[i].workload, serial.records[i].workload)
        << i;
    EXPECT_EQ(parallel.records[i].mode, serial.records[i].mode) << i;
    EXPECT_EQ(parallel.records[i].recovery_time_hours,
              serial.records[i].recovery_time_hours)
        << i;
  }
  EXPECT_EQ(parallel.hadb_restart_times.mean(),
            serial.hadb_restart_times.mean());
  EXPECT_EQ(parallel.hadb_restart_times.variance(),
            serial.hadb_restart_times.variance());
  EXPECT_EQ(parallel.as_restart_times.mean(),
            serial.as_restart_times.mean());
  for (std::size_t level = 0; level < 3; ++level) {
    EXPECT_EQ(parallel.recovery_by_workload[level].mean(),
              serial.recovery_by_workload[level].mean());
  }
}

// Telemetry lives outside the RNG stream: running the exact same
// campaign inside an active TraceSession (spans, counters, progress
// all live) must not move a single bit of the numerical output.
TEST(ParallelDeterminism, TracingDoesNotPerturbCampaignResults) {
  faultinj::CampaignOptions options;
  options.trials = 500;
  options.seed = 1973;
  options.threads = 4;
  const auto plain = faultinj::run_campaign(options);

  faultinj::CampaignResult traced;
  obs::Snapshot snapshot;
  {
    obs::TraceSession session;
    traced = faultinj::run_campaign(options);
    snapshot = session.stop();
  }

  EXPECT_EQ(traced.successes, plain.successes);
  ASSERT_EQ(traced.records.size(), plain.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(traced.records[i].recovery_time_hours,
              plain.records[i].recovery_time_hours)
        << i;
    EXPECT_EQ(traced.records[i].workload, plain.records[i].workload) << i;
  }
  EXPECT_EQ(traced.hadb_restart_times.mean(), plain.hadb_restart_times.mean());

  // ... and the session actually observed the run.
  std::uint64_t trials_counted = 0;
  for (const obs::CounterValue& c : snapshot.counters) {
    if (c.name == "faultinj.trials") trials_counted = c.value;
  }
  EXPECT_EQ(trials_counted, options.trials);
  bool saw_trial_span = false;
  for (const obs::SpanStat& span : snapshot.spans) {
    if (span.path.find("faultinj.trial") != std::string::npos) {
      saw_trial_span = true;
    }
  }
  EXPECT_TRUE(saw_trial_span);
}

TEST(ParallelDeterminism, SimulatorReplicationsAreThreadCountInvariant) {
  sim::JsasSimOptions options;
  options.duration = 2.0 * 8760.0;
  options.replications = 8;
  options.seed = 33;
  options.threads = 1;
  const auto serial = sim::simulate_jsas(models::JsasConfig::config1(),
                                         models::default_parameters(),
                                         options);
  options.threads = 8;
  const auto parallel = sim::simulate_jsas(models::JsasConfig::config1(),
                                           models::default_parameters(),
                                           options);

  EXPECT_EQ(parallel.availability, serial.availability);
  EXPECT_EQ(parallel.availability_ci95.lower, serial.availability_ci95.lower);
  EXPECT_EQ(parallel.downtime_minutes_per_year,
            serial.downtime_minutes_per_year);
  EXPECT_EQ(parallel.downtime_as_minutes, serial.downtime_as_minutes);
  EXPECT_EQ(parallel.downtime_hadb_minutes, serial.downtime_hadb_minutes);
  EXPECT_EQ(parallel.system_failures, serial.system_failures);
  EXPECT_EQ(parallel.as_cluster_failures, serial.as_cluster_failures);
  EXPECT_EQ(parallel.hadb_pair_failures, serial.hadb_pair_failures);
  EXPECT_EQ(parallel.imperfect_recoveries, serial.imperfect_recoveries);
  EXPECT_EQ(parallel.as_instance_failures, serial.as_instance_failures);
  EXPECT_EQ(parallel.hadb_node_failures, serial.hadb_node_failures);
}

TEST(ParallelDeterminism, SweepAndSensitivityAreThreadCountInvariant) {
  const std::vector<double> values = {0.0, 0.5, 1.0, 1.5, 2.0};
  const auto serial =
      analysis::parametric_sweep(kQuadratic, kBase, "x", values, 1);
  const auto parallel =
      analysis::parametric_sweep(kQuadratic, kBase, "x", values, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].parameter_value, serial[i].parameter_value);
    EXPECT_EQ(parallel[i].metric, serial[i].metric);
  }

  const std::vector<stats::ParameterRange> ranges = {{"x", 0.0, 4.0},
                                                     {"b", 0.0, 1.0}};
  const auto bars1 = analysis::tornado_analysis(kQuadratic, kBase, ranges, 1);
  const auto bars4 = analysis::tornado_analysis(kQuadratic, kBase, ranges, 4);
  ASSERT_EQ(bars4.size(), bars1.size());
  for (std::size_t i = 0; i < bars1.size(); ++i) {
    EXPECT_EQ(bars4[i].parameter, bars1[i].parameter);
    EXPECT_EQ(bars4[i].metric_at_lo, bars1[i].metric_at_lo);
    EXPECT_EQ(bars4[i].metric_at_hi, bars1[i].metric_at_hi);
  }

  const auto sens1 = analysis::finite_difference_sensitivities(
      kQuadratic, kBase, {"x", "a", "b"}, 1e-4, 1);
  const auto sens4 = analysis::finite_difference_sensitivities(
      kQuadratic, kBase, {"x", "a", "b"}, 1e-4, 4);
  ASSERT_EQ(sens4.size(), sens1.size());
  for (std::size_t i = 0; i < sens1.size(); ++i) {
    EXPECT_EQ(sens4[i].parameter, sens1[i].parameter);
    EXPECT_EQ(sens4[i].derivative, sens1[i].derivative);
    EXPECT_EQ(sens4[i].elasticity, sens1[i].elasticity);
  }
}

TEST(ParallelDeterminism, SplitSubstreamsAreDecorrelatedOverCampaignRange) {
  // The campaign uses substreams 0..3286; the simulator uses 0..reps.
  // Check the first draw of every substream over the full campaign
  // range: uniform mean, no lag-1 correlation, no duplicated streams.
  const std::size_t n = 3287;
  const stats::RandomEngine root(1973);
  std::vector<double> first;
  first.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stats::RandomEngine sub = root.split(i);
    first.push_back(sub.uniform01());
  }

  double mean = 0.0;
  for (double v : first) mean += v;
  mean /= static_cast<double>(n);
  // Uniform(0,1) sd is ~0.289; 3 sigma over n=3287 is ~0.015.
  EXPECT_NEAR(mean, 0.5, 0.02);

  // Lag-1 Pearson correlation between adjacent substreams.
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dx = first[i] - mean;
    const double dy = first[i + 1] - mean;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  EXPECT_LT(std::abs(sxy / std::sqrt(sxx * syy)), 0.06);

  // SplitMix-derived seeds must not collide anywhere in the range.
  const std::set<double> distinct(first.begin(), first.end());
  EXPECT_EQ(distinct.size(), n);
}

}  // namespace
}  // namespace rascal

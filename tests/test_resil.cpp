// Unit tests for the resilience layer: cancellation tokens,
// checksummed atomic checkpoints (including every corruption mode —
// a damaged file must be detected and reported, never half-loaded),
// and the deterministic chaos hook.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "resil/chaos.h"
#include "resil/resil.h"

namespace rascal::resil {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "rascal_resil_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}

// --- CancellationToken ---------------------------------------------------

TEST(CancellationToken, StartsUncancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_EQ(token.signal_number(), 0);
  EXPECT_EQ(token.describe(), "not cancelled");
}

TEST(CancellationToken, RequestCancelLatches) {
  CancellationToken token;
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kRequested);
  EXPECT_EQ(token.describe(), "cancellation requested");
  // First cause wins: a later signal must not overwrite the reason.
  token.request_cancel_signal(SIGTERM);
  EXPECT_EQ(token.reason(), CancelReason::kRequested);
}

TEST(CancellationToken, SignalRequestRecordsSignalNumber) {
  CancellationToken token;
  token.request_cancel_signal(SIGTERM);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kSignal);
  EXPECT_EQ(token.signal_number(), SIGTERM);
  EXPECT_EQ(token.describe(), "signal SIGTERM");

  CancellationToken other;
  other.request_cancel_signal(SIGINT);
  EXPECT_EQ(other.describe(), "signal SIGINT");
}

TEST(CancellationToken, NonPositiveDeadlineFiresOnNextPoll) {
  CancellationToken token;
  token.set_deadline_after(0.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_EQ(token.describe(), "deadline exceeded");

  CancellationToken negative;
  negative.set_deadline_after(-5.0);
  EXPECT_TRUE(negative.cancelled());
  EXPECT_EQ(negative.reason(), CancelReason::kDeadline);
}

TEST(CancellationToken, FarDeadlineDoesNotFire) {
  CancellationToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancellationToken, ReasonToStringCoversAllValues) {
  EXPECT_EQ(to_string(CancelReason::kNone), "none");
  EXPECT_EQ(to_string(CancelReason::kRequested), "requested");
  EXPECT_EQ(to_string(CancelReason::kDeadline), "deadline");
  EXPECT_EQ(to_string(CancelReason::kSignal), "signal");
}

// --- DigestBuilder and bit round-tripping --------------------------------

TEST(DigestBuilder, IsOrderAndContentSensitive) {
  const auto digest = [](auto fill) {
    DigestBuilder b;
    fill(b);
    return b.value();
  };
  const std::uint64_t ab =
      digest([](DigestBuilder& b) { b.add_u64(1).add_u64(2); });
  const std::uint64_t ba =
      digest([](DigestBuilder& b) { b.add_u64(2).add_u64(1); });
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ab, digest([](DigestBuilder& b) { b.add_u64(1).add_u64(2); }));
  EXPECT_NE(digest([](DigestBuilder& b) { b.add_str("campaign"); }),
            digest([](DigestBuilder& b) { b.add_str("uncertainty"); }));
  EXPECT_NE(digest([](DigestBuilder& b) { b.add_f64(0.1); }),
            digest([](DigestBuilder& b) { b.add_f64(0.2); }));
}

TEST(CheckpointWords, DoubleRoundTripIsExact) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 5.25, -123.456e-78,
                           5e-324 /* denormal */};
  for (const double v : values) {
    EXPECT_EQ(bits_f64(f64_bits(v)), v);
  }
  // -0.0 and 0.0 compare equal but have different bit patterns; the
  // checkpoint must preserve the distinction.
  EXPECT_NE(f64_bits(0.0), f64_bits(-0.0));
}

// --- Checkpointer round trip ---------------------------------------------

CheckpointEntry ok_entry(std::uint64_t index,
                         std::vector<std::uint64_t> words) {
  CheckpointEntry e;
  e.index = index;
  e.status = EntryStatus::kOk;
  e.words = std::move(words);
  return e;
}

CheckpointEntry failed_entry(std::uint64_t index, std::string note) {
  CheckpointEntry e;
  e.index = index;
  e.status = EntryStatus::kFailed;
  e.note = std::move(note);
  return e;
}

TEST(Checkpointer, RoundTripsEntriesBitExactly) {
  const std::string path = temp_path("roundtrip.json");
  std::remove(path.c_str());
  {
    Checkpointer writer(path, "unit", 0xDEADBEEFULL, 10);
    writer.record(ok_entry(0, {f64_bits(1.0 / 3.0), 42}));
    writer.record(ok_entry(7, {f64_bits(-0.0)}));
    writer.record(failed_entry(
        3, "solver \"diverged\"\n\tat iteration 5 \x01"));
    writer.flush();
  }
  Checkpointer reader(path, "unit", 0xDEADBEEFULL, 10);
  EXPECT_EQ(reader.resume_from_disk(), 3u);
  const std::vector<CheckpointEntry> entries = reader.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].index, 0u);
  EXPECT_EQ(entries[0].status, EntryStatus::kOk);
  ASSERT_EQ(entries[0].words.size(), 2u);
  EXPECT_EQ(bits_f64(entries[0].words[0]), 1.0 / 3.0);
  EXPECT_EQ(entries[0].words[1], 42u);
  EXPECT_EQ(entries[1].index, 3u);
  EXPECT_EQ(entries[1].status, EntryStatus::kFailed);
  EXPECT_EQ(entries[1].note, "solver \"diverged\"\n\tat iteration 5 \x01");
  EXPECT_EQ(entries[2].index, 7u);
  EXPECT_EQ(f64_bits(bits_f64(entries[2].words[0])), f64_bits(-0.0));
  std::remove(path.c_str());
}

TEST(Checkpointer, FlushCadenceWritesWithoutExplicitFlush) {
  const std::string path = temp_path("cadence.json");
  std::remove(path.c_str());
  Checkpointer writer(path, "unit", 1, 100);
  writer.set_flush_every(2);
  writer.record(ok_entry(0, {1}));
  EXPECT_FALSE(checkpoint_file_exists(path));  // 1 < cadence
  writer.record(ok_entry(1, {2}));
  EXPECT_TRUE(checkpoint_file_exists(path));  // cadence hit
  const CheckpointFile file = load_checkpoint_file(path);
  EXPECT_EQ(file.kind, "unit");
  EXPECT_EQ(file.entries.size(), 2u);
  std::remove(path.c_str());
}

TEST(Checkpointer, AtomicWriteLeavesNoTempFile) {
  const std::string path = temp_path("atomic.json");
  std::remove(path.c_str());
  Checkpointer writer(path, "unit", 1, 4);
  writer.record(ok_entry(0, {}));
  writer.flush();
  EXPECT_TRUE(checkpoint_file_exists(path));
  EXPECT_FALSE(checkpoint_file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Checkpointer, WriteFailureAbortsByDefault) {
  const std::string path = temp_path("abort_policy.json");
  std::remove(path.c_str());
  chaos::configure("checkpoint-write-fail@0");
  Checkpointer writer(path, "unit", 1, 4);
  writer.record(ok_entry(0, {1}));
  EXPECT_THROW(writer.flush(), CheckpointError);
  chaos::configure("");
  std::remove(path.c_str());
}

TEST(Checkpointer, ToleratedWriteFailureRetainsEntriesForRetry) {
  const std::string path = temp_path("tolerate_policy.json");
  std::remove(path.c_str());
  Checkpointer writer(path, "unit", 1, 4);
  writer.set_write_failure_policy(
      Checkpointer::WriteFailurePolicy::kTolerate);
  writer.record(ok_entry(0, {f64_bits(0.25)}));
  writer.record(ok_entry(1, {f64_bits(0.75)}));

  chaos::configure("checkpoint-write-fail@0");
  writer.flush();  // simulated ENOSPC: counted, not thrown
  chaos::configure("");
  EXPECT_EQ(writer.write_failures(), 1u);
  EXPECT_FALSE(checkpoint_file_exists(path));

  // The entries survived in memory: the next flush lands everything.
  writer.flush();
  EXPECT_EQ(writer.write_failures(), 1u);
  ASSERT_TRUE(checkpoint_file_exists(path));
  const CheckpointFile file = load_checkpoint_file(path);
  EXPECT_EQ(file.entries.size(), 2u);
  std::remove(path.c_str());
}

TEST(Checkpointer, MissingFileResumesEmpty) {
  const std::string path = temp_path("missing.json");
  std::remove(path.c_str());
  Checkpointer reader(path, "unit", 1, 4);
  EXPECT_EQ(reader.resume_from_disk(), 0u);
  EXPECT_EQ(reader.size(), 0u);
}

// --- Corruption: detected, reported, never half-loaded -------------------

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("corrupt.json");
    std::remove(path_.c_str());
    Checkpointer writer(path_, "unit", 77, 8);
    for (std::uint64_t i = 0; i < 5; ++i) {
      writer.record(ok_entry(i, {f64_bits(static_cast<double>(i) * 0.1)}));
    }
    writer.flush();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A reader over a damaged file must throw and keep zero entries.
  void expect_rejected() {
    Checkpointer reader(path_, "unit", 77, 8);
    EXPECT_THROW(reader.resume_from_disk(), CheckpointError);
    EXPECT_EQ(reader.size(), 0u) << "corrupt file must never half-load";
  }

  std::string path_;
};

TEST_F(CheckpointCorruption, TruncatedFileIsRejected) {
  const std::string body = slurp(path_);
  ASSERT_GT(body.size(), 20u);
  spit(path_, body.substr(0, body.size() / 2));
  expect_rejected();
}

TEST_F(CheckpointCorruption, FlippedByteIsRejected) {
  std::string body = slurp(path_);
  // Flip a digit inside an entry payload (not the checksum field
  // itself, so this exercises checksum verification).
  const std::size_t pos = body.find("\"w\":[");
  ASSERT_NE(pos, std::string::npos);
  body[pos + 5] = (body[pos + 5] == '1') ? '2' : '1';
  spit(path_, body);
  expect_rejected();
}

TEST_F(CheckpointCorruption, TrailingGarbageIsRejected) {
  spit(path_, slurp(path_) + "garbage");
  expect_rejected();
}

TEST_F(CheckpointCorruption, NonJsonFileIsRejected) {
  spit(path_, "this is not a checkpoint\n");
  expect_rejected();
}

TEST_F(CheckpointCorruption, EmptyFileIsRejected) {
  spit(path_, "");
  expect_rejected();
}

TEST_F(CheckpointCorruption, KindMismatchIsRejected) {
  Checkpointer reader(path_, "other-kind", 77, 8);
  EXPECT_THROW(reader.resume_from_disk(), CheckpointError);
  EXPECT_EQ(reader.size(), 0u);
}

TEST_F(CheckpointCorruption, DigestMismatchIsRejected) {
  Checkpointer reader(path_, "unit", 78, 8);
  EXPECT_THROW(reader.resume_from_disk(), CheckpointError);
  EXPECT_EQ(reader.size(), 0u);
}

TEST_F(CheckpointCorruption, TotalMismatchIsRejected) {
  Checkpointer reader(path_, "unit", 77, 9);
  EXPECT_THROW(reader.resume_from_disk(), CheckpointError);
  EXPECT_EQ(reader.size(), 0u);
}

TEST_F(CheckpointCorruption, ErrorMessageNamesTheFile) {
  spit(path_, slurp(path_).substr(0, 30));
  try {
    (void)load_checkpoint_file(path_);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find(path_), std::string::npos)
        << "diagnostic should name the file: " << e.what();
  }
}

// --- Chaos hook ----------------------------------------------------------

class ChaosGuard {
 public:
  ~ChaosGuard() { chaos::configure(""); }
};

TEST(Chaos, DisabledByDefaultAndAfterEmptySpec) {
  ChaosGuard guard;
  chaos::configure("");
  EXPECT_FALSE(chaos::enabled());
  EXPECT_FALSE(chaos::fires_at("worker-throw", 0));
  chaos::worker_hook(0);  // no-op, must not throw
}

TEST(Chaos, IndexKeyedSitesFireOnlyAtTheirIndex) {
  ChaosGuard guard;
  chaos::configure("worker-throw@3,sigterm@9");
  EXPECT_TRUE(chaos::enabled());
  EXPECT_TRUE(chaos::fires_at("worker-throw", 3));
  EXPECT_FALSE(chaos::fires_at("worker-throw", 4));
  EXPECT_TRUE(chaos::fires_at("sigterm", 9));
  EXPECT_FALSE(chaos::fires_at("sigterm", 3));
}

TEST(Chaos, WorkerHookThrowsChaosErrorAtArmedIndex) {
  ChaosGuard guard;
  chaos::configure("worker-throw@5");
  chaos::worker_hook(4);  // not armed
  try {
    chaos::worker_hook(5);
    FAIL() << "expected ChaosError";
  } catch (const chaos::ChaosError& e) {
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
  }
}

TEST(Chaos, TickIsOccurrenceKeyedAndResetByConfigure) {
  ChaosGuard guard;
  chaos::configure("solver-nonconverge@2");
  EXPECT_FALSE(chaos::tick("solver-nonconverge"));  // occurrence 0
  EXPECT_FALSE(chaos::tick("solver-nonconverge"));  // occurrence 1
  EXPECT_TRUE(chaos::tick("solver-nonconverge"));   // occurrence 2
  EXPECT_FALSE(chaos::tick("solver-nonconverge"));  // occurrence 3
  chaos::configure("solver-nonconverge@0");         // counters reset
  EXPECT_TRUE(chaos::tick("solver-nonconverge"));
}

TEST(Chaos, MalformedTokensAreIgnored) {
  ChaosGuard guard;
  chaos::configure("nonsense,worker-throw@notanumber,@4,,sigterm@2");
  EXPECT_TRUE(chaos::enabled());  // the one valid token armed it
  EXPECT_TRUE(chaos::fires_at("sigterm", 2));
  EXPECT_FALSE(chaos::fires_at("worker-throw", 4));
}

}  // namespace
}  // namespace rascal::resil

#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_plot.h"
#include "report/csv.h"
#include "report/table.h"

namespace rascal::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Config", "Availability"});
  t.add_row({"Config 1", "99.99933%"});
  t.add_row({"2", "99.99956%"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| Config 1 |"), std::string::npos);
  EXPECT_NE(out.find("| Availability |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, Validation) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.9999933, 5), "99.99933%");
  EXPECT_EQ(format_percent(0.999629, 4), "99.9629%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, FixedAndGeneral) {
  EXPECT_EQ(format_fixed(3.4567, 2), "3.46");
  EXPECT_EQ(format_fixed(195.0, 0), "195");
  EXPECT_EQ(format_general(229326.4, 6), "229326");
  EXPECT_EQ(format_general(0.00012345, 3), "0.000123");
}

TEST(AsciiPlot, LinePlotContainsMarksAndLabels) {
  PlotOptions options;
  options.title = "Sensitivity";
  options.x_label = "hours";
  const std::string plot =
      line_plot({0.5, 1.0, 1.5, 2.0}, {4.0, 3.0, 2.0, 1.0}, options);
  EXPECT_NE(plot.find("Sensitivity"), std::string::npos);
  EXPECT_NE(plot.find("hours"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, ScatterUsesDots) {
  const std::string plot = scatter_plot({1.0, 2.0, 3.0}, {1.0, 4.0, 2.0});
  EXPECT_NE(plot.find('.'), std::string::npos);
}

TEST(AsciiPlot, DegenerateSeriesStillRenders) {
  // Constant y must not divide by zero.
  const std::string plot = line_plot({1.0, 2.0}, {5.0, 5.0});
  EXPECT_FALSE(plot.empty());
  // Single point.
  const std::string dot = scatter_plot({1.0}, {2.0});
  EXPECT_FALSE(dot.empty());
}

TEST(AsciiPlot, Validation) {
  EXPECT_THROW((void)line_plot({}, {}), std::invalid_argument);
  EXPECT_THROW((void)line_plot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  write_csv(os, {"x", "y"}, {{"1", "2"}, {"3", "4,5"}});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,\"4,5\"\n");
}

TEST(Csv, RejectsArityMismatch) {
  std::ostringstream os;
  EXPECT_THROW(write_csv(os, {"x", "y"}, {{"1"}}), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::report

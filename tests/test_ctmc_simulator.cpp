#include "sim/ctmc_simulator.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"

namespace rascal::sim {
namespace {

ctmc::Ctmc two_state(double lambda, double mu) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

TEST(CtmcSimulator, TwoStateAvailabilityConverges) {
  const double lambda = 0.02;
  const double mu = 1.0;
  const ctmc::Ctmc chain = two_state(lambda, mu);
  CtmcSimOptions options;
  options.duration = 50000.0;
  options.replications = 8;
  const CtmcSimResult result = simulate_ctmc(chain, options);
  const double exact = mu / (lambda + mu);
  EXPECT_NEAR(result.availability, exact, 0.002);
  // The analytic value must fall in (or very near) the 95% CI.
  EXPECT_LT(result.availability_ci95.lower, exact + 0.002);
  EXPECT_GT(result.availability_ci95.upper, exact - 0.002);
}

TEST(CtmcSimulator, MtbfMatchesFailureFrequency) {
  const ctmc::Ctmc chain = two_state(0.05, 2.0);
  CtmcSimOptions options;
  options.duration = 40000.0;
  options.replications = 5;
  const CtmcSimResult result = simulate_ctmc(chain, options);
  const auto metrics = core::solve_availability(chain);
  EXPECT_NEAR(result.mtbf_hours, metrics.mtbf_hours,
              0.05 * metrics.mtbf_hours);
  EXPECT_GT(result.total_failures, 100u);
}

TEST(CtmcSimulator, MultiStateChainMatchesSolver) {
  ctmc::CtmcBuilder b;
  b.state("Ok", 1.0);
  b.state("Degraded", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 0.1).rate(1, 0, 1.0).rate(1, 2, 0.05).rate(2, 0, 0.5);
  const ctmc::Ctmc chain = b.build();
  CtmcSimOptions options;
  options.duration = 30000.0;
  options.replications = 6;
  const CtmcSimResult result = simulate_ctmc(chain, options);
  const auto metrics = core::solve_availability(chain);
  EXPECT_NEAR(result.availability, metrics.availability, 0.003);
}

TEST(CtmcSimulator, DeterministicGivenSeed) {
  const ctmc::Ctmc chain = two_state(0.5, 1.0);
  CtmcSimOptions options;
  options.duration = 100.0;
  options.replications = 2;
  options.seed = 9;
  const auto a = simulate_ctmc(chain, options);
  const auto b2 = simulate_ctmc(chain, options);
  EXPECT_DOUBLE_EQ(a.availability, b2.availability);
  EXPECT_EQ(a.total_transitions, b2.total_transitions);
}

TEST(CtmcSimulator, AbsorbingStateStops) {
  // Up -> Dead with no return: availability over [0, T] is the time
  // to absorption divided by T.
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Dead", 0.0);
  b.rate(0, 1, 10.0);
  CtmcSimOptions options;
  options.duration = 1000.0;
  options.replications = 20;
  const auto result = simulate_ctmc(b.build(), options);
  // E[T_absorb] = 0.1 h; availability ~ 1e-4.
  EXPECT_NEAR(result.availability, 1e-4, 5e-5);
  EXPECT_EQ(result.total_failures,
            static_cast<std::uint64_t>(options.replications));
}

TEST(CtmcSimulator, Validation) {
  const ctmc::Ctmc chain = two_state(1.0, 1.0);
  CtmcSimOptions bad;
  bad.replications = 0;
  EXPECT_THROW((void)simulate_ctmc(chain, bad), std::invalid_argument);
  CtmcSimOptions bad2;
  bad2.initial_state = 5;
  EXPECT_THROW((void)simulate_ctmc(chain, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::sim

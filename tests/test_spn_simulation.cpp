#include "spn/simulation.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "models/params.h"
#include "models/spn_variants.h"
#include "spn/reachability.h"

namespace rascal::spn {
namespace {

// M/M/1/K queue: simulated utilization must match the generated-CTMC
// solution.
PetriNet mm1k(double arrival, double service, std::uint32_t k) {
  PetriNet net;
  const PlaceId queue = net.add_place("Queue", 0);
  const PlaceId slots = net.add_place("Slots", k);
  const TransitionId arrive = net.add_timed_transition("arrive", arrival);
  net.input_arc(arrive, slots).output_arc(arrive, queue);
  const TransitionId serve = net.add_timed_transition("serve", service);
  net.input_arc(serve, queue).output_arc(serve, slots);
  return net;
}

TEST(SpnSimulation, Mm1kUtilizationMatchesAnalytic) {
  const PetriNet net = mm1k(0.7, 1.0, 4);
  const PlaceId queue = 0;
  const RewardFunction busy = [queue](const Marking& m) {
    return m[queue] > 0 ? 1.0 : 0.0;
  };
  const auto generated = generate_ctmc(net, busy);
  const double analytic =
      core::solve_availability(generated.chain).expected_reward_rate;

  SpnSimOptions options;
  options.duration = 20000.0;
  options.replications = 6;
  const auto simulated = simulate_spn(net, busy, options);
  EXPECT_NEAR(simulated.mean_reward, analytic, 0.01);
  EXPECT_GT(simulated.timed_firings, 10000u);
  EXPECT_EQ(simulated.immediate_firings, 0u);
}

TEST(SpnSimulation, ImmediateTransitionsFireInstantly) {
  // Timed A->B, immediate B->C, timed C->A: reward only in C.  The
  // token never rests in B, so P(B) = 0 and the immediates fire once
  // per cycle.
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const PlaceId c = net.add_place("C");
  const TransitionId go = net.add_timed_transition("go", 2.0);
  net.input_arc(go, a).output_arc(go, b);
  const TransitionId flush = net.add_immediate_transition("flush");
  net.input_arc(flush, b).output_arc(flush, c);
  const TransitionId back = net.add_timed_transition("back", 2.0);
  net.input_arc(back, c).output_arc(back, a);

  SpnSimOptions options;
  options.duration = 5000.0;
  options.replications = 4;
  const auto result = simulate_spn(
      net, [c](const Marking& m) { return m[c] > 0 ? 1.0 : 0.0; },
      options);
  EXPECT_NEAR(result.mean_reward, 0.5, 0.02);
  EXPECT_GT(result.immediate_firings, 0u);
}

TEST(SpnSimulation, HadbPairSpnMatchesGeneratedChain) {
  const auto params = models::default_parameters();
  // Stress the rates so the simulation converges quickly.
  auto stressed = params;
  stressed.set("hadb_La_hadb", 200.0 / 8760.0)
      .set("hadb_La_os", 100.0 / 8760.0)
      .set("hadb_La_hw", 100.0 / 8760.0);
  const PetriNet net = models::hadb_pair_spn(stressed);
  const auto reward = models::hadb_pair_spn_reward();
  const auto generated = generate_ctmc(net, reward);
  const double analytic =
      core::solve_availability(generated.chain).availability;

  SpnSimOptions options;
  options.duration = 50000.0;
  options.replications = 6;
  const auto simulated = simulate_spn(net, reward, options);
  EXPECT_NEAR(simulated.mean_reward, analytic, 5e-4);
}

TEST(SpnSimulation, DeadMarkingHoldsRewardForever) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId done = net.add_place("Done");
  const TransitionId finish = net.add_timed_transition("finish", 10.0);
  net.input_arc(finish, a).output_arc(finish, done);
  SpnSimOptions options;
  options.duration = 100.0;
  options.replications = 4;
  const auto result = simulate_spn(
      net, [done](const Marking& m) { return m[done] > 0 ? 1.0 : 0.0; },
      options);
  // Nearly the whole horizon is spent in the dead Done marking.
  EXPECT_GT(result.mean_reward, 0.99);
}

TEST(SpnSimulation, DetectsVanishingLoops) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const TransitionId i1 = net.add_immediate_transition("i1");
  net.input_arc(i1, a).output_arc(i1, b);
  const TransitionId i2 = net.add_immediate_transition("i2");
  net.input_arc(i2, b).output_arc(i2, a);
  SpnSimOptions options;
  options.replications = 1;
  EXPECT_THROW((void)simulate_spn(
                   net, [](const Marking&) { return 1.0; }, options),
               std::runtime_error);
}

TEST(SpnSimulation, Validation) {
  const PetriNet net = mm1k(1.0, 1.0, 2);
  SpnSimOptions options;
  options.replications = 0;
  EXPECT_THROW((void)simulate_spn(
                   net, [](const Marking&) { return 1.0; }, options),
               std::invalid_argument);
  options.replications = 1;
  EXPECT_THROW((void)simulate_spn(net, RewardFunction{}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::spn

#include "ctmc/erlang.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "models/hadb_pair.h"
#include "models/params.h"

namespace rascal::ctmc {
namespace {

// Up --lambda--> Recovering --mu--> Up, with a competing second
// failure Recovering --nu--> Down --rho--> Up.
Ctmc recovery_chain(double lambda, double mu, double nu, double rho) {
  CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Recovering", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu).rate(1, 2, nu).rate(2, 0, rho);
  return b.build();
}

TEST(Erlang, StageOneIsIdentity) {
  const Ctmc chain = recovery_chain(0.1, 2.0, 0.3, 1.0);
  const Ctmc same = erlangize(chain, 1, 0, 1);
  EXPECT_EQ(same.num_states(), chain.num_states());
  EXPECT_DOUBLE_EQ(same.rate(1, 0), 2.0);
}

TEST(Erlang, ExpandsStatesAndPreservesMeanSojourn) {
  const Ctmc chain = recovery_chain(0.1, 2.0, 0.0 + 0.3, 1.0);
  const Ctmc expanded = erlangize(chain, 1, 0, 4);
  EXPECT_EQ(expanded.num_states(), 3u + 3u);  // 3 extra stages
  // Stage rate is 4*mu along the chain; competing exit on each stage.
  EXPECT_DOUBLE_EQ(expanded.rate(1, expanded.state("Recovering#2")), 8.0);
  EXPECT_DOUBLE_EQ(expanded.rate(expanded.state("Recovering#4"), 0), 8.0);
  EXPECT_DOUBLE_EQ(expanded.rate(expanded.state("Recovering#3"), 2), 0.3);
  EXPECT_TRUE(expanded.is_irreducible());
}

TEST(Erlang, MeanRecoveryTimeUnchangedWithoutCompetition) {
  // With no competing exit, availability depends only on the mean
  // sojourn, so any k gives the same steady state.
  const Ctmc base = recovery_chain(0.1, 2.0, 1e-300, 1.0);
  // (nu ~ 0 to keep the chain irreducible but negligible.)
  const double a1 = core::solve_availability(base).availability;
  for (std::size_t k : {2, 5, 16}) {
    const Ctmc expanded = erlangize(base, 1, 0, k);
    EXPECT_NEAR(core::solve_availability(expanded).availability, a1,
                1e-9)
        << "k=" << k;
  }
}

TEST(Erlang, ConvergesToDeterministicRaceProbability) {
  // Race between recovery (mean T) and a competing failure Exp(nu).
  // Exponential recovery: P(failure first) = nu/(nu + 1/T).
  // Deterministic recovery: P = 1 - exp(-nu T).
  // Erlang-k interpolates: P_k = 1 - (k/T / (k/T + nu))^k.
  const double T = 0.5;
  const double nu = 1.2;
  const double lambda = 0.01;
  const double rho = 4.0;
  const double deterministic = 1.0 - std::exp(-nu * T);

  double previous_error = 1.0;
  for (std::size_t k : {1, 2, 4, 8, 16, 32}) {
    const Ctmc chain = recovery_chain(lambda, 1.0 / T, nu, rho);
    const Ctmc expanded = erlangize(chain, 1, 0, k);
    // P(failure during recovery) from the embedded chain: frequency
    // into Down divided by frequency into Recovering.
    const auto steady = solve_steady_state(expanded);
    double freq_down = 0.0;
    double freq_recovering = 0.0;
    for (const Transition& t : expanded.transitions()) {
      if (expanded.state_name(t.to) == "Down") {
        freq_down += steady.probability(t.from) * t.rate;
      }
      if (t.to == 1 && t.from == 0) {
        freq_recovering += steady.probability(t.from) * t.rate;
      }
    }
    const double p_failure_first = freq_down / freq_recovering;
    const double dk = static_cast<double>(k);
    const double expected_k =
        1.0 - std::pow((dk / T) / (dk / T + nu), dk);
    EXPECT_NEAR(p_failure_first, expected_k, 1e-10) << "k=" << k;
    const double error = std::abs(p_failure_first - deterministic);
    EXPECT_LE(error, previous_error + 1e-12) << "k=" << k;
    previous_error = error;
  }
  // By k = 32 the deterministic limit is approached within ~1%.
  EXPECT_LT(previous_error, 0.01 * deterministic);
}

TEST(Erlang, HadbPairWithErlangRecoveriesStaysCloseToExponential) {
  // The paper's exponential-recovery assumption: re-solve Figure 3
  // with Erlang-8 recovery completions.  Downtime shifts only
  // mildly — supporting the paper's modeling choice.
  const auto params = models::default_parameters();
  const Ctmc base = models::hadb_pair_model().bind(params);
  const auto ok = base.state("Ok");
  const Ctmc erlang = erlangize_all(
      base,
      {{base.state("RestartShort"), ok},
       {base.state("RestartLong"), ok},
       {base.state("Repair"), ok},
       {base.state("Maintenance"), ok}},
      8);
  const double u_exp = core::solve_availability(base).unavailability;
  const double u_erl = core::solve_availability(erlang).unavailability;
  EXPECT_NEAR(u_erl, u_exp, 0.10 * u_exp);
  EXPECT_NE(u_erl, u_exp);
}

TEST(Erlang, Validation) {
  const Ctmc chain = recovery_chain(0.1, 2.0, 0.3, 1.0);
  EXPECT_THROW((void)erlangize(chain, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)erlangize(chain, 9, 0, 2), std::invalid_argument);
  // No completion edge Up -> Down.
  EXPECT_THROW((void)erlangize(chain, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(
      (void)erlangize_all(chain, {{1, 0}, {1, 0}}, 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace rascal::ctmc

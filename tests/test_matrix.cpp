#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace rascal::linalg {
namespace {

TEST(Matrix, ConstructsWithFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListLaysOutRowMajor) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MultiplyVector) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyVectorDimensionMismatchThrows) {
  const Matrix m(2, 3);
  EXPECT_THROW((void)m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, LeftMultiplyIsRowVectorTimesMatrix) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.left_multiply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // 1*2 + 2*4
}

TEST(Matrix, MatrixProductMatchesHandComputation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, ProductWithIdentityIsIdentityOperation) {
  const Matrix a{{2.0, -1.0}, {0.5, 3.0}};
  EXPECT_EQ(a.multiply(Matrix::identity(2)), a);
  EXPECT_EQ(Matrix::identity(2).multiply(a), a);
}

TEST(Matrix, MaxAbs) {
  const Matrix m{{1.0, -5.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
}

TEST(Matrix, StreamsReadably) {
  const Matrix m{{1.0, 2.0}};
  std::ostringstream os;
  os << m;
  EXPECT_EQ(os.str(), "[1, 2]");
}

TEST(VectorOps, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(VectorOps, DotAndSubtract) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  const Vector d = subtract({3.0, 4.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)subtract({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, NormalizeToSumOne) {
  Vector v{1.0, 3.0};
  normalize_to_sum_one(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOps, NormalizeRejectsZeroSum) {
  Vector v{0.0, 0.0};
  EXPECT_THROW(normalize_to_sum_one(v), std::domain_error);
}

}  // namespace
}  // namespace rascal::linalg

#include "sim/jsas_simulator.h"

#include <gtest/gtest.h>

#include "models/params.h"

namespace rascal::sim {
namespace {

using models::JsasConfig;

expr::ParameterSet params() { return models::default_parameters(); }

TEST(JsasSimulator, DeterministicGivenSeed) {
  JsasSimOptions options;
  options.duration = 5.0 * 8760.0;
  options.replications = 2;
  options.seed = 33;
  const auto a = simulate_jsas(JsasConfig::config1(), params(), options);
  const auto b = simulate_jsas(JsasConfig::config1(), params(), options);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.system_failures, b.system_failures);
  EXPECT_EQ(a.as_instance_failures, b.as_instance_failures);
}

TEST(JsasSimulator, ComponentFailureCountsMatchRates) {
  // Component-level sanity: with 2 AS instances at 52/yr each and
  // 4 HADB nodes at 4/yr each, a 50-year run sees roughly 5200 AS
  // instance failures and 800 node failures.
  JsasSimOptions options;
  options.duration = 50.0 * 8760.0;
  options.replications = 1;
  options.seed = 5;
  const auto r = simulate_jsas(JsasConfig::config1(), params(), options);
  EXPECT_NEAR(static_cast<double>(r.as_instance_failures), 5200.0, 300.0);
  EXPECT_NEAR(static_cast<double>(r.hadb_node_failures), 800.0, 120.0);
}

TEST(JsasSimulator, AvailabilityNearAnalyticValue) {
  // Config 1 analytic result: ~3.5 min/yr downtime.  The DES with
  // exponential recoveries follows the same stochastic model, so a
  // long run must land close (downtime is rare, so tolerance is wide
  // but still meaningful: within 2x either way).
  JsasSimOptions options;
  options.duration = 400.0 * 8760.0;
  options.replications = 6;
  options.seed = 11;
  options.exponential_recoveries = true;
  const auto r = simulate_jsas(JsasConfig::config1(), params(), options);
  EXPECT_GT(r.downtime_minutes_per_year, 3.5 / 2.0);
  EXPECT_LT(r.downtime_minutes_per_year, 3.5 * 2.0);
  EXPECT_GT(r.system_failures, 50u);
}

TEST(JsasSimulator, HigherFailureRatesReduceAvailability) {
  expr::ParameterSet stressed = params();
  stressed.set("as_La_as", 500.0 / 8760.0)
      .set("hadb_La_hadb", 20.0 / 8760.0);
  JsasSimOptions options;
  options.duration = 30.0 * 8760.0;
  options.replications = 3;
  const auto base = simulate_jsas(JsasConfig::config1(), params(), options);
  const auto worse =
      simulate_jsas(JsasConfig::config1(), stressed, options);
  EXPECT_LT(worse.availability, base.availability);
  EXPECT_GT(worse.as_instance_failures, base.as_instance_failures);
}

TEST(JsasSimulator, DowntimeAttributionCoversTotal) {
  JsasSimOptions options;
  options.duration = 200.0 * 8760.0;
  options.replications = 4;
  options.seed = 21;
  const auto r = simulate_jsas(JsasConfig::config1(), params(), options);
  // AS and HADB attributions together cover the union (overlap makes
  // the sum >= total).
  EXPECT_GE(r.downtime_as_minutes + r.downtime_hadb_minutes,
            r.downtime_minutes_per_year * 0.999);
  EXPECT_GT(r.system_failures, 0u);
  EXPECT_EQ(r.system_failures,
            r.as_cluster_failures + r.hadb_pair_failures);
}

TEST(JsasSimulator, ImperfectRecoveryForcesPairFailures) {
  expr::ParameterSet p = params();
  p.set("hadb_FIR", 0.5);  // half of all recoveries fail outright
  JsasSimOptions options;
  options.duration = 20.0 * 8760.0;
  options.replications = 2;
  const auto r = simulate_jsas(JsasConfig::config1(), p, options);
  EXPECT_GT(r.imperfect_recoveries, 0u);
  EXPECT_GE(r.hadb_pair_failures, r.imperfect_recoveries);
}

TEST(JsasSimulator, ZeroFirNeverTriggersImperfectRecovery) {
  expr::ParameterSet p = params();
  p.set("hadb_FIR", 0.0);
  JsasSimOptions options;
  options.duration = 50.0 * 8760.0;
  options.replications = 2;
  const auto r = simulate_jsas(JsasConfig::config1(), p, options);
  EXPECT_EQ(r.imperfect_recoveries, 0u);
}

TEST(JsasSimulator, MoreInstancesEliminateAsClusterFailures) {
  JsasSimOptions options;
  options.duration = 100.0 * 8760.0;
  options.replications = 2;
  options.seed = 3;
  const auto small = simulate_jsas(JsasConfig::config1(), params(), options);
  const auto large = simulate_jsas(JsasConfig{6, 2, 2}, params(), options);
  EXPECT_LE(large.as_cluster_failures, small.as_cluster_failures);
}

TEST(JsasSimulator, Validation) {
  JsasSimOptions options;
  EXPECT_THROW((void)simulate_jsas(JsasConfig{1, 2, 2}, params(), options),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_jsas(JsasConfig{2, 0, 2}, params(), options),
               std::invalid_argument);
  options.replications = 0;
  EXPECT_THROW(
      (void)simulate_jsas(JsasConfig::config1(), params(), options),
      std::invalid_argument);
}

}  // namespace
}  // namespace rascal::sim

#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

namespace rascal::stats {
namespace {

// --- generic property checks over the whole continuous family ---------

struct DistCase {
  std::shared_ptr<Distribution> dist;
  std::vector<double> probe_points;
};

class ContinuousDistribution : public ::testing::TestWithParam<DistCase> {};

TEST_P(ContinuousDistribution, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9) << d.name() << " p=" << p;
  }
}

TEST_P(ContinuousDistribution, CdfIsMonotone) {
  const auto& d = *GetParam().dist;
  const auto& xs = GetParam().probe_points;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    EXPECT_LE(d.cdf(xs[i]), d.cdf(xs[i + 1]) + 1e-15) << d.name();
  }
}

TEST_P(ContinuousDistribution, PdfIntegratesToCdfDifference) {
  const auto& d = *GetParam().dist;
  // Trapezoidal integration of the pdf between the 10% and 90%
  // quantiles must recover the CDF difference.
  const double lo = d.quantile(0.1);
  const double hi = d.quantile(0.9);
  const std::size_t steps = 20000;
  const double h = (hi - lo) / static_cast<double>(steps);
  double integral = 0.5 * (d.pdf(lo) + d.pdf(hi));
  for (std::size_t i = 1; i < steps; ++i) {
    integral += d.pdf(lo + static_cast<double>(i) * h);
  }
  integral *= h;
  EXPECT_NEAR(integral, 0.8, 2e-4) << d.name();
}

TEST_P(ContinuousDistribution, SampleMeanConvergesToMean) {
  const auto& d = *GetParam().dist;
  RandomEngine rng(99);
  const std::size_t n = 200000;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += d.sample(rng);
  const double sample_mean = sum / static_cast<double>(n);
  const double tolerance =
      5.0 * std::sqrt(d.variance() / static_cast<double>(n)) + 1e-12;
  EXPECT_NEAR(sample_mean, d.mean(), tolerance) << d.name();
}

TEST_P(ContinuousDistribution, QuantileRejectsEndpoints) {
  const auto& d = *GetParam().dist;
  EXPECT_THROW((void)d.quantile(0.0), std::domain_error) << d.name();
  EXPECT_THROW((void)d.quantile(1.0), std::domain_error) << d.name();
}

INSTANTIATE_TEST_SUITE_P(
    Family, ContinuousDistribution,
    ::testing::Values(
        DistCase{std::make_shared<Exponential>(2.5), {0.0, 0.1, 0.5, 2.0}},
        DistCase{std::make_shared<Uniform>(-1.0, 3.0), {-1.0, 0.0, 2.0, 3.0}},
        DistCase{std::make_shared<Normal>(1.0, 2.0), {-3.0, 0.0, 1.0, 4.0}},
        DistCase{std::make_shared<LogNormal>(0.0, 0.5), {0.1, 0.5, 1.0, 3.0}},
        DistCase{std::make_shared<Gamma>(3.0, 2.0), {0.1, 1.0, 2.0, 5.0}},
        DistCase{std::make_shared<ChiSquare>(4.0), {0.5, 2.0, 4.0, 9.0}},
        DistCase{std::make_shared<FisherF>(6.0, 14.0), {0.2, 0.8, 1.5, 4.0}},
        DistCase{std::make_shared<Weibull>(1.7, 2.0), {0.2, 1.0, 2.0, 4.0}}),
    [](const auto& param_info) { return param_info.param.dist->name(); });

// --- distribution-specific facts ---------------------------------------

TEST(Exponential, MemorylessCdf) {
  const Exponential e(0.5);
  EXPECT_NEAR(e.cdf(2.0), 1.0 - std::exp(-1.0), 1e-14);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
}

TEST(Uniform, RejectsEmptyInterval) {
  EXPECT_THROW(Uniform(2.0, 2.0), std::invalid_argument);
}

TEST(Normal, QuantileMatchesTableValues) {
  const Normal n(0.0, 1.0);
  EXPECT_NEAR(n.quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(n.quantile(0.95), 1.644854, 1e-5);
}

TEST(ChiSquare, PaperEquation2Quantiles) {
  // Values used by the paper's Equation (2) with 0 failures:
  // chi2_{0.95}(2) = 5.991, chi2_{0.995}(2) = 10.597.
  const ChiSquare chi2(2.0);
  EXPECT_NEAR(chi2.quantile(0.95), 5.99146, 1e-4);
  EXPECT_NEAR(chi2.quantile(0.995), 10.59663, 1e-4);
}

TEST(FisherF, LargeD2ApproachesScaledChiSquare) {
  // F(d1, inf) -> chi2(d1)/d1.
  const FisherF f(2.0, 1e7);
  EXPECT_NEAR(f.quantile(0.95), 5.99146 / 2.0, 1e-3);
}

TEST(FisherF, MeanRequiresD2Above2) {
  EXPECT_THROW((void)FisherF(2.0, 2.0).mean(), std::domain_error);
  EXPECT_NEAR(FisherF(2.0, 10.0).mean(), 1.25, 1e-12);
}

TEST(LogNormal, MomentFormulas) {
  const LogNormal ln(0.3, 0.7);
  EXPECT_NEAR(ln.mean(), std::exp(0.3 + 0.5 * 0.49), 1e-12);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-13);
  }
}

TEST(Deterministic, PointMass) {
  const Deterministic d(4.2);
  EXPECT_DOUBLE_EQ(d.cdf(4.19), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.2), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 4.2);
  EXPECT_DOUBLE_EQ(d.mean(), 4.2);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  RandomEngine rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 4.2);
}

TEST(Binomial, PmfSumsToOne) {
  const Binomial b(20, 0.3);
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) sum += b.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Binomial, CdfMatchesPartialSums) {
  const Binomial b(15, 0.6);
  double partial = 0.0;
  for (std::uint64_t k = 0; k <= 15; ++k) {
    partial += b.pmf(k);
    EXPECT_NEAR(b.cdf(k), partial, 1e-10) << "k=" << k;
  }
}

TEST(Binomial, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0.0).pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 1.0).pmf(5), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 0.0).cdf(3), 1.0);
}

}  // namespace
}  // namespace rascal::stats

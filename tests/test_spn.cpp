#include "spn/petri_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/steady_state.h"
#include "spn/reachability.h"

namespace rascal::spn {
namespace {

RewardFunction up_when_empty(PlaceId place) {
  return [place](const Marking& m) { return m[place] == 0 ? 1.0 : 0.0; };
}

TEST(PetriNet, TokenGameBasics) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 2);
  const PlaceId b = net.add_place("B");
  const TransitionId t = net.add_timed_transition("move", 1.0);
  net.input_arc(t, a).output_arc(t, b);

  Marking m = net.initial_marking();
  EXPECT_EQ(m[a], 2u);
  EXPECT_TRUE(net.is_enabled(t, m));
  m = net.fire(t, m);
  EXPECT_EQ(m[a], 1u);
  EXPECT_EQ(m[b], 1u);
  m = net.fire(t, m);
  EXPECT_FALSE(net.is_enabled(t, m));
  EXPECT_THROW((void)net.fire(t, m), std::logic_error);
}

TEST(PetriNet, MultiplicityRespected) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 3);
  const PlaceId b = net.add_place("B");
  const TransitionId t = net.add_timed_transition("pair", 1.0);
  net.input_arc(t, a, 2).output_arc(t, b, 5);
  Marking m = net.fire(t, net.initial_marking());
  EXPECT_EQ(m[a], 1u);
  EXPECT_EQ(m[b], 5u);
  EXPECT_FALSE(net.is_enabled(t, m));  // only 1 token left, needs 2
}

TEST(PetriNet, InhibitorArcDisables) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId block = net.add_place("Block", 1);
  const TransitionId t = net.add_timed_transition("go", 1.0);
  net.input_arc(t, a).inhibitor_arc(t, block);
  EXPECT_FALSE(net.is_enabled(t, net.initial_marking()));
  Marking m = net.initial_marking();
  m[block] = 0;
  EXPECT_TRUE(net.is_enabled(t, m));
}

TEST(PetriNet, GuardsAndMarkingDependentRates) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 3);
  const TransitionId t = net.add_timed_transition(
      "drain", [a](const Marking& m) { return 2.0 * m[a]; });
  net.input_arc(t, a);
  net.set_guard(t, [a](const Marking& m) { return m[a] >= 2; });

  Marking m = net.initial_marking();
  EXPECT_DOUBLE_EQ(net.rate(t, m), 6.0);
  EXPECT_TRUE(net.is_enabled(t, m));
  m[a] = 1;
  EXPECT_FALSE(net.is_enabled(t, m));  // guard blocks
}

TEST(PetriNet, Validation) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  EXPECT_THROW((void)net.add_timed_transition("bad", 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)net.add_immediate_transition("bad", 0.0),
               std::invalid_argument);
  const TransitionId t = net.add_timed_transition("ok", 1.0);
  EXPECT_THROW((void)net.input_arc(t, 99), std::out_of_range);
  EXPECT_THROW((void)net.input_arc(t, a, 0), std::invalid_argument);
  EXPECT_THROW((void)net.input_arc(99, a), std::out_of_range);
}

TEST(PetriNet, FormatMarking) {
  PetriNet net;
  net.add_place("P1", 2);
  net.add_place("P2");
  net.add_place("P3", 1);
  EXPECT_EQ(net.format_marking(net.initial_marking()), "P1=2,P3=1");
  EXPECT_EQ(net.format_marking({0, 0, 0}), "empty");
}

// M/M/1/K queue as an SPN: birth-death chain with known stationary
// distribution.
TEST(Reachability, Mm1kQueueMatchesBirthDeathFormula) {
  const double arrival = 0.8;
  const double service = 1.0;
  const std::uint32_t k = 5;

  PetriNet net;
  const PlaceId queue = net.add_place("Queue", 0);
  const PlaceId slots = net.add_place("Slots", k);
  const TransitionId arrive = net.add_timed_transition("arrive", arrival);
  net.input_arc(arrive, slots).output_arc(arrive, queue);
  const TransitionId serve = net.add_timed_transition("serve", service);
  net.input_arc(serve, queue).output_arc(serve, slots);

  const auto generated =
      generate_ctmc(net, [](const Marking&) { return 1.0; });
  EXPECT_EQ(generated.chain.num_states(), k + 1);

  const auto steady = ctmc::solve_steady_state(generated.chain);
  // pi_i proportional to rho^i.
  const double rho = arrival / service;
  for (std::size_t i = 0; i < generated.markings.size(); ++i) {
    const std::uint32_t customers = generated.markings[i][queue];
    const std::uint32_t customers0 = generated.markings[0][queue];
    const double expected_ratio =
        std::pow(rho, static_cast<double>(customers) -
                          static_cast<double>(customers0));
    EXPECT_NEAR(steady.probability(i) / steady.probability(0),
                expected_ratio, 1e-10);
  }
}

TEST(Reachability, ImmediateTransitionsAreEliminated) {
  // Timed A->B where B instantly branches 30/70 to C or D.
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const PlaceId c = net.add_place("C");
  const PlaceId d = net.add_place("D");
  const TransitionId go = net.add_timed_transition("go", 2.0);
  net.input_arc(go, a).output_arc(go, b);
  const TransitionId to_c = net.add_immediate_transition("to_c", 3.0);
  net.input_arc(to_c, b).output_arc(to_c, c);
  const TransitionId to_d = net.add_immediate_transition("to_d", 7.0);
  net.input_arc(to_d, b).output_arc(to_d, d);
  const TransitionId back_c = net.add_timed_transition("back_c", 1.0);
  net.input_arc(back_c, c).output_arc(back_c, a);
  const TransitionId back_d = net.add_timed_transition("back_d", 1.0);
  net.input_arc(back_d, d).output_arc(back_d, a);

  const auto generated =
      generate_ctmc(net, up_when_empty(d));
  // Tangible states: {A}, {C}, {D}; the vanishing {B} is eliminated.
  EXPECT_EQ(generated.chain.num_states(), 3u);
  const auto id_a = generated.chain.state("A=1");
  const auto id_c = generated.chain.state("C=1");
  const auto id_d = generated.chain.state("D=1");
  EXPECT_NEAR(generated.chain.rate(id_a, id_c), 2.0 * 0.3, 1e-12);
  EXPECT_NEAR(generated.chain.rate(id_a, id_d), 2.0 * 0.7, 1e-12);
}

TEST(Reachability, PrioritiesPreemptLowerImmediates) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const PlaceId hi = net.add_place("Hi");
  const PlaceId lo = net.add_place("Lo");
  const TransitionId go = net.add_timed_transition("go", 1.0);
  net.input_arc(go, a).output_arc(go, b);
  const TransitionId t_hi = net.add_immediate_transition("hi", 1.0, 2);
  net.input_arc(t_hi, b).output_arc(t_hi, hi);
  const TransitionId t_lo = net.add_immediate_transition("lo", 1.0, 1);
  net.input_arc(t_lo, b).output_arc(t_lo, lo);
  const TransitionId back = net.add_timed_transition("back", 1.0);
  net.input_arc(back, hi).output_arc(back, a);

  const auto generated = generate_ctmc(net, [](const Marking&) {
    return 1.0;
  });
  // Only the high-priority branch is ever taken: states {A}, {Hi}.
  EXPECT_EQ(generated.chain.num_states(), 2u);
  EXPECT_FALSE(generated.chain.find_state("Lo=1").has_value());
}

TEST(Reachability, ChainedImmediatesResolveTransitively) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const PlaceId c = net.add_place("C");
  const PlaceId d = net.add_place("D");
  const TransitionId go = net.add_timed_transition("go", 1.0);
  net.input_arc(go, a).output_arc(go, b);
  const TransitionId i1 = net.add_immediate_transition("i1");
  net.input_arc(i1, b).output_arc(i1, c);
  const TransitionId i2 = net.add_immediate_transition("i2");
  net.input_arc(i2, c).output_arc(i2, d);
  const TransitionId back = net.add_timed_transition("back", 1.0);
  net.input_arc(back, d).output_arc(back, a);

  const auto generated =
      generate_ctmc(net, [](const Marking&) { return 1.0; });
  EXPECT_EQ(generated.chain.num_states(), 2u);
  EXPECT_TRUE(generated.chain.find_state("D=1").has_value());
}

TEST(Reachability, VanishingLoopIsReported) {
  PetriNet net;
  const PlaceId a = net.add_place("A", 1);
  const PlaceId b = net.add_place("B");
  const TransitionId go = net.add_timed_transition("go", 1.0);
  net.input_arc(go, a).output_arc(go, b);
  // Two immediates that bounce the token forever.
  const TransitionId i1 = net.add_immediate_transition("i1");
  net.input_arc(i1, b).output_arc(i1, a);
  const TransitionId i2 = net.add_immediate_transition("i2");
  net.input_arc(i2, a).output_arc(i2, b);
  EXPECT_THROW(
      (void)generate_ctmc(net, [](const Marking&) { return 1.0; }),
      std::runtime_error);
}

TEST(Reachability, StateSpaceLimitEnforced) {
  // Unbounded net: a source transition with no inputs.
  PetriNet net;
  const PlaceId a = net.add_place("A", 0);
  const TransitionId grow = net.add_timed_transition("grow", 1.0);
  net.output_arc(grow, a);
  ReachabilityOptions options;
  options.max_tangible_markings = 50;
  EXPECT_THROW((void)generate_ctmc(
                   net, [](const Marking&) { return 1.0; }, options),
               std::runtime_error);
}

TEST(Reachability, RejectsBadInput) {
  PetriNet empty;
  EXPECT_THROW(
      (void)generate_ctmc(empty, [](const Marking&) { return 1.0; }),
      std::invalid_argument);
  PetriNet net;
  net.add_place("A", 1);
  EXPECT_THROW((void)generate_ctmc(net, RewardFunction{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::spn

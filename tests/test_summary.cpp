#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rascal::stats {
namespace {

TEST(Summary, TracksMomentsAndExtremes) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleObservationHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
}

TEST(Summary, StandardErrorShrinksWithN) {
  Summary a;
  Summary b;
  for (int i = 0; i < 100; ++i) a.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 10000; ++i) b.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(a.standard_error(), b.standard_error());
}

TEST(Percentile, InterpolatesType7) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInputIsHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(SampleInterval, EightyPercentCoversMiddle) {
  std::vector<double> sample;
  for (int i = 1; i <= 1000; ++i) sample.push_back(static_cast<double>(i));
  const Interval ci = sample_interval(sample, 0.8);
  EXPECT_NEAR(ci.lower, 100.0, 1.5);
  EXPECT_NEAR(ci.upper, 900.0, 1.5);
}

TEST(MeanConfidenceInterval, IsSymmetricAroundMean) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 10));
  const Interval ci = mean_confidence_interval(s, 0.95);
  EXPECT_NEAR(0.5 * (ci.lower + ci.upper), s.mean(), 1e-12);
  EXPECT_LT(ci.lower, s.mean());
}

TEST(FractionBelow, CountsStrictly) {
  EXPECT_DOUBLE_EQ(fraction_below({1.0, 2.0, 3.0, 4.0}, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below({1.0, 2.0}, 10.0), 1.0);
  EXPECT_THROW((void)fraction_below({}, 1.0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(3.999);  // bin 1
  h.add(4.0);    // bin 2
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(42.0);   // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

}  // namespace
}  // namespace rascal::stats

#include "ctmc/compose.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"

namespace rascal::ctmc {
namespace {

Ctmc two_state(const std::string& prefix, double lambda, double mu) {
  CtmcBuilder b;
  b.state(prefix + "Up", 1.0);
  b.state(prefix + "Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

TEST(Compose, ProductSpaceSizeAndNames) {
  const Ctmc joint = compose_independent(
      {two_state("a", 0.1, 1.0), two_state("b", 0.2, 2.0)});
  EXPECT_EQ(joint.num_states(), 4u);
  EXPECT_TRUE(joint.find_state("aUp|bUp@0").has_value());
  EXPECT_TRUE(joint.find_state("aDown|bDown@3").has_value());
}

TEST(Compose, IndependenceFactorizesTheStationaryDistribution) {
  const Ctmc a = two_state("a", 0.3, 1.2);
  const Ctmc b = two_state("b", 0.7, 2.5);
  const Ctmc joint = compose_independent({a, b});

  const auto pi_a = solve_steady_state(a);
  const auto pi_b = solve_steady_state(b);
  const auto pi = solve_steady_state(joint);
  for (StateId i = 0; i < 2; ++i) {
    for (StateId j = 0; j < 2; ++j) {
      const StateId id = composite_state_id({a, b}, {i, j});
      EXPECT_NEAR(pi.probability(id),
                  pi_a.probability(i) * pi_b.probability(j), 1e-12);
    }
  }
}

TEST(Compose, SeriesRewardIsMinimum) {
  const Ctmc joint = compose_independent(
      {two_state("a", 0.1, 1.0), two_state("b", 0.2, 2.0)});
  // Up only when both components are up.
  EXPECT_DOUBLE_EQ(joint.reward(composite_state_id(
                       {two_state("a", 0.1, 1.0),
                        two_state("b", 0.2, 2.0)},
                       {0, 0})),
                   1.0);
  EXPECT_DOUBLE_EQ(joint.reward(1), 0.0);
  EXPECT_DOUBLE_EQ(joint.reward(2), 0.0);
  EXPECT_DOUBLE_EQ(joint.reward(3), 0.0);
}

TEST(Compose, ParallelRewardIsMaximum) {
  const Ctmc joint = compose_independent(
      {two_state("a", 0.1, 1.0), two_state("b", 0.2, 2.0)},
      max_reward_combiner());
  // Down only when both are down.
  EXPECT_DOUBLE_EQ(joint.reward(0), 1.0);
  EXPECT_DOUBLE_EQ(joint.reward(1), 1.0);
  EXPECT_DOUBLE_EQ(joint.reward(2), 1.0);
  EXPECT_DOUBLE_EQ(joint.reward(3), 0.0);
}

TEST(Compose, SeriesAvailabilityIsProductOfComponents) {
  const Ctmc a = two_state("a", 0.05, 1.0);
  const Ctmc b = two_state("b", 0.02, 0.5);
  const double aa = core::solve_availability(a).availability;
  const double ab = core::solve_availability(b).availability;
  const auto joint =
      core::solve_availability(compose_independent({a, b}));
  EXPECT_NEAR(joint.availability, aa * ab, 1e-12);
}

TEST(Compose, ParallelSystemBeatsEitherComponent) {
  const Ctmc a = two_state("a", 0.5, 1.0);
  const Ctmc b = two_state("b", 0.5, 1.0);
  const auto joint = core::solve_availability(
      compose_independent({a, b}, max_reward_combiner()));
  const double single = core::solve_availability(a).availability;
  EXPECT_GT(joint.availability, single);
  // 1 - (1-A)^2 for iid components.
  EXPECT_NEAR(joint.availability, 1.0 - (1.0 - single) * (1.0 - single),
              1e-12);
}

TEST(Compose, ThreeComponentsAndSingletonIdentity) {
  const Ctmc a = two_state("a", 0.1, 1.0);
  // Composing a single chain is the chain itself (up to names).
  const Ctmc solo = compose_independent({a});
  EXPECT_EQ(solo.num_states(), a.num_states());
  EXPECT_NEAR(core::solve_availability(solo).availability,
              core::solve_availability(a).availability, 1e-15);

  const Ctmc triple = compose_independent(
      {a, two_state("b", 0.2, 1.0), two_state("c", 0.3, 1.0)});
  EXPECT_EQ(triple.num_states(), 8u);
  EXPECT_TRUE(triple.is_irreducible());
}

TEST(Compose, Validation) {
  EXPECT_THROW((void)compose_independent({}), std::invalid_argument);
  const Ctmc a = two_state("a", 0.1, 1.0);
  EXPECT_THROW((void)compose_independent({a}, RewardCombiner{}),
               std::invalid_argument);
  ComposeOptions tight;
  tight.max_states = 3;
  EXPECT_THROW((void)compose_independent({a, a}, min_reward_combiner(),
                                         tight),
               std::runtime_error);
  EXPECT_THROW((void)composite_state_id({a}, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)composite_state_id({a}, {5}), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::ctmc

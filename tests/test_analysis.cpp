#include <gtest/gtest.h>

#include <cmath>

#include "analysis/parametric.h"
#include "analysis/sensitivity.h"
#include "analysis/uncertainty.h"

namespace rascal::analysis {
namespace {

// Simple quadratic test model: y = a*x^2 + b.
const ModelFunction kQuadratic = [](const expr::ParameterSet& p) {
  const double x = p.get("x");
  return p.get("a") * x * x + p.get("b");
};

const expr::ParameterSet kBase{{"a", 2.0}, {"b", 1.0}, {"x", 3.0}};

TEST(Linspace, CoversEndpointsEvenly) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_THROW((void)linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(ParametricSweep, OverridesOnlyTheSweptParameter) {
  const auto points =
      parametric_sweep(kQuadratic, kBase, "x", {0.0, 1.0, 2.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].metric, 1.0);
  EXPECT_DOUBLE_EQ(points[1].metric, 3.0);
  EXPECT_DOUBLE_EQ(points[2].metric, 9.0);
  EXPECT_DOUBLE_EQ(points[2].parameter_value, 2.0);
}

TEST(Uncertainty, ReproducibleFromSeed) {
  const std::vector<stats::ParameterRange> ranges = {{"x", 0.0, 1.0}};
  UncertaintyOptions options;
  options.samples = 50;
  options.seed = 17;
  const auto a = uncertainty_analysis(kQuadratic, kBase, ranges, options);
  const auto b = uncertainty_analysis(kQuadratic, kBase, ranges, options);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]);
  }
}

TEST(Uncertainty, MeanOfLinearModelIsMidpointValue) {
  // y = x sampled uniformly on [0, 10]: mean ~ 5.
  const ModelFunction linear = [](const expr::ParameterSet& p) {
    return p.get("x");
  };
  UncertaintyOptions options;
  options.samples = 4000;
  const auto result = uncertainty_analysis(
      linear, kBase, {{"x", 0.0, 10.0}}, options);
  EXPECT_NEAR(result.mean, 5.0, 0.2);
  EXPECT_NEAR(result.interval80.lower, 1.0, 0.2);
  EXPECT_NEAR(result.interval80.upper, 9.0, 0.2);
  EXPECT_NEAR(result.fraction_below(5.0), 0.5, 0.05);
}

TEST(Uncertainty, IntervalsNestAndBracketMean) {
  UncertaintyOptions options;
  options.samples = 500;
  const auto result = uncertainty_analysis(
      kQuadratic, kBase, {{"x", 0.0, 2.0}, {"b", -1.0, 1.0}}, options);
  EXPECT_LE(result.interval90.lower, result.interval80.lower);
  EXPECT_GE(result.interval90.upper, result.interval80.upper);
  EXPECT_GT(result.mean, result.interval80.lower);
  EXPECT_LT(result.mean, result.interval80.upper);
  EXPECT_EQ(result.samples.size(), 500u);
}

TEST(Uncertainty, LatinHypercubeOptionRuns) {
  UncertaintyOptions options;
  options.samples = 64;
  options.latin_hypercube = true;
  const auto result = uncertainty_analysis(
      kQuadratic, kBase, {{"x", 0.0, 1.0}}, options);
  EXPECT_EQ(result.metrics.size(), 64u);
}

TEST(Uncertainty, RejectsZeroSamples) {
  UncertaintyOptions options;
  options.samples = 0;
  EXPECT_THROW(
      (void)uncertainty_analysis(kQuadratic, kBase, {}, options),
      std::invalid_argument);
}

TEST(Sensitivity, CentralDifferenceMatchesAnalyticDerivative) {
  const auto sens = finite_difference_sensitivities(
      kQuadratic, kBase, {"x", "a", "b"});
  ASSERT_EQ(sens.size(), 3u);
  // dy/dx = 2ax = 12; dy/da = x^2 = 9; dy/db = 1.
  EXPECT_NEAR(sens[0].derivative, 12.0, 1e-5);
  EXPECT_NEAR(sens[1].derivative, 9.0, 1e-5);
  EXPECT_NEAR(sens[2].derivative, 1.0, 1e-5);
  // Elasticity of x: (x/y) dy/dx = 3*12/19.
  EXPECT_NEAR(sens[0].elasticity, 36.0 / 19.0, 1e-5);
}

TEST(Tornado, SortsBysSwing) {
  const auto bars = tornado_analysis(
      kQuadratic, kBase, {{"b", 0.0, 1.0}, {"x", 0.0, 4.0}});
  ASSERT_EQ(bars.size(), 2u);
  EXPECT_EQ(bars[0].parameter, "x");  // swing 32 beats swing 1
  EXPECT_DOUBLE_EQ(bars[0].metric_at_lo, 1.0);
  EXPECT_DOUBLE_EQ(bars[0].metric_at_hi, 33.0);
  EXPECT_DOUBLE_EQ(bars[0].swing(), 32.0);
}

TEST(Spearman, DetectsMonotoneAssociation) {
  std::vector<double> xs;
  std::vector<double> ys_up;
  std::vector<double> ys_down;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys_up.push_back(std::exp(0.1 * i));   // monotone increasing
    ys_down.push_back(-i * i);            // monotone decreasing
  }
  EXPECT_NEAR(spearman_rank_correlation(xs, ys_up), 1.0, 1e-12);
  EXPECT_NEAR(spearman_rank_correlation(xs, ys_down), -1.0, 1e-12);
}

TEST(Spearman, TiesAndValidation) {
  EXPECT_NEAR(spearman_rank_correlation({1.0, 1.0, 2.0, 2.0},
                                        {1.0, 1.0, 2.0, 2.0}),
              1.0, 1e-12);
  EXPECT_THROW((void)spearman_rank_correlation({1.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)spearman_rank_correlation({1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

TEST(ParameterImportance, RanksDominantParameterFirst) {
  // y = 100*a + b: a dominates.
  const ModelFunction model = [](const expr::ParameterSet& p) {
    return 100.0 * p.get("a") + p.get("b");
  };
  UncertaintyOptions options;
  options.samples = 400;
  const std::vector<stats::ParameterRange> ranges = {{"a", 0.0, 1.0},
                                                     {"b", 0.0, 1.0}};
  const auto result = uncertainty_analysis(
      model, expr::ParameterSet{}, ranges, options);
  const auto importance = parameter_importance(result, ranges);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_EQ(importance[0].parameter, "a");
  EXPECT_GT(importance[0].rank_correlation, 0.9);
}

}  // namespace
}  // namespace rascal::analysis

// Edge-of-domain tests for the stats layer: KS at the smallest legal
// sample sizes, independence of nested RandomEngine::split substreams,
// and distribution machinery at extreme (but legal) parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/distributions.h"
#include "stats/ks_test.h"
#include "stats/rng.h"

namespace rascal::stats {
namespace {

// ---- KS at tiny sample sizes ------------------------------------------

TEST(KsEdge, EmptySampleIsRejectedUpFront) {
  EXPECT_THROW((void)ks_test({}, Uniform(0.0, 1.0)), std::invalid_argument);
}

TEST(KsEdge, SingleObservationHasExactStatistic) {
  // With one observation x, D_1 = max(F(x), 1 - F(x)).
  const Uniform uniform(0.0, 1.0);
  const auto result = ks_test({0.25}, uniform);
  EXPECT_EQ(result.sample_size, 1u);
  EXPECT_NEAR(result.statistic, 0.75, 1e-12);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
  // A perfectly central observation gives the smallest possible D_1.
  EXPECT_NEAR(ks_test({0.5}, uniform).statistic, 0.5, 1e-12);
}

TEST(KsEdge, TwoObservationsMatchHandComputedStatistic) {
  // Sorted sample {0.1, 0.9} vs U(0,1): sup deviation at the first
  // point is max over steps |i/n - F|, |F - (i-1)/n| = 0.4 both sides.
  const auto result = ks_test({0.9, 0.1}, Uniform(0.0, 1.0));
  EXPECT_EQ(result.sample_size, 2u);
  EXPECT_NEAR(result.statistic, 0.4, 1e-12);
}

TEST(KsEdge, TinySampleDoesNotSpuriouslyReject) {
  // n = 1..4 has almost no power; the test must stay conservative
  // rather than reject a correct hypothesis.
  RandomEngine rng(7);
  const Exponential exponential(2.0);
  for (std::size_t n = 1; n <= 4; ++n) {
    std::vector<double> sample;
    for (std::size_t i = 0; i < n; ++i) sample.push_back(exponential.sample(rng));
    EXPECT_TRUE(ks_test(sample, exponential).accepts(0.01)) << "n=" << n;
  }
}

TEST(KsEdge, DegenerateConstantSampleRejectsContinuousModel) {
  const std::vector<double> constant(200, 3.0);
  EXPECT_FALSE(ks_test(constant, Uniform(0.0, 10.0)).accepts(0.05));
}

// ---- nested split independence ----------------------------------------

TEST(SplitEdge, NestedSubstreamsPassPairwiseKs) {
  // split(a).split(b) lattices must behave as independent uniform
  // streams: each passes KS against U(0,1), and no two distinct
  // substreams are correlated or identical.
  RandomEngine root(0xDEC0DE);
  const std::size_t kStreams = 4, kDraws = 400;
  std::vector<std::vector<double>> streams;
  for (std::uint64_t a = 0; a < 2; ++a) {
    for (std::uint64_t b = 0; b < 2; ++b) {
      RandomEngine leaf = root.split(a).split(b);
      std::vector<double> draws;
      for (std::size_t i = 0; i < kDraws; ++i) draws.push_back(leaf.uniform01());
      streams.push_back(std::move(draws));
    }
  }
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_TRUE(ks_test(streams[s], Uniform(0.0, 1.0)).accepts(0.001))
        << "substream " << s << " is not uniform";
  }
  for (std::size_t a = 0; a < kStreams; ++a) {
    for (std::size_t b = a + 1; b < kStreams; ++b) {
      double corr = 0.0;
      std::size_t identical = 0;
      for (std::size_t i = 0; i < kDraws; ++i) {
        corr += (streams[a][i] - 0.5) * (streams[b][i] - 0.5);
        identical += streams[a][i] == streams[b][i] ? 1 : 0;
      }
      corr /= static_cast<double>(kDraws) / 12.0;  // Var U(0,1) = 1/12
      EXPECT_LT(std::abs(corr), 0.2) << "streams " << a << "," << b;
      EXPECT_LT(identical, kDraws / 100) << "streams " << a << "," << b;
    }
  }
}

TEST(SplitEdge, SiblingAndChildStreamsDiffer) {
  // The substream reached by split(0).split(1) must differ from
  // split(1).split(0) and from split(0) itself — collisions here are
  // exactly what would silently correlate parallel replications.
  RandomEngine root(42);
  RandomEngine a = root.split(0).split(1);
  RandomEngine b = root.split(1).split(0);
  RandomEngine c = root.split(0);
  bool a_vs_b = false, a_vs_c = false;
  for (int i = 0; i < 16; ++i) {
    const double xa = a.uniform01(), xb = b.uniform01(), xc = c.uniform01();
    a_vs_b |= xa != xb;
    a_vs_c |= xa != xc;
  }
  EXPECT_TRUE(a_vs_b);
  EXPECT_TRUE(a_vs_c);
}

TEST(SplitEdge, SplitIsStableUnderParentConsumption) {
  // split is const and keyed on (state, stream_id): drawing from the
  // parent must not change what a later split(id) yields, or results
  // would depend on evaluation order across threads.
  RandomEngine parent(99);
  RandomEngine before = parent.split(5);
  for (int i = 0; i < 100; ++i) (void)parent.uniform01();
  RandomEngine after = parent.split(5);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(before.uniform01(), after.uniform01());
  }
}

// ---- distributions at extreme parameters ------------------------------

TEST(DistributionEdge, ExponentialWithExtremeRates) {
  const Exponential fast(1e12);
  const Exponential slow(1e-12);
  EXPECT_NEAR(fast.mean(), 1e-12, 1e-24);
  EXPECT_NEAR(slow.mean(), 1e12, 1.0);
  EXPECT_NEAR(fast.cdf(1.0), 1.0, 1e-15);
  EXPECT_NEAR(slow.cdf(1e-3), 1e-15, 1e-16);
  RandomEngine rng(1);
  for (int i = 0; i < 100; ++i) {
    const double x = fast.sample(rng);
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 0.0);
  }
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(DistributionEdge, QuantileAtProbabilityExtremes) {
  const Exponential exponential(1.0);
  // The domain is the OPEN interval (0, 1): the endpoints throw
  // rather than silently returning +/-infinity.
  EXPECT_THROW((void)exponential.quantile(0.0), std::domain_error);
  EXPECT_THROW((void)exponential.quantile(1.0), std::domain_error);
  EXPECT_TRUE(std::isfinite(exponential.quantile(1e-300)));
  // The far tail must stay monotone and finite well past double
  // precision of the CDF.
  EXPECT_GT(exponential.quantile(1.0 - 1e-12),
            exponential.quantile(1.0 - 1e-6));
}

TEST(DistributionEdge, NearDegenerateLogNormalAndNormal) {
  const Normal narrow(5.0, 1e-9);
  EXPECT_NEAR(narrow.quantile(0.5), 5.0, 1e-7);
  EXPECT_NEAR(narrow.cdf(5.0 + 1e-6), 1.0, 1e-9);
  EXPECT_NEAR(narrow.cdf(5.0 - 1e-6), 0.0, 1e-9);

  const LogNormal spread(0.0, 5.0);  // heavy tail, huge variance
  EXPECT_TRUE(std::isfinite(spread.mean()));
  EXPECT_TRUE(std::isfinite(spread.variance()));
  EXPECT_GT(spread.variance(), 1e10);
  EXPECT_NEAR(spread.cdf(spread.quantile(0.99)), 0.99, 1e-9);
}

TEST(DistributionEdge, GammaShapeBelowOneSamplesFinite) {
  // shape < 1 is the regime where naive Gamma samplers break (density
  // unbounded at 0).
  const Gamma gamma(0.05, 2.0);
  RandomEngine rng(13);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = gamma.sample(rng);
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 2000.0, gamma.mean(), 0.01);
}

TEST(DistributionEdge, UniformWithExtremeBounds) {
  const Uniform wide(-1e300, 1e300);
  EXPECT_TRUE(std::isfinite(wide.mean()));
  EXPECT_NEAR(wide.cdf(0.0), 0.5, 1e-12);
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::stats

#include "analysis/user_impact.h"

#include <gtest/gtest.h>

#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/params.h"

namespace rascal::analysis {
namespace {

ctmc::Ctmc simple_chain() {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Degraded", 0.8);  // served, but slower
  b.state("Down", 0.0);
  b.rate(0, 1, 0.2).rate(1, 0, 2.0).rate(1, 2, 0.1).rate(2, 0, 1.0);
  return b.build();
}

TEST(UserImpact, PartitionsRequestsByStateClass) {
  const ctmc::Ctmc chain = simple_chain();
  const auto steady = ctmc::solve_steady_state(chain);
  const Workload workload{3600.0, 500.0};  // 1 req/s, 500 sessions
  const UserImpact impact = user_impact(chain, steady, workload);

  const double requests_per_year = 3600.0 * 8760.0;
  EXPECT_NEAR(impact.lost_requests_per_year,
              steady.probability(2) * requests_per_year, 1e-6);
  EXPECT_NEAR(impact.degraded_requests_per_year,
              steady.probability(1) * 0.2 * requests_per_year, 1e-6);
  // Failures: only the Degraded -> Down edge crosses the cut.
  EXPECT_NEAR(impact.failures_per_year,
              steady.probability(1) * 0.1 * 8760.0, 1e-9);
  EXPECT_NEAR(impact.sessions_lost_per_year,
              impact.failures_per_year * 500.0, 1e-9);
}

TEST(UserImpact, RewardRateAndCapacityLoss) {
  const ctmc::Ctmc chain = simple_chain();
  const auto steady = ctmc::solve_steady_state(chain);
  const UserImpact impact = user_impact(chain, steady, {3600.0, 0.0});
  const double expected_reward = steady.probability(0) * 1.0 +
                                 steady.probability(1) * 0.8;
  EXPECT_NEAR(impact.expected_reward_rate, expected_reward, 1e-12);
  EXPECT_NEAR(impact.capacity_minutes_lost_per_year,
              (1.0 - expected_reward) * 8760.0 * 60.0, 1e-6);
}

TEST(UserImpact, ZeroWorkloadLosesNothing) {
  const ctmc::Ctmc chain = simple_chain();
  const auto steady = ctmc::solve_steady_state(chain);
  const UserImpact impact = user_impact(chain, steady, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(impact.lost_requests_per_year, 0.0);
  EXPECT_DOUBLE_EQ(impact.sessions_lost_per_year, 0.0);
  EXPECT_GT(impact.failures_per_year, 0.0);  // failures still happen
}

TEST(UserImpact, Validation) {
  const ctmc::Ctmc chain = simple_chain();
  const auto steady = ctmc::solve_steady_state(chain);
  EXPECT_THROW((void)user_impact(chain, steady, {-1.0, 0.0}),
               std::invalid_argument);
  ctmc::SteadyState bogus;
  bogus.probabilities = {1.0};
  EXPECT_THROW((void)user_impact(chain, bogus, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(CapacityModel, RewardsAreOccupancyFractions) {
  const auto chain = models::app_server_capacity_model(4).bind(
      models::default_parameters());
  // All_Work has reward 1; All_Down has 0; some state has 0.25.
  EXPECT_DOUBLE_EQ(chain.reward(chain.state("All_Work")), 1.0);
  EXPECT_DOUBLE_EQ(chain.reward(chain.state("All_Down")), 0.0);
  bool quarter = false;
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    if (chain.reward(s) == 0.25) quarter = true;
  }
  EXPECT_TRUE(quarter);
}

TEST(CapacityModel, ExpectedCapacityExceedsStrictAvailabilityView) {
  // The capacity view is gentler than all-or-nothing: expected
  // capacity ~ 1 - (fraction of one instance lost during restarts),
  // far from the strict availability of the same chain.
  const auto params = models::default_parameters();
  const auto capacity_chain =
      models::app_server_capacity_model(2).bind(params);
  const auto steady = ctmc::solve_steady_state(capacity_chain);
  const auto impact =
      user_impact(capacity_chain, steady, {3600.0, 0.0}, /*up=*/1e-9);
  EXPECT_GT(impact.expected_reward_rate, 0.999);
  EXPECT_LT(impact.expected_reward_rate, 1.0);
  // Half the capacity is gone while one of two instances restarts:
  // capacity-minutes lost far exceed strict downtime (~2.4 min/yr).
  EXPECT_GT(impact.capacity_minutes_lost_per_year, 50.0);
}

TEST(CapacityModel, RejectsDegenerateSizes) {
  EXPECT_THROW((void)models::app_server_capacity_model(1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::analysis

#include "rbd/cut_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rascal::rbd {
namespace {

BlockPtr unit(const std::string& name, double a) {
  return component(name, (1.0 - a) / a, 1.0);
}

std::vector<std::vector<std::string>> sorted(
    std::vector<std::vector<std::string>> sets) {
  for (auto& s : sets) std::sort(s.begin(), s.end());
  std::sort(sets.begin(), sets.end());
  return sets;
}

TEST(CutSets, SeriesHasSingletonCuts) {
  const BlockPtr s = series("s", {unit("a", 0.9), unit("b", 0.9)});
  EXPECT_EQ(sorted(minimal_cut_sets(s)),
            sorted({{"a"}, {"b"}}));
}

TEST(CutSets, ParallelHasOneFullCut) {
  const BlockPtr p =
      parallel("p", {unit("a", 0.9), unit("b", 0.9), unit("c", 0.9)});
  EXPECT_EQ(sorted(minimal_cut_sets(p)), sorted({{"a", "b", "c"}}));
}

TEST(CutSets, TwoOfThreeHasPairCuts) {
  const BlockPtr q =
      k_of_n("q", 2, {unit("a", 0.9), unit("b", 0.9), unit("c", 0.9)});
  EXPECT_EQ(sorted(minimal_cut_sets(q)),
            sorted({{"a", "b"}, {"a", "c"}, {"b", "c"}}));
}

TEST(CutSets, PaperConfig1Structure) {
  // Series of three parallel pairs: the cut sets are exactly the
  // events the paper models as system failures — all AS instances
  // down, or both nodes of either pair down.
  const BlockPtr config1 = series(
      "config1",
      {parallel("as", {unit("as1", 0.999), unit("as2", 0.999)}),
       parallel("pair1", {unit("n1", 0.999), unit("n2", 0.999)}),
       parallel("pair2", {unit("n3", 0.999), unit("n4", 0.999)})});
  EXPECT_EQ(sorted(minimal_cut_sets(config1)),
            sorted({{"as1", "as2"}, {"n1", "n2"}, {"n3", "n4"}}));
}

TEST(CutSets, SupersetsAreExcluded) {
  // Bridge-free nested structure: series(a, parallel(b, c)).  {a} is
  // a cut; {a, b} must not appear.
  const BlockPtr s = series(
      "s", {unit("a", 0.9), parallel("p", {unit("b", 0.9), unit("c", 0.9)})});
  EXPECT_EQ(sorted(minimal_cut_sets(s)), sorted({{"a"}, {"b", "c"}}));
}

TEST(CutSets, NullRejected) {
  EXPECT_THROW((void)minimal_cut_sets(nullptr), std::invalid_argument);
}

TEST(Importance, SeriesWeakestComponentDominates) {
  // Birnbaum of a series component equals the product of the OTHER
  // availabilities, so the weak link scores its strong partner's
  // availability (0.999) and tops the ranking; criticality agrees.
  const BlockPtr s = series("s", {unit("weak", 0.9), unit("strong", 0.999)});
  const auto entries = component_importance(s);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].component, "weak");
  EXPECT_NEAR(entries[0].birnbaum, 0.999, 1e-12);
  EXPECT_NEAR(entries[1].birnbaum, 0.9, 1e-12);
  // Criticality ranks the weak component first.
  const auto weak = std::find_if(
      entries.begin(), entries.end(),
      [](const ImportanceEntry& e) { return e.component == "weak"; });
  const auto strong = std::find_if(
      entries.begin(), entries.end(),
      [](const ImportanceEntry& e) { return e.component == "strong"; });
  EXPECT_GT(weak->criticality, strong->criticality);
}

TEST(Importance, BirnbaumMatchesDerivativeDefinition) {
  // For parallel(a, b): A = 1 - (1-Aa)(1-Ab), dA/dAa = 1 - Ab.
  const double ab = 0.8;
  const BlockPtr p = parallel("p", {unit("a", 0.9), unit("b", ab)});
  const auto entries = component_importance(p);
  const auto a_entry = std::find_if(
      entries.begin(), entries.end(),
      [](const ImportanceEntry& e) { return e.component == "a"; });
  ASSERT_NE(a_entry, entries.end());
  EXPECT_NEAR(a_entry->birnbaum, 1.0 - ab, 1e-12);
}

TEST(Importance, CriticalitiesOfSeriesSystemSumAboveOne) {
  // Sanity on the normalization: criticality of each component in a
  // pure series system is U_i-weighted share; all lie in (0, 1].
  const BlockPtr s = series(
      "s", {unit("a", 0.99), unit("b", 0.95), unit("c", 0.9)});
  for (const auto& entry : component_importance(s)) {
    EXPECT_GT(entry.criticality, 0.0);
    EXPECT_LE(entry.criticality, 1.0 + 1e-9);
  }
}

TEST(Importance, RedundantPairHasLowerBirnbaumThanSeriesElement) {
  // In series(a, parallel(b, c)) the series element is the single
  // point of failure and must dominate.
  const BlockPtr s = series(
      "s", {unit("a", 0.99),
            parallel("p", {unit("b", 0.99), unit("c", 0.99)})});
  const auto entries = component_importance(s);
  EXPECT_EQ(entries[0].component, "a");
  EXPECT_GT(entries[0].birnbaum, 10.0 * entries[1].birnbaum);
}

}  // namespace
}  // namespace rascal::rbd

#include "ctmc/absorption.h"

#include <gtest/gtest.h>

#include "ctmc/builder.h"

namespace rascal::ctmc {
namespace {

TEST(Absorption, TwoStateMttfIsInverseRate) {
  CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 0.25).rate(1, 0, 10.0);
  const Ctmc chain = b.build();
  const auto times = mean_time_to_absorption(chain, {1});
  EXPECT_NEAR(times[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
}

TEST(Absorption, TandemQueueSumsStageMeans) {
  // A -> B -> C with rates 2 and 5: E[T] = 1/2 + 1/5.
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.state("C", 0.0);
  b.rate(0, 1, 2.0).rate(1, 2, 5.0).rate(2, 0, 1.0);
  const auto times = mean_time_to_absorption(b.build(), {2});
  EXPECT_NEAR(times[0], 0.7, 1e-12);
  EXPECT_NEAR(times[1], 0.2, 1e-12);
}

TEST(Absorption, BranchingChainWeightsByProbability) {
  // From S, rate 1 to fast-absorbing F, rate 1 to slow path T -> F.
  CtmcBuilder b;
  const StateId s = b.state("S", 1.0);
  const StateId t = b.state("T", 1.0);
  const StateId f = b.state("F", 0.0);
  b.rate(s, f, 1.0).rate(s, t, 1.0).rate(t, f, 0.5).rate(f, s, 1.0);
  const auto times = mean_time_to_absorption(b.build(), {f});
  // E[T_s] = 1/2 + (1/2) * E[T_t]; E[T_t] = 2.
  EXPECT_NEAR(times[s], 0.5 + 0.5 * 2.0, 1e-12);
}

TEST(Absorption, TargetSetOfSeveralStates) {
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 0.0);
  b.state("C", 0.0);
  b.rate(0, 1, 1.0).rate(0, 2, 3.0).rate(1, 0, 1.0).rate(2, 0, 1.0);
  const auto times = mean_time_to_absorption(b.build(), {1, 2});
  EXPECT_NEAR(times[0], 0.25, 1e-12);  // exit rate 4
}

TEST(Absorption, UnreachableTargetThrows) {
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.state("Target", 0.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0).rate(2, 0, 1.0);  // nothing enters 2
  EXPECT_THROW((void)mean_time_to_absorption(b.build(), {2}),
               std::domain_error);
}

TEST(Absorption, InputValidation) {
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 0.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const Ctmc chain = b.build();
  EXPECT_THROW((void)mean_time_to_absorption(chain, {}),
               std::invalid_argument);
  EXPECT_THROW((void)mean_time_to_absorption(chain, {7}),
               std::invalid_argument);
}

TEST(AbsorptionProbabilities, SplitMatchesBranchingRates) {
  // From S: rate 3 to X, rate 1 to Y. P(X first) = 0.75.
  CtmcBuilder b;
  const StateId s = b.state("S", 1.0);
  const StateId x = b.state("X", 0.0);
  const StateId y = b.state("Y", 0.0);
  b.rate(s, x, 3.0).rate(s, y, 1.0).rate(x, s, 1.0).rate(y, s, 1.0);
  const auto probs = absorption_probabilities(b.build(), {x, y});
  EXPECT_NEAR(probs(s, 0), 0.75, 1e-12);
  EXPECT_NEAR(probs(s, 1), 0.25, 1e-12);
  // Target rows are unit vectors.
  EXPECT_DOUBLE_EQ(probs(x, 0), 1.0);
  EXPECT_DOUBLE_EQ(probs(y, 1), 1.0);
  EXPECT_DOUBLE_EQ(probs(x, 1), 0.0);
}

TEST(AbsorptionProbabilities, MultiHopPathsAccumulate) {
  // S -> M (rate 1), M -> X (rate 1), M -> Y (rate 3).
  CtmcBuilder b;
  const StateId s = b.state("S", 1.0);
  const StateId m = b.state("M", 1.0);
  const StateId x = b.state("X", 0.0);
  const StateId y = b.state("Y", 0.0);
  b.rate(s, m, 1.0).rate(m, x, 1.0).rate(m, y, 3.0);
  b.rate(x, s, 1.0).rate(y, s, 1.0);
  const auto probs = absorption_probabilities(b.build(), {x, y});
  EXPECT_NEAR(probs(s, 0), 0.25, 1e-12);
  EXPECT_NEAR(probs(s, 1), 0.75, 1e-12);
  // Rows sum to one for states that must eventually absorb.
  EXPECT_NEAR(probs(s, 0) + probs(s, 1), 1.0, 1e-12);
}

}  // namespace
}  // namespace rascal::ctmc

#include "stats/ks_test.h"

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace rascal::stats {
namespace {

std::vector<double> draw(const Distribution& d, std::size_t n,
                         std::uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = d.sample(rng);
  return out;
}

TEST(Kolmogorov, SurvivalFunctionKnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
  // Critical value: Q(1.3581) ~ 0.05.
  EXPECT_NEAR(kolmogorov_survival(1.3581), 0.05, 0.001);
  EXPECT_NEAR(kolmogorov_survival(1.2238), 0.10, 0.001);
  EXPECT_LT(kolmogorov_survival(2.0), 0.001);
}

TEST(KsTest, AcceptsCorrectHypothesis) {
  const Exponential e(2.0);
  const auto result = ks_test(draw(e, 5000, 1), e);
  EXPECT_TRUE(result.accepts(0.01)) << "p=" << result.p_value;
  EXPECT_LT(result.statistic, 0.03);
}

TEST(KsTest, RejectsWrongRate) {
  const Exponential truth(2.0);
  const Exponential wrong(3.0);
  const auto result = ks_test(draw(truth, 5000, 2), wrong);
  EXPECT_FALSE(result.accepts(0.01)) << "p=" << result.p_value;
}

TEST(KsTest, RejectsWrongFamily) {
  const Uniform truth(0.0, 1.0);
  const Normal wrong(0.5, 0.29);  // same mean/variance, wrong shape
  const auto result = ks_test(draw(truth, 8000, 3), wrong);
  EXPECT_FALSE(result.accepts(0.01));
}

TEST(KsTest, StatisticIsExactForTinySample) {
  // Single observation at the median: D = 0.5.
  const auto result =
      ks_test({0.5}, [](double x) { return x; });  // U(0,1) cdf
  EXPECT_DOUBLE_EQ(result.statistic, 0.5);
  EXPECT_EQ(result.sample_size, 1u);
}

TEST(KsTest, Validation) {
  EXPECT_THROW((void)ks_test({}, [](double) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW((void)ks_test({1.0}, std::function<double(double)>{}),
               std::invalid_argument);
}

// The simulator's building blocks follow their claimed distributions.
TEST(KsTest, RngExponentialSamplesPassKs) {
  RandomEngine rng(4);
  std::vector<double> sample(4000);
  for (double& x : sample) x = rng.exponential(0.7);
  EXPECT_TRUE(ks_test(std::move(sample), Exponential(0.7)).accepts(0.01));
}

TEST(KsTest, QuantileSamplingPassesKsForEveryFamily) {
  RandomEngine rng(5);
  const LogNormal ln(0.5, 0.4);
  const Weibull wb(1.8, 3.0);
  const Gamma gm(2.5, 1.5);
  EXPECT_TRUE(ks_test(draw(ln, 3000, 6), ln).accepts(0.01));
  EXPECT_TRUE(ks_test(draw(wb, 3000, 7), wb).accepts(0.01));
  EXPECT_TRUE(ks_test(draw(gm, 3000, 8), gm).accepts(0.01));
}

}  // namespace
}  // namespace rascal::stats

#include "ctmc/steady_state.h"

#include <gtest/gtest.h>

#include <random>

#include "ctmc/builder.h"

namespace rascal::ctmc {
namespace {

Ctmc two_state(double lambda, double mu) {
  CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

class AllMethods : public ::testing::TestWithParam<SteadyStateMethod> {};

TEST_P(AllMethods, TwoStateClosedForm) {
  const double lambda = 0.25;
  const double mu = 4.0;
  const SteadyState s = solve_steady_state(two_state(lambda, mu), GetParam());
  EXPECT_NEAR(s.probability(0), mu / (lambda + mu), 1e-9);
  EXPECT_NEAR(s.probability(1), lambda / (lambda + mu), 1e-9);
  EXPECT_LT(s.residual, 1e-8);
}

TEST_P(AllMethods, RandomChainSatisfiesBalance) {
  std::mt19937_64 gen(2718);
  std::uniform_real_distribution<double> dist(0.1, 3.0);
  CtmcBuilder b;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) {
    b.state("s" + std::to_string(i), i % 3 == 0 ? 0.0 : 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) b.rate(i, j, dist(gen));
    }
  }
  const Ctmc chain = b.build();
  const SteadyState s = solve_steady_state(chain, GetParam());
  double sum = 0.0;
  for (double p : s.probabilities) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_LT(s.residual, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Methods, AllMethods,
                         ::testing::Values(SteadyStateMethod::kGth,
                                           SteadyStateMethod::kLu,
                                           SteadyStateMethod::kPower,
                                           SteadyStateMethod::kGaussSeidel,
                                           SteadyStateMethod::kGmres,
                                           SteadyStateMethod::kBiCgStab),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case SteadyStateMethod::kGth: return "Gth";
                             case SteadyStateMethod::kLu: return "Lu";
                             case SteadyStateMethod::kPower: return "Power";
                             case SteadyStateMethod::kGaussSeidel:
                               return "GaussSeidel";
                             case SteadyStateMethod::kGmres: return "Gmres";
                             case SteadyStateMethod::kBiCgStab:
                               return "BiCgStab";
                           }
                           return "Unknown";
                         });

TEST(SteadyState, MethodsAgreeOnStiffAvailabilityChain) {
  // Rates spanning 8 orders of magnitude, as availability models do.
  CtmcBuilder b;
  b.state("Ok", 1.0);
  b.state("Degraded", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 1e-4).rate(1, 0, 60.0).rate(1, 2, 2e-4).rate(2, 0, 1.0);
  const Ctmc chain = b.build();
  const SteadyState gth = solve_steady_state(chain, SteadyStateMethod::kGth);
  const SteadyState lu = solve_steady_state(chain, SteadyStateMethod::kLu);
  for (std::size_t i = 0; i < 3; ++i) {
    const double scale = std::max(gth.probability(i), 1e-300);
    EXPECT_LT(std::abs(lu.probability(i) - gth.probability(i)) / scale, 1e-6)
        << "state " << i;
  }
}

class StiffRandomChains : public ::testing::TestWithParam<std::size_t> {};

// Random availability-like chains whose rates span 10 orders of
// magnitude: GTH and LU must agree on every state to fine relative
// precision, and probabilities must remain nonnegative.
TEST_P(StiffRandomChains, DirectSolversAgreeToRelativePrecision) {
  const std::size_t n = GetParam();
  std::mt19937_64 gen(n * 6151);
  std::uniform_real_distribution<double> magnitude(-7.0, 3.0);
  CtmcBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.state("s" + std::to_string(i), i % 4 == 0 ? 0.0 : 1.0);
  }
  // Ring for irreducibility plus random chords, all with wild rates.
  for (std::size_t i = 0; i < n; ++i) {
    b.rate(i, (i + 1) % n, std::pow(10.0, magnitude(gen)));
    const std::size_t j = gen() % n;
    if (j != i) b.rate(i, j, std::pow(10.0, magnitude(gen)));
  }
  const Ctmc chain = b.build();
  const SteadyState gth = solve_steady_state(chain, SteadyStateMethod::kGth);
  const SteadyState lu = solve_steady_state(chain, SteadyStateMethod::kLu);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(gth.probability(i), 0.0);
    const double p = gth.probability(i);
    if (p > 1e-6) {
      // On well-conditioned mass the two direct solvers agree tightly.
      EXPECT_LT(std::abs(lu.probability(i) - p) / p, 1e-6)
          << "state " << i << " p=" << p;
    } else {
      // On the tiny probabilities LU loses relative accuracy to
      // cancellation (GTH's raison d'etre); it must still be close in
      // absolute terms.
      EXPECT_LT(std::abs(lu.probability(i) - p), 1e-9)
          << "state " << i << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StiffRandomChains,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(SteadyState, DirectMethodsRejectReducibleChain) {
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("Trap", 0.0);
  b.rate(0, 1, 1.0);  // no way back
  const Ctmc chain = b.build();
  EXPECT_THROW((void)solve_steady_state(chain, SteadyStateMethod::kGth),
               std::domain_error);
}

TEST(SteadyState, IterationCountsReported) {
  const SteadyState direct =
      solve_steady_state(two_state(1.0, 1.0), SteadyStateMethod::kGth);
  EXPECT_EQ(direct.iterations, 0u);
  const SteadyState iterative =
      solve_steady_state(two_state(1.0, 1.0), SteadyStateMethod::kPower);
  EXPECT_GT(iterative.iterations, 0u);
}

}  // namespace
}  // namespace rascal::ctmc

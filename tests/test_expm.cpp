#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ctmc/builder.h"
#include "ctmc/transient.h"
#include "linalg/lu.h"

namespace rascal::linalg {
namespace {

TEST(Expm, ZeroMatrixGivesIdentity) {
  const Matrix e = matrix_exponential(Matrix(3, 3, 0.0));
  EXPECT_EQ(e, Matrix::identity(3));
}

TEST(Expm, DiagonalMatrixExponentiatesEntrywise) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  const Matrix e = matrix_exponential(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixTruncatesSeries) {
  // [[0,1],[0,0]]: exp = I + A exactly.
  const Matrix e = matrix_exponential({{0.0, 1.0}, {0.0, 0.0}});
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationMatrixGivesSineCosine) {
  // exp([[0,-t],[t,0]]) = rotation by t.
  const double t = 1.3;
  const Matrix e = matrix_exponential({{0.0, -t}, {t, 0.0}});
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
}

TEST(Expm, InverseProperty) {
  // exp(A) exp(-A) = I even for large-norm A (exercises scaling).
  const Matrix a{{3.0, 1.5, -2.0}, {0.5, -4.0, 1.0}, {2.0, 0.0, 5.0}};
  Matrix minus_a = a;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) minus_a(r, c) = -a(r, c);
  }
  const Matrix prod =
      matrix_exponential(a).multiply(matrix_exponential(minus_a));
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Expm, RejectsNonSquare) {
  EXPECT_THROW((void)matrix_exponential(Matrix(2, 3)), std::invalid_argument);
}

// Cross-validation with the uniformization transient solver: the row
// of exp(Q t) for the initial state equals pi(t).
TEST(Expm, AgreesWithUniformizationOnCtmc) {
  ctmc::CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.state("C", 0.0);
  b.rate(0, 1, 2.0).rate(1, 2, 1.5).rate(2, 0, 0.7).rate(1, 0, 0.3);
  const ctmc::Ctmc chain = b.build();

  for (double t : {0.1, 1.0, 5.0}) {
    Matrix qt = chain.generator();
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) qt(r, c) *= t;
    }
    const Matrix e = matrix_exponential(qt);
    const auto transient = ctmc::transient_distribution(chain, 0, t);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e(0, j), transient.probabilities[j], 1e-9)
          << "t=" << t << " state " << j;
    }
  }
}

class ExpmVsUniformization : public ::testing::TestWithParam<std::size_t> {};

// Property sweep: on random generators the two independent transient
// methods must agree for several horizons.
TEST_P(ExpmVsUniformization, AgreeOnRandomGenerators) {
  const std::size_t n = GetParam();
  std::mt19937_64 gen(n * 2749);
  std::uniform_real_distribution<double> dist(0.05, 2.0);
  ctmc::CtmcBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.state("s" + std::to_string(i), 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (gen() % 3 != 0)) b.rate(i, j, dist(gen));
    }
  }
  const ctmc::Ctmc chain = b.build();
  for (double t : {0.2, 1.0, 4.0}) {
    Matrix qt = chain.generator();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) qt(r, c) *= t;
    }
    const Matrix e = matrix_exponential(qt);
    const auto transient = ctmc::transient_distribution(chain, 0, t);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(e(0, j), transient.probabilities[j], 1e-8)
          << "n=" << n << " t=" << t << " state " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExpmVsUniformization,
                         ::testing::Values(2, 3, 5, 8, 12));

// Probability rows of exp(Q t) stay stochastic.
TEST(Expm, GeneratorExponentialRowsSumToOne) {
  ctmc::CtmcBuilder b;
  b.state("X", 1.0);
  b.state("Y", 1.0);
  b.rate(0, 1, 4.0).rate(1, 0, 0.25);
  Matrix q = b.build().generator();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) q(r, c) *= 2.5;
  }
  const Matrix e = matrix_exponential(q);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(e(r, 0) + e(r, 1), 1.0, 1e-12);
    EXPECT_GE(e(r, 0), 0.0);
    EXPECT_GE(e(r, 1), 0.0);
  }
}

}  // namespace
}  // namespace rascal::linalg

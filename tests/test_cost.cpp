#include "analysis/cost.h"

#include <gtest/gtest.h>

#include "analysis/uncertainty.h"
#include "models/jsas_system.h"
#include "models/params.h"

namespace rascal::analysis {
namespace {

core::AvailabilityMetrics sample_metrics() {
  core::AvailabilityMetrics m;
  m.availability = 0.99999;
  m.unavailability = 1e-5;
  m.downtime_minutes_per_year = 5.256;
  m.failure_frequency = 2.0 / 8760.0;  // two failures per year
  m.mtbf_hours = 4380.0;
  return m;
}

TEST(Cost, BreakdownSumsComponents) {
  CostStructure costs;
  costs.downtime_cost_per_minute = 1000.0;
  costs.cost_per_failure = 500.0;
  costs.host_cost_per_year = 20000.0;
  costs.sla_downtime_minutes = 10.0;
  costs.sla_breach_penalty = 1e6;

  const CostBreakdown breakdown = yearly_cost(sample_metrics(), 10, costs);
  EXPECT_NEAR(breakdown.downtime_cost, 5256.0, 0.5);
  EXPECT_NEAR(breakdown.incident_cost, 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(breakdown.infrastructure_cost, 200000.0);
  // Expected downtime is under the 10-minute SLA: no penalty.
  EXPECT_DOUBLE_EQ(breakdown.expected_sla_penalty, 0.0);
  EXPECT_NEAR(breakdown.total,
              breakdown.downtime_cost + breakdown.incident_cost +
                  breakdown.infrastructure_cost,
              1e-9);
}

TEST(Cost, SlaPenaltyTriggersAboveAllowance) {
  CostStructure costs;
  costs.sla_downtime_minutes = 2.0;
  costs.sla_breach_penalty = 7777.0;
  const CostBreakdown breakdown = yearly_cost(sample_metrics(), 0, costs);
  EXPECT_DOUBLE_EQ(breakdown.expected_sla_penalty, 7777.0);
}

TEST(Cost, RejectsNegativeInputs) {
  CostStructure costs;
  costs.downtime_cost_per_minute = -1.0;
  EXPECT_THROW((void)yearly_cost(sample_metrics(), 1, costs),
               std::invalid_argument);
}

TEST(Cost, BreachProbabilityFromSamples) {
  EXPECT_DOUBLE_EQ(
      sla_breach_probability({1.0, 2.0, 3.0, 4.0}, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(sla_breach_probability({1.0, 2.0}, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(sla_breach_probability({11.0, 12.0}, 10.0), 1.0);
}

// End to end: larger clusters trade infrastructure cost against
// downtime cost; with expensive downtime the 4x4 config wins over the
// 2x2 despite costing twice the hardware.
TEST(Cost, DeploymentComparisonReflectsDowntimeValue) {
  CostStructure costs;
  costs.downtime_cost_per_minute = 100000.0;  // online trading scale
  costs.host_cost_per_year = 15000.0;

  const auto params = models::default_parameters();
  const auto evaluate = [&](const models::JsasConfig& config) {
    const auto r = models::solve_jsas(config, params);
    core::AvailabilityMetrics m;
    m.downtime_minutes_per_year = r.downtime_minutes_per_year;
    m.failure_frequency = 1.0 / r.mtbf_hours;
    const std::size_t hosts =
        config.as_instances + 2 * config.hadb_pairs + config.hadb_spares;
    return yearly_cost(m, hosts, costs);
  };
  const auto small = evaluate(models::JsasConfig::config1());
  const auto large = evaluate(models::JsasConfig::config2());
  EXPECT_GT(large.infrastructure_cost, small.infrastructure_cost);
  EXPECT_LT(large.downtime_cost, small.downtime_cost);
  EXPECT_LT(large.total, small.total);
}

// The breach probability machinery plugs into uncertainty samples.
TEST(Cost, BreachProbabilityFromUncertaintyRun) {
  UncertaintyOptions options;
  options.samples = 200;
  const auto result = uncertainty_analysis(
      [](const expr::ParameterSet& p) {
        return models::solve_jsas(models::JsasConfig::config1(), p)
            .downtime_minutes_per_year;
      },
      models::default_parameters(),
      {{"as_La_as", 10.0 / 8760.0, 50.0 / 8760.0},
       {"hadb_FIR", 0.0, 0.002}},
      options);
  const double p_breach = sla_breach_probability(result.metrics, 5.25);
  EXPECT_GE(p_breach, 0.0);
  EXPECT_LE(p_breach, 0.35);  // most systems hold five 9s
}

}  // namespace
}  // namespace rascal::analysis

#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.h"
#include "ctmc/builder.h"

namespace rascal::core {
namespace {

ctmc::Ctmc two_state(double lambda, double mu) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(per_year(8760.0), 1.0);
  EXPECT_DOUBLE_EQ(minutes(90.0), 1.5);
  EXPECT_DOUBLE_EQ(seconds(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(days(2.0), 48.0);
  EXPECT_DOUBLE_EQ(years(1.0), 8760.0);
  EXPECT_DOUBLE_EQ(downtime_minutes_per_year(1.0), 525600.0);
  EXPECT_NEAR(availability_from_downtime_minutes(5.256), 0.99999, 1e-12);
}

TEST(Metrics, TwoStateClosedForms) {
  const double lambda = per_year(52.0);
  const double mu = 1.0 / minutes(90.0);
  const ctmc::Ctmc chain = two_state(lambda, mu);
  const AvailabilityMetrics m = solve_availability(chain);

  const double expected_avail = mu / (lambda + mu);
  EXPECT_NEAR(m.availability, expected_avail, 1e-12);
  EXPECT_NEAR(m.unavailability, 1.0 - expected_avail, 1e-12);
  // Failure frequency = pi_up * lambda.
  EXPECT_NEAR(m.failure_frequency, expected_avail * lambda, 1e-15);
  EXPECT_NEAR(m.mtbf_hours, 1.0 / (expected_avail * lambda), 1e-6);
  // MTTR of a 2-state chain is exactly 1/mu.
  EXPECT_NEAR(m.mttr_hours, 1.0 / mu, 1e-9);
  EXPECT_NEAR(m.expected_reward_rate, expected_avail, 1e-12);
}

TEST(Metrics, DowntimeMinutesMatchesUnavailability) {
  const ctmc::Ctmc chain = two_state(0.001, 1.0);
  const AvailabilityMetrics m = solve_availability(chain);
  EXPECT_NEAR(m.downtime_minutes_per_year,
              m.unavailability * kMinutesPerYear, 1e-9);
}

TEST(Metrics, AllUpChainHasInfiniteMtbf) {
  ctmc::CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const AvailabilityMetrics m = solve_availability(b.build());
  EXPECT_DOUBLE_EQ(m.availability, 1.0);
  EXPECT_TRUE(std::isinf(m.mtbf_hours));
  EXPECT_DOUBLE_EQ(m.mttr_hours, 0.0);
}

TEST(Metrics, PerformabilityRewardCountsDegradedStates) {
  ctmc::CtmcBuilder b;
  b.state("Full", 1.0);
  b.state("Degraded", 0.5);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const AvailabilityMetrics m = solve_availability(b.build());
  // Both states >= 0.5 reward threshold: fully available...
  EXPECT_DOUBLE_EQ(m.availability, 1.0);
  // ...but the expected reward rate reflects the degradation.
  EXPECT_NEAR(m.expected_reward_rate, 0.75, 1e-12);
}

TEST(Metrics, ThresholdSeparatesDegradedFromUp) {
  ctmc::CtmcBuilder b;
  b.state("Full", 1.0);
  b.state("Degraded", 0.5);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const ctmc::Ctmc chain = b.build();
  const auto steady = ctmc::solve_steady_state(chain);
  const AvailabilityMetrics strict =
      availability_metrics(chain, steady, 0.75);
  EXPECT_NEAR(strict.availability, 0.5, 1e-12);
}

TEST(Metrics, FrequencyCountsOnlyUpToDownCuts) {
  // Up <-> Degraded (both up), Degraded -> Down -> Up.
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Degraded", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 2.0).rate(1, 0, 5.0).rate(1, 2, 1.0).rate(2, 0, 10.0);
  const ctmc::Ctmc chain = b.build();
  const auto steady = ctmc::solve_steady_state(chain);
  const AvailabilityMetrics m = availability_metrics(chain, steady);
  // Only the Degraded -> Down edge crosses the cut.
  EXPECT_NEAR(m.failure_frequency, steady.probability(1) * 1.0, 1e-15);
}

TEST(TwoStateEquivalent, PreservesAvailabilityAndFrequency) {
  ctmc::CtmcBuilder b;
  b.state("Ok", 1.0);
  b.state("Recovering", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 0.01).rate(1, 0, 12.0).rate(1, 2, 0.02).rate(2, 0, 2.0);
  const ctmc::Ctmc chain = b.build();
  const auto steady = ctmc::solve_steady_state(chain);
  const AvailabilityMetrics m = availability_metrics(chain, steady);
  const TwoStateEquivalent eq = two_state_equivalent(chain, steady);

  EXPECT_NEAR(eq.availability(), m.availability, 1e-12);
  // The collapsed chain's failure frequency: pi_up * lambda_eq.
  EXPECT_NEAR(eq.lambda_eq * m.availability, m.failure_frequency, 1e-15);
  EXPECT_NEAR(eq.mu_eq * m.unavailability, m.failure_frequency, 1e-15);
}

TEST(TwoStateEquivalent, AllUpChainYieldsZeroLambda) {
  ctmc::CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const ctmc::Ctmc chain = b.build();
  const auto eq = two_state_equivalent(chain, ctmc::solve_steady_state(chain));
  EXPECT_DOUBLE_EQ(eq.lambda_eq, 0.0);
  EXPECT_DOUBLE_EQ(eq.availability(), 1.0);
}

TEST(TwoStateEquivalent, NoReachableDownStateGivesInfiniteRepairRate) {
  // A down state exists but no transition reaches it: P(down) = 0, so
  // the conditional repair rate is undefined; the abstraction must
  // still collapse to a chain with availability exactly 1, not NaN.
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Spare", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 2.0).rate(1, 0, 3.0).rate(2, 0, 1.0);
  const ctmc::Ctmc chain = b.build();
  const auto eq = two_state_equivalent(chain, ctmc::solve_steady_state(chain));
  EXPECT_TRUE(std::isinf(eq.mu_eq));
  EXPECT_FALSE(std::isnan(eq.lambda_eq));
  EXPECT_DOUBLE_EQ(eq.availability(), 1.0);
}

TEST(DowntimeByState, AttributionSumsToTotal) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("DownA", 0.0);
  b.state("DownB", 0.0);
  b.rate(0, 1, 0.01).rate(0, 2, 0.02).rate(1, 0, 1.0).rate(2, 0, 0.5);
  const ctmc::Ctmc chain = b.build();
  const auto steady = ctmc::solve_steady_state(chain);
  const AvailabilityMetrics m = availability_metrics(chain, steady);
  const auto attribution = downtime_by_state(chain, steady);
  ASSERT_EQ(attribution.size(), 2u);
  double sum = 0.0;
  for (const auto& entry : attribution) sum += entry.minutes_per_year;
  EXPECT_NEAR(sum, m.downtime_minutes_per_year, 1e-9);
  // DownB holds more probability mass (slower repair, higher rate).
  EXPECT_GT(attribution[1].minutes_per_year,
            attribution[0].minutes_per_year);
}

TEST(Metrics, SizeMismatchThrows) {
  const ctmc::Ctmc chain = two_state(1.0, 1.0);
  ctmc::SteadyState bogus;
  bogus.probabilities = {1.0};
  EXPECT_THROW((void)availability_metrics(chain, bogus),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::core

#include "stats/estimators.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rascal::stats {
namespace {

// --- Equation (1): the paper's FIR bound -------------------------------

TEST(CoverageBound, PaperFirAt95Percent) {
  // 3,287 successful injections, zero failures: FIR < 0.1% at 95%.
  const double fir = imperfect_recovery_upper_bound(3287, 3287, 0.95);
  EXPECT_LT(fir, 0.001);
  EXPECT_GT(fir, 0.0008);  // the bound is close to 0.1%, not trivially small
}

TEST(CoverageBound, PaperFirAt995Percent) {
  // ... and below 0.2% at the 99.5% confidence level.
  const double fir = imperfect_recovery_upper_bound(3287, 3287, 0.995);
  EXPECT_LT(fir, 0.002);
  EXPECT_GT(fir, 0.0015);
}

TEST(CoverageBound, MoreTrialsTightenTheBound) {
  const double fir_small = imperfect_recovery_upper_bound(100, 100, 0.95);
  const double fir_large = imperfect_recovery_upper_bound(10000, 10000, 0.95);
  EXPECT_LT(fir_large, fir_small);
}

TEST(CoverageBound, HigherConfidenceLoosensTheBound) {
  const double c90 = coverage_lower_bound(1000, 1000, 0.90);
  const double c99 = coverage_lower_bound(1000, 1000, 0.99);
  EXPECT_GT(c90, c99);
}

TEST(CoverageBound, HandlesObservedFailures) {
  // With failures observed the bound must sit below s/n.
  const double c = coverage_lower_bound(1000, 990, 0.95);
  EXPECT_LT(c, 0.99);
  EXPECT_GT(c, 0.97);
}

TEST(CoverageBound, InputValidation) {
  EXPECT_THROW((void)coverage_lower_bound(10, 11, 0.95),
               std::invalid_argument);
  EXPECT_THROW((void)coverage_lower_bound(10, 10, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)coverage_lower_bound(10, 10, 0.0),
               std::invalid_argument);
}

// Regression: an all-failures campaign used to throw here, killing
// the report path for any run with zero successes.  The degenerate
// Clopper-Pearson bounds are 0 (coverage) and 1 (FIR).
TEST(CoverageBound, ZeroSuccessesGivesDegenerateBounds) {
  EXPECT_DOUBLE_EQ(coverage_lower_bound(10, 0, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(coverage_lower_bound(3287, 0, 0.995), 0.0);
  EXPECT_DOUBLE_EQ(imperfect_recovery_upper_bound(10, 0, 0.95), 1.0);
  // Zero trials is the extreme no-information case: still bounded.
  EXPECT_DOUBLE_EQ(coverage_lower_bound(0, 0, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(imperfect_recovery_upper_bound(0, 0, 0.95), 1.0);
}

TEST(ClopperPearson, MatchesFDistributionForm) {
  // The beta-quantile form and the F form are algebraically the same
  // lower bound at confidence 1 - alpha when using alpha (one-sided).
  const auto interval = clopper_pearson(3287, 3287, 0.90);  // alpha/2 = 0.05
  const double lower_f = coverage_lower_bound(3287, 3287, 0.95);
  EXPECT_NEAR(interval.lower, lower_f, 1e-10);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
}

TEST(ClopperPearson, ZeroSuccessesGivesZeroLower) {
  const auto interval = clopper_pearson(50, 0, 0.95);
  EXPECT_DOUBLE_EQ(interval.lower, 0.0);
  EXPECT_GT(interval.upper, 0.0);
  EXPECT_LT(interval.upper, 0.12);
}

TEST(ClopperPearson, AllSuccessesGivesUnitUpper) {
  const auto interval = clopper_pearson(50, 50, 0.95);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
  EXPECT_GT(interval.lower, 0.9);
  EXPECT_LT(interval.lower, 1.0);
}

// --- Equation (2): the paper's failure-rate bound -----------------------

TEST(FailureRateBound, Paper24DayTestAt95Percent) {
  // 24 days x 2 instances = 48 machine-days, 0 failures:
  // lambda_max = chi2_{0.95}(2) / (2 * 48) = 1/16 per day.
  const double lambda = failure_rate_upper_bound(48.0, 0, 0.95);
  EXPECT_NEAR(1.0 / lambda, 16.0, 0.05);
}

TEST(FailureRateBound, Paper24DayTestAt995Percent) {
  // ... and 1/9 per day at 99.5%.
  const double lambda = failure_rate_upper_bound(48.0, 0, 0.995);
  EXPECT_NEAR(1.0 / lambda, 9.06, 0.05);
}

TEST(FailureRateBound, ScalesInverselyWithExposure) {
  const double short_run = failure_rate_upper_bound(10.0, 0, 0.95);
  const double long_run = failure_rate_upper_bound(100.0, 0, 0.95);
  EXPECT_NEAR(short_run / long_run, 10.0, 1e-9);
}

TEST(FailureRateBound, MoreFailuresRaiseTheBound) {
  EXPECT_LT(failure_rate_upper_bound(100.0, 0, 0.95),
            failure_rate_upper_bound(100.0, 3, 0.95));
}

TEST(FailureRateBound, BoundExceedsMle) {
  const double mle = failure_rate_mle(100.0, 5);
  EXPECT_DOUBLE_EQ(mle, 0.05);
  EXPECT_GT(failure_rate_upper_bound(100.0, 5, 0.95), mle);
}

TEST(FailureRateInterval, ContainsMleAndOrdersEndpoints) {
  const auto interval = failure_rate_interval(100.0, 5, 0.9);
  EXPECT_LT(interval.lower, 0.05);
  EXPECT_GT(interval.upper, 0.05);
}

TEST(FailureRateInterval, ZeroFailuresHasZeroLower) {
  const auto interval = failure_rate_interval(100.0, 0, 0.9);
  EXPECT_DOUBLE_EQ(interval.lower, 0.0);
  EXPECT_GT(interval.upper, 0.0);
}

TEST(FailureRate, InputValidation) {
  EXPECT_THROW((void)failure_rate_upper_bound(0.0, 0, 0.95),
               std::invalid_argument);
  EXPECT_THROW((void)failure_rate_upper_bound(10.0, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)failure_rate_mle(0.0, 1), std::invalid_argument);
}

// The paper's conservative choice: La = 52/year ("once a week") must
// exceed the 95% upper bound from the 24-day test (1/16 days ~ 22.8/yr).
TEST(FailureRateBound, PaperChoiceIsConservative) {
  const double bound_per_day = failure_rate_upper_bound(48.0, 0, 0.95);
  const double bound_per_year = bound_per_day * 365.25;
  EXPECT_GT(52.0, bound_per_year);
}

}  // namespace
}  // namespace rascal::stats

#include "io/model_file.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/steady_state.h"
#include "models/hadb_pair.h"
#include "models/params.h"

namespace rascal::io {
namespace {

constexpr const char* kSimpleModel = R"(
# a two-state repairable component
model simple component
param lambda 0.01
param mu     2.0
state Up   reward 1
state Down reward 0
rate Up Down lambda
rate Down Up mu
)";

TEST(ModelFile, ParsesSimpleModel) {
  const ModelFile file = parse_model_text(kSimpleModel);
  EXPECT_EQ(file.name, "simple component");
  EXPECT_DOUBLE_EQ(file.parameters.get("lambda"), 0.01);
  EXPECT_EQ(file.model.num_states(), 2u);
  const ctmc::Ctmc chain = file.bind();
  EXPECT_DOUBLE_EQ(chain.rate(chain.state("Up"), chain.state("Down")), 0.01);
  EXPECT_DOUBLE_EQ(chain.rate(chain.state("Down"), chain.state("Up")), 2.0);
}

TEST(ModelFile, OverridesReplaceDefaults) {
  const ModelFile file = parse_model_text(kSimpleModel);
  const ctmc::Ctmc chain = file.bind(expr::ParameterSet{{"lambda", 0.5}});
  EXPECT_DOUBLE_EQ(chain.rate(chain.state("Up"), chain.state("Down")), 0.5);
}

TEST(ModelFile, ParamsMayReferenceEarlierParams) {
  const ModelFile file = parse_model_text(R"(
param a 2/8760
param b a*3
state X reward 1
state Y reward 0
rate X Y b
rate Y X 1
)");
  EXPECT_NEAR(file.parameters.get("b"), 6.0 / 8760.0, 1e-15);
}

TEST(ModelFile, CommentsAndBlankLinesIgnored) {
  const ModelFile file = parse_model_text(
      "\n# full-line comment\nstate A reward 1  # trailing\n"
      "state B reward 0\nrate A B 1 # r\nrate B A 2\n");
  EXPECT_EQ(file.model.num_states(), 2u);
}

TEST(ModelFile, ReportsLineNumbersOnErrors) {
  try {
    (void)parse_model_text("state A reward 1\nbogus directive\n");
    FAIL() << "expected ModelFileError";
  } catch (const ModelFileError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(ModelFile, RejectsMalformedDirectives) {
  EXPECT_THROW((void)parse_model_text("param only_name\nstate A reward 1\n"),
               ModelFileError);
  EXPECT_THROW((void)parse_model_text("state A 1\n"), ModelFileError);
  EXPECT_THROW(
      (void)parse_model_text("state A reward 1\nrate A B 1\n"),
      ModelFileError);  // unknown state B
  EXPECT_THROW(
      (void)parse_model_text("state A reward 1\nrate A A ((\nrate A A 1\n"),
      ModelFileError);  // bad expression
  EXPECT_THROW((void)parse_model_text("param x 1\nparam x 2\n"),
               ModelFileError);
  EXPECT_THROW((void)parse_model_text("state A reward 1\nstate A reward 0\n"),
               ModelFileError);
}

TEST(ModelFile, RejectsEmptyModels) {
  EXPECT_THROW((void)parse_model_text("# nothing\n"), ModelFileError);
  EXPECT_THROW((void)parse_model_text("state A reward 1\n"), ModelFileError);
}

TEST(ModelFile, LoadModelReportsMissingFile) {
  EXPECT_THROW((void)load_model("/nonexistent/model.rasc"),
               std::runtime_error);
}

// The shipped .rasc files must parse and reproduce the C++ models.
TEST(ModelFile, ShippedHadbPairFileMatchesBuiltinModel) {
  const ModelFile file = load_model(std::string(RASCAL_SOURCE_DIR) +
                                    "/examples/models/hadb_pair.rasc");
  const auto from_file = core::solve_availability(file.bind());
  const auto builtin = core::solve_availability(
      models::hadb_pair_model().bind(models::default_parameters()));
  EXPECT_NEAR(from_file.unavailability, builtin.unavailability,
              builtin.unavailability * 1e-12);
  EXPECT_NEAR(from_file.mtbf_hours, builtin.mtbf_hours,
              builtin.mtbf_hours * 1e-12);
}

TEST(ModelFile, ShippedAppServerFileSolves) {
  const ModelFile file = load_model(std::string(RASCAL_SOURCE_DIR) +
                                    "/examples/models/app_server_2inst.rasc");
  const auto metrics = core::solve_availability(file.bind());
  // Figure 4 submodel: ~2.35 min/yr downtime (Table 2 attribution).
  EXPECT_NEAR(metrics.downtime_minutes_per_year, 2.35, 0.05);
}

}  // namespace
}  // namespace rascal::io

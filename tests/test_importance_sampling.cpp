#include "sim/importance_sampling.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "models/hadb_pair.h"
#include "models/params.h"
#include "sim/ctmc_simulator.h"

namespace rascal::sim {
namespace {

ctmc::Ctmc two_state(double lambda, double mu) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

TEST(ImportanceSampling, TwoStateMatchesClosedForm) {
  const double lambda = 1e-3;
  const double mu = 10.0;
  const double exact = lambda / (lambda + mu);
  ImportanceSamplingOptions options;
  options.cycles = 20000;
  options.plain_cycles = 20000;
  const auto result =
      estimate_unavailability(two_state(lambda, mu), options);
  EXPECT_NEAR(result.unavailability, exact, 0.05 * exact);
  EXPECT_LT(result.unavailability_ci95.lower, exact);
  EXPECT_GT(result.unavailability_ci95.upper, exact);
}

TEST(ImportanceSampling, NailsRareUnavailabilityOnHadbPair) {
  // Analytic per-pair unavailability is ~1.1e-6 — far beyond what a
  // comparable plain simulation can see.  The biased estimator must
  // land within a few percent.
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  const auto exact = core::solve_availability(chain).unavailability;

  ImportanceSamplingOptions options;
  options.cycles = 40000;
  options.plain_cycles = 40000;
  const auto result = estimate_unavailability(chain, options);
  EXPECT_NEAR(result.unavailability, exact, 0.10 * exact);
  EXPECT_LT(result.relative_half_width, 0.10);
  // Biasing makes downtime a common observation instead of a freak
  // event.
  EXPECT_GT(result.cycles_observing_downtime, options.cycles / 100);
}

TEST(ImportanceSampling, BeatsPlainEstimatorAtEqualBudget) {
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  const auto exact = core::solve_availability(chain).unavailability;

  ImportanceSamplingOptions biased;
  biased.cycles = 5000;
  biased.plain_cycles = 5000;
  const auto with_is = estimate_unavailability(chain, biased);

  ImportanceSamplingOptions plain = biased;
  plain.failure_bias = 0.0;  // disables biasing entirely
  const auto without_is = estimate_unavailability(chain, plain);

  const double err_is = std::abs(with_is.unavailability - exact);
  const double err_plain = std::abs(without_is.unavailability - exact);
  // At 5k cycles the unbiased estimator almost surely saw zero
  // downtime cycles (error ~ 100% of the value); IS is far closer.
  EXPECT_LT(err_is, err_plain);
  EXPECT_LT(with_is.relative_half_width, 0.5);
  EXPECT_GT(with_is.cycles_observing_downtime,
            without_is.cycles_observing_downtime);
}

TEST(ImportanceSampling, UnbiasedModeMatchesTrajectorySimulation) {
  // failure_bias = 0 must agree with the plain trajectory simulator.
  const auto chain = two_state(0.5, 2.0);
  ImportanceSamplingOptions options;
  options.cycles = 30000;
  options.plain_cycles = 30000;
  options.failure_bias = 0.0;
  const auto regenerative = estimate_unavailability(chain, options);

  CtmcSimOptions sim_options;
  sim_options.duration = 30000.0;
  sim_options.replications = 4;
  const auto trajectory = simulate_ctmc(chain, sim_options);
  EXPECT_NEAR(regenerative.unavailability, 1.0 - trajectory.availability,
              0.01);
}

TEST(ImportanceSampling, DefaultPredicateSeparatesFailuresFromRepairs) {
  const auto chain =
      models::hadb_pair_model().bind(models::default_parameters());
  const auto predicate = default_failure_predicate();
  for (const ctmc::Transition& t : chain.transitions()) {
    const bool is_recovery =
        chain.state_name(t.to) == "Ok" && t.rate > 0.5;
    if (is_recovery) {
      EXPECT_FALSE(predicate(chain, t))
          << chain.state_name(t.from) << "->" << chain.state_name(t.to);
    }
    if (chain.state_name(t.to) == "2_Down") {
      EXPECT_TRUE(predicate(chain, t))
          << chain.state_name(t.from) << "->" << chain.state_name(t.to);
    }
  }
}

TEST(ImportanceSampling, Validation) {
  const auto chain = two_state(0.1, 1.0);
  ImportanceSamplingOptions options;
  options.cycles = 0;
  EXPECT_THROW((void)estimate_unavailability(chain, options),
               std::invalid_argument);
  options.cycles = 10;
  options.regeneration_state = 9;
  EXPECT_THROW((void)estimate_unavailability(chain, options),
               std::invalid_argument);
  options.regeneration_state = 1;  // a down state
  EXPECT_THROW((void)estimate_unavailability(chain, options),
               std::invalid_argument);
  options.regeneration_state = 0;
  options.failure_bias = 1.0;
  EXPECT_THROW((void)estimate_unavailability(chain, options),
               std::invalid_argument);
}

TEST(ImportanceSampling, DetectsAbsorbingStates) {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Trap", 0.0);
  b.rate(0, 1, 1.0);  // no way back
  ImportanceSamplingOptions options;
  options.cycles = 10;
  options.plain_cycles = 10;
  EXPECT_THROW((void)estimate_unavailability(b.build(), options),
               std::domain_error);
}

}  // namespace
}  // namespace rascal::sim

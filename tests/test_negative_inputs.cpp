// Hostile-input tests: malformed expressions and model files must
// produce a typed error, never a crash, hang, or silent acceptance.
// The deep-nesting cases guard the parser's recursion bound — without
// it "((((..." walks off the stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "expr/expression.h"
#include "expr/lexer.h"
#include "io/model_file.h"
#include "io/number_parse.h"

namespace rascal {
namespace {

// ---- expression parser ------------------------------------------------

TEST(ExprNegative, RejectsDeeplyNestedParentheses) {
  const std::string input =
      std::string(100000, '(') + "1" + std::string(100000, ')');
  EXPECT_THROW((void)expr::Expression::parse(input), expr::ParseError);
}

TEST(ExprNegative, RejectsDeepUnaryMinusChain) {
  EXPECT_THROW((void)expr::Expression::parse(std::string(100000, '-') + "1"),
               expr::ParseError);
}

TEST(ExprNegative, RejectsDeeplyNestedCalls) {
  std::string input = "1";
  for (int i = 0; i < 100000; ++i) input = "exp(" + input + ")";
  EXPECT_THROW((void)expr::Expression::parse(input), expr::ParseError);
}

TEST(ExprNegative, AcceptsModerateNesting) {
  // The depth bound must not reject the expressions real models use.
  std::string input = "1";
  for (int i = 0; i < 100; ++i) input = "(" + input + ")";
  EXPECT_DOUBLE_EQ(
      expr::Expression::parse(input).evaluate(expr::ParameterSet{}), 1.0);
}

TEST(ExprNegative, RejectsMalformedSyntax) {
  const char* cases[] = {
      "",        " ",      "(",      ")",     "()",    "1 +",   "+ 1",
      "* 2",     "1 * * 2", "1..2",  "2^",    "f(",    "f(1,",  "f(1,)",
      "a b",     "1 2",     "(1",    "1)",    ",",     "1,2",
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)expr::Expression::parse(text), expr::ParseError)
        << "input: \"" << text << "\"";
  }
}

TEST(ExprNegative, RejectsIllegalCharacters) {
  const char* cases[] = {"1 @ 2", "$x", "x;", "\x01", "a~b", "x?y"};
  for (const char* text : cases) {
    EXPECT_THROW((void)expr::Expression::parse(text), expr::ParseError)
        << "input: \"" << text << "\"";
  }
}

TEST(ExprNegative, ErrorsCarrySourcePosition) {
  try {
    (void)expr::Expression::parse("1 + (2 *");
    FAIL() << "expected ParseError";
  } catch (const expr::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
  }
}

// ---- model-file loader ------------------------------------------------

io::ModelFileError parse_failure(const std::string& text) {
  try {
    (void)io::parse_model_text(text);
  } catch (const io::ModelFileError& e) {
    return e;
  }
  ADD_FAILURE() << "accepted malformed model:\n" << text;
  return io::ModelFileError("accepted", 0);
}

TEST(ModelFileNegative, RejectsStructurallyBrokenModels) {
  const char* cases[] = {
      "",                                    // empty file
      "model only a name",                   // no states
      "state A reward 1",                    // no transitions
      "bogus directive",                     // unknown directive
      "param X",                             // missing value
      "param X 1\nparam X 2",                // duplicate parameter
      "state A reward 1\nstate A reward 0",  // duplicate state
      "state A 1",                           // missing 'reward' keyword
      "state A reward",                      // missing reward value
      "rate A B 1",                          // rate before states exist
      "state A reward 1\nrate A B 1",        // unknown target state
      "state A reward 1\nstate B reward 0\nrate A B",  // missing rate expr
  };
  for (const char* text : cases) {
    (void)parse_failure(text);
  }
}

TEST(ModelFileNegative, RejectsMalformedExpressionsInsideDirectives) {
  (void)parse_failure("param X 1 +\nstate A reward 1\nrate A A 1");
  (void)parse_failure("state A reward (1\nstate B reward 0\nrate A B 1");
  (void)parse_failure(
      "state A reward 1\nstate B reward 0\nrate A B 1 * * 2");
}

TEST(ModelFileNegative, DeepNestingInParamValueErrorsCleanly) {
  const std::string bomb =
      "param X " + std::string(100000, '(') + "1" + std::string(100000, ')');
  const auto error = parse_failure(bomb + "\nstate A reward 1");
  EXPECT_EQ(error.line(), 1u);
}

TEST(ModelFileNegative, ErrorsReportTheOffendingLine) {
  const auto error =
      parse_failure("model ok\nstate A reward 1\nrate A Z 1\n");
  EXPECT_EQ(error.line(), 3u);
  EXPECT_NE(std::string(error.what()).find("Z"), std::string::npos);
}

TEST(ModelFileNegative, MissingFileThrowsRuntimeError) {
  EXPECT_THROW((void)io::load_model("/nonexistent/model.rasc"),
               std::runtime_error);
}

TEST(ModelFileNegative, UnknownParameterSurfacesAtBindTime) {
  const auto file = io::parse_model_text(
      "state A reward 1\nstate B reward 0\nrate A B lambda_undefined\n"
      "rate B A 1");
  EXPECT_THROW((void)file.bind({}), std::exception);
}

// ---- strict numeric parsing (io/number_parse) -------------------------
//
// Regression tests for two CLI bugs: `--set lambda=1.5junk` was
// silently accepted (raw std::stod ignored the trailing garbage) and
// non-finite values ("nan", "inf", "1e999") flowed into the solvers.
// Every CLI numeric flag now routes through these parsers.

TEST(NumberParseNegative, RejectsTrailingGarbage) {
  const char* cases[] = {"1.5junk", "1.5 ", " 2", "0x10", "1,5",
                         "1.5e", "2.0.0", "--3", "1e5x"};
  double value = 0.0;
  for (const char* text : cases) {
    EXPECT_FALSE(io::parse_finite_double(text, value))
        << "accepted: \"" << text << "\"";
  }
}

TEST(NumberParseNegative, RejectsNonFiniteValues) {
  const char* cases[] = {"nan",  "NaN",  "-nan", "inf",   "INF",
                         "-inf", "infinity", "1e999", "-1e999"};
  double value = 0.0;
  for (const char* text : cases) {
    EXPECT_FALSE(io::parse_finite_double(text, value))
        << "accepted: \"" << text << "\"";
  }
}

TEST(NumberParseNegative, AcceptsOrdinaryFiniteNumbers) {
  double value = 0.0;
  ASSERT_TRUE(io::parse_finite_double("1.5", value));
  EXPECT_DOUBLE_EQ(value, 1.5);
  ASSERT_TRUE(io::parse_finite_double("-2e-4", value));
  EXPECT_DOUBLE_EQ(value, -2e-4);
  ASSERT_TRUE(io::parse_finite_double("0", value));
  EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(NumberParseNegative, SizeRejectsSignsGarbageAndEmpty) {
  std::size_t count = 0;
  const char* cases[] = {"", "-1", "+1", "3.5", "12junk", "junk", " 7"};
  for (const char* text : cases) {
    EXPECT_FALSE(io::parse_size(text, count))
        << "accepted: \"" << text << "\"";
  }
  ASSERT_TRUE(io::parse_size("42", count));
  EXPECT_EQ(count, 42u);
}

TEST(NumberParseNegative, Uint64RejectsSignsAndGarbage) {
  std::uint64_t value = 0;
  const char* cases[] = {"", "-1", "+2", "1.0", "5x", "0b11"};
  for (const char* text : cases) {
    EXPECT_FALSE(io::parse_uint64(text, value))
        << "accepted: \"" << text << "\"";
  }
  ASSERT_TRUE(io::parse_uint64("18446744073709551615", value));
  EXPECT_EQ(value, 18446744073709551615ull);
}

}  // namespace
}  // namespace rascal

#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rascal::stats {
namespace {

TEST(LogGamma, MatchesFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(M_PI)), 1e-12);
  EXPECT_THROW((void)log_gamma(0.0), std::domain_error);
}

TEST(IncompleteGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 700.0), 1.0, 1e-12);
}

TEST(IncompleteGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13);
  }
}

TEST(IncompleteGamma, PPlusQIsOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 3.0, 20.0, 80.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGamma, InverseRoundTrips) {
  for (double a : {0.5, 1.0, 3.0, 12.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.995}) {
      const double x = inverse_regularized_gamma_p(a, p);
      EXPECT_NEAR(regularized_gamma_p(a, x), p, 1e-10)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(IncompleteGamma, DomainChecks) {
  EXPECT_THROW((void)regularized_gamma_p(-1.0, 1.0), std::domain_error);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0), std::domain_error);
  EXPECT_THROW((void)inverse_regularized_gamma_p(1.0, 1.0),
               std::domain_error);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(regularized_beta(1.0, 1.0, x), x, 1e-13);
  }
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(regularized_beta(2.0, 1.0, 0.3), 0.09, 1e-13);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_beta(3.0, 5.0, 0.4),
              1.0 - regularized_beta(5.0, 3.0, 0.6), 1e-13);
}

TEST(IncompleteBeta, InverseRoundTrips) {
  for (double a : {0.5, 2.0, 7.0}) {
    for (double b : {1.0, 3.0, 9.0}) {
      for (double p : {0.05, 0.5, 0.95}) {
        const double x = inverse_regularized_beta(a, b, p);
        EXPECT_NEAR(regularized_beta(a, b, x), p, 1e-10);
      }
    }
  }
}

TEST(IncompleteBeta, DomainChecks) {
  EXPECT_THROW((void)regularized_beta(0.0, 1.0, 0.5), std::domain_error);
  EXPECT_THROW((void)regularized_beta(1.0, 1.0, 1.5), std::domain_error);
}

TEST(StandardNormal, CdfKnownValues) {
  EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(standard_normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(standard_normal_cdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(StandardNormal, QuantileInvertsCdf) {
  for (double p : {1e-10, 0.001, 0.025, 0.5, 0.8, 0.975, 0.9999}) {
    EXPECT_NEAR(standard_normal_cdf(standard_normal_quantile(p)), p,
                1e-12 + p * 1e-12);
  }
}

TEST(StandardNormal, QuantileSymmetry) {
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(standard_normal_quantile(p),
                -standard_normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(StandardNormal, QuantileDomainChecks) {
  EXPECT_THROW((void)standard_normal_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)standard_normal_quantile(1.0), std::domain_error);
}

}  // namespace
}  // namespace rascal::stats

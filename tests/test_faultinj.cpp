#include "faultinj/injector.h"

#include <gtest/gtest.h>

#include "faultinj/testbed.h"

namespace rascal::faultinj {
namespace {

TEST(Testbed, JsasLabMatchesTable1Topology) {
  const Testbed bed = Testbed::jsas_lab();
  EXPECT_EQ(bed.hosts_with_role(HostRole::kAppServer).size(), 2u);
  EXPECT_EQ(bed.hosts_with_role(HostRole::kHadbNode).size(), 4u);
  EXPECT_EQ(bed.hosts_with_role(HostRole::kLoadBalancer).size(), 1u);
  EXPECT_EQ(bed.hosts_with_role(HostRole::kDatabase).size(), 1u);
  EXPECT_EQ(bed.hosts_with_role(HostRole::kDirectory).size(), 1u);
  // Two DRU pairs of two nodes each.
  std::size_t pair0 = 0;
  std::size_t pair1 = 0;
  for (HostId id : bed.hosts_with_role(HostRole::kHadbNode)) {
    (*bed.host(id).hadb_pair == 0 ? pair0 : pair1) += 1;
  }
  EXPECT_EQ(pair0, 2u);
  EXPECT_EQ(pair1, 2u);
  EXPECT_TRUE(bed.service_available());
}

TEST(Testbed, FaultAndRecoverySurface) {
  Testbed bed = Testbed::jsas_lab();
  const HostId as = bed.hosts_with_role(HostRole::kAppServer)[0];
  EXPECT_TRUE(bed.functional(as));
  bed.kill_process(as, 0);
  EXPECT_FALSE(bed.functional(as));
  bed.restart_processes(as);
  EXPECT_TRUE(bed.functional(as));

  bed.disconnect_network(as);
  EXPECT_FALSE(bed.functional(as));
  bed.reconnect_network(as);
  EXPECT_TRUE(bed.functional(as));

  bed.power_off(as);
  EXPECT_FALSE(bed.functional(as));
  // Processes cannot restart without power.
  EXPECT_THROW(bed.restart_processes(as), std::logic_error);
  bed.restore(as);
  EXPECT_TRUE(bed.functional(as));
}

TEST(Testbed, SingleFaultsAreTolerated) {
  // Any single host failure must keep the service available — this is
  // exactly what the paper's manual fault injections verified.
  for (HostRole role : {HostRole::kAppServer, HostRole::kHadbNode}) {
    Testbed bed = Testbed::jsas_lab();
    const HostId victim = bed.hosts_with_role(role)[0];
    bed.power_off(victim);
    EXPECT_TRUE(bed.service_available());
  }
}

TEST(Testbed, DoubleFaultsInAPairTakeServiceDown) {
  Testbed bed = Testbed::jsas_lab();
  std::vector<HostId> pair0_nodes;
  for (HostId id : bed.hosts_with_role(HostRole::kHadbNode)) {
    if (*bed.host(id).hadb_pair == 0) pair0_nodes.push_back(id);
  }
  ASSERT_EQ(pair0_nodes.size(), 2u);
  bed.power_off(pair0_nodes[0]);
  EXPECT_TRUE(bed.service_available());
  bed.power_off(pair0_nodes[1]);
  EXPECT_FALSE(bed.service_available());
}

TEST(Testbed, NodesInDifferentPairsAreTolerated) {
  // The paper injected multi-node (not in a pair) failures too.
  Testbed bed = Testbed::jsas_lab();
  HostId in_pair0 = 0;
  HostId in_pair1 = 0;
  for (HostId id : bed.hosts_with_role(HostRole::kHadbNode)) {
    (*bed.host(id).hadb_pair == 0 ? in_pair0 : in_pair1) = id;
  }
  bed.power_off(in_pair0);
  bed.power_off(in_pair1);
  EXPECT_TRUE(bed.service_available());
}

TEST(Testbed, AllAsInstancesDownTakesServiceDown) {
  Testbed bed = Testbed::jsas_lab();
  for (HostId id : bed.hosts_with_role(HostRole::kAppServer)) {
    bed.kill_all_processes(id);
  }
  EXPECT_FALSE(bed.service_available());
}

TEST(Campaign, PerfectRecoveryReproducesPaperOutcome) {
  CampaignOptions options;
  options.trials = 3287;
  const CampaignResult result = run_campaign(options);
  EXPECT_EQ(result.trials, 3287u);
  // All single-fault injections recovered with the service available.
  EXPECT_EQ(result.successes, 3287u);
  // Equation 1 then bounds FIR below 0.1% at 95% and 0.2% at 99.5%.
  EXPECT_LT(result.fir_upper_bound(0.95), 0.001);
  EXPECT_LT(result.fir_upper_bound(0.995), 0.002);
}

TEST(Campaign, RecoveryTimesJustifyConservativeParameters) {
  CampaignOptions options;
  options.trials = 2000;
  const CampaignResult result = run_campaign(options);
  // Measured HADB restart ~40 s: below the model's 1 min parameter.
  EXPECT_GT(result.hadb_restart_times.count(), 100u);
  EXPECT_LT(result.hadb_restart_times.mean(), 1.0 / 60.0);
  EXPECT_GT(result.hadb_restart_times.mean(), 20.0 / 3600.0);
  // Measured spare rebuild ~12 min: below the model's 30 min.
  EXPECT_LT(result.hadb_rebuild_times.mean(), 0.5);
  // Measured AS restart ~25 s: below the model's 90 s.
  EXPECT_LT(result.as_restart_times.mean(), 90.0 / 3600.0);
}

TEST(Campaign, ImperfectRecoveryIsDetected) {
  CampaignOptions options;
  options.trials = 5000;
  options.recovery.true_imperfect_recovery = 0.05;
  const CampaignResult result = run_campaign(options);
  EXPECT_LT(result.successes, result.trials);
  const double observed =
      1.0 - static_cast<double>(result.successes) /
                static_cast<double>(result.trials);
  EXPECT_NEAR(observed, 0.05, 0.015);
  // The 95% bound must cover the truth.
  EXPECT_GT(result.fir_upper_bound(0.95), 0.05 - 0.015);
}

// Regression: a campaign where every recovery fails used to crash
// the report path (the zero-success coverage bound threw).  It must
// instead produce the vacuous-but-valid bound FIR <= 1.
TEST(Campaign, AllFailuresCampaignStillReportsBounds) {
  CampaignOptions options;
  options.trials = 50;
  options.recovery.true_imperfect_recovery = 1.0;
  const CampaignResult result = run_campaign(options);
  EXPECT_EQ(result.successes, 0u);
  double bound = 0.0;
  EXPECT_NO_THROW(bound = result.fir_upper_bound(0.95));
  EXPECT_DOUBLE_EQ(bound, 1.0);
}

TEST(Campaign, DeterministicGivenSeed) {
  CampaignOptions options;
  options.trials = 500;
  const auto a = run_campaign(options);
  const auto b = run_campaign(options);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.hadb_restart_times.mean(),
                   b.hadb_restart_times.mean());
}

TEST(Campaign, CyclesThroughAllFaultClasses) {
  CampaignOptions options;
  options.trials = 16;
  const auto result = run_campaign(options);
  std::set<std::string> seen;
  for (const InjectionRecord& r : result.records) {
    seen.insert(to_string(r.fault));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Campaign, FluctuatesWorkloadAndModes) {
  CampaignOptions options;
  options.trials = 2000;
  const auto result = run_campaign(options);
  // All workload levels appear...
  for (std::size_t level = 0; level < 3; ++level) {
    EXPECT_GT(result.recovery_by_workload[level].count(), 400u) << level;
  }
  // ...and the rare modes are actually exercised.
  std::size_t repair = 0;
  std::size_t reorg = 0;
  for (const InjectionRecord& r : result.records) {
    repair += r.mode == SystemMode::kRepair ? 1 : 0;
    reorg += r.mode == SystemMode::kDataReorganization ? 1 : 0;
  }
  EXPECT_GT(repair, 50u);
  EXPECT_GT(reorg, 50u);
}

TEST(Campaign, RecoveryIsSlowerUnderFullLoad) {
  CampaignOptions options;
  options.trials = 4000;
  const auto result = run_campaign(options);
  const auto& idle =
      result.recovery_by_workload[static_cast<std::size_t>(
          WorkloadLevel::kIdle)];
  const auto& full =
      result.recovery_by_workload[static_cast<std::size_t>(
          WorkloadLevel::kFullyLoaded)];
  EXPECT_GT(full.mean(), idle.mean());
}

TEST(Campaign, WorkloadAndModeNamesRender) {
  EXPECT_EQ(to_string(WorkloadLevel::kIdle), "idle");
  EXPECT_EQ(to_string(WorkloadLevel::kFullyLoaded), "fully-loaded");
  EXPECT_EQ(to_string(SystemMode::kDataReorganization),
            "data-reorganization");
}

TEST(Campaign, RejectsZeroTrials) {
  CampaignOptions options;
  options.trials = 0;
  EXPECT_THROW((void)run_campaign(options), std::invalid_argument);
}

TEST(Longevity, ZeroTrueRateObservesNoFailures) {
  stats::RandomEngine rng(1);
  EXPECT_EQ(simulate_longevity(24.0, 2, 0.0, rng), 0u);
}

TEST(Longevity, FailureCountTracksExposure) {
  stats::RandomEngine rng(2);
  // 1000 machine-days at 0.1/day: ~100 failures.
  const auto failures = simulate_longevity(500.0, 2, 0.1, rng);
  EXPECT_NEAR(static_cast<double>(failures), 100.0, 35.0);
}

TEST(Longevity, Validation) {
  stats::RandomEngine rng(3);
  EXPECT_THROW((void)simulate_longevity(0.0, 2, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_longevity(1.0, 0, 0.1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::faultinj

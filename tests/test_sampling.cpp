#include "stats/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace rascal::stats {
namespace {

const std::vector<ParameterRange> kRanges = {
    {"a", 0.0, 1.0}, {"b", 10.0, 20.0}, {"c", -5.0, 5.0}};

TEST(MonteCarlo, SamplesStayInRange) {
  RandomEngine rng(1);
  const auto samples = monte_carlo_samples(kRanges, 500, rng);
  ASSERT_EQ(samples.size(), 500u);
  for (const Sample& s : samples) {
    ASSERT_EQ(s.size(), 3u);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(s[d], kRanges[d].lo);
      EXPECT_LE(s[d], kRanges[d].hi);
    }
  }
}

TEST(MonteCarlo, MeanApproachesRangeMidpoint) {
  RandomEngine rng(2);
  const auto samples = monte_carlo_samples(kRanges, 20000, rng);
  double mean_b = 0.0;
  for (const Sample& s : samples) mean_b += s[1];
  mean_b /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean_b, 15.0, 0.1);
}

TEST(MonteCarlo, RejectsInvertedRange) {
  RandomEngine rng(3);
  EXPECT_THROW(
      (void)monte_carlo_samples({{"bad", 2.0, 1.0}}, 10, rng),
      std::invalid_argument);
}

TEST(LatinHypercube, OneSamplePerStratum) {
  RandomEngine rng(4);
  const std::size_t n = 100;
  const auto samples = latin_hypercube_samples(kRanges, n, rng);
  ASSERT_EQ(samples.size(), n);
  // Each dimension: exactly one sample in each of the n equiprobable
  // cells — the defining LHS property.
  for (std::size_t d = 0; d < kRanges.size(); ++d) {
    std::vector<bool> cell_hit(n, false);
    const double width =
        (kRanges[d].hi - kRanges[d].lo) / static_cast<double>(n);
    for (const Sample& s : samples) {
      auto cell = static_cast<std::size_t>((s[d] - kRanges[d].lo) / width);
      cell = std::min(cell, n - 1);
      EXPECT_FALSE(cell_hit[cell]) << "dimension " << d;
      cell_hit[cell] = true;
    }
  }
}

TEST(LatinHypercube, MarginalMeanIsTighterThanMonteCarlo) {
  // Variance-reduction property: the LHS marginal mean is closer to
  // the midpoint than plain MC at equal n (deterministic check with
  // fixed seeds).
  RandomEngine rng_mc(5);
  RandomEngine rng_lhs(5);
  const std::size_t n = 200;
  const std::vector<ParameterRange> one_range = {{"x", 0.0, 1.0}};
  const auto mc = monte_carlo_samples(one_range, n, rng_mc);
  const auto lhs = latin_hypercube_samples(one_range, n, rng_lhs);
  const auto mean_of = [](const std::vector<Sample>& samples) {
    double m = 0.0;
    for (const Sample& s : samples) m += s[0];
    return m / static_cast<double>(samples.size());
  };
  EXPECT_LT(std::abs(mean_of(lhs) - 0.5), std::abs(mean_of(mc) - 0.5));
}

TEST(LatinHypercube, ZeroCountYieldsEmpty) {
  RandomEngine rng(6);
  EXPECT_TRUE(latin_hypercube_samples(kRanges, 0, rng).empty());
}

TEST(Sampling, DegenerateRangeIsConstant) {
  RandomEngine rng(7);
  const auto samples =
      monte_carlo_samples({{"fixed", 3.0, 3.0}}, 10, rng);
  for (const Sample& s : samples) EXPECT_DOUBLE_EQ(s[0], 3.0);
}

}  // namespace
}  // namespace rascal::stats

#include "linalg/iterative.h"

#include <gtest/gtest.h>

#include <random>

#include "linalg/gth.h"

namespace rascal::linalg {
namespace {

CsrMatrix two_state_generator(double lambda, double mu) {
  return CsrMatrix(2, 2,
                   {{0, 0, -lambda}, {0, 1, lambda}, {1, 0, mu}, {1, 1, -mu}});
}

TEST(PowerIteration, MatchesClosedFormTwoState) {
  const auto result = power_stationary(two_state_generator(0.4, 1.6));
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.pi[0], 0.8, 1e-9);
  EXPECT_NEAR(result.pi[1], 0.2, 1e-9);
}

TEST(GaussSeidel, MatchesClosedFormTwoState) {
  const auto result = gauss_seidel_stationary(two_state_generator(0.4, 1.6));
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.pi[0], 0.8, 1e-10);
  EXPECT_NEAR(result.pi[1], 0.2, 1e-10);
}

TEST(PowerIteration, ReportsIterationsAndResidual) {
  const auto result = power_stationary(two_state_generator(1.0, 1.0));
  EXPECT_GT(result.iterations, 0u);
  EXPECT_LT(result.residual, 1e-8);
}

TEST(PowerIteration, RejectsNonSquare) {
  EXPECT_THROW((void)power_stationary(CsrMatrix(2, 3, {})),
               std::invalid_argument);
}

TEST(GaussSeidel, ThrowsOnAbsorbingState) {
  // State 1 has no exit: no balance equation to sweep.
  const CsrMatrix q(2, 2, {{0, 0, -1.0}, {0, 1, 1.0}});
  EXPECT_THROW((void)gauss_seidel_stationary(q), std::domain_error);
}

class IterativeVsGth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IterativeVsGth, AgreesWithDirectSolverOnRandomChains) {
  const std::size_t n = GetParam();
  std::mt19937_64 gen(n * 31337);
  std::uniform_real_distribution<double> dist(0.05, 3.0);
  Matrix dense(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double exit = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      dense(r, c) = dist(gen);
      exit += dense(r, c);
    }
    dense(r, r) = -exit;
  }
  const Vector exact = gth_stationary(dense);
  const CsrMatrix sparse = CsrMatrix::from_dense(dense);

  const auto power = power_stationary(sparse);
  const auto seidel = gauss_seidel_stationary(sparse);
  ASSERT_TRUE(power.converged);
  ASSERT_TRUE(seidel.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(power.pi[i], exact[i], 1e-8);
    EXPECT_NEAR(seidel.pi[i], exact[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IterativeVsGth,
                         ::testing::Values(2, 3, 5, 10, 30, 80));

}  // namespace
}  // namespace rascal::linalg

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/exact_sensitivity.h"
#include "analysis/sensitivity.h"
#include "core/metrics.h"
#include "expr/expression.h"
#include "models/hadb_pair.h"
#include "models/params.h"

namespace rascal {
namespace {

using expr::Expression;
using expr::ParameterSet;

double d(const std::string& source, const std::string& var,
         const ParameterSet& at) {
  return Expression::parse(source).derivative(var).evaluate(at);
}

const ParameterSet kPoint{{"x", 3.0}, {"y", 2.0}, {"z", 0.5}};

TEST(Derivative, PolynomialRules) {
  EXPECT_DOUBLE_EQ(d("5", "x", kPoint), 0.0);
  EXPECT_DOUBLE_EQ(d("x", "x", kPoint), 1.0);
  EXPECT_DOUBLE_EQ(d("y", "x", kPoint), 0.0);
  EXPECT_DOUBLE_EQ(d("x+y", "x", kPoint), 1.0);
  EXPECT_DOUBLE_EQ(d("x*y", "x", kPoint), 2.0);
  EXPECT_DOUBLE_EQ(d("x*x", "x", kPoint), 6.0);
  EXPECT_DOUBLE_EQ(d("x^2", "x", kPoint), 6.0);
  EXPECT_DOUBLE_EQ(d("x^3 - 2*x", "x", kPoint), 27.0 - 2.0);
  EXPECT_DOUBLE_EQ(d("-x", "x", kPoint), -1.0);
}

TEST(Derivative, QuotientRule) {
  // d/dx (x / (x + y)) = y / (x + y)^2.
  EXPECT_NEAR(d("x/(x+y)", "x", kPoint), 2.0 / 25.0, 1e-14);
  EXPECT_NEAR(d("1/x", "x", kPoint), -1.0 / 9.0, 1e-14);
}

TEST(Derivative, TranscendentalsAndChainRule) {
  EXPECT_NEAR(d("exp(2*x)", "x", kPoint), 2.0 * std::exp(6.0), 1e-9);
  EXPECT_NEAR(d("log(x)", "x", kPoint), 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(d("sqrt(x)", "x", kPoint), 0.5 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(d("pow(x, 2)", "x", kPoint), 6.0, 1e-12);
  // Variable exponent: d/dx z^x = z^x ln z.
  EXPECT_NEAR(d("z^x", "x", kPoint),
              std::pow(0.5, 3.0) * std::log(0.5), 1e-14);
}

TEST(Derivative, NonDifferentiableFunctionsThrow) {
  EXPECT_THROW((void)Expression::parse("abs(x)").derivative("x"),
               std::domain_error);
  EXPECT_THROW((void)Expression::parse("min(x, 1)").derivative("x"),
               std::domain_error);
  // ...but are fine when independent of the variable.
  EXPECT_DOUBLE_EQ(d("abs(y)*x", "x", kPoint), 2.0);
}

TEST(Derivative, PaperRateExpression) {
  // d/dFIR [2*La*(1-FIR)] = -2*La.
  const ParameterSet p{{"La", 4.0 / 8760.0}, {"FIR", 0.001}};
  EXPECT_NEAR(d("2*La*(1-FIR)", "FIR", p), -8.0 / 8760.0, 1e-15);
}

class DerivativeMatchesFiniteDifference
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DerivativeMatchesFiniteDifference, OnRandomishPoint) {
  const std::string source = GetParam();
  const Expression e = Expression::parse(source);
  const double exact = e.derivative("x").evaluate(kPoint);
  const double h = 1e-6;
  ParameterSet lo = kPoint;
  ParameterSet hi = kPoint;
  lo.set("x", 3.0 - h);
  hi.set("x", 3.0 + h);
  const double numeric = (e.evaluate(hi) - e.evaluate(lo)) / (2.0 * h);
  EXPECT_NEAR(exact, numeric, 1e-5 * std::max(1.0, std::abs(exact)))
      << source;
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, DerivativeMatchesFiniteDifference,
    ::testing::Values("x^2*y + z", "exp(x*z)/x", "log(x+y)*sqrt(x)",
                      "(x+1)/(x^2+y)", "2*x^0.5", "pow(x, y)",
                      "x*y*z - x/y + 4"));

// ---- exact steady-state sensitivities ----------------------------------

TEST(ExactSensitivity, TwoStateClosedForm) {
  // A = mu/(lambda+mu): dA/dlambda = -mu/(lambda+mu)^2,
  // dA/dmu = lambda/(lambda+mu)^2.
  ctmc::SymbolicCtmc m;
  m.state("Up", 1.0);
  m.state("Down", 0.0);
  m.rate("Up", "Down", "lambda");
  m.rate("Down", "Up", "mu");
  const ParameterSet p{{"lambda", 0.3}, {"mu", 2.2}};
  const double s = 0.3 + 2.2;

  const auto d_lambda =
      analysis::steady_state_sensitivity(m, p, "lambda");
  EXPECT_NEAR(d_lambda.d_availability, -2.2 / (s * s), 1e-13);
  const auto d_mu = analysis::steady_state_sensitivity(m, p, "mu");
  EXPECT_NEAR(d_mu.d_availability, 0.3 / (s * s), 1e-13);
  // d_pi sums to zero (probability is conserved).
  double sum = 0.0;
  for (double v : d_lambda.d_pi) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-14);
}

TEST(ExactSensitivity, MatchesFiniteDifferencesOnHadbPair) {
  const auto model = models::hadb_pair_model();
  const auto params = models::default_parameters();
  for (const char* parameter :
       {"hadb_La_hadb", "hadb_La_hw", "hadb_FIR", "hadb_Trestore",
        "Acc"}) {
    const auto exact =
        analysis::steady_state_sensitivity(model, params, parameter);
    const auto numeric = analysis::finite_difference_sensitivities(
        [&model](const expr::ParameterSet& p) {
          return core::solve_availability(model.bind(p)).availability;
        },
        params, {parameter}, 1e-5);
    const double scale = std::max(std::abs(exact.d_availability), 1e-12);
    EXPECT_NEAR(exact.d_availability, numeric[0].derivative, 1e-3 * scale)
        << parameter;
  }
}

TEST(ExactSensitivity, HandlesRatesDroppedAtZero) {
  // At FIR = 0 the Ok->2_Down edge vanishes from the bound chain, but
  // the derivative with respect to FIR must still see it.
  const auto model = models::hadb_pair_model();
  auto params = models::default_parameters();
  params.set("hadb_FIR", 0.0);
  const auto exact =
      analysis::steady_state_sensitivity(model, params, "hadb_FIR");
  EXPECT_LT(exact.d_availability, 0.0);  // more FIR, less availability
  EXPECT_GT(exact.d_downtime_minutes, 0.0);
}

TEST(ExactSensitivity, DowntimeDerivativeIsScaledAvailability) {
  const auto model = models::hadb_pair_model();
  const auto params = models::default_parameters();
  const auto s =
      analysis::steady_state_sensitivity(model, params, "hadb_La_hw");
  EXPECT_NEAR(s.d_downtime_minutes, -s.d_availability * 525600.0, 1e-6);
}

}  // namespace
}  // namespace rascal

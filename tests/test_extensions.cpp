// Tests for the beyond-the-paper extensions: the finite-spare-pool
// HADB model and the dual-cluster rolling-upgrade model.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/units.h"
#include "ctmc/steady_state.h"
#include "models/hadb_pair.h"
#include "models/hadb_spares.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "models/upgrade.h"

namespace rascal::models {
namespace {

expr::ParameterSet spares_params(double t_replenish_hours) {
  expr::ParameterSet p = default_parameters();
  p.set(kTreplenishParam, t_replenish_hours);
  return p;
}

TEST(HadbSpares, StructureAndStateCount) {
  const ctmc::Ctmc chain = hadb_pair_with_spares_model(2, spares_params(24.0));
  // 6 conditions x 3 pool levels + WaitSpare only at level 0:
  // (7 conditions - 1) * 3 + 1 = 19.
  EXPECT_EQ(chain.num_states(), 19u);
  EXPECT_TRUE(chain.find_state("WaitSpare/s0").has_value());
  EXPECT_FALSE(chain.find_state("WaitSpare/s1").has_value());
  EXPECT_TRUE(chain.is_irreducible());
}

TEST(HadbSpares, FastReplenishmentConvergesToFigureThree) {
  // With near-instant spare replacement the pool is effectively
  // infinite and the model must reproduce the Figure 3 result.
  const auto figure3 =
      core::solve_availability(hadb_pair_model().bind(default_parameters()));
  const auto with_pool = core::solve_availability(
      hadb_pair_with_spares_model(2, spares_params(1e-4)));
  EXPECT_NEAR(with_pool.unavailability, figure3.unavailability,
              figure3.unavailability * 1e-3);
}

TEST(HadbSpares, FigureThreeIsTheOptimisticLimit) {
  // Any finite replenishment time must do worse than the paper's
  // always-a-spare assumption.
  const auto figure3 =
      core::solve_availability(hadb_pair_model().bind(default_parameters()));
  const auto realistic = core::solve_availability(
      hadb_pair_with_spares_model(2, spares_params(72.0)));
  EXPECT_GE(realistic.unavailability, figure3.unavailability);
}

TEST(HadbSpares, MoreSparesNeverHurt) {
  const auto params = spares_params(168.0);  // one-week replacement SLA
  double previous = 1.0;
  for (std::size_t spares : {1, 2, 4}) {
    const auto m = core::solve_availability(
        hadb_pair_with_spares_model(spares, params));
    EXPECT_LE(m.unavailability, previous + 1e-18) << spares;
    previous = m.unavailability;
  }
}

TEST(HadbSpares, SlowerReplenishmentHurts) {
  const auto fast = core::solve_availability(
      hadb_pair_with_spares_model(2, spares_params(24.0)));
  const auto slow = core::solve_availability(
      hadb_pair_with_spares_model(2, spares_params(24.0 * 30.0)));
  EXPECT_GT(slow.unavailability, fast.unavailability);
}

TEST(HadbSpares, Validation) {
  EXPECT_THROW((void)hadb_pair_with_spares_model(0, spares_params(24.0)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)hadb_pair_with_spares_model(2, default_parameters()),
      expr::UnknownParameterError);
  EXPECT_THROW((void)hadb_pair_with_spares_model(2, spares_params(0.0)),
               std::invalid_argument);
}

TEST(UpgradeModel, StructureAndParameters) {
  const auto model = dual_cluster_upgrade_model();
  EXPECT_EQ(model.num_states(), 5u);
  const auto params = model.parameters();
  EXPECT_TRUE(params.count("La_cluster"));
  EXPECT_TRUE(params.count("La_upgrade"));
  EXPECT_TRUE(params.count("T_switch"));
}

TEST(UpgradeModel, DualClusterEliminatesUnplannedDowntime) {
  // With no upgrades scheduled, the dual 2x2 deployment only fails on
  // a double cluster fault, crushing the single cluster's ~3.5 min/yr
  // (Table 2) by orders of magnitude.
  auto params = upgrade_parameters_for(default_parameters(), 2, 2,
                                       /*upgrades_per_year=*/12.0,
                                       /*t_upgrade_hours=*/2.0,
                                       /*t_switch_hours=*/30.0 / 3600.0);
  params.set("La_upgrade", 0.0);
  const auto dual = core::solve_availability(
      dual_cluster_upgrade_model().bind(params));
  const auto single = solve_jsas(JsasConfig::config1(),
                                 default_parameters());
  EXPECT_LT(dual.downtime_minutes_per_year,
            single.downtime_minutes_per_year / 100.0);
}

TEST(UpgradeModel, PlannedSwitchoverDominatesDualClusterDowntime) {
  // The interesting trade-off: with monthly upgrades and a 30 s
  // cut-over, planned downtime (~12 x 30 s = 6 min/yr) exceeds the
  // single cluster's unplanned 3.5 min/yr.  Online upgrades are not
  // free; the cut-over path is what needs engineering.
  const auto params = upgrade_parameters_for(default_parameters(), 2, 2,
                                             12.0, 2.0, 30.0 / 3600.0);
  const auto chain = dual_cluster_upgrade_model().bind(params);
  const auto steady = ctmc::solve_steady_state(chain);
  const auto attribution = core::downtime_by_state(chain, steady);
  double switchover_minutes = 0.0;
  double alldown_minutes = 0.0;
  for (const auto& entry : attribution) {
    if (chain.state_name(entry.state) == "Switchover") {
      switchover_minutes = entry.minutes_per_year;
    } else {
      alldown_minutes = entry.minutes_per_year;
    }
  }
  EXPECT_NEAR(switchover_minutes, 6.0, 0.5);
  EXPECT_LT(alldown_minutes, 0.05);
}

TEST(UpgradeModel, SwitchoverCostScalesWithUpgradeFrequency) {
  // 12 upgrades/yr with a 30 s cut-over contribute ~6 min/yr of
  // planned downtime; 52/yr contribute ~26 min.
  const auto base = default_parameters();
  const auto monthly = core::solve_availability(
      dual_cluster_upgrade_model().bind(
          upgrade_parameters_for(base, 2, 2, 12.0, 2.0, 30.0 / 3600.0)));
  const auto weekly = core::solve_availability(
      dual_cluster_upgrade_model().bind(
          upgrade_parameters_for(base, 2, 2, 52.0, 2.0, 30.0 / 3600.0)));
  EXPECT_GT(weekly.downtime_minutes_per_year,
            3.5 * monthly.downtime_minutes_per_year);
  EXPECT_NEAR(monthly.downtime_minutes_per_year, 6.0, 1.5);
}

TEST(UpgradeModel, ZeroSwitchoverTimeRemovesPlannedDowntime) {
  // T_switch -> 0: the Switchover state holds no probability mass and
  // downtime comes only from double-cluster faults (tiny).
  auto params = upgrade_parameters_for(default_parameters(), 2, 2, 12.0, 2.0,
                                       30.0 / 3600.0);
  params.set("T_switch", 1e-9);
  const auto m = core::solve_availability(
      dual_cluster_upgrade_model().bind(params));
  EXPECT_LT(m.downtime_minutes_per_year, 0.1);
}

TEST(UpgradeModel, LongerUpgradesIncreaseDoubleFaultExposure) {
  // Longer single-cluster windows mean more time at reduced
  // redundancy: the probability of the AllDown state must grow.
  const auto base = default_parameters();
  const auto p_alldown = [&](double t_upgrade_hours) {
    const auto chain = dual_cluster_upgrade_model().bind(
        upgrade_parameters_for(base, 2, 2, 12.0, t_upgrade_hours,
                               30.0 / 3600.0));
    return ctmc::solve_steady_state(chain).probability(
        chain.state("AllDown"));
  };
  EXPECT_GT(p_alldown(24.0), p_alldown(1.0));
}

}  // namespace
}  // namespace rascal::models

#include "ctmc/lumping.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "models/hadb_pair.h"
#include "models/hadb_pair_explicit.h"
#include "models/params.h"

namespace rascal::ctmc {
namespace {

// Symmetric 2-component machine: states by which unit is down.
Ctmc symmetric_two_unit(double lambda, double mu) {
  CtmcBuilder b;
  const auto both = b.state("BothUp", 1.0);
  const auto a_down = b.state("ADown", 1.0);
  const auto b_down = b.state("BDown", 1.0);
  const auto dead = b.state("Dead", 0.0);
  b.rate(both, a_down, lambda).rate(both, b_down, lambda);
  b.rate(a_down, both, mu).rate(b_down, both, mu);
  b.rate(a_down, dead, lambda).rate(b_down, dead, lambda);
  b.rate(dead, both, mu / 2.0);
  return b.build();
}

TEST(Lumping, SymmetricTwinsAreLumpable) {
  const Ctmc chain = symmetric_two_unit(0.1, 2.0);
  const Partition partition = {{0}, {1, 2}, {3}};
  EXPECT_TRUE(is_lumpable(chain, partition));
}

TEST(Lumping, AsymmetricRatesAreNotLumpable) {
  CtmcBuilder b;
  b.state("S", 1.0);
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.state("T", 0.0);
  b.rate(0, 1, 1.0).rate(0, 2, 1.0);
  b.rate(1, 3, 5.0).rate(2, 3, 7.0);  // twins disagree on exit rate
  b.rate(3, 0, 1.0);
  std::string why;
  EXPECT_FALSE(is_lumpable(b.build(), {{0}, {1, 2}, {3}}, 1e-9, &why));
  EXPECT_NE(why.find("disagree"), std::string::npos);
}

TEST(Lumping, QuotientPreservesAvailabilityAndFrequency) {
  const Ctmc chain = symmetric_two_unit(0.05, 1.5);
  const Ctmc quotient =
      lump(chain, {{0}, {1, 2}, {3}}, {"Up", "OneDown", "Dead"});
  EXPECT_EQ(quotient.num_states(), 3u);
  // Aggregated entry rate doubles; per-state exit rates survive.
  EXPECT_DOUBLE_EQ(quotient.rate(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(quotient.rate(1, 0), 1.5);

  const auto full = core::solve_availability(chain);
  const auto lumped = core::solve_availability(quotient);
  EXPECT_NEAR(lumped.availability, full.availability, 1e-14);
  EXPECT_NEAR(lumped.failure_frequency, full.failure_frequency, 1e-16);
  EXPECT_NEAR(lumped.mtbf_hours, full.mtbf_hours,
              full.mtbf_hours * 1e-12);
}

TEST(Lumping, MixedRewardBlocksAreRejected) {
  const Ctmc chain = symmetric_two_unit(0.1, 2.0);
  // Block mixing an up state with the dead state.
  EXPECT_THROW((void)lump(chain, {{0}, {1, 2, 3}}), std::invalid_argument);
}

TEST(Lumping, PartitionValidation) {
  const Ctmc chain = symmetric_two_unit(0.1, 2.0);
  EXPECT_THROW((void)is_lumpable(chain, {{0}, {1, 2}}),
               std::invalid_argument);  // missing state
  EXPECT_THROW((void)is_lumpable(chain, {{0, 0}, {1, 2}, {3}}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW((void)is_lumpable(chain, {{0}, {1, 2}, {3, 9}}),
               std::invalid_argument);  // out of range
}

TEST(Lumping, CoarsestLumpingFindsTheSymmetry) {
  const Ctmc chain = symmetric_two_unit(0.1, 2.0);
  const Partition partition = coarsest_ordinary_lumping(chain);
  EXPECT_EQ(partition.size(), 3u);
  EXPECT_TRUE(is_lumpable(chain, partition));
  // The twin states share a block.
  for (const auto& block : partition) {
    if (block.size() == 2) {
      EXPECT_TRUE((block[0] == 1 && block[1] == 2) ||
                  (block[0] == 2 && block[1] == 1));
    }
  }
}

TEST(Lumping, CoarsestLumpingOnAsymmetricChainIsTrivial) {
  CtmcBuilder b;
  b.state("X", 1.0);
  b.state("Y", 1.0);
  b.state("Z", 0.0);
  b.rate(0, 1, 1.0).rate(1, 2, 2.0).rate(2, 0, 3.0).rate(0, 2, 0.5);
  const Partition partition = coarsest_ordinary_lumping(b.build());
  EXPECT_EQ(partition.size(), 3u);  // nothing to merge
}

// The headline check: the paper's Figure 3 chain is exactly the
// quotient of the node-identity-explicit model.
TEST(Lumping, ExplicitHadbPairLumpsToFigureThree) {
  const auto params = models::default_parameters();
  const Ctmc explicit_chain = models::hadb_pair_explicit_model(params);
  EXPECT_EQ(explicit_chain.num_states(), 10u);

  // With the paper's defaults RestartShort and Maintenance happen to
  // share their entire outgoing behaviour (1-minute completion, same
  // accelerated second-failure rate), so the coarsest ordinary
  // lumping legitimately merges them as well: 5 blocks, one coarser
  // than Figure 3.
  const Partition partition = coarsest_ordinary_lumping(explicit_chain);
  EXPECT_EQ(partition.size(), 5u);
  ASSERT_TRUE(is_lumpable(explicit_chain, partition));

  const Ctmc quotient = lump(explicit_chain, partition);
  const auto lumped = core::solve_availability(quotient);
  const auto figure3 = core::solve_availability(
      models::hadb_pair_model().bind(params));
  EXPECT_NEAR(lumped.unavailability, figure3.unavailability,
              figure3.unavailability * 1e-12);
  EXPECT_NEAR(lumped.failure_frequency, figure3.failure_frequency,
              figure3.failure_frequency * 1e-12);
}

TEST(Lumping, ExplicitHadbPairCoarsestIsFigureThreeWhenTimesDiffer) {
  // Perturb Tmnt so Maintenance is observably different from
  // RestartShort: the coarsest lumping is then exactly Figure 3's
  // six states, each block pairing the A/B twins.
  auto params = models::default_parameters();
  params.set("hadb_Tmnt", 2.0 / 60.0);
  const Ctmc explicit_chain = models::hadb_pair_explicit_model(params);
  const Partition partition = coarsest_ordinary_lumping(explicit_chain);
  EXPECT_EQ(partition.size(), 6u);
  ASSERT_TRUE(is_lumpable(explicit_chain, partition));

  const auto lumped =
      core::solve_availability(lump(explicit_chain, partition));
  const auto figure3 = core::solve_availability(
      models::hadb_pair_model().bind(params));
  EXPECT_NEAR(lumped.unavailability, figure3.unavailability,
              figure3.unavailability * 1e-12);
}

// Lumping is also why the counted-occupancy N-instance model is
// valid; spot-check the 10-state explicit pair against Figure 3 under
// several parameterizations.
TEST(Lumping, ExplicitPairMatchesFigureThreeAcrossParameters) {
  for (double fir : {0.0, 0.001, 0.002}) {
    for (double acc : {1.0, 2.0, 4.0}) {
      auto params = models::default_parameters();
      params.set("hadb_FIR", fir).set("Acc", acc);
      const auto full = core::solve_availability(
          models::hadb_pair_explicit_model(params));
      const auto figure3 = core::solve_availability(
          models::hadb_pair_model().bind(params));
      EXPECT_NEAR(full.unavailability, figure3.unavailability,
                  figure3.unavailability * 1e-12)
          << "fir=" << fir << " acc=" << acc;
    }
  }
}

}  // namespace
}  // namespace rascal::ctmc

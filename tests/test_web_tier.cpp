#include "models/web_tier.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "models/params.h"

namespace rascal::models {
namespace {

expr::ParameterSet full_params() {
  return default_parameters().with(default_web_parameters());
}

TEST(WebTier, StructureAndRates) {
  const auto chain = web_tier_model(3).bind(default_web_parameters());
  EXPECT_EQ(chain.num_states(), 4u);
  EXPECT_TRUE(chain.is_irreducible());
  const double la = 12.0 / 8760.0;
  EXPECT_NEAR(chain.rate(chain.state("All_Up"), chain.state("1_Down")),
              3.0 * la, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("2_Down"), chain.state("1_Down")),
              2.0 / (5.0 / 60.0), 1e-9);
  // Only the all-down state is a failure state.
  EXPECT_EQ(chain.states_with_reward_below(0.5).size(), 1u);
}

TEST(WebTier, SingleServerIsTwoState) {
  const auto chain = web_tier_model(1).bind(default_web_parameters());
  EXPECT_EQ(chain.num_states(), 2u);
  const auto m = core::solve_availability(chain);
  // 12/yr x 30 min manual restore = 360 min/yr.
  EXPECT_NEAR(m.downtime_minutes_per_year, 360.0, 2.0);
}

TEST(WebTier, RedundancyMakesTierDowntimeNegligible) {
  const auto params = default_web_parameters();
  const auto duo = core::solve_availability(web_tier_model(2).bind(params));
  // Two stateless servers with 5-minute restarts: ~0.08 min/yr, a
  // rounding error against the 3.5 min/yr system budget.
  EXPECT_LT(duo.downtime_minutes_per_year, 0.1);
  const auto solo = core::solve_availability(web_tier_model(1).bind(params));
  EXPECT_LT(duo.unavailability, solo.unavailability / 1000.0);
}

TEST(WebTier, RejectsZeroServers) {
  EXPECT_THROW((void)web_tier_model(0), std::invalid_argument);
}

TEST(JsasWithWeb, ExtendedHierarchySolves) {
  const auto model = jsas_with_web_model(JsasConfig::config1(), 2);
  expr::ParameterSet params = full_params();
  params.set("N_pair", 2.0);
  const auto result = model.solve(params);
  ASSERT_EQ(result.submodels.size(), 3u);
  EXPECT_EQ(result.submodels[0].name, "Web Tier");

  // With a redundant web tier the system result stays within a hair
  // of the paper's Config 1 (web adds ~0.01 min/yr).
  EXPECT_NEAR(result.system.downtime_minutes_per_year, 3.49, 0.1);
}

TEST(JsasWithWeb, SingleWebServerDominatesDowntime) {
  // The reason the paper assumes a redundant web tier: one web box in
  // front would swamp the five-9s budget (360 min/yr vs 3.5).
  const auto model = jsas_with_web_model(JsasConfig::config1(), 1);
  expr::ParameterSet params = full_params();
  params.set("N_pair", 2.0);
  const auto result = model.solve(params);
  EXPECT_GT(result.system.downtime_minutes_per_year, 300.0);
}

TEST(JsasWithWeb, Validation) {
  EXPECT_THROW((void)jsas_with_web_model(JsasConfig{1, 2, 2}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace rascal::models

// Cross-module integration tests: the full measurement -> estimation
// -> modeling -> analysis pipeline of the paper, plus consistency
// between the analytic solvers, the SPN route, and the discrete-event
// simulator.
#include <gtest/gtest.h>

#include "analysis/uncertainty.h"
#include "core/hierarchy.h"
#include "core/units.h"
#include "ctmc/compose.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "faultinj/injector.h"
#include "models/jsas_system.h"
#include "models/params.h"
#include "models/spn_variants.h"
#include "report/table.h"
#include "sim/jsas_simulator.h"
#include "spn/reachability.h"
#include "stats/estimators.h"

namespace rascal {
namespace {

// Pipeline 1: run the (simulated) fault-injection campaign, estimate
// FIR with Equation 1, feed the bound into the model, and check the
// resulting availability is the paper's Config 1 number — i.e. the
// paper's own parameter-derivation chain is reproducible end to end.
TEST(Pipeline, CampaignToFirToModel) {
  faultinj::CampaignOptions campaign_options;
  campaign_options.trials = 3287;
  const auto campaign = faultinj::run_campaign(campaign_options);
  const double fir95 = campaign.fir_upper_bound(0.95);
  EXPECT_LT(fir95, 0.001);

  expr::ParameterSet params = models::default_parameters();
  params.set("hadb_FIR", fir95);
  const auto result =
      models::solve_jsas(models::JsasConfig::config1(), params);
  // FIR just below 0.1% is what the paper's default models: ~3.5 min.
  EXPECT_NEAR(result.downtime_minutes_per_year, 3.5, 0.1);
}

// Pipeline 2: the longevity run estimates the AS failure-rate bound
// (Equation 2); the paper instead picks the *more* conservative
// 52/year.  Using the measured bound must therefore predict a better
// availability than the headline number.
TEST(Pipeline, LongevityBoundIsLessConservativeThanPaperChoice) {
  stats::RandomEngine rng(7);
  const auto failures = faultinj::simulate_longevity(24.0, 2, 0.0, rng);
  EXPECT_EQ(failures, 0u);
  const double bound_per_day =
      stats::failure_rate_upper_bound(48.0, failures, 0.95);
  const double bound_per_hour = bound_per_day / 24.0;

  expr::ParameterSet measured = models::default_parameters();
  // Replace the total instance failure rate by the measured bound
  // (keep the same HW/OS split).
  measured.set("as_La_as", bound_per_hour - measured.get("as_La_os") -
                               measured.get("as_La_hw"));
  const auto with_bound =
      models::solve_jsas(models::JsasConfig::config1(), measured);
  const auto with_paper_choice = models::solve_jsas(
      models::JsasConfig::config1(), models::default_parameters());
  EXPECT_GT(with_bound.availability, with_paper_choice.availability);
}

// Consistency: hierarchical solve with SPN-generated submodels equals
// the hand-built-model solve to near machine precision.
TEST(Consistency, SpnRouteMatchesDirectRouteThroughHierarchy) {
  const auto params = models::default_parameters();

  const auto direct =
      models::solve_jsas(models::JsasConfig::config1(), params);

  // Build the same hierarchy but evaluate the submodels from their
  // SPN-generated chains.
  const auto as_generated = spn::generate_ctmc(
      models::app_server_spn(2, params), models::app_server_spn_reward());
  const auto hadb_generated = spn::generate_ctmc(
      models::hadb_pair_spn(params), models::hadb_pair_spn_reward());
  const auto as_eq = core::two_state_equivalent(
      as_generated.chain, ctmc::solve_steady_state(as_generated.chain));
  const auto hadb_eq = core::two_state_equivalent(
      hadb_generated.chain, ctmc::solve_steady_state(hadb_generated.chain));

  ctmc::SymbolicCtmc root;
  root.state("Ok", 1.0);
  root.state("AS_Fail", 0.0);
  root.state("HADB_Fail", 0.0);
  root.rate("Ok", "AS_Fail", "La_appl");
  root.rate("AS_Fail", "Ok", "Mu_appl");
  root.rate("Ok", "HADB_Fail", "2*La_pair");
  root.rate("HADB_Fail", "Ok", "Mu_pair");
  const auto chain = root.bind(expr::ParameterSet{}
                                   .set("La_appl", as_eq.lambda_eq)
                                   .set("Mu_appl", as_eq.mu_eq)
                                   .set("La_pair", hadb_eq.lambda_eq)
                                   .set("Mu_pair", hadb_eq.mu_eq));
  const auto metrics = core::solve_availability(chain);
  EXPECT_NEAR(metrics.availability, direct.availability, 1e-12);
}

// Consistency: the two direct solvers agree across the whole
// hierarchy.  (The iterative solvers are *expected* to struggle on
// chains this stiff — spectral gap ~1e-9 — which is exactly why GTH
// is the default; bench_solvers quantifies this.)
TEST(Consistency, DirectSolversAgreeOnFullHierarchy) {
  const auto model = models::jsas_model(models::JsasConfig::config2());
  expr::ParameterSet params = models::default_parameters();
  params.set("N_pair", 4.0);
  const auto gth = model.solve(params, ctmc::SteadyStateMethod::kGth);
  const auto lu = model.solve(params, ctmc::SteadyStateMethod::kLu);
  EXPECT_NEAR(lu.system.unavailability, gth.system.unavailability,
              gth.system.unavailability * 1e-6);
  EXPECT_NEAR(lu.system.mtbf_hours, gth.system.mtbf_hours,
              gth.system.mtbf_hours * 1e-6);
}

// Property sweep: the Figure-2 hierarchical abstraction stays within
// 0.1% of the exact flat product chain across random parameter draws,
// not just at the paper's defaults.
TEST(Consistency, HierarchyMatchesFlatCompositionAcrossParameters) {
  stats::RandomEngine rng(2026);
  for (int draw = 0; draw < 10; ++draw) {
    expr::ParameterSet params = models::default_parameters();
    params.set("as_La_as", rng.uniform(10.0, 200.0) / 8760.0);
    params.set("hadb_La_hadb", rng.uniform(1.0, 20.0) / 8760.0);
    params.set("hadb_La_hw", rng.uniform(0.5, 5.0) / 8760.0);
    params.set("hadb_FIR", rng.uniform(0.0, 0.005));
    params.set("as_Tstart_long", rng.uniform(0.25, 4.0));

    const auto hierarchical =
        models::solve_jsas(models::JsasConfig::config1(), params);

    const ctmc::Ctmc flat = ctmc::compose_independent(
        {models::app_server_two_instance_model().bind(params),
         models::hadb_pair_model().bind(params),
         models::hadb_pair_model().bind(params)});
    const auto exact = core::solve_availability(flat);

    EXPECT_NEAR(1.0 - hierarchical.availability, exact.unavailability,
                1e-3 * exact.unavailability)
        << "draw " << draw;
  }
}

// Consistency: the DES under exponential recoveries must agree with
// the analytic model.  To keep the test fast and statistically sharp,
// stress the failure rates so downtime events are frequent, and
// compare against the analytic solution *of the same parameters*.
TEST(Consistency, SimulatorTracksAnalyticModelUnderStress) {
  expr::ParameterSet stressed = models::default_parameters();
  stressed.set("as_La_as", 2000.0 / 8760.0)
      .set("hadb_La_hadb", 200.0 / 8760.0)
      .set("hadb_La_os", 100.0 / 8760.0)
      .set("hadb_La_hw", 100.0 / 8760.0)
      .set("as_La_os", 50.0 / 8760.0)
      .set("as_La_hw", 50.0 / 8760.0);

  const auto analytic =
      models::solve_jsas(models::JsasConfig::config1(), stressed);

  sim::JsasSimOptions options;
  options.duration = 30.0 * 8760.0;
  options.replications = 8;
  options.exponential_recoveries = true;
  options.seed = 17;
  const auto simulated =
      sim::simulate_jsas(models::JsasConfig::config1(), stressed, options);

  EXPECT_NEAR(simulated.availability, analytic.availability,
              3.0 * (analytic.availability *
                     (1.0 - analytic.availability)) +
                  2e-4);
  // MTBF within 15%.
  EXPECT_NEAR(simulated.mtbf_hours, analytic.mtbf_hours,
              0.15 * analytic.mtbf_hours);
}

// Ablation check from DESIGN.md: deterministic recovery times (the
// real system's behaviour) change availability only mildly relative
// to the exponential assumption.
TEST(Ablation, DeterministicRecoveriesStayInTheSameBallpark) {
  expr::ParameterSet stressed = models::default_parameters();
  stressed.set("as_La_as", 2000.0 / 8760.0)
      .set("hadb_La_hadb", 400.0 / 8760.0);

  sim::JsasSimOptions options;
  options.duration = 20.0 * 8760.0;
  options.replications = 4;
  options.seed = 23;

  options.exponential_recoveries = true;
  const auto exponential =
      sim::simulate_jsas(models::JsasConfig::config1(), stressed, options);
  options.exponential_recoveries = false;
  const auto deterministic =
      sim::simulate_jsas(models::JsasConfig::config1(), stressed, options);

  const double u_exp = 1.0 - exponential.availability;
  const double u_det = 1.0 - deterministic.availability;
  EXPECT_GT(u_det, u_exp * 0.3);
  EXPECT_LT(u_det, u_exp * 3.0);
}

// End-to-end report rendering of Table 2 (plumbing check).
TEST(Reporting, Table2Renders) {
  report::TextTable table(
      {"Configuration", "Availability", "Yearly Downtime", "YD AS",
       "YD HADB"});
  for (const auto& config :
       {models::JsasConfig::config1(), models::JsasConfig::config2()}) {
    const auto r = models::solve_jsas(config, models::default_parameters());
    table.add_row({config.name(),
                   report::format_percent(r.availability, 5),
                   report::format_fixed(r.downtime_minutes_per_year, 2) +
                       " min",
                   report::format_fixed(r.downtime_as_minutes, 2) + " min",
                   report::format_fixed(r.downtime_hadb_minutes, 2) +
                       " min"});
  }
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("99.999"), std::string::npos);
}

// The uncertainty machinery, the models, and the report layer in one
// pass (small sample count; the benches run the full 1,000).
TEST(Pipeline, UncertaintyScatterFeedsReport) {
  analysis::UncertaintyOptions options;
  options.samples = 60;
  const auto result = analysis::uncertainty_analysis(
      [](const expr::ParameterSet& p) {
        return models::solve_jsas(models::JsasConfig::config1(), p)
            .downtime_minutes_per_year;
      },
      models::default_parameters(),
      {{"as_La_as", 10.0 / 8760.0, 50.0 / 8760.0},
       {"hadb_FIR", 0.0, 0.002}},
      options);
  EXPECT_EQ(result.metrics.size(), 60u);
  EXPECT_GT(result.mean, 0.5);
  EXPECT_LT(result.mean, 20.0);
}

}  // namespace
}  // namespace rascal

// Byte-exact golden rendering tests for the report layer.  Any
// formatting change (padding, separators, axis layout) shows up as a
// diff here and must be a conscious decision, because downstream
// scripts parse these outputs.
#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_plot.h"
#include "report/csv.h"
#include "report/table.h"

namespace rascal::report {
namespace {

TEST(ReportGolden, TableRendersByteExact) {
  TextTable t({"Config", "Availability", "Downtime (min/yr)"});
  t.add_row({"Config 1", "99.99933%", "3.49"});
  t.add_row({"Config 2", "99.99956%", "2.28"});
  const std::string expected =
      "| Config   | Availability | Downtime (min/yr) |\n"
      "|----------|--------------|-------------------|\n"
      "| Config 1 | 99.99933%    | 3.49              |\n"
      "| Config 2 | 99.99956%    | 2.28              |\n";
  EXPECT_EQ(t.to_string(), expected);
}

TEST(ReportGolden, CsvRendersByteExact) {
  std::ostringstream os;
  write_csv(os, {"n", "availability"},
            {{"1", "0.9996291"}, {"2", "0.9999934"}});
  const std::string expected =
      "n,availability\n"
      "1,0.9996291\n"
      "2,0.9999934\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ReportGolden, LinePlotRendersByteExact) {
  PlotOptions options;
  options.title = "downtime vs n";
  options.x_label = "n";
  options.width = 24;
  options.height = 6;
  const std::string expected =
      "downtime vs n\n"
      "           4 |*                       \n"
      "         3.3 |                        \n"
      "         2.6 |                        \n"
      "         1.9 |        *               \n"
      "         1.2 |               *        \n"
      "         0.5 |                       *\n"
      "             +------------------------\n"
      "              1 4  n\n";
  EXPECT_EQ(line_plot({1.0, 2.0, 3.0, 4.0}, {4.0, 2.0, 1.0, 0.5}, options),
            expected);
}

}  // namespace
}  // namespace rascal::report

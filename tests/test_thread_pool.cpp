#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rascal::core {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  ASSERT_EQ(setenv("RASCAL_THREADS", "3", 1), 0);
  EXPECT_EQ(resolve_threads(5), 5u);
  unsetenv("RASCAL_THREADS");
}

TEST(ResolveThreads, EnvSuppliesTheAutomaticDefault) {
  ASSERT_EQ(setenv("RASCAL_THREADS", "3", 1), 0);
  EXPECT_EQ(resolve_threads(0), 3u);
  ASSERT_EQ(setenv("RASCAL_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(resolve_threads(0), 1u);  // garbage ignored, falls back
  unsetenv("RASCAL_THREADS");
}

TEST(ResolveThreads, FallsBackToHardwareConcurrency) {
  unsetenv("RASCAL_THREADS");
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitCanBeReusedAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                              std::size_t{8}}) {
    std::vector<int> touched(1000, 0);
    parallel_for(touched.size(), threads,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) ++touched[i];
                 });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000)
        << threads;
    for (int t : touched) EXPECT_EQ(t, 1);
  }
}

TEST(ParallelFor, EmptyRangeNeverCallsTheBody) {
  bool called = false;
  parallel_for(0, 8, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t begin, std::size_t end) {
                     if (begin < end) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, ResultIsIndexOrderedForAnyThreadCount) {
  const auto square = [](std::size_t i) {
    return static_cast<double>(i) * static_cast<double>(i);
  };
  const auto serial = parallel_map(257, 1, square);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = parallel_map(257, threads, square);
    EXPECT_EQ(parallel, serial) << threads;
  }
}

}  // namespace
}  // namespace rascal::core

// Unit tests for the resil retry layer and the serve supervision
// discipline built on top of it: error taxonomy, attempt-indexed
// budget escalation, fallback-ladder construction, and the
// bit-identity of supervised solves that recover from transient
// faults.
#include "resil/retry.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "ctmc/builder.h"
#include "ctmc/solve_cache.h"
#include "ctmc/steady_state.h"
#include "io/model_file.h"
#include "linalg/precond.h"
#include "serve/supervise.h"

namespace rascal {
namespace {

// ---------------------------------------------------------------- taxonomy

TEST(ErrorTaxonomy, OnlyEnvironmentalAndConvergenceClassesRetry) {
  using resil::ErrorClass;
  EXPECT_TRUE(resil::retryable(ErrorClass::kTransient));
  EXPECT_TRUE(resil::retryable(ErrorClass::kNonConvergence));
  EXPECT_TRUE(resil::retryable(ErrorClass::kPrecond));
  EXPECT_FALSE(resil::retryable(ErrorClass::kParse));
  EXPECT_FALSE(resil::retryable(ErrorClass::kModel));
  EXPECT_FALSE(resil::retryable(ErrorClass::kAdmission));
  EXPECT_FALSE(resil::retryable(ErrorClass::kCancelled));
  EXPECT_FALSE(resil::retryable(ErrorClass::kSinkWrite));
  EXPECT_FALSE(resil::retryable(ErrorClass::kCheckpointWrite));
  EXPECT_FALSE(resil::retryable(ErrorClass::kInternal));
}

TEST(ErrorTaxonomy, SlugsAreStableIdentifiers) {
  using resil::ErrorClass;
  EXPECT_STREQ(resil::to_string(ErrorClass::kTransient), "transient");
  EXPECT_STREQ(resil::to_string(ErrorClass::kNonConvergence),
               "nonconvergence");
  EXPECT_STREQ(resil::to_string(ErrorClass::kParse), "parse");
  EXPECT_STREQ(resil::to_string(ErrorClass::kAdmission), "admission");
  EXPECT_STREQ(resil::to_string(ErrorClass::kInternal), "internal");
}

TEST(ErrorTaxonomy, ClassifyReadsTheTagInterfaceFirst) {
  const resil::TransientError transient("flaky");
  EXPECT_EQ(resil::classify(transient), resil::ErrorClass::kTransient);
  const resil::AdmissionError shed("too big");
  EXPECT_EQ(resil::classify(shed), resil::ErrorClass::kAdmission);
  const linalg::PrecondError precond("P001", "pattern rejected");
  EXPECT_EQ(resil::classify(precond), resil::ErrorClass::kPrecond);
  const ctmc::NonConvergenceError nc("stalled");
  EXPECT_EQ(resil::classify(nc), resil::ErrorClass::kNonConvergence);
}

TEST(ErrorTaxonomy, ClassifyFallsBackByExceptionType) {
  EXPECT_EQ(resil::classify(std::domain_error("bad chain")),
            resil::ErrorClass::kModel);
  EXPECT_EQ(resil::classify(std::invalid_argument("bad arg")),
            resil::ErrorClass::kModel);
  EXPECT_EQ(resil::classify(std::runtime_error("anything else")),
            resil::ErrorClass::kInternal);
}

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, AttemptBudgetDoublesPerEscalation) {
  const resil::RetryPolicy policy{/*max_attempts=*/4,
                                  /*base_iterations=*/100};
  EXPECT_EQ(policy.iterations_for_attempt(0), 100u);
  EXPECT_EQ(policy.iterations_for_attempt(1), 200u);
  EXPECT_EQ(policy.iterations_for_attempt(2), 400u);
}

TEST(RetryPolicy, ZeroBudgetMeansUnlimitedAtEveryAttempt) {
  const resil::RetryPolicy policy{/*max_attempts=*/3, /*base_iterations=*/0};
  EXPECT_EQ(policy.iterations_for_attempt(0), 0u);
  EXPECT_EQ(policy.iterations_for_attempt(5), 0u);
}

TEST(RetryPolicy, EscalationSaturatesInsteadOfOverflowing) {
  const resil::RetryPolicy policy{
      /*max_attempts=*/2,
      /*base_iterations=*/std::numeric_limits<std::size_t>::max() / 2 + 1};
  EXPECT_EQ(policy.iterations_for_attempt(1),
            std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(policy.iterations_for_attempt(63),
            std::numeric_limits<std::size_t>::max());
}

TEST(RetryPolicy, AllowsAnotherCountsTheFirstTry) {
  const resil::RetryPolicy policy{/*max_attempts=*/3, /*base_iterations=*/0};
  EXPECT_TRUE(policy.allows_another(0));   // after the 1st attempt
  EXPECT_TRUE(policy.allows_another(1));   // after the 2nd
  EXPECT_FALSE(policy.allows_another(2));  // 3 attempts consumed
}

// ---------------------------------------------------------- fallback ladder

TEST(FallbackLadder, DenseDescentSubstitutesMethodsEndingOnGth) {
  const auto rungs =
      serve::fallback_ladder(ctmc::SteadyStateMethod::kGmres,
                             linalg::PrecondKind::kIlu0, /*num_states=*/10,
                             /*sparse_threshold=*/0);
  ASSERT_EQ(rungs.size(), 3u);
  EXPECT_EQ(rungs[0].method, ctmc::SteadyStateMethod::kGmres);
  EXPECT_EQ(rungs[1].method, ctmc::SteadyStateMethod::kBiCgStab);
  EXPECT_EQ(rungs[2].method, ctmc::SteadyStateMethod::kGth);
  for (const serve::LadderRung& rung : rungs) {
    EXPECT_EQ(rung.precond, linalg::PrecondKind::kIlu0);
  }
}

TEST(FallbackLadder, DenseDescentSkipsTheRequestedMethod) {
  const auto rungs =
      serve::fallback_ladder(ctmc::SteadyStateMethod::kGth,
                             linalg::PrecondKind::kIlu0, /*num_states=*/10,
                             /*sparse_threshold=*/0);
  ASSERT_EQ(rungs.size(), 3u);
  EXPECT_EQ(rungs[0].method, ctmc::SteadyStateMethod::kGth);
  EXPECT_EQ(rungs[1].method, ctmc::SteadyStateMethod::kGmres);
  EXPECT_EQ(rungs[2].method, ctmc::SteadyStateMethod::kBiCgStab);
}

TEST(FallbackLadder, SparseDescentDowngradesPrecondThenSwitchesMethod) {
  const auto rungs = serve::fallback_ladder(
      ctmc::SteadyStateMethod::kGmres, linalg::PrecondKind::kIlu0,
      /*num_states=*/100, /*sparse_threshold=*/50);
  ASSERT_EQ(rungs.size(), 4u);
  EXPECT_EQ(rungs[0].precond, linalg::PrecondKind::kIlu0);
  EXPECT_EQ(rungs[1].precond, linalg::PrecondKind::kJacobi);
  EXPECT_EQ(rungs[2].precond, linalg::PrecondKind::kNone);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rungs[i].method, ctmc::SteadyStateMethod::kGmres);
  }
  EXPECT_EQ(rungs[3].method, ctmc::SteadyStateMethod::kBiCgStab);
  EXPECT_EQ(rungs[3].precond, linalg::PrecondKind::kNone);
}

TEST(FallbackLadder, SparseDescentNeverDensifies) {
  for (const auto method : {ctmc::SteadyStateMethod::kGth,
                            ctmc::SteadyStateMethod::kLu,
                            ctmc::SteadyStateMethod::kGmres,
                            ctmc::SteadyStateMethod::kBiCgStab}) {
    const auto rungs = serve::fallback_ladder(
        method, linalg::PrecondKind::kJacobi, /*num_states=*/1u << 20,
        /*sparse_threshold=*/0);
    for (std::size_t i = 1; i < rungs.size(); ++i) {
      EXPECT_TRUE(rungs[i].method == ctmc::SteadyStateMethod::kGmres ||
                  rungs[i].method == ctmc::SteadyStateMethod::kBiCgStab)
          << "rung " << i << " densified";
    }
  }
}

// --------------------------------------------------------- supervised solve

ctmc::Ctmc repair_pair() {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, 0.02).rate(1, 0, 1.5);
  return b.build();
}

TEST(SupervisedSolve, TransientFaultsRecoverBitIdentically) {
  const ctmc::Ctmc chain = repair_pair();
  const ctmc::SteadyState direct =
      ctmc::solve_steady_state(chain, ctmc::SteadyStateMethod::kGmres);

  serve::SolveSpec spec;
  spec.method = ctmc::SteadyStateMethod::kGmres;
  serve::SupervisionOptions options;
  options.retry.max_attempts = 3;
  options.inject_transient_faults = 2;

  ctmc::SolveCache cache;
  const serve::SupervisedSolve solved =
      serve::supervised_solve(chain, spec, cache, options);
  EXPECT_EQ(solved.attempts, 3u);
  EXPECT_EQ(solved.rung, 0u);
  EXPECT_TRUE(solved.fallback.empty());
  ASSERT_EQ(solved.steady.probabilities.size(), direct.probabilities.size());
  for (std::size_t s = 0; s < direct.probabilities.size(); ++s) {
    EXPECT_EQ(solved.steady.probabilities[s], direct.probabilities[s]);
  }
}

TEST(SupervisedSolve, ExhaustedBudgetThrowsTheTransient) {
  const ctmc::Ctmc chain = repair_pair();
  serve::SolveSpec spec;
  serve::SupervisionOptions options;
  options.retry.max_attempts = 2;
  options.inject_transient_faults = 2;
  ctmc::SolveCache cache;
  EXPECT_THROW((void)serve::supervised_solve(chain, spec, cache, options),
               resil::TransientError);
}

TEST(SupervisedSolve, MaxAttemptsOneDisablesRetries) {
  const ctmc::Ctmc chain = repair_pair();
  serve::SolveSpec spec;
  serve::SupervisionOptions options;
  options.retry.max_attempts = 1;
  options.inject_transient_faults = 1;
  ctmc::SolveCache cache;
  EXPECT_THROW((void)serve::supervised_solve(chain, spec, cache, options),
               resil::TransientError);
}

// ------------------------------------------------------------- admission

io::ModelFile tiny_model_file() {
  io::ModelFile file;
  file.model.state("Up", 1.0);
  file.model.state("Down", 0.0);
  file.model.rate("Up", "Down", "0.1");
  file.model.rate("Down", "Up", "2.0");
  return file;
}

TEST(Admission, VerdictIsEmptyWhenUncapped) {
  EXPECT_TRUE(serve::admission_verdict(tiny_model_file(), {}).empty());
}

TEST(Admission, StateCapShedsWithDeclaredSizes) {
  serve::SupervisionOptions options;
  options.admission_states = 1;
  const std::string verdict =
      serve::admission_verdict(tiny_model_file(), options);
  EXPECT_NE(verdict.find("2 states"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("cap is 1"), std::string::npos) << verdict;
}

TEST(Admission, NnzCapShedsWithDeclaredSizes) {
  serve::SupervisionOptions options;
  options.admission_nnz = 1;
  const std::string verdict =
      serve::admission_verdict(tiny_model_file(), options);
  EXPECT_NE(verdict.find("2 transitions"), std::string::npos) << verdict;
}

}  // namespace
}  // namespace rascal

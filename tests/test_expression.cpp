#include "expr/expression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "expr/lexer.h"

namespace rascal::expr {
namespace {

double eval(const std::string& src, const ParameterSet& params = {}) {
  return Expression::parse(src).evaluate(params);
}

TEST(Lexer, TokenizesAllKinds) {
  const auto tokens = tokenize("2.5e-3 * La_hadb + (x)^2, -");
  ASSERT_EQ(tokens.size(), 12u);  // includes kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 2.5e-3);
  EXPECT_EQ(tokens[1].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].text, "La_hadb");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW((void)tokenize("a @ b"), ParseError);
}

TEST(Expression, ArithmeticPrecedence) {
  EXPECT_DOUBLE_EQ(eval("2+3*4"), 14.0);
  EXPECT_DOUBLE_EQ(eval("(2+3)*4"), 20.0);
  EXPECT_DOUBLE_EQ(eval("10-4-3"), 3.0);     // left associative
  EXPECT_DOUBLE_EQ(eval("24/4/2"), 3.0);     // left associative
  EXPECT_DOUBLE_EQ(eval("2^3^2"), 512.0);    // right associative
  EXPECT_DOUBLE_EQ(eval("-2^2"), -4.0);      // '^' binds tighter than unary
  EXPECT_DOUBLE_EQ(eval("(-2)^2"), 4.0);
  EXPECT_DOUBLE_EQ(eval("2*-3"), -6.0);
}

TEST(Expression, ScientificNotation) {
  EXPECT_DOUBLE_EQ(eval("1e3 + 2.5E-2"), 1000.025);
}

TEST(Expression, VariablesResolveFromParameterSet) {
  ParameterSet p{{"La_hadb", 2.0 / 8760.0}, {"FIR", 0.001}};
  EXPECT_NEAR(eval("2*La_hadb*(1-FIR)", p), 2.0 * (2.0 / 8760.0) * 0.999,
              1e-15);
}

TEST(Expression, UnknownVariableThrowsWithName) {
  try {
    (void)eval("missing_param + 1");
    FAIL() << "expected UnknownParameterError";
  } catch (const UnknownParameterError& e) {
    EXPECT_EQ(e.name(), "missing_param");
  }
}

TEST(Expression, BuiltinFunctions) {
  EXPECT_DOUBLE_EQ(eval("min(3, 5)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("max(3, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("abs(-4)"), 4.0);
  EXPECT_NEAR(eval("exp(1)"), M_E, 1e-14);
  EXPECT_NEAR(eval("log(exp(2))"), 2.0, 1e-14);
  EXPECT_DOUBLE_EQ(eval("sqrt(9)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
}

TEST(Expression, FunctionArityIsChecked) {
  EXPECT_THROW((void)Expression::parse("min(1)"), std::invalid_argument);
  EXPECT_THROW((void)Expression::parse("exp(1, 2)"), std::invalid_argument);
  EXPECT_THROW((void)Expression::parse("nosuch(1)"), std::invalid_argument);
}

TEST(Expression, DomainErrors) {
  EXPECT_THROW((void)eval("1/0"), std::domain_error);
  EXPECT_THROW((void)eval("log(0)"), std::domain_error);
  EXPECT_THROW((void)eval("sqrt(-1)"), std::domain_error);
}

TEST(Expression, ParseErrorsCarryPosition) {
  try {
    (void)Expression::parse("1 + ");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position(), 4u);
  }
  EXPECT_THROW((void)Expression::parse("(1+2"), ParseError);
  EXPECT_THROW((void)Expression::parse("1 2"), ParseError);
  EXPECT_THROW((void)Expression::parse(""), ParseError);
}

TEST(Expression, VariablesAreCollected) {
  const auto vars = Expression::parse("a*b + max(c, a) - 2").variables();
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b", "c"}));
}

TEST(Expression, ToStringRoundTripsSemantically) {
  ParameterSet p{{"x", 3.0}, {"y", 0.5}};
  for (const std::string src :
       {"2*x*(1-y)", "x^2-y/4", "min(x, y)+max(x, 2)", "-x+3"}) {
    const Expression original = Expression::parse(src);
    const Expression reparsed = Expression::parse(original.to_string());
    EXPECT_DOUBLE_EQ(original.evaluate(p), reparsed.evaluate(p)) << src;
  }
}

TEST(Expression, ConstantConstructor) {
  const Expression c(2.5);
  EXPECT_DOUBLE_EQ(c.evaluate({}), 2.5);
  EXPECT_TRUE(c.variables().empty());
}

TEST(Expression, PaperRateStringsEvaluate) {
  // The exact strings used in the Figure 3 / Figure 4 models.
  ParameterSet p{{"hadb_La_hadb", 2.0 / 8760.0}, {"hadb_La_os", 1.0 / 8760.0},
                 {"hadb_La_hw", 1.0 / 8760.0},   {"hadb_FIR", 0.001},
                 {"Acc", 2.0},                   {"as_La_as", 50.0 / 8760.0},
                 {"as_La_os", 1.0 / 8760.0},     {"as_La_hw", 1.0 / 8760.0},
                 {"as_Trecovery", 5.0 / 3600.0}};
  EXPECT_NEAR(eval("2*hadb_La_hadb*(1-hadb_FIR)", p), 4.5616e-4, 1e-7);
  EXPECT_NEAR(
      eval("Acc*(hadb_La_hadb+hadb_La_os+hadb_La_hw)", p), 9.1324e-4, 1e-7);
  EXPECT_NEAR(
      eval("(as_La_as/(as_La_as+as_La_os+as_La_hw))/as_Trecovery", p),
      (50.0 / 52.0) / (5.0 / 3600.0), 1e-9);
}

TEST(ParameterSet, SetGetAndMerge) {
  ParameterSet p;
  p.set("a", 1.0).set("b", 2.0);
  EXPECT_TRUE(p.contains("a"));
  EXPECT_FALSE(p.contains("z"));
  EXPECT_DOUBLE_EQ(p.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(p.get_or("z", 9.0), 9.0);
  EXPECT_THROW((void)p.get("z"), UnknownParameterError);

  const ParameterSet merged = p.with(ParameterSet{{"b", 5.0}, {"c", 6.0}});
  EXPECT_DOUBLE_EQ(merged.get("a"), 1.0);
  EXPECT_DOUBLE_EQ(merged.get("b"), 5.0);
  EXPECT_DOUBLE_EQ(merged.get("c"), 6.0);
  EXPECT_EQ(merged.names(),
            (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace rascal::expr

#include "linalg/gth.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "linalg/matrix.h"

namespace rascal::linalg {
namespace {

// Two-state birth-death chain: pi = (mu, lambda) / (lambda + mu).
TEST(Gth, TwoStateChainHasClosedForm) {
  const double lambda = 0.3;
  const double mu = 1.7;
  const Vector pi =
      gth_stationary({{-lambda, lambda}, {mu, -mu}});
  EXPECT_NEAR(pi[0], mu / (lambda + mu), 1e-14);
  EXPECT_NEAR(pi[1], lambda / (lambda + mu), 1e-14);
}

TEST(Gth, DiagonalIsIgnored) {
  // Passing garbage on the diagonal must not change the result.
  const Vector a = gth_stationary({{0.0, 2.0}, {1.0, 0.0}});
  const Vector b = gth_stationary({{-99.0, 2.0}, {1.0, 123.0}});
  EXPECT_NEAR(a[0], b[0], 1e-15);
  EXPECT_NEAR(a[1], b[1], 1e-15);
}

TEST(Gth, SingleStateIsDegenerate) {
  const Vector pi = gth_stationary(Matrix(1, 1, 0.0));
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Gth, RejectsNonSquare) {
  EXPECT_THROW((void)gth_stationary(Matrix(2, 3)), std::invalid_argument);
}

TEST(Gth, RejectsNegativeOffDiagonal) {
  EXPECT_THROW((void)gth_stationary({{0.0, -1.0}, {1.0, 0.0}}),
               std::invalid_argument);
}

TEST(Gth, DetectsReducibleChain) {
  // State 1 cannot leave: zero pivot during elimination.
  EXPECT_THROW((void)gth_stationary({{-1.0, 1.0}, {0.0, 0.0}}),
               std::domain_error);
}

TEST(Gth, BirthDeathChainMatchesDetailedBalance) {
  // Birth rate b, death rate d: pi_k proportional to (b/d)^k.
  const double b = 0.7;
  const double d = 1.3;
  const std::size_t n = 6;
  Matrix q(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q(i, i + 1) = b;
    q(i + 1, i) = d;
  }
  const Vector pi = gth_stationary(q);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Detailed balance: pi_i * b = pi_{i+1} * d.
    EXPECT_NEAR(pi[i] * b, pi[i + 1] * d, 1e-14);
  }
}

TEST(Gth, HandlesExtremeRateStiffness) {
  // Failure rate 1e-9/h vs repair rate 3600/h: 12+ orders of
  // magnitude.  GTH must not lose the small probability.
  const double lambda = 1e-9;
  const double mu = 3600.0;
  const Vector pi = gth_stationary({{0.0, lambda}, {mu, 0.0}});
  EXPECT_NEAR(pi[1], lambda / (lambda + mu), 1e-25);
}

TEST(Gth, DtmcWrapperSolvesPeriodicChain) {
  // Deterministic 2-cycle: stationary (0.5, 0.5).
  const Vector pi = gth_stationary_dtmc({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(pi[0], 0.5, 1e-14);
  EXPECT_NEAR(pi[1], 0.5, 1e-14);
}

class GthProperty : public ::testing::TestWithParam<std::size_t> {};

// pi Q = 0 and sum(pi) = 1 on random irreducible generators.
TEST_P(GthProperty, StationaryVectorSatisfiesBalance) {
  const std::size_t n = GetParam();
  std::mt19937_64 gen(n * 104729);
  std::uniform_real_distribution<double> dist(0.01, 2.0);
  Matrix q(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r != c) q(r, c) = dist(gen);
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    double exit = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r != c) exit += q(r, c);
    }
    q(r, r) = -exit;
  }
  const Vector pi = gth_stationary(q);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const Vector residual = q.left_multiply(pi);
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GthProperty,
                         ::testing::Values(2, 3, 4, 8, 16, 40, 100));

}  // namespace
}  // namespace rascal::linalg

// End-to-end validation against the numbers printed in the paper:
// Table 2 (system results), Table 3 (configuration comparison), and
// the qualitative shapes of Figures 5-8.
#include <gtest/gtest.h>

#include "analysis/parametric.h"
#include "analysis/uncertainty.h"
#include "core/units.h"
#include "models/jsas_system.h"
#include "models/params.h"

namespace rascal::models {
namespace {

double config_downtime(const JsasConfig& config,
                       const expr::ParameterSet& params) {
  return solve_jsas(config, params).downtime_minutes_per_year;
}

// ---- Table 2 ----------------------------------------------------------

TEST(Table2, Config1SystemResults) {
  const JsasResult r = solve_jsas(JsasConfig::config1(),
                                  default_parameters());
  // Paper: availability 99.99933%, yearly downtime 3.5 min.
  EXPECT_NEAR(r.availability, 0.9999933, 2e-7);
  EXPECT_NEAR(r.downtime_minutes_per_year, 3.5, 0.06);
  // YD due to AS submodel: 2.35 min (67%); HADB: 1.15 min (33%).
  EXPECT_NEAR(r.downtime_as_minutes, 2.35, 0.04);
  EXPECT_NEAR(r.downtime_hadb_minutes, 1.15, 0.03);
  const double as_share =
      r.downtime_as_minutes / r.downtime_minutes_per_year;
  EXPECT_NEAR(as_share, 0.67, 0.02);
}

TEST(Table2, Config2SystemResults) {
  const JsasResult r = solve_jsas(JsasConfig::config2(),
                                  default_parameters());
  // Paper: availability 99.99956%, yearly downtime 2.3 min.
  EXPECT_NEAR(r.availability, 0.9999956, 2e-7);
  EXPECT_NEAR(r.downtime_minutes_per_year, 2.3, 0.05);
  // YD due to AS: 0.01 s (< 0.01%); HADB dominates (99.99%).
  EXPECT_LT(r.downtime_as_minutes * 60.0, 0.05);  // seconds
  EXPECT_GT(r.downtime_hadb_minutes / r.downtime_minutes_per_year, 0.999);
}

// ---- Table 3 ----------------------------------------------------------

struct Table3Row {
  std::size_t instances;
  double availability;
  double downtime_minutes;
  double mtbf_hours;
};

class Table3 : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3, RowReproduces) {
  const Table3Row row = GetParam();
  const JsasResult r = solve_jsas(JsasConfig::symmetric(row.instances),
                                  default_parameters());
  EXPECT_NEAR(r.availability, row.availability, 2.5e-7);
  EXPECT_NEAR(r.downtime_minutes_per_year, row.downtime_minutes,
              0.015 * row.downtime_minutes + 0.03);
  EXPECT_NEAR(r.mtbf_hours, row.mtbf_hours, 0.015 * row.mtbf_hours);
}

INSTANTIATE_TEST_SUITE_P(
    Rows, Table3,
    ::testing::Values(Table3Row{1, 0.999629, 195.0, 168.0},
                      Table3Row{2, 0.9999933, 3.49, 89980.0},
                      Table3Row{4, 0.9999956, 2.29, 229326.0},
                      Table3Row{6, 0.9999934, 3.44, 152889.0},
                      Table3Row{8, 0.9999912, 4.58, 114669.0},
                      Table3Row{10, 0.9999891, 5.73, 91736.0}),
    [](const auto& param_info) {
      return "Instances" + std::to_string(param_info.param.instances);
    });

TEST(Table3, RedundancyBuysTwoNines) {
  // Paper: "redundancy and failover ... enhance system availability
  // by two 9's" from 1 to 2 instances.
  const expr::ParameterSet p = default_parameters();
  const double u1 = 1.0 - solve_jsas(JsasConfig::symmetric(1), p).availability;
  const double u2 = 1.0 - solve_jsas(JsasConfig::symmetric(2), p).availability;
  EXPECT_GT(u1 / u2, 50.0);
  EXPECT_LT(u1 / u2, 200.0);
}

TEST(Table3, FourByFourIsOptimal) {
  // Paper: 4 AS instances + 4 HADB pairs maximizes availability.
  const expr::ParameterSet p = default_parameters();
  const double a4 = solve_jsas(JsasConfig::symmetric(4), p).availability;
  for (std::size_t n : {1, 2, 6, 8, 10}) {
    EXPECT_GT(a4, solve_jsas(JsasConfig::symmetric(n), p).availability)
        << "n=" << n;
  }
}

TEST(Table3, FiveNinesLostAtTenPairs) {
  // Paper: "The 99.999% availability level can no longer hold when
  // the number of HADB node pairs reaches 10."
  const expr::ParameterSet p = default_parameters();
  EXPECT_LT(solve_jsas(JsasConfig::symmetric(10), p).availability, 0.99999);
  EXPECT_GT(solve_jsas(JsasConfig::symmetric(8), p).availability, 0.99999);
}

// ---- Figures 5 and 6 ---------------------------------------------------

TEST(Figure5, Config1LosesFiveNinesNear2Point5Hours) {
  const analysis::ModelFunction availability =
      [](const expr::ParameterSet& params) {
        return solve_jsas(JsasConfig::config1(), params).availability;
      };
  const auto sweep = analysis::parametric_sweep(
      availability, default_parameters(), "as_Tstart_long",
      {0.5, 1.0, 1.5, 2.0, 2.5, 3.0});
  // Monotone decreasing in the recovery time.
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].metric, sweep[i + 1].metric);
  }
  // Five 9s hold at 2.0 h but not at 2.5 h (paper's crossover).
  EXPECT_GT(sweep[3].metric, 0.99999);
  EXPECT_LT(sweep[4].metric, 0.99999);
}

TEST(Figure6, Config2IsInsensitiveToAsRecoveryTime) {
  const analysis::ModelFunction availability =
      [](const expr::ParameterSet& params) {
        return solve_jsas(JsasConfig::config2(), params).availability;
      };
  const auto sweep = analysis::parametric_sweep(
      availability, default_parameters(), "as_Tstart_long", {0.5, 3.0});
  // Paper: still above 99.9995% at 3 hours; variation only in the
  // 9th decimal place.
  EXPECT_GT(sweep[1].metric, 0.999995);
  EXPECT_LT(sweep[0].metric - sweep[1].metric, 1e-8);
}

// ---- Figures 7 and 8 (reduced sample size; full runs in bench) --------

std::vector<stats::ParameterRange> paper_uncertainty_ranges() {
  return {{"as_La_as", 10.0 / 8760.0, 50.0 / 8760.0},
          {"hadb_La_hadb", 1.0 / 8760.0, 4.0 / 8760.0},
          {"as_La_os", 0.5 / 8760.0, 2.0 / 8760.0},
          {"as_La_hw", 0.5 / 8760.0, 2.0 / 8760.0},
          {"hadb_La_os", 0.5 / 8760.0, 2.0 / 8760.0},
          {"hadb_La_hw", 0.5 / 8760.0, 2.0 / 8760.0},
          {"as_Tstart_long", 0.5, 3.0},
          {"hadb_FIR", 0.0, 0.002}};
}

TEST(Figure7, Config1UncertaintyStatistics) {
  analysis::UncertaintyOptions options;
  options.samples = 300;
  const auto result = analysis::uncertainty_analysis(
      [](const expr::ParameterSet& params) {
        return config_downtime(JsasConfig::config1(), params);
      },
      default_parameters(), paper_uncertainty_ranges(), options);
  // Paper: mean 3.78 min, 80% CI (1.89, 6.02).  Allow sampling error.
  EXPECT_NEAR(result.mean, 3.78, 0.35);
  EXPECT_NEAR(result.interval80.lower, 1.89, 0.45);
  EXPECT_NEAR(result.interval80.upper, 6.02, 0.60);
  // "Over 80% of sampled systems have yearly downtime < 5.25 min."
  EXPECT_GT(result.fraction_below(5.25), 0.8);
}

TEST(Figure8, Config2UncertaintyStatistics) {
  analysis::UncertaintyOptions options;
  options.samples = 300;
  const auto result = analysis::uncertainty_analysis(
      [](const expr::ParameterSet& params) {
        return config_downtime(JsasConfig::config2(), params);
      },
      default_parameters(), paper_uncertainty_ranges(), options);
  // Paper: mean 2.99 min, 80% CI (1.01, 5.19), >90% below 5.25 min.
  EXPECT_NEAR(result.mean, 2.99, 0.35);
  EXPECT_GT(result.fraction_below(5.25), 0.9);
}

// ---- configuration plumbing -------------------------------------------

TEST(JsasConfig, NamedConfigurations) {
  EXPECT_EQ(JsasConfig::config1().as_instances, 2u);
  EXPECT_EQ(JsasConfig::config1().hadb_pairs, 2u);
  EXPECT_EQ(JsasConfig::config2().as_instances, 4u);
  EXPECT_EQ(JsasConfig::config2().hadb_pairs, 4u);
  EXPECT_EQ(JsasConfig::symmetric(6).hadb_pairs, 6u);
  EXPECT_FALSE(JsasConfig::config1().name().empty());
}

TEST(JsasModel, RejectsDegenerateConfigs) {
  EXPECT_THROW((void)jsas_model({1, 2, 2}), std::invalid_argument);
  EXPECT_THROW((void)jsas_model({2, 0, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::models

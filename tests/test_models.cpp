#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/units.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/params.h"
#include "models/single_instance.h"

namespace rascal::models {
namespace {

TEST(DefaultParameters, MatchSectionFive) {
  const expr::ParameterSet p = default_parameters();
  EXPECT_NEAR(p.get("as_La_as"), 50.0 / 8760.0, 1e-15);
  EXPECT_NEAR(p.get("as_La_os"), 1.0 / 8760.0, 1e-15);
  EXPECT_NEAR(p.get("as_La_hw"), 1.0 / 8760.0, 1e-15);
  EXPECT_NEAR(p.get("as_Trecovery"), 5.0 / 3600.0, 1e-15);
  EXPECT_NEAR(p.get("as_Tstart_short"), 90.0 / 3600.0, 1e-15);
  EXPECT_DOUBLE_EQ(p.get("as_Tstart_long"), 1.0);
  EXPECT_DOUBLE_EQ(p.get("as_Tstart_all"), 0.5);
  EXPECT_NEAR(p.get("hadb_La_hadb"), 2.0 / 8760.0, 1e-15);
  EXPECT_NEAR(p.get("hadb_Tstart_short"), 1.0 / 60.0, 1e-15);
  EXPECT_NEAR(p.get("hadb_Tstart_long"), 0.25, 1e-15);
  EXPECT_DOUBLE_EQ(p.get("hadb_Trepair"), 0.5);
  EXPECT_DOUBLE_EQ(p.get("hadb_Trestore"), 1.0);
  EXPECT_DOUBLE_EQ(p.get("hadb_FIR"), 0.001);
  EXPECT_DOUBLE_EQ(p.get("Acc"), 2.0);
}

TEST(HadbPairModel, HasFigureThreeStructure) {
  const ctmc::Ctmc chain = hadb_pair_model().bind(default_parameters());
  EXPECT_EQ(chain.num_states(), 6u);
  for (const char* name :
       {"Ok", "RestartShort", "RestartLong", "Repair", "Maintenance",
        "2_Down"}) {
    EXPECT_TRUE(chain.find_state(name).has_value()) << name;
  }
  // Only 2_Down is a failure state.
  EXPECT_EQ(chain.states_with_reward_below(0.5),
            std::vector<ctmc::StateId>{chain.state("2_Down")});
  EXPECT_TRUE(chain.is_irreducible());
}

TEST(HadbPairModel, RatesMatchFigureThree) {
  const expr::ParameterSet p = default_parameters();
  const ctmc::Ctmc chain = hadb_pair_model().bind(p);
  const double la = (2.0 + 1.0 + 1.0) / 8760.0;
  EXPECT_NEAR(chain.rate(chain.state("Ok"), chain.state("RestartShort")),
              2.0 * (2.0 / 8760.0) * 0.999, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("Ok"), chain.state("2_Down")),
              2.0 * la * 0.001, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("RestartShort"), chain.state("2_Down")),
              2.0 * la, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("RestartShort"), chain.state("Ok")),
              60.0, 1e-9);
  EXPECT_NEAR(chain.rate(chain.state("2_Down"), chain.state("Ok")), 1.0,
              1e-12);
  EXPECT_NEAR(chain.rate(chain.state("Ok"), chain.state("Maintenance")),
              4.0 / 8760.0, 1e-12);
}

TEST(HadbPairModel, ZeroFirRemovesDirectFailureEdge) {
  expr::ParameterSet p = default_parameters();
  p.set("hadb_FIR", 0.0);
  const ctmc::Ctmc chain = hadb_pair_model().bind(p);
  EXPECT_DOUBLE_EQ(chain.rate(chain.state("Ok"), chain.state("2_Down")),
                   0.0);
}

TEST(AppServerTwoInstance, HasFigureFourStructure) {
  const ctmc::Ctmc chain =
      app_server_two_instance_model().bind(default_parameters());
  EXPECT_EQ(chain.num_states(), 5u);
  for (const char* name :
       {"All_Work", "Recovery", "1DownShort", "1DownLong", "2_Down"}) {
    EXPECT_TRUE(chain.find_state(name).has_value()) << name;
  }
  EXPECT_TRUE(chain.is_irreducible());
}

TEST(AppServerTwoInstance, RatesMatchFigureFour) {
  const ctmc::Ctmc chain =
      app_server_two_instance_model().bind(default_parameters());
  const double la = 52.0 / 8760.0;
  const double fss = 50.0 / 52.0;
  EXPECT_NEAR(chain.rate(chain.state("All_Work"), chain.state("Recovery")),
              2.0 * la, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("Recovery"), chain.state("1DownShort")),
              fss / (5.0 / 3600.0), 1e-9);
  EXPECT_NEAR(chain.rate(chain.state("Recovery"), chain.state("1DownLong")),
              (1.0 - fss) / (5.0 / 3600.0), 1e-9);
  EXPECT_NEAR(chain.rate(chain.state("1DownShort"), chain.state("All_Work")),
              3600.0 / 90.0, 1e-9);
  EXPECT_NEAR(chain.rate(chain.state("1DownLong"), chain.state("2_Down")),
              2.0 * la, 1e-12);
  EXPECT_NEAR(chain.rate(chain.state("2_Down"), chain.state("All_Work")),
              2.0, 1e-12);
}

TEST(AppServerNInstance, StateCountFormula) {
  EXPECT_EQ(app_server_n_instance_state_count(2), 5u);
  EXPECT_EQ(app_server_n_instance_state_count(4), 21u);
  EXPECT_EQ(app_server_n_instance_state_count(10), 221u);
  for (std::size_t n : {2, 3, 4, 6, 8, 10}) {
    const ctmc::Ctmc chain =
        app_server_n_instance_model(n).bind(default_parameters());
    EXPECT_EQ(chain.num_states(), app_server_n_instance_state_count(n))
        << "n=" << n;
    EXPECT_TRUE(chain.is_irreducible()) << "n=" << n;
  }
}

TEST(AppServerNInstance, ReducesToFigureFourForTwoInstances) {
  const expr::ParameterSet p = default_parameters();
  const auto explicit_metrics =
      core::solve_availability(app_server_two_instance_model().bind(p));
  const auto general_metrics =
      core::solve_availability(app_server_n_instance_model(2).bind(p));
  EXPECT_NEAR(general_metrics.availability, explicit_metrics.availability,
              1e-14);
  EXPECT_NEAR(general_metrics.failure_frequency,
              explicit_metrics.failure_frequency, 1e-18);
}

TEST(AppServerNInstance, MoreInstancesImproveAvailability) {
  const expr::ParameterSet p = default_parameters();
  double previous_unavailability = 1.0;
  for (std::size_t n : {2, 3, 4}) {
    const auto m =
        core::solve_availability(app_server_n_instance_model(n).bind(p));
    EXPECT_LT(m.unavailability, previous_unavailability) << "n=" << n;
    previous_unavailability = m.unavailability;
  }
}

TEST(AppServerNInstance, RejectsFewerThanTwo) {
  EXPECT_THROW((void)app_server_n_instance_model(1), std::invalid_argument);
  EXPECT_THROW((void)app_server_n_instance_model(0), std::invalid_argument);
}

TEST(AppServerNInstance, PerformabilityRewardOnRecoveryStates) {
  const ctmc::Ctmc chain =
      app_server_n_instance_model(2, 0.5).bind(default_parameters());
  // The (r=1) state carries the degraded reward.
  bool found_degraded = false;
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    if (chain.reward(s) == 0.5) found_degraded = true;
  }
  EXPECT_TRUE(found_degraded);
}

TEST(SingleInstance, MatchesHandComputedDowntime) {
  // 50 AS failures/yr x 1.5 min + 2 HW/OS failures/yr x 60 min
  // = 195 min/yr (Table 3 row 1).
  const auto metrics =
      core::solve_availability(single_instance_model().bind(
          default_parameters()));
  EXPECT_NEAR(metrics.downtime_minutes_per_year, 195.0, 0.1);
  EXPECT_NEAR(metrics.availability, 0.999629, 1e-6);
  EXPECT_NEAR(metrics.mtbf_hours, 8760.0 / 52.0, 0.15);
}

}  // namespace
}  // namespace rascal::models

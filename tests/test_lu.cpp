#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace rascal::linalg {
namespace {

TEST(Lu, SolvesSmallSystem) {
  // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
  const Vector x = solve_linear_system({{2.0, 1.0}, {1.0, 3.0}}, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresSquareMatrix) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DetectsSingularMatrix) {
  EXPECT_THROW(LuDecomposition({{1.0, 2.0}, {2.0, 4.0}}), std::domain_error);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  // Naive elimination without pivoting fails on a(0,0) == 0.
  const Vector x = solve_linear_system({{0.0, 1.0}, {1.0, 0.0}}, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const LuDecomposition lu(Matrix{{3.0, 1.0}, {2.0, 4.0}});
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(Lu, DeterminantTracksPivotSign) {
  // Permutation matrix has determinant -1.
  const LuDecomposition lu(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, SolveRejectsWrongLength) {
  const LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW((void)lu.solve(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, MatrixRhsSolvesColumnwise) {
  const LuDecomposition lu(Matrix{{2.0, 0.0}, {0.0, 4.0}});
  const Matrix x = lu.solve(Matrix{{2.0, 4.0}, {4.0, 8.0}});
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 2.0, 1e-12);
}

class LuRandomized : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomized, ReconstructsRandomSystems) {
  const std::size_t n = GetParam();
  std::mt19937_64 gen(n * 7919);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(gen);
    a(r, r) += static_cast<double>(n);  // diagonal dominance
  }
  Vector x_true(n);
  for (double& v : x_true) v = dist(gen);
  const Vector b = a.multiply(x_true);
  const Vector x = LuDecomposition(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomized,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

}  // namespace
}  // namespace rascal::linalg

#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace rascal::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Scheduler, TiesBreakInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(1.0, [&] { order.push_back(2); });
  s.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, HorizonStopsExecution) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<double> fire_times;
  // Self-rescheduling heartbeat every 1.0 time unit.
  std::function<void()> beat = [&] {
    fire_times.push_back(s.now());
    if (s.now() < 4.5) s.schedule_after(1.0, beat);
  };
  s.schedule_at(1.0, beat);
  s.run_until(100.0);
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(999));  // unknown id
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelFromWithinEvent) {
  Scheduler s;
  int fired = 0;
  const EventId later = s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(1.0, [&] { s.cancel(later); });
  s.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

// Regression: cancelling an id that already fired used to return
// true and park the id in the cancelled set forever.
TEST(Scheduler, CancelOfFiredEventReturnsFalse) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, DoubleCancelReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelOfUnissuedIdsReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(0));  // id 0 is never issued
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_FALSE(s.cancel(id + 1));  // not issued yet
}

// Regression: stale cancellations must not accumulate.  If cancel()
// recorded fired ids, cancelled_ would outgrow the queue and pending()
// (queue size minus cancellations) would wrap around.
TEST(Scheduler, CancelStateStaysBounded) {
  Scheduler s;
  for (int i = 0; i < 100; ++i) {
    const EventId id = s.schedule_after(1.0, [] {});
    s.run_until(s.now() + 2.0);
    EXPECT_FALSE(s.cancel(id));
    EXPECT_EQ(s.pending(), 0u);
  }
  s.schedule_after(1.0, [] {});
  EXPECT_EQ(s.pending(), 1u);
}

// Pin the tie-break contract: equal-time events fire in the order
// they were scheduled, regardless of how many and of interleaved
// cancellations.  The deterministic simulators rely on this.
TEST(Scheduler, ManySameTimestampEventsFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(s.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 3) s.cancel(ids[static_cast<size_t>(i)]);
  s.run_until(2.0);
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, RejectsPastScheduling) {
  Scheduler s;
  s.schedule_at(2.0, [] {});
  s.run_until(2.0);
  EXPECT_THROW((void)s.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW((void)s.schedule_after(-0.5, [] {}), std::invalid_argument);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingCountsUncancelledEvents) {
  Scheduler s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

}  // namespace
}  // namespace rascal::sim

#include "rbd/block.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/units.h"
#include "models/jsas_system.h"
#include "models/params.h"

namespace rascal::rbd {
namespace {

BlockPtr unit(const std::string& name, double a) {
  // Component with availability a: mu = 1, lambda = (1-a)/a.
  return component(name, (1.0 - a) / a, 1.0);
}

TEST(Rbd, ComponentAvailabilityClosedForm) {
  const BlockPtr c = component("c", 0.5, 4.5);
  EXPECT_NEAR(c->availability(), 0.9, 1e-15);
  EXPECT_THROW((void)component("bad", 0.0, 1.0), std::invalid_argument);
}

TEST(Rbd, SeriesMultipliesAvailabilities) {
  const BlockPtr s = series("s", {unit("a", 0.9), unit("b", 0.8)});
  EXPECT_NEAR(s->availability(), 0.72, 1e-12);
}

TEST(Rbd, ParallelMultipliesUnavailabilities) {
  const BlockPtr p = parallel("p", {unit("a", 0.9), unit("b", 0.8)});
  EXPECT_NEAR(p->availability(), 1.0 - 0.1 * 0.2, 1e-12);
}

TEST(Rbd, KofNMatchesEnumeration) {
  const double a1 = 0.9;
  const double a2 = 0.8;
  const double a3 = 0.7;
  const BlockPtr two_of_three = k_of_n(
      "q", 2, {unit("a", a1), unit("b", a2), unit("c", a3)});
  // Enumerate: P(>=2 up).
  double expected = 0.0;
  for (int mask = 0; mask < 8; ++mask) {
    const double pa = (mask & 1) ? a1 : 1.0 - a1;
    const double pb = (mask & 2) ? a2 : 1.0 - a2;
    const double pc = (mask & 4) ? a3 : 1.0 - a3;
    const int up = ((mask & 1) != 0) + ((mask & 2) != 0) + ((mask & 4) != 0);
    if (up >= 2) expected += pa * pb * pc;
  }
  EXPECT_NEAR(two_of_three->availability(), expected, 1e-12);
}

TEST(Rbd, KofNDegenerateCases) {
  // 1-of-n == parallel; n-of-n == series.
  const std::vector<BlockPtr> children = {unit("a", 0.9), unit("b", 0.8),
                                          unit("c", 0.95)};
  EXPECT_NEAR(k_of_n("p", 1, children)->availability(),
              parallel("p", children)->availability(), 1e-12);
  EXPECT_NEAR(k_of_n("s", 3, children)->availability(),
              series("s", children)->availability(), 1e-12);
  EXPECT_THROW((void)k_of_n("bad", 0, children), std::invalid_argument);
  EXPECT_THROW((void)k_of_n("bad", 4, children), std::invalid_argument);
  EXPECT_THROW((void)series("empty", {}), std::invalid_argument);
}

TEST(Rbd, NestedStructure) {
  // Two redundant front-ends in series with a 2-of-3 storage quorum.
  const BlockPtr system = series(
      "system",
      {parallel("front", {unit("f1", 0.99), unit("f2", 0.99)}),
       k_of_n("quorum", 2,
              {unit("s1", 0.98), unit("s2", 0.98), unit("s3", 0.98)})});
  const double front = 1.0 - 0.01 * 0.01;
  const double quorum =
      3 * 0.98 * 0.98 * 0.02 + 0.98 * 0.98 * 0.98;
  EXPECT_NEAR(system->availability(), front * quorum, 1e-12);
}

TEST(Rbd, CtmcEmbeddingMatchesClosedForm) {
  const BlockPtr system = series(
      "sys", {parallel("p", {component("a", 0.01, 1.0),
                             component("b", 0.02, 0.5)}),
              component("c", 0.001, 2.0)});
  const ctmc::Ctmc chain = to_ctmc(system);
  EXPECT_EQ(chain.num_states(), 8u);
  const auto metrics = core::solve_availability(chain);
  EXPECT_NEAR(metrics.availability, system->availability(), 1e-12);
}

TEST(Rbd, CtmcEmbeddingKofN) {
  const BlockPtr quorum = k_of_n(
      "q", 2, {component("a", 0.1, 1.0), component("b", 0.2, 1.5),
               component("c", 0.05, 0.8)});
  const auto metrics = core::solve_availability(to_ctmc(quorum));
  EXPECT_NEAR(metrics.availability, quorum->availability(), 1e-12);
}

// The static RBD view of Config 1 ("at least one AS instance and one
// node per pair") is *optimistic* relative to the paper's Markov
// model: it has no workload acceleration, no imperfect recovery, and
// no session-recovery window.
TEST(Rbd, StaticViewIsOptimisticVersusMarkovModel) {
  using core::per_year;
  const auto params = models::default_parameters();
  const double as_la = per_year(52.0);
  const double as_mu = 1.0 / (50.0 / 52.0 * (90.0 / 3600.0) +
                              2.0 / 52.0 * 1.0);  // mixed restart time
  const double node_la = per_year(4.0);
  // Weighted mean node recovery time from the Figure 3 parameters.
  const double node_mu =
      4.0 / (2.0 * (1.0 / 60.0) + 1.0 * 0.25 + 1.0 * 0.5);

  const BlockPtr config1 = series(
      "config1",
      {parallel("as", {component("as1", as_la, as_mu),
                       component("as2", as_la, as_mu)}),
       parallel("pair1", {component("n1", node_la, node_mu),
                          component("n2", node_la, node_mu)}),
       parallel("pair2", {component("n3", node_la, node_mu),
                          component("n4", node_la, node_mu)})});

  const double rbd_downtime =
      core::downtime_minutes_per_year(1.0 - config1->availability());
  const double markov_downtime =
      models::solve_jsas(models::JsasConfig::config1(), params)
          .downtime_minutes_per_year;
  EXPECT_LT(rbd_downtime, markov_downtime);
  // ...but the static view is the right order of magnitude (minutes).
  EXPECT_GT(rbd_downtime, 0.05);
}

TEST(Rbd, NullBlockRejected) {
  EXPECT_THROW((void)to_ctmc(nullptr), std::invalid_argument);
  EXPECT_THROW((void)series("s", {nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace rascal::rbd

#include "ctmc/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/builder.h"
#include "ctmc/steady_state.h"
#include "lint/diagnostic.h"

namespace rascal::ctmc {
namespace {

Ctmc two_state(double lambda, double mu) {
  CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Down", 0.0);
  b.rate(0, 1, lambda).rate(1, 0, mu);
  return b.build();
}

// Closed form for the 2-state chain started Up:
// P(Up at t) = mu/(l+m) + l/(l+m) * exp(-(l+m) t).
double p_up(double lambda, double mu, double t) {
  const double s = lambda + mu;
  return mu / s + lambda / s * std::exp(-s * t);
}

TEST(Transient, MatchesTwoStateClosedForm) {
  const double lambda = 0.7;
  const double mu = 1.9;
  const Ctmc chain = two_state(lambda, mu);
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    const auto result = transient_distribution(chain, 0, t);
    EXPECT_NEAR(result.probabilities[0], p_up(lambda, mu, t), 1e-10)
        << "t=" << t;
  }
}

TEST(Transient, ConvergesToSteadyState) {
  const Ctmc chain = two_state(0.4, 1.1);
  const SteadyState steady = solve_steady_state(chain);
  const auto late = transient_distribution(chain, 0, 100.0);
  EXPECT_NEAR(late.probabilities[0], steady.probability(0), 1e-9);
  EXPECT_NEAR(late.probabilities[1], steady.probability(1), 1e-9);
}

TEST(Transient, ZeroTimeReturnsInitial) {
  const Ctmc chain = two_state(1.0, 1.0);
  const auto result = transient_distribution(chain, 1, 0.0);
  EXPECT_DOUBLE_EQ(result.probabilities[0], 0.0);
  EXPECT_DOUBLE_EQ(result.probabilities[1], 1.0);
}

TEST(Transient, DistributionStaysNormalized) {
  CtmcBuilder b;
  b.state("A", 1.0);
  b.state("B", 1.0);
  b.state("C", 0.0);
  b.rate(0, 1, 2.0).rate(1, 2, 3.0).rate(2, 0, 0.5).rate(1, 0, 1.0);
  const Ctmc chain = b.build();
  for (double t : {0.01, 0.3, 2.0, 20.0}) {
    const auto result = transient_distribution(chain, 0, t);
    double sum = 0.0;
    for (double p : result.probabilities) {
      EXPECT_GE(p, -1e-15);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Transient, HonoursInitialDistribution) {
  // The symmetric chain started at its stationary distribution stays
  // there for all horizons.
  const Ctmc chain = two_state(1.0, 1.0);
  const auto result =
      transient_distribution(chain, linalg::Vector{0.5, 0.5}, 40.0);
  EXPECT_NEAR(result.probabilities[0], 0.5, 1e-10);
}

TEST(Transient, ValidatesInput) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW((void)transient_distribution(chain, 5, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)transient_distribution(chain, 0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)transient_distribution(chain, linalg::Vector{0.7, 0.7}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)transient_distribution(chain, linalg::Vector{1.0}, 1.0),
      std::invalid_argument);
}

TEST(Transient, MaxTermsGuardsStiffChains) {
  const Ctmc chain = two_state(1e6, 1e6);
  TransientOptions options;
  options.max_terms = 10;
  // With validation on the infeasible horizon is rejected up front
  // (R032); with it off the summation loop itself trips the cap.
  EXPECT_THROW((void)transient_distribution(chain, 0, 1000.0, options),
               rascal::lint::LintError);
  options.validate = false;
  EXPECT_THROW((void)transient_distribution(chain, 0, 1000.0, options),
               std::runtime_error);
}

TEST(IntervalReward, TwoStateMatchesIntegralOfClosedForm) {
  const double lambda = 0.6;
  const double mu = 2.4;
  const Ctmc chain = two_state(lambda, mu);
  const double t = 2.0;
  // Integral of p_up over [0, t].
  const double s = lambda + mu;
  const double expected =
      mu / s * t + lambda / (s * s) * (1.0 - std::exp(-s * t));
  const auto result =
      expected_interval_reward(chain, linalg::Vector{1.0, 0.0}, t);
  EXPECT_NEAR(result.accumulated_reward, expected, 1e-9);
  EXPECT_NEAR(result.time_averaged, expected / t, 1e-9);
}

TEST(IntervalReward, InstantaneousAvailabilityBoundsIntervalAvailability) {
  // Starting from Up, interval availability decreases toward the
  // steady state but stays above it.
  const Ctmc chain = two_state(0.5, 5.0);
  const SteadyState steady = solve_steady_state(chain);
  const auto result =
      expected_interval_reward(chain, linalg::Vector{1.0, 0.0}, 3.0);
  EXPECT_GT(result.time_averaged, steady.probability(0));
  EXPECT_LT(result.time_averaged, 1.0);
}

TEST(IntervalReward, RequiresPositiveHorizon) {
  const Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(
      (void)expected_interval_reward(chain, linalg::Vector{1.0, 0.0}, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace rascal::ctmc

// Unit tests for the batch/serve layer: the strict JSONL request
// parser (hostile input becomes a typed RequestError, never a crash
// or silent default), the deterministic record rendering, the ordered
// results sink, and the end-to-end batch runner including per-request
// error records and cold/warm cache bit-identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "resil/chaos.h"
#include "serve/batch.h"
#include "serve/request.h"
#include "serve/sink.h"
#include "serve/supervise.h"

namespace rascal::serve {
namespace {

// ---- request parsing --------------------------------------------------

TEST(ServeRequest, ParsesFullRequest) {
  const Request request = parse_request(
      R"({"model": "m.rasc", "id": "r1", "set": {"FIR": 0.001, "La": 2e-4},)"
      R"( "method": "gmres", "precond": "jacobi", "sparse_threshold": 50,)"
      R"( "max_iterations": 200, "gmres_restart": 30,)"
      R"( "outputs": ["availability", "mtbf", "reward_rate"]})");
  EXPECT_EQ(request.model_path, "m.rasc");
  EXPECT_EQ(request.id, "r1");
  EXPECT_DOUBLE_EQ(request.overrides.get("FIR"), 0.001);
  EXPECT_DOUBLE_EQ(request.overrides.get("La"), 2e-4);
  EXPECT_EQ(request.method, ctmc::SteadyStateMethod::kGmres);
  EXPECT_EQ(request.precond, linalg::PrecondKind::kJacobi);
  EXPECT_EQ(request.sparse_threshold, 50u);
  EXPECT_EQ(request.max_iterations, 200u);
  EXPECT_EQ(request.gmres_restart, 30u);
  ASSERT_EQ(request.outputs.size(), 3u);
  EXPECT_EQ(request.outputs[0], OutputKind::kAvailability);
  EXPECT_EQ(request.outputs[1], OutputKind::kMtbf);
  EXPECT_EQ(request.outputs[2], OutputKind::kRewardRate);
}

TEST(ServeRequest, MinimalRequestGetsDefaults) {
  const Request request = parse_request(R"({"model": "m.rasc"})");
  EXPECT_EQ(request.method, ctmc::SteadyStateMethod::kGth);
  EXPECT_EQ(request.precond, linalg::PrecondKind::kIlu0);
  ASSERT_EQ(request.outputs.size(), 2u);
  EXPECT_EQ(request.outputs[0], OutputKind::kAvailability);
  EXPECT_EQ(request.outputs[1], OutputKind::kDowntime);
}

TEST(ServeRequest, RejectsHostileInput) {
  const char* cases[] = {
      "",                                          // empty line
      "not json",                                  // not an object
      R"({"set": {"FIR": 1}})",                    // missing model
      R"({"model": ""})",                          // empty model path
      R"({"model": "m.rasc", "methd": "lu"})",     // typoed field
      R"({"model": "m.rasc", "method": "qr"})",    // unknown method
      R"({"model": "m.rasc", "precond": "amg"})",  // unknown precond
      R"({"model": "m.rasc", "outputs": []})",     // empty outputs
      R"({"model": "m.rasc", "outputs": ["upness"]})",  // unknown output
      R"({"model": "m.rasc", "set": {"FIR": nan}})",    // non-finite
      R"({"model": "m.rasc", "set": {"FIR": 1e999}})",  // overflows
      R"({"model": "m.rasc", "set": {"": 1}})",         // empty name
      R"({"model": "m.rasc", "max_iterations": -3})",   // negative count
      R"({"model": "m.rasc", "max_iterations": 1.5})",  // fractional
      R"({"model": "m.rasc"} trailing)",                // trailing text
      R"({"model": "m.rasc")",                          // unterminated
      R"({"model": "m.rasc", "set": {"FIR": }})",       // missing value
  };
  for (const char* line : cases) {
    EXPECT_THROW((void)parse_request(line), RequestError)
        << "accepted: " << line;
  }
}

TEST(ServeRequest, ErrorsCarryByteOffsets) {
  try {
    (void)parse_request(R"({"model": "m.rasc", "bogus": 1})");
    FAIL() << "unknown field accepted";
  } catch (const RequestError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

// ---- record rendering -------------------------------------------------

TEST(ServeRender, ResultLineIsDeterministicJson) {
  Request request;
  request.id = "sweep-17";
  request.outputs = {OutputKind::kAvailability, OutputKind::kDowntime};
  const std::string line = render_result_line(3, request, {0.5, 1.0 / 3.0});
  EXPECT_EQ(line,
            "{\"schema\":\"rascal.serve.v1\",\"index\":3,\"id\":\"sweep-17\","
            "\"status\":\"ok\",\"results\":{\"availability\":0.5,"
            "\"downtime\":0.33333333333333331}}");
}

TEST(ServeRender, ErrorLineEscapesMessage) {
  const std::string line =
      render_error_line(0, "id\"x", "bad \"input\"\nline2");
  EXPECT_EQ(line,
            "{\"schema\":\"rascal.serve.v1\",\"index\":0,\"id\":\"id\\\"x\","
            "\"status\":\"error\",\"error\":\"bad \\\"input\\\"\\nline2\"}");
}

// ---- results sink -----------------------------------------------------

TEST(ServeSink, WritesRecordsInIndexOrder) {
  std::ostringstream out;
  {
    ResultsSink sink(out);
    // Deliberately out of order: nothing may appear until index 0
    // lands, then the whole contiguous prefix drains.
    sink.push(2, "two");
    sink.push(1, "one");
    sink.push(0, "zero");
    sink.push(3, "three");
    EXPECT_EQ(sink.close(), 4u);
  }
  EXPECT_EQ(out.str(), "zero\none\ntwo\nthree\n");
}

TEST(ServeSink, CloseCountsGapsAndKeepsLaterRecordsWithoutFiller) {
  std::ostringstream out;
  ResultsSink sink(out);
  sink.push(0, "zero");
  sink.push(2, "two");  // index 1 never arrives (dead worker)
  EXPECT_EQ(sink.close(), 2u);
  // Without a filler nothing is emitted for the hole, but the gap is
  // counted and the later record is no longer silently dropped.
  EXPECT_EQ(out.str(), "zero\ntwo\n");
  EXPECT_EQ(sink.gaps(), 1u);
}

TEST(ServeSink, CloseFillsGapsThroughTheFiller) {
  std::ostringstream out;
  ResultsSink sink(out);
  sink.set_gap_filler([](std::size_t index) {
    return "gap:" + std::to_string(index);
  });
  sink.push(0, "zero");
  sink.push(3, "three");  // indices 1 and 2 never arrive
  EXPECT_EQ(sink.close(), 4u);
  EXPECT_EQ(out.str(), "zero\ngap:1\ngap:2\nthree\n");
  EXPECT_EQ(sink.gaps(), 2u);
  EXPECT_EQ(sink.write_failures(), 0u);
}

TEST(ServeSink, TrailingUnpushedIndicesAreNotGaps) {
  std::ostringstream out;
  ResultsSink sink(out);
  sink.set_gap_filler([](std::size_t index) {
    return "gap:" + std::to_string(index);
  });
  sink.push(0, "zero");
  sink.push(1, "one");  // an interrupted run simply stops here
  EXPECT_EQ(sink.close(), 2u);
  EXPECT_EQ(out.str(), "zero\none\n");
  EXPECT_EQ(sink.gaps(), 0u);
}

TEST(ServeSink, ChaosWriteFailureIsCountedNotSilent) {
  resil::chaos::configure("sink-write-fail@1");
  std::ostringstream out;
  {
    ResultsSink sink(out);
    sink.push(0, "zero");
    sink.push(1, "one");
    sink.push(2, "two");
    EXPECT_EQ(sink.close(), 3u);
    EXPECT_EQ(sink.write_failures(), 1u);
  }
  resil::chaos::configure("");
  // Record 1 was refused by the stream; later indices keep flowing.
  EXPECT_EQ(out.str(), "zero\ntwo\n");
}

// ---- batch runner -----------------------------------------------------

class ServeBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_path_ = testing::TempDir() + "serve_batch_model.rasc";
    std::ofstream model(model_path_);
    model << "model test pair\n"
             "param La 0.002\n"
             "param Mu 0.5\n"
             "state Up reward 1\n"
             "state Down reward 0\n"
             "rate Up Down La\n"
             "rate Down Up Mu\n";
  }

  void TearDown() override { std::remove(model_path_.c_str()); }

  [[nodiscard]] std::string request_line(const char* extra = "") const {
    return std::string("{\"model\": \"") + model_path_ + "\"" + extra + "}";
  }

  std::string model_path_;
};

TEST_F(ServeBatchTest, MalformedLineBecomesErrorRecordNotAbort) {
  const std::vector<std::string> lines = {
      request_line(), "garbage", request_line(", \"id\": \"ok2\"")};
  std::ostringstream out;
  const BatchResult result = run_batch(lines, out, {});
  EXPECT_EQ(result.requests, 3u);
  EXPECT_EQ(result.succeeded, 2u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.written, 3u);

  std::istringstream records(out.str());
  std::string record;
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"index\":0,\"status\":\"ok\""), std::string::npos);
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"index\":1,\"status\":\"error\""),
            std::string::npos);
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"id\":\"ok2\",\"status\":\"ok\""),
            std::string::npos);
}

TEST_F(ServeBatchTest, UnknownModelBecomesErrorRecord) {
  const std::vector<std::string> lines = {
      "{\"model\": \"/nonexistent/void.rasc\"}", request_line()};
  std::ostringstream out;
  const BatchResult result = run_batch(lines, out, {});
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.succeeded, 1u);
  EXPECT_NE(out.str().find("\"status\":\"error\""), std::string::npos);
}

TEST_F(ServeBatchTest, ColdAndWarmCacheBitIdentical) {
  // Ten requests over three distinct parameter points: the shared
  // cache must hit and the bytes must match a cache-disabled run.
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) {
    const char* sets[] = {", \"set\": {\"La\": 0.001}",
                          ", \"set\": {\"La\": 0.002}",
                          ", \"set\": {\"La\": 0.003}"};
    lines.push_back(request_line(sets[i % 3]));
  }

  std::ostringstream warm_out;
  BatchOptions warm;
  warm.cache_capacity = 64;
  const BatchResult warm_result = run_batch(lines, warm_out, warm);
  EXPECT_EQ(warm_result.succeeded, 10u);
  EXPECT_GT(warm_result.cache.hits + warm_result.worker_hits, 0u);
  EXPECT_GT(warm_result.hit_rate(), 0.0);

  std::ostringstream cold_out;
  BatchOptions cold;
  cold.cache_capacity = 0;  // shared tier off
  const BatchResult cold_result = run_batch(lines, cold_out, cold);
  EXPECT_EQ(cold_result.succeeded, 10u);
  EXPECT_EQ(cold_result.cache.hits, 0u);

  EXPECT_EQ(warm_out.str(), cold_out.str());
}

TEST_F(ServeBatchTest, ChecksumDigestCoversEveryLine) {
  const std::vector<std::string> a = {request_line(), request_line()};
  std::vector<std::string> b = a;
  b[1] += " ";
  EXPECT_NE(batch_checkpoint_digest(a), batch_checkpoint_digest(b));
}

TEST_F(ServeBatchTest, ChecksumDigestCoversSupervisionKnobs) {
  // Resuming under different retry or shedding rules would splice
  // incompatible record streams: every knob must change the digest.
  const std::vector<std::string> lines = {request_line()};
  const std::uint64_t base = batch_checkpoint_digest(lines);
  SupervisionOptions changed;
  changed.retry.max_attempts = 5;
  EXPECT_NE(batch_checkpoint_digest(lines, changed), base);
  changed = {};
  changed.fallback_ladder = false;
  EXPECT_NE(batch_checkpoint_digest(lines, changed), base);
  changed = {};
  changed.admission_states = 10;
  EXPECT_NE(batch_checkpoint_digest(lines, changed), base);
  changed = {};
  changed.queue_cap = 7;
  EXPECT_NE(batch_checkpoint_digest(lines, changed), base);
}

TEST_F(ServeBatchTest, AdmissionStateCapShedsWithDistinctRecords) {
  const std::vector<std::string> lines = {request_line(", \"id\": \"big\""),
                                          request_line()};
  std::ostringstream out;
  BatchOptions options;
  options.supervision.admission_states = 1;  // the pair model has 2
  const BatchResult result = run_batch(lines, out, options);
  EXPECT_EQ(result.shed, 2u);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.written, 2u);
  EXPECT_FALSE(result.lossy());
  std::istringstream records(out.str());
  std::string record;
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"id\":\"big\",\"status\":\"shed\""),
            std::string::npos)
      << record;
  EXPECT_NE(record.find("admission: model declares 2 states, cap is 1"),
            std::string::npos)
      << record;
}

TEST_F(ServeBatchTest, QueueCapShedsTailInIndexOrder) {
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) lines.push_back(request_line());
  std::ostringstream out;
  BatchOptions options;
  options.supervision.queue_cap = 2;
  const BatchResult result = run_batch(lines, out, options);
  EXPECT_EQ(result.succeeded, 2u);
  EXPECT_EQ(result.shed, 2u);
  std::istringstream records(out.str());
  std::string record;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(std::getline(records, record));
    const char* expected = i < 2 ? "\"status\":\"ok\"" : "\"status\":\"shed\"";
    EXPECT_NE(record.find(expected), std::string::npos)
        << "index " << i << ": " << record;
    if (i >= 2) {
      EXPECT_NE(record.find("queue full: 2 requests already admitted"),
                std::string::npos)
          << record;
    }
  }
}

TEST_F(ServeBatchTest, TransientChaosFaultRecoversBitIdentically) {
  const std::vector<std::string> lines = {request_line(), request_line()};
  std::ostringstream clean_out;
  const BatchResult clean = run_batch(lines, clean_out, {});
  EXPECT_EQ(clean.succeeded, 2u);

  resil::chaos::configure("solver-fault@0");
  std::ostringstream faulted_out;
  const BatchResult faulted = run_batch(lines, faulted_out, {});
  resil::chaos::configure("");
  EXPECT_EQ(faulted.succeeded, 2u);
  EXPECT_EQ(faulted.failed, 0u);
  // A recovered transient is invisible in the stream: same bytes.
  EXPECT_EQ(faulted_out.str(), clean_out.str());
}

TEST_F(ServeBatchTest, ExhaustedRetriesBecomeClassifiedErrorRecords) {
  const std::vector<std::string> lines = {request_line(", \"id\": \"doomed\"")};
  // Default policy allows 3 attempts; arm a fault for each of them.
  resil::chaos::configure("solver-fault@0,solver-fault@1,solver-fault@2");
  std::ostringstream out;
  BatchOptions options;
  options.threads = 1;  // occurrence-keyed site: keep the order exact
  const BatchResult result = run_batch(lines, out, options);
  resil::chaos::configure("");
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.succeeded, 0u);
  EXPECT_NE(out.str().find("\"id\":\"doomed\",\"status\":\"error\","
                           "\"class\":\"transient\""),
            std::string::npos)
      << out.str();
}

TEST_F(ServeBatchTest, AbandonedWorkerChunkIsGapFilledAndCounted) {
  const std::vector<std::string> lines = {request_line(), request_line()};
  resil::chaos::configure("worker-abandon@0");
  std::ostringstream out;
  BatchOptions options;
  options.threads = 2;  // index 0 and 1 land in different chunks
  const BatchResult result = run_batch(lines, out, options);
  resil::chaos::configure("");
  EXPECT_EQ(result.succeeded, 1u);
  EXPECT_EQ(result.gaps, 1u);
  EXPECT_EQ(result.lost, 1u);
  EXPECT_TRUE(result.lossy());
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.written, 2u);  // the gap record keeps the stream whole
  std::istringstream records(out.str());
  std::string record;
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"index\":0,\"status\":\"error\",\"class\":\"lost\""),
            std::string::npos)
      << record;
  ASSERT_TRUE(std::getline(records, record));
  EXPECT_NE(record.find("\"index\":1"), std::string::npos) << record;
  EXPECT_NE(record.find("\"status\":\"ok\""), std::string::npos) << record;
}

TEST_F(ServeBatchTest, HostileCorpusEveryRequestAccountedFor) {
  // Adversarial stream: none of these may abort the process, leak a
  // record, or stall the run — each line ends as exactly one record.
  std::vector<std::string> lines;
  lines.push_back(std::string(100000, '{'));            // deep nesting
  lines.push_back(std::string(10u << 20, 'x'));         // 10 MiB garbage
  lines.push_back(std::string("{\"model\": \"m\0.rasc\"}", 21));  // NUL
  lines.push_back("{\"model\": \"m.rasc\xC3");          // truncated UTF-8
  lines.push_back("{\"model\": \"a.rasc\", \"model\": \"b.rasc\"}");  // dup
  lines.push_back("{\"model\": \"" + std::string(1 << 20, 'a') + "\"}");
  lines.push_back(request_line(", \"id\": \"survivor\""));
  std::ostringstream out;
  const BatchResult result = run_batch(lines, out, {});
  EXPECT_EQ(result.requests, lines.size());
  EXPECT_EQ(result.succeeded + result.failed + result.shed, lines.size());
  EXPECT_EQ(result.succeeded, 1u);
  EXPECT_EQ(result.written, lines.size());
  EXPECT_FALSE(result.lossy());
  // Duplicate keys are rejected, not last-wins silently.
  EXPECT_NE(out.str().find("duplicate field"), std::string::npos);
  EXPECT_NE(out.str().find("\"id\":\"survivor\",\"status\":\"ok\""),
            std::string::npos);
  std::istringstream records(out.str());
  std::string record;
  std::size_t count = 0;
  while (std::getline(records, record)) ++count;
  EXPECT_EQ(count, lines.size());
}

TEST(ServeReadLines, KeepsBlankLinesAndStripsCr) {
  std::istringstream in("one\r\n\nthree");
  const std::vector<std::string> lines = read_request_lines(in);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "three");
}

}  // namespace
}  // namespace rascal::serve

#include "io/dot_export.h"

#include <gtest/gtest.h>

#include "ctmc/builder.h"

namespace rascal::io {
namespace {

ctmc::Ctmc sample_chain() {
  ctmc::CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Degraded", 0.7);
  b.state("Down", 0.0);
  b.rate(0, 1, 0.25).rate(1, 0, 2.0).rate(1, 2, 0.125).rate(2, 0, 1.0);
  return b.build();
}

TEST(DotExport, EmitsValidDigraphStructure) {
  const std::string dot = to_dot(sample_chain());
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("\"Up\" -> \"Degraded\""), std::string::npos);
  EXPECT_NE(dot.find("\"Down\" -> \"Up\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(DotExport, StylesStatesByReward) {
  const std::string dot = to_dot(sample_chain());
  // Down states render as shaded boxes, degraded states amber.
  EXPECT_NE(dot.find("\"Down\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"Degraded\" [shape=ellipse, style=filled"),
            std::string::npos);
  EXPECT_NE(dot.find("\"Up\" [shape=ellipse];"), std::string::npos);
}

TEST(DotExport, RateLabelsAreOptional) {
  DotOptions options;
  options.show_rates = false;
  const std::string dot = to_dot(sample_chain(), options);
  EXPECT_EQ(dot.find("label="), std::string::npos);

  options.show_rates = true;
  const std::string with_rates = to_dot(sample_chain(), options);
  EXPECT_NE(with_rates.find("label=\"0.25\""), std::string::npos);
}

TEST(DotExport, EscapesAwkwardNames) {
  ctmc::CtmcBuilder b;
  b.state("state \"one\"", 1.0);
  b.state("state\\two", 0.0);
  b.rate(0, 1, 1.0).rate(1, 0, 1.0);
  const std::string dot = to_dot(b.build());
  EXPECT_NE(dot.find("\\\"one\\\""), std::string::npos);
  EXPECT_NE(dot.find("state\\\\two"), std::string::npos);
}

TEST(DotExport, GraphNameIsQuoted) {
  DotOptions options;
  options.graph_name = "HADB pair (Figure 3)";
  const std::string dot = to_dot(sample_chain(), options);
  EXPECT_NE(dot.find("digraph \"HADB pair (Figure 3)\""),
            std::string::npos);
}

}  // namespace
}  // namespace rascal::io

#include "ctmc/ctmc.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ctmc/builder.h"

namespace rascal::ctmc {
namespace {

Ctmc simple_chain() {
  CtmcBuilder b;
  const StateId up = b.state("Up", 1.0);
  const StateId down = b.state("Down", 0.0);
  b.rate(up, down, 0.1).rate(down, up, 2.0);
  return b.build();
}

TEST(Ctmc, BasicAccessors) {
  const Ctmc c = simple_chain();
  EXPECT_EQ(c.num_states(), 2u);
  EXPECT_EQ(c.state_name(0), "Up");
  EXPECT_DOUBLE_EQ(c.reward(0), 1.0);
  EXPECT_DOUBLE_EQ(c.reward(1), 0.0);
  EXPECT_EQ(c.state("Down"), 1u);
  EXPECT_FALSE(c.find_state("Nope").has_value());
  EXPECT_THROW((void)c.state("Nope"), std::invalid_argument);
}

TEST(Ctmc, ExitRatesAndRateLookup) {
  const Ctmc c = simple_chain();
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(c.rate(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(c.rate(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.rate(0, 0), 0.0);
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  const Ctmc c = simple_chain();
  const linalg::Matrix q = c.generator();
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t col = 0; col < q.cols(); ++col) sum += q(r, col);
    EXPECT_NEAR(sum, 0.0, 1e-15);
  }
}

TEST(Ctmc, SparseGeneratorMatchesDense) {
  const Ctmc c = simple_chain();
  EXPECT_EQ(c.sparse_generator().to_dense(), c.generator());
}

TEST(Ctmc, ParallelTransitionsAreMerged) {
  const Ctmc c({{"A", 1.0}, {"B", 0.0}},
               {{0, 1, 0.5}, {0, 1, 0.25}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(c.rate(0, 1), 0.75);
  EXPECT_EQ(c.transitions().size(), 2u);
}

TEST(Ctmc, ValidationRejectsBadInput) {
  // Self-loop.
  EXPECT_THROW(Ctmc({{"A", 1.0}}, {{0, 0, 1.0}}), std::invalid_argument);
  // Out-of-range endpoint.
  EXPECT_THROW(Ctmc({{"A", 1.0}}, {{0, 1, 1.0}}), std::invalid_argument);
  // Non-positive rate.
  EXPECT_THROW(Ctmc({{"A", 1.0}, {"B", 1.0}}, {{0, 1, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Ctmc({{"A", 1.0}, {"B", 1.0}}, {{0, 1, -1.0}}),
               std::invalid_argument);
  // Duplicate / empty names.
  EXPECT_THROW(Ctmc({{"A", 1.0}, {"A", 1.0}}, {}), std::invalid_argument);
  EXPECT_THROW(Ctmc({{"", 1.0}}, {}), std::invalid_argument);
  // Empty state set.
  EXPECT_THROW(Ctmc({}, {}), std::invalid_argument);
}

TEST(Ctmc, IrreducibilityDetection) {
  EXPECT_TRUE(simple_chain().is_irreducible());
  // One-way chain is reducible.
  const Ctmc oneway({{"A", 1.0}, {"B", 0.0}}, {{0, 1, 1.0}});
  EXPECT_FALSE(oneway.is_irreducible());
}

TEST(Ctmc, RewardPartitions) {
  CtmcBuilder b;
  b.state("Up", 1.0);
  b.state("Degraded", 0.6);
  b.state("Down", 0.0);
  b.rate(0, 1, 1.0).rate(1, 2, 1.0).rate(2, 0, 1.0);
  const Ctmc c = b.build();
  EXPECT_EQ(c.states_with_reward_at_least(0.5),
            (std::vector<StateId>{0, 1}));
  EXPECT_EQ(c.states_with_reward_below(0.5), (std::vector<StateId>{2}));
  EXPECT_DOUBLE_EQ(c.max_exit_rate(), 1.0);
}

TEST(Builder, NameBasedRates) {
  CtmcBuilder b;
  b.state("X", 1.0);
  b.state("Y", 0.0);
  b.rate("X", "Y", 3.0).rate("Y", "X", 4.0);
  const Ctmc c = b.build();
  EXPECT_DOUBLE_EQ(c.rate(0, 1), 3.0);
  EXPECT_THROW(b.rate("X", "Zzz", 1.0), std::invalid_argument);
}

TEST(Builder, ZeroRatesAreDropped) {
  CtmcBuilder b;
  b.state("X", 1.0);
  b.state("Y", 0.0);
  b.rate(0, 1, 0.0).rate(0, 1, 2.0).rate(1, 0, 1.0);
  EXPECT_EQ(b.build().transitions().size(), 2u);
}

TEST(SymbolicCtmc, BindEvaluatesExpressions) {
  ctmc::SymbolicCtmc m;
  m.state("Up", 1.0);
  m.state("Down", 0.0);
  m.rate("Up", "Down", "2*lambda*(1-c)");
  m.rate("Down", "Up", "1/t_repair");
  const expr::ParameterSet params{
      {"lambda", 0.5}, {"c", 0.1}, {"t_repair", 4.0}};
  const Ctmc bound = m.bind(params);
  EXPECT_DOUBLE_EQ(bound.rate(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(bound.rate(1, 0), 0.25);
}

TEST(SymbolicCtmc, CollectsParameters) {
  ctmc::SymbolicCtmc m;
  m.state("A", 1.0);
  m.state("B", 0.0);
  m.rate("A", "B", "x+y");
  m.rate("B", "A", "z");
  EXPECT_EQ(m.parameters(), (std::set<std::string>{"x", "y", "z"}));
}

TEST(SymbolicCtmc, BindRejectsNegativeRates) {
  ctmc::SymbolicCtmc m;
  m.state("A", 1.0);
  m.state("B", 0.0);
  m.rate("A", "B", "x");
  m.rate("B", "A", "1");
  EXPECT_THROW((void)m.bind(expr::ParameterSet{{"x", -1.0}}),
               std::invalid_argument);
}

TEST(SymbolicCtmc, BindDropsExactZeroRates) {
  // FIR = 0 must silently remove the imperfect-recovery edge instead
  // of failing validation.
  ctmc::SymbolicCtmc m;
  m.state("A", 1.0);
  m.state("B", 0.0);
  m.rate("A", "B", "fir");
  m.rate("A", "B", "1");
  m.rate("B", "A", "1");
  const Ctmc bound = m.bind(expr::ParameterSet{{"fir", 0.0}});
  EXPECT_DOUBLE_EQ(bound.rate(0, 1), 1.0);
}

TEST(SymbolicCtmc, BindReportsMissingParameter) {
  ctmc::SymbolicCtmc m;
  m.state("A", 1.0);
  m.state("B", 0.0);
  m.rate("A", "B", "nope");
  m.rate("B", "A", "1");
  EXPECT_THROW((void)m.bind({}), expr::UnknownParameterError);
}

}  // namespace
}  // namespace rascal::ctmc

#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace rascal::linalg {
namespace {

TEST(Csr, BuildsFromTriplets) {
  const CsrMatrix m(2, 3, {{0, 1, 5.0}, {1, 2, 7.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.non_zeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  const CsrMatrix m(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(Csr, CancellingDuplicatesAreDropped) {
  const CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix(1, 1, {{0, 1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 1, {{1, 0, 1.0}}), std::invalid_argument);
}

TEST(Csr, MultiplyMatchesDense) {
  const Matrix d{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {4.0, 0.0, 5.0}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{1.0, 2.0, 3.0};
  const Vector ys = s.multiply(x);
  const Vector yd = d.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, LeftMultiplyMatchesDense) {
  const Matrix d{{1.0, -1.0}, {2.0, 0.5}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{0.25, 4.0};
  const Vector ys = s.left_multiply(x);
  const Vector yd = d.left_multiply(x);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, RoundTripsThroughDense) {
  const Matrix d{{0.0, 1.0}, {2.0, 0.0}};
  EXPECT_EQ(CsrMatrix::from_dense(d).to_dense(), d);
}

TEST(Csr, RowReturnsOrderedEntries) {
  const CsrMatrix m(1, 4, {{0, 3, 4.0}, {0, 1, 2.0}});
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].first, 1u);
  EXPECT_DOUBLE_EQ(row[0].second, 2.0);
  EXPECT_EQ(row[1].first, 3u);
  EXPECT_DOUBLE_EQ(row[1].second, 4.0);
}

TEST(Csr, DimensionMismatchThrows) {
  const CsrMatrix m(2, 3, {});
  EXPECT_THROW((void)m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)m.left_multiply(Vector{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(Csr, FromDenseDropsSmallEntries) {
  const Matrix d{{1e-15, 1.0}, {0.5, 1e-16}};
  const CsrMatrix s = CsrMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(s.non_zeros(), 2u);
}

TEST(Csr, RvalueTripletsBuildTheSameMatrix) {
  std::vector<Triplet> triplets = {
      {1, 0, 3.0}, {0, 2, 1.0}, {0, 0, 2.0}, {1, 0, -1.0}};
  const CsrMatrix copied(2, 3, triplets);
  const CsrMatrix moved(2, 3, std::move(triplets));
  EXPECT_EQ(copied.row_ptr(), moved.row_ptr());
  EXPECT_EQ(copied.col_idx(), moved.col_idx());
  EXPECT_EQ(copied.values(), moved.values());
  EXPECT_DOUBLE_EQ(moved.at(1, 0), 2.0);  // duplicates summed
}

TEST(Csr, UnsortedTripletsComeOutRowMajorColumnSorted) {
  const CsrMatrix m(3, 3,
                    {{2, 1, 6.0}, {0, 2, 3.0}, {1, 0, 4.0}, {0, 0, 1.0},
                     {2, 2, 7.0}, {1, 1, 5.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.row_ptr(), (std::vector<std::size_t>{0, 3, 5, 7}));
  EXPECT_EQ(m.col_idx(), (std::vector<std::size_t>{0, 1, 2, 0, 1, 1, 2}));
  EXPECT_EQ(m.values(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}));
}

TEST(Csr, FromPartsRoundTrips) {
  const CsrMatrix src(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const CsrMatrix rebuilt = CsrMatrix::from_parts(
      src.rows(), src.cols(), src.row_ptr(), src.col_idx(), src.values());
  EXPECT_EQ(rebuilt.row_ptr(), src.row_ptr());
  EXPECT_EQ(rebuilt.col_idx(), src.col_idx());
  EXPECT_EQ(rebuilt.values(), src.values());
}

TEST(Csr, FromPartsRejectsMalformedStructure) {
  // row_ptr must start at 0, be monotone, end at nnz, with one entry
  // per row plus one.
  EXPECT_THROW((void)CsrMatrix::from_parts(2, 2, {0, 1}, {0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {1, 1}, {}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {0, 2}, {0}, {1.0}),
               std::invalid_argument);
  // Columns must be strictly increasing within a row and in range.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 2, {0, 2}, {0, 0}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {0, 1}, {2}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, MultiplyIntoMatchesMultiply) {
  const CsrMatrix m(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const Vector x{1.0, 2.0, 3.0};
  const Vector expected = m.multiply(x);
  Vector y;
  m.multiply_into(x, y);
  EXPECT_EQ(y, expected);
  const Vector z{4.0, 5.0};
  const Vector left = m.left_multiply(z);
  Vector w;
  m.left_multiply_into(z, w);
  EXPECT_EQ(w, left);
}

}  // namespace
}  // namespace rascal::linalg

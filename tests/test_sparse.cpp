#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rascal::linalg {
namespace {

TEST(Csr, BuildsFromTriplets) {
  const CsrMatrix m(2, 3, {{0, 1, 5.0}, {1, 2, 7.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.non_zeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  const CsrMatrix m(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(Csr, CancellingDuplicatesAreDropped) {
  const CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix(1, 1, {{0, 1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 1, {{1, 0, 1.0}}), std::invalid_argument);
}

TEST(Csr, MultiplyMatchesDense) {
  const Matrix d{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {4.0, 0.0, 5.0}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{1.0, 2.0, 3.0};
  const Vector ys = s.multiply(x);
  const Vector yd = d.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, LeftMultiplyMatchesDense) {
  const Matrix d{{1.0, -1.0}, {2.0, 0.5}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{0.25, 4.0};
  const Vector ys = s.left_multiply(x);
  const Vector yd = d.left_multiply(x);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, RoundTripsThroughDense) {
  const Matrix d{{0.0, 1.0}, {2.0, 0.0}};
  EXPECT_EQ(CsrMatrix::from_dense(d).to_dense(), d);
}

TEST(Csr, RowReturnsOrderedEntries) {
  const CsrMatrix m(1, 4, {{0, 3, 4.0}, {0, 1, 2.0}});
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].first, 1u);
  EXPECT_DOUBLE_EQ(row[0].second, 2.0);
  EXPECT_EQ(row[1].first, 3u);
  EXPECT_DOUBLE_EQ(row[1].second, 4.0);
}

TEST(Csr, DimensionMismatchThrows) {
  const CsrMatrix m(2, 3, {});
  EXPECT_THROW((void)m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)m.left_multiply(Vector{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(Csr, FromDenseDropsSmallEntries) {
  const Matrix d{{1e-15, 1.0}, {0.5, 1e-16}};
  const CsrMatrix s = CsrMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(s.non_zeros(), 2u);
}

}  // namespace
}  // namespace rascal::linalg

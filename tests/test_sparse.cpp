#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace rascal::linalg {
namespace {

TEST(Csr, BuildsFromTriplets) {
  const CsrMatrix m(2, 3, {{0, 1, 5.0}, {1, 2, 7.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.non_zeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  const CsrMatrix m(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(Csr, CancellingDuplicatesAreDropped) {
  const CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix(1, 1, {{0, 1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 1, {{1, 0, 1.0}}), std::invalid_argument);
}

TEST(Csr, MultiplyMatchesDense) {
  const Matrix d{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {4.0, 0.0, 5.0}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{1.0, 2.0, 3.0};
  const Vector ys = s.multiply(x);
  const Vector yd = d.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, LeftMultiplyMatchesDense) {
  const Matrix d{{1.0, -1.0}, {2.0, 0.5}};
  const CsrMatrix s = CsrMatrix::from_dense(d);
  const Vector x{0.25, 4.0};
  const Vector ys = s.left_multiply(x);
  const Vector yd = d.left_multiply(x);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Csr, RoundTripsThroughDense) {
  const Matrix d{{0.0, 1.0}, {2.0, 0.0}};
  EXPECT_EQ(CsrMatrix::from_dense(d).to_dense(), d);
}

TEST(Csr, RowReturnsOrderedEntries) {
  const CsrMatrix m(1, 4, {{0, 3, 4.0}, {0, 1, 2.0}});
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].first, 1u);
  EXPECT_DOUBLE_EQ(row[0].second, 2.0);
  EXPECT_EQ(row[1].first, 3u);
  EXPECT_DOUBLE_EQ(row[1].second, 4.0);
}

TEST(Csr, DimensionMismatchThrows) {
  const CsrMatrix m(2, 3, {});
  EXPECT_THROW((void)m.multiply(Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)m.left_multiply(Vector{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(Csr, FromDenseDropsSmallEntries) {
  const Matrix d{{1e-15, 1.0}, {0.5, 1e-16}};
  const CsrMatrix s = CsrMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(s.non_zeros(), 2u);
}

TEST(Csr, RvalueTripletsBuildTheSameMatrix) {
  std::vector<Triplet> triplets = {
      {1, 0, 3.0}, {0, 2, 1.0}, {0, 0, 2.0}, {1, 0, -1.0}};
  const CsrMatrix copied(2, 3, triplets);
  const CsrMatrix moved(2, 3, std::move(triplets));
  EXPECT_EQ(copied.row_ptr(), moved.row_ptr());
  EXPECT_EQ(copied.col_idx(), moved.col_idx());
  EXPECT_EQ(copied.values(), moved.values());
  EXPECT_DOUBLE_EQ(moved.at(1, 0), 2.0);  // duplicates summed
}

TEST(Csr, UnsortedTripletsComeOutRowMajorColumnSorted) {
  const CsrMatrix m(3, 3,
                    {{2, 1, 6.0}, {0, 2, 3.0}, {1, 0, 4.0}, {0, 0, 1.0},
                     {2, 2, 7.0}, {1, 1, 5.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.row_ptr(), (std::vector<std::size_t>{0, 3, 5, 7}));
  EXPECT_EQ(m.col_idx(), (std::vector<std::size_t>{0, 1, 2, 0, 1, 1, 2}));
  EXPECT_EQ(m.values(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}));
}

TEST(Csr, FromPartsRoundTrips) {
  const CsrMatrix src(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const CsrMatrix rebuilt = CsrMatrix::from_parts(
      src.rows(), src.cols(), src.row_ptr(), src.col_idx(), src.values());
  EXPECT_EQ(rebuilt.row_ptr(), src.row_ptr());
  EXPECT_EQ(rebuilt.col_idx(), src.col_idx());
  EXPECT_EQ(rebuilt.values(), src.values());
}

TEST(Csr, FromPartsRejectsMalformedStructure) {
  // row_ptr must start at 0, be monotone, end at nnz, with one entry
  // per row plus one.
  EXPECT_THROW((void)CsrMatrix::from_parts(2, 2, {0, 1}, {0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {1, 1}, {}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {0, 2}, {0}, {1.0}),
               std::invalid_argument);
  // Columns must be strictly increasing within a row and in range.
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)CsrMatrix::from_parts(1, 2, {0, 2}, {0, 0}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_parts(1, 2, {0, 1}, {2}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, ZeroStateMatrixConstructs) {
  // Regression: the degenerate 0 x 0 matrix (an empty CTMC would
  // produce it) must build from both constructors without touching
  // row_ptr past its single sentinel entry.
  const CsrMatrix empty(0, 0, {});
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 0u);
  EXPECT_EQ(empty.non_zeros(), 0u);
  EXPECT_EQ(empty.row_ptr(), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(empty.to_dense().empty());

  const CsrMatrix rebuilt = CsrMatrix::from_parts(0, 0, {0}, {}, {});
  EXPECT_EQ(rebuilt.non_zeros(), 0u);

  // Multiplying by the empty vector is a no-op, not an error.
  Vector y{99.0};
  empty.multiply_into(Vector{}, y);
  EXPECT_TRUE(y.empty());
}

TEST(Csr, FullyDenseRowSortsStably) {
  // Regression for the per-row sort: the stationary augmented system
  // appends one fully dense row (the normalization row), long enough
  // to leave the insertion-sort fast path.  Feed that row's entries
  // in strictly descending column order — the historical worst case —
  // plus duplicates that must be summed in first-appearance order.
  constexpr std::size_t n = 257;  // > the 32-entry insertion cutoff
  std::vector<Triplet> triplets;
  triplets.reserve(n + 2);
  for (std::size_t j = n; j-- > 0;) {
    triplets.push_back({0, j, static_cast<double>(j) + 1.0});
  }
  // Duplicates landing mid-row after the sort.
  triplets.push_back({0, 7, 0.5});
  triplets.push_back({0, 7, 0.25});
  const CsrMatrix m(1, n, std::move(triplets));
  ASSERT_EQ(m.non_zeros(), n);
  const auto& cols = m.col_idx();
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(cols[j], j);
    const double expected =
        j == 7 ? 8.0 + 0.5 + 0.25 : static_cast<double>(j) + 1.0;
    EXPECT_DOUBLE_EQ(m.values()[j], expected);
  }
}

TEST(Csr, LongSortedRowSkipsTheSort) {
  // The sorted-detection scan must leave an already-ordered dense row
  // untouched (SPN emission produces rows in this form).
  constexpr std::size_t n = 100;
  std::vector<Triplet> triplets;
  for (std::size_t j = 0; j < n; ++j) {
    triplets.push_back({0, j, 1.0 / (static_cast<double>(j) + 1.0)});
  }
  const CsrMatrix m(1, n, std::move(triplets));
  ASSERT_EQ(m.non_zeros(), n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(m.col_idx()[j], j);
    EXPECT_DOUBLE_EQ(m.values()[j], 1.0 / (static_cast<double>(j) + 1.0));
  }
}

TEST(Csr, MultiplyIntoMatchesMultiply) {
  const CsrMatrix m(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const Vector x{1.0, 2.0, 3.0};
  const Vector expected = m.multiply(x);
  Vector y;
  m.multiply_into(x, y);
  EXPECT_EQ(y, expected);
  const Vector z{4.0, 5.0};
  const Vector left = m.left_multiply(z);
  Vector w;
  m.left_multiply_into(z, w);
  EXPECT_EQ(w, left);
}

}  // namespace
}  // namespace rascal::linalg

// Unit tests for the Krylov preconditioners: Jacobi and ILU(0)
// apply() correctness against hand-computable factorizations, and the
// lint-style [Pnnn] structural rejections promised in precond.h.
#include "linalg/precond.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "linalg/sparse.h"

namespace rascal::linalg {
namespace {

// Returns the PrecondError thrown by `fn`, failing the test when it
// throws nothing or something else.
template <typename Fn>
std::string precond_code(Fn&& fn) {
  try {
    fn();
  } catch (const PrecondError& error) {
    // The rendered message must lead with the bracketed code so lint
    // tooling can grep it out of solver logs.
    EXPECT_EQ(std::string(error.what()).rfind("[" + error.code() + "]", 0),
              0u)
        << error.what();
    return error.code();
  } catch (const std::exception& error) {
    ADD_FAILURE() << "expected PrecondError, got: " << error.what();
    return "";
  }
  ADD_FAILURE() << "expected PrecondError, got no exception";
  return "";
}

TEST(PrecondName, CoversEveryKind) {
  EXPECT_STREQ(precond_name(PrecondKind::kNone), "none");
  EXPECT_STREQ(precond_name(PrecondKind::kJacobi), "jacobi");
  EXPECT_STREQ(precond_name(PrecondKind::kIlu0), "ilu0");
}

TEST(IdentityPrecond, ApplyCopies) {
  const IdentityPreconditioner m;
  const Vector r{3.0, -1.5, 0.0};
  Vector z;
  m.apply(r, z);
  EXPECT_EQ(z, r);
  EXPECT_EQ(m.memory_bytes(), 0u);
}

TEST(JacobiPrecond, ApplyDividesByTheDiagonal) {
  const CsrMatrix a(3, 3,
                    {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 4.0}, {2, 0, 1.0},
                     {2, 2, -0.5}});
  const JacobiPreconditioner m(a);
  Vector z;
  m.apply({2.0, 2.0, 2.0}, z);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 0.5);
  EXPECT_DOUBLE_EQ(z[2], -4.0);
  EXPECT_GE(m.memory_bytes(), 3u * sizeof(double));
}

TEST(JacobiPrecond, RejectsNonSquare) {
  const CsrMatrix a(2, 3, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(precond_code([&] { JacobiPreconditioner m(a); (void)m; }),
            "P001");
}

TEST(JacobiPrecond, RejectsMissingDiagonal) {
  // Row 1 has entries but no (1,1).
  const CsrMatrix a(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  EXPECT_EQ(precond_code([&] { JacobiPreconditioner m(a); (void)m; }),
            "P002");
}

TEST(JacobiPrecond, RejectsZeroDiagonal) {
  const CsrMatrix a(2, 2, {{0, 0, 1.0}, {1, 1, 0.0}, {1, 0, 2.0}});
  EXPECT_EQ(precond_code([&] { JacobiPreconditioner m(a); (void)m; }),
            "P002");
}

TEST(Ilu0Precond, RejectsNonSquare) {
  const CsrMatrix a(3, 2, {{0, 0, 1.0}});
  EXPECT_EQ(precond_code([&] { Ilu0Preconditioner m(a); (void)m; }),
            "P001");
}

TEST(Ilu0Precond, RejectsEmptyRow) {
  // Row 1 has no entries at all — not even a diagonal.
  const CsrMatrix a(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  EXPECT_EQ(precond_code([&] { Ilu0Preconditioner m(a); (void)m; }),
            "P003");
}

TEST(Ilu0Precond, RejectsZeroPivot) {
  // (1,1) present but exactly zero.
  const CsrMatrix a(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 0.0}});
  EXPECT_EQ(precond_code([&] { Ilu0Preconditioner m(a); (void)m; }),
            "P004");
}

TEST(Ilu0Precond, RejectsPivotEliminatedToZero) {
  // Elimination makes the (1,1) pivot 2 - (2/1)*1 = 0 even though the
  // stored entry is nonzero.
  const CsrMatrix a(2, 2,
                    {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 2.0}, {1, 1, 2.0}});
  EXPECT_EQ(precond_code([&] { Ilu0Preconditioner m(a); (void)m; }),
            "P004");
}

TEST(Ilu0Precond, IsExactOnTridiagonal) {
  // A tridiagonal matrix has no fill-in, so ILU(0) is a *complete* LU
  // factorization: apply(A x) must reproduce x to rounding error.
  constexpr std::size_t n = 9;
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 4.0 + static_cast<double>(i) * 0.1});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
    if (i + 1 < n) triplets.push_back({i, i + 1, -2.0});
  }
  const CsrMatrix a(n, n, triplets);
  const Ilu0Preconditioner m(a);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<double>(i) + 1.0);
  }
  const Vector r = a.multiply(x);
  Vector z;
  m.apply(r, z);
  ASSERT_EQ(z.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(z[i], x[i], 1e-12);
  // The factorization stores one value per nonzero plus one diagonal
  // index per row — and nothing dense.
  EXPECT_GE(m.memory_bytes(), a.non_zeros() * sizeof(double));
  EXPECT_LT(m.memory_bytes(), n * n * sizeof(double));
}

TEST(Ilu0Precond, ApplyIsDeterministic) {
  const CsrMatrix a(3, 3,
                    {{0, 0, 3.0}, {0, 2, 1.0}, {1, 0, -1.0}, {1, 1, 2.5},
                     {2, 1, 0.5}, {2, 2, 4.0}});
  const Ilu0Preconditioner m(a);
  const Vector r{1.0, -2.0, 0.25};
  Vector z1;
  Vector z2;
  m.apply(r, z1);
  m.apply(r, z2);
  ASSERT_EQ(z1.size(), z2.size());
  EXPECT_EQ(std::memcmp(z1.data(), z2.data(), z1.size() * sizeof(double)),
            0);
}

TEST(MakePreconditioner, DispatchesEveryKind) {
  const CsrMatrix a(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  EXPECT_NE(dynamic_cast<IdentityPreconditioner*>(
                make_preconditioner(PrecondKind::kNone, a).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<JacobiPreconditioner*>(
                make_preconditioner(PrecondKind::kJacobi, a).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<Ilu0Preconditioner*>(
                make_preconditioner(PrecondKind::kIlu0, a).get()),
            nullptr);
}

}  // namespace
}  // namespace rascal::linalg

// Calendar queue (index-bucketed priority queue) for the simulation
// scheduler: O(1) amortized push/pop when event times are roughly
// uniform, versus O(log n) for the binary heap — the regime of
// million-event JSAS runs where the pending calendar stays large.
//
// Pops yield exactly the (time, id) min-order the binary heap yields,
// so the two backends are interchangeable (pinned by property tests).
//
// Structure: a power-of-two ring of unsorted buckets, each covering a
// `width_`-sized slice of simulated time (a "day"); an event lands in
// bucket (day number mod ring size).  pop_min() scans days forward
// from the last popped time — equal-time events share a day, so the
// first day with a resident event holds the global minimum.  A full
// revolution without a hit (every event at least one "year" ahead)
// falls back to a direct scan.  The ring is rebuilt, and the day
// width re-estimated from the live time span, when occupancy drifts,
// keeping buckets O(1) on average.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/event.h"

namespace rascal::sim {

class CalendarQueue {
 public:
  CalendarQueue();

  /// Inserts an event.  Throws std::invalid_argument for negative or
  /// non-finite event times (the scheduler never produces either).
  void push(Event event);

  /// Smallest (time, id) event.  Precondition: !empty().
  [[nodiscard]] const Event& min() const;

  /// Removes and returns the smallest (time, id) event.
  /// Precondition: !empty().
  Event pop_min();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Current ring size — exposed so tests can pin the resize policy.
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

 private:
  struct Pos {
    std::size_t bucket = 0;
    std::size_t index = 0;
  };
  [[nodiscard]] Pos find_min() const;  // precondition: size_ > 0
  [[nodiscard]] std::size_t bucket_of(double day) const noexcept;
  void rebuild(std::size_t bucket_count);

  std::vector<std::vector<Event>> buckets_;
  double width_ = 1.0;  // simulated-time span of one bucket
  // Search floor: no queued event is earlier than this (pops are
  // monotone; push lowers it when needed), so find_min starts its day
  // scan here instead of at day zero.
  double floor_time_ = 0.0;
  std::size_t size_ = 0;
};

}  // namespace rascal::sim

#include "sim/jsas_simulator.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"
#include "core/units.h"
#include "obs/obs.h"
#include "resil/chaos.h"
#include "stats/rng.h"

namespace rascal::sim {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

enum class InstanceState { kUp, kRecovering, kShortRestart, kLongRestart };
enum class NodeState { kOk, kShortRestart, kLongRestart, kRepair,
                       kMaintenance };

struct Instance {
  InstanceState state = InstanceState::kUp;
  double deadline = kNever;  // completion time when not kUp
};

struct Node {
  NodeState state = NodeState::kOk;
  double deadline = kNever;
};

struct Pair {
  Node nodes[2];
  bool down = false;
  double restore_deadline = kNever;
};

// All Section-5 parameters, pre-fetched once per replication.
struct SimParams {
  double as_la_as, as_la_os, as_la_hw, as_la_total;
  double as_fss;
  double as_trecovery, as_tstart_short, as_tstart_long, as_tstart_all;
  double hadb_la_hadb, hadb_la_os, hadb_la_hw, hadb_la_total;
  double hadb_la_mnt;
  double hadb_tstart_short, hadb_tstart_long, hadb_trepair, hadb_tmnt,
      hadb_trestore;
  double fir;
  double acc;

  explicit SimParams(const expr::ParameterSet& p)
      : as_la_as(p.get("as_La_as")),
        as_la_os(p.get("as_La_os")),
        as_la_hw(p.get("as_La_hw")),
        as_la_total(as_la_as + as_la_os + as_la_hw),
        as_fss(as_la_as / as_la_total),
        as_trecovery(p.get("as_Trecovery")),
        as_tstart_short(p.get("as_Tstart_short")),
        as_tstart_long(p.get("as_Tstart_long")),
        as_tstart_all(p.get("as_Tstart_all")),
        hadb_la_hadb(p.get("hadb_La_hadb")),
        hadb_la_os(p.get("hadb_La_os")),
        hadb_la_hw(p.get("hadb_La_hw")),
        hadb_la_total(hadb_la_hadb + hadb_la_os + hadb_la_hw),
        hadb_la_mnt(p.get("hadb_La_mnt")),
        hadb_tstart_short(p.get("hadb_Tstart_short")),
        hadb_tstart_long(p.get("hadb_Tstart_long")),
        hadb_trepair(p.get("hadb_Trepair")),
        hadb_tmnt(p.get("hadb_Tmnt")),
        hadb_trestore(p.get("hadb_Trestore")),
        fir(p.get("hadb_FIR")),
        acc(p.get("Acc")) {}
};

// Everything one replication produces; merged into the JsasSimResult
// in replication order so parallel runs stay bit-identical.
struct ReplicationOutcome {
  double availability = 0.0;
  double as_down_time = 0.0;
  double hadb_down_time = 0.0;
  std::uint64_t system_failures = 0;
  std::uint64_t as_cluster_failures = 0;
  std::uint64_t hadb_pair_failures = 0;
  std::uint64_t imperfect_recoveries = 0;
  std::uint64_t as_instance_failures = 0;
  std::uint64_t hadb_node_failures = 0;
  std::uint64_t events = 0;  // dispatched events in this replication
};

class Replication {
 public:
  Replication(const models::JsasConfig& config, const SimParams& params,
              const JsasSimOptions& options, stats::RandomEngine rng,
              ReplicationOutcome& totals)
      : params_(params),
        options_(options),
        rng_(std::move(rng)),
        totals_(totals),
        instances_(config.as_instances),
        pairs_(config.hadb_pairs) {}

  /// Runs one replication; returns the availability observed.
  double run() {
    const resil::CancellationToken* cancel = options_.control.cancel;
    double now = 0.0;
    while (now < options_.duration) {
      // Replications simulate centuries of cluster time; a deadline or
      // signal must be able to interrupt the event loop itself.  The
      // abandoned replication stays unrecorded, so a resume recomputes
      // it from its substream with identical bits.
      if ((totals_.events & 0xFFFULL) == 0 && cancel != nullptr &&
          cancel->cancelled()) {
        throw resil::CancelledError(
            "simulate_jsas: replication cancelled mid-run");
      }
      const Event event = next_event(now);
      const double at = std::min(event.time, options_.duration);
      accrue(now, at);
      now = at;
      if (event.time > options_.duration) break;
      dispatch(event, now);
      ++totals_.events;
      note_system_transition();
    }
    return 1.0 - down_time_ / options_.duration;
  }

 private:
  enum class EventKind {
    kInstanceFailure,
    kInstanceCompletion,
    kClusterRestore,
    kNodeFailure,
    kNodeCompletion,
    kMaintenanceStart,
    kPairRestore,
  };
  struct Event {
    double time = kNever;
    EventKind kind = EventKind::kInstanceFailure;
    std::size_t index = 0;      // instance index or pair index
    std::size_t subindex = 0;   // node index within the pair
  };

  double duration_sample(double mean) {
    return options_.exponential_recoveries ? rng_.exponential(1.0 / mean)
                                           : mean;
  }

  [[nodiscard]] std::size_t instances_up() const {
    std::size_t up = 0;
    for (const Instance& inst : instances_) {
      if (inst.state == InstanceState::kUp) ++up;
    }
    return up;
  }

  [[nodiscard]] bool as_tier_down() const { return cluster_down_; }

  [[nodiscard]] bool hadb_tier_down() const {
    for (const Pair& pair : pairs_) {
      if (pair.down) return true;
    }
    return false;
  }

  [[nodiscard]] bool system_down() const {
    return as_tier_down() || hadb_tier_down();
  }

  void accrue(double from, double to) {
    const double dt = to - from;
    if (dt <= 0.0) return;
    if (system_down()) down_time_ += dt;
    if (as_tier_down()) as_down_time_ += dt;
    if (hadb_tier_down()) hadb_down_time_ += dt;
  }

  void note_system_transition() {
    const bool down = system_down();
    if (down && !was_down_) ++totals_.system_failures;
    was_down_ = down;
  }

  // Samples the earliest pending event.  Failure clocks are
  // re-sampled at every step, which is statistically exact because
  // failure processes are exponential (memoryless); completion clocks
  // are fixed deadlines stored in the entity state.
  Event next_event(double now) {
    Event best;

    if (cluster_down_) {
      consider(best, cluster_restore_, EventKind::kClusterRestore, 0, 0);
    } else {
      const std::size_t down_count = instances_.size() - instances_up();
      const double accel = std::pow(params_.acc,
                                    static_cast<double>(down_count));
      for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        if (inst.state == InstanceState::kUp) {
          const double t =
              now + rng_.exponential(params_.as_la_total * accel);
          consider(best, t, EventKind::kInstanceFailure, i, 0);
        } else {
          consider(best, inst.deadline, EventKind::kInstanceCompletion, i,
                   0);
        }
      }
    }

    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      const Pair& pair = pairs_[p];
      if (pair.down) {
        consider(best, pair.restore_deadline, EventKind::kPairRestore, p, 0);
        continue;
      }
      const bool both_ok = pair.nodes[0].state == NodeState::kOk &&
                           pair.nodes[1].state == NodeState::kOk;
      for (std::size_t j = 0; j < 2; ++j) {
        const Node& node = pair.nodes[j];
        if (node.state == NodeState::kOk) {
          const double rate =
              both_ok ? params_.hadb_la_total
                      : params_.hadb_la_total * params_.acc;
          consider(best, now + rng_.exponential(rate),
                   EventKind::kNodeFailure, p, j);
        } else {
          consider(best, node.deadline, EventKind::kNodeCompletion, p, j);
        }
      }
      if (both_ok) {
        consider(best, now + rng_.exponential(params_.hadb_la_mnt),
                 EventKind::kMaintenanceStart, p, 0);
      }
    }
    return best;
  }

  static void consider(Event& best, double time, EventKind kind,
                       std::size_t index, std::size_t subindex) {
    if (time < best.time) best = {time, kind, index, subindex};
  }

  void dispatch(const Event& event, double now) {
    switch (event.kind) {
      case EventKind::kInstanceFailure: instance_failure(event.index, now);
        break;
      case EventKind::kInstanceCompletion:
        instance_completion(event.index, now);
        break;
      case EventKind::kClusterRestore: cluster_restore(); break;
      case EventKind::kNodeFailure:
        node_failure(event.index, event.subindex, now);
        break;
      case EventKind::kNodeCompletion:
        pairs_[event.index].nodes[event.subindex] = Node{};
        break;
      case EventKind::kMaintenanceStart:
        maintenance_start(event.index, now);
        break;
      case EventKind::kPairRestore: pair_restore(event.index); break;
    }
  }

  void instance_failure(std::size_t i, double now) {
    ++totals_.as_instance_failures;
    instances_[i].state = InstanceState::kRecovering;
    instances_[i].deadline = now + duration_sample(params_.as_trecovery);
    if (instances_up() == 0) {
      // Last serving instance lost: whole-cluster manual restart,
      // regardless of how far along the other restarts were.
      ++totals_.as_cluster_failures;
      cluster_down_ = true;
      cluster_restore_ = now + duration_sample(params_.as_tstart_all);
    }
  }

  void instance_completion(std::size_t i, double now) {
    Instance& inst = instances_[i];
    switch (inst.state) {
      case InstanceState::kRecovering:
        // Sessions re-homed; the failed instance restarts by the
        // short (AS process) or long (HW/OS) path.
        if (rng_.bernoulli(params_.as_fss)) {
          inst.state = InstanceState::kShortRestart;
          inst.deadline = now + duration_sample(params_.as_tstart_short);
        } else {
          inst.state = InstanceState::kLongRestart;
          inst.deadline = now + duration_sample(params_.as_tstart_long);
        }
        break;
      case InstanceState::kShortRestart:
      case InstanceState::kLongRestart:
        inst = Instance{};
        break;
      case InstanceState::kUp:
        throw std::logic_error("completion event for an up instance");
    }
  }

  void cluster_restore() {
    cluster_down_ = false;
    cluster_restore_ = kNever;
    for (Instance& inst : instances_) inst = Instance{};
  }

  void node_failure(std::size_t p, std::size_t j, double now) {
    ++totals_.hadb_node_failures;
    Pair& pair = pairs_[p];
    const Node& companion = pair.nodes[1 - j];
    if (companion.state != NodeState::kOk) {
      // Second failure while degraded: the pair's data is lost.
      pair_failure(pair, now);
      return;
    }
    if (rng_.bernoulli(params_.fir)) {
      // Imperfect recovery: the takeover/rebuild drags the companion
      // down with it.
      ++totals_.imperfect_recoveries;
      pair_failure(pair, now);
      return;
    }
    // Classify the failure to pick the recovery path.
    const double pick = rng_.uniform01() * params_.hadb_la_total;
    Node& node = pair.nodes[j];
    if (pick < params_.hadb_la_hadb) {
      node.state = NodeState::kShortRestart;
      node.deadline = now + duration_sample(params_.hadb_tstart_short);
    } else if (pick < params_.hadb_la_hadb + params_.hadb_la_os) {
      node.state = NodeState::kLongRestart;
      node.deadline = now + duration_sample(params_.hadb_tstart_long);
    } else {
      node.state = NodeState::kRepair;
      node.deadline = now + duration_sample(params_.hadb_trepair);
    }
  }

  void pair_failure(Pair& pair, double now) {
    ++totals_.hadb_pair_failures;
    pair.down = true;
    pair.restore_deadline = now + duration_sample(params_.hadb_trestore);
  }

  void maintenance_start(std::size_t p, double now) {
    // Take one node (arbitrarily chosen) out for the switchover.
    Pair& pair = pairs_[p];
    const std::size_t j = rng_.uniform_index(2);
    pair.nodes[j].state = NodeState::kMaintenance;
    pair.nodes[j].deadline = now + duration_sample(params_.hadb_tmnt);
  }

  void pair_restore(std::size_t p) {
    pairs_[p] = Pair{};
  }

  const SimParams& params_;
  const JsasSimOptions& options_;
  stats::RandomEngine rng_;
  ReplicationOutcome& totals_;

  std::vector<Instance> instances_;
  std::vector<Pair> pairs_;
  bool cluster_down_ = false;
  double cluster_restore_ = kNever;
  bool was_down_ = false;

  double down_time_ = 0.0;
  double as_down_time_ = 0.0;
  double hadb_down_time_ = 0.0;

 public:
  [[nodiscard]] double as_down_time() const noexcept { return as_down_time_; }
  [[nodiscard]] double hadb_down_time() const noexcept {
    return hadb_down_time_;
  }
};

// Checkpoint payload for one replication: the full outcome, exactly
// (times as IEEE-754 bit patterns).
std::vector<std::uint64_t> encode_outcome(const ReplicationOutcome& o) {
  return {resil::f64_bits(o.availability),
          resil::f64_bits(o.as_down_time),
          resil::f64_bits(o.hadb_down_time),
          o.system_failures,
          o.as_cluster_failures,
          o.hadb_pair_failures,
          o.imperfect_recoveries,
          o.as_instance_failures,
          o.hadb_node_failures,
          o.events};
}

ReplicationOutcome decode_outcome(const std::vector<std::uint64_t>& words) {
  if (words.size() != 10) {
    throw resil::CheckpointError(
        "simulate_jsas: checkpoint entry does not decode to a replication "
        "outcome");
  }
  ReplicationOutcome o;
  o.availability = resil::bits_f64(words[0]);
  o.as_down_time = resil::bits_f64(words[1]);
  o.hadb_down_time = resil::bits_f64(words[2]);
  o.system_failures = words[3];
  o.as_cluster_failures = words[4];
  o.hadb_pair_failures = words[5];
  o.imperfect_recoveries = words[6];
  o.as_instance_failures = words[7];
  o.hadb_node_failures = words[8];
  o.events = words[9];
  return o;
}

}  // namespace

std::uint64_t jsas_sim_checkpoint_digest(const models::JsasConfig& config,
                                         const expr::ParameterSet& params,
                                         const JsasSimOptions& options) {
  const SimParams p(params);
  resil::DigestBuilder digest;
  digest.add_str("simulate")
      .add_u64(config.as_instances)
      .add_u64(config.hadb_pairs)
      .add_f64(options.duration)
      .add_u64(options.replications)
      .add_u64(options.seed)
      .add_u64(options.exponential_recoveries ? 1 : 0)
      // Probe the substream-derivation scheme (see uncertainty digest).
      .add_u64(stats::RandomEngine(options.seed).substream_seed(0))
      .add_f64(p.as_la_as).add_f64(p.as_la_os).add_f64(p.as_la_hw)
      .add_f64(p.as_fss).add_f64(p.as_trecovery)
      .add_f64(p.as_tstart_short).add_f64(p.as_tstart_long)
      .add_f64(p.as_tstart_all)
      .add_f64(p.hadb_la_hadb).add_f64(p.hadb_la_os).add_f64(p.hadb_la_hw)
      .add_f64(p.hadb_la_mnt)
      .add_f64(p.hadb_tstart_short).add_f64(p.hadb_tstart_long)
      .add_f64(p.hadb_trepair).add_f64(p.hadb_tmnt).add_f64(p.hadb_trestore)
      .add_f64(p.fir).add_f64(p.acc);
  return digest.value();
}

JsasSimResult simulate_jsas(const models::JsasConfig& config,
                            const expr::ParameterSet& params,
                            const JsasSimOptions& options) {
  if (config.as_instances < 2 || config.hadb_pairs < 1) {
    throw std::invalid_argument(
        "simulate_jsas: needs >= 2 instances and >= 1 pair");
  }
  if (!(options.duration > 0.0) || options.replications == 0) {
    throw std::invalid_argument("simulate_jsas: bad duration/replications");
  }
  const SimParams sim_params(params);

  const resil::CancellationToken* cancel = options.control.cancel;
  resil::Checkpointer* checkpoint = options.control.checkpoint;

  // Per-replication completion state: 0 = pending, 1 = done.
  // Checkpointed replications are replayed into their slots up front
  // and skipped by the workers; pending ones recompute identically
  // from root.split(rep), so resumed == uninterrupted bit-for-bit.
  std::vector<ReplicationOutcome> outcomes(options.replications);
  std::vector<unsigned char> status(options.replications, 0);
  if (checkpoint != nullptr) {
    if (checkpoint->total() != options.replications) {
      throw resil::CheckpointError(
          "simulate_jsas: checkpoint total does not match the replication "
          "count");
    }
    for (const resil::CheckpointEntry& entry : checkpoint->entries()) {
      if (entry.status != resil::EntryStatus::kOk) continue;
      outcomes[entry.index] = decode_outcome(entry.words);
      status[entry.index] = 1;
    }
  }

  // Replications were already seeded from per-index substreams; run
  // them on workers, each filling its own outcome slot, then merge in
  // replication order so every thread count is bit-identical.
  const stats::RandomEngine root(options.seed);
  core::parallel_for(
      options.replications, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t rep = begin; rep < end; ++rep) {
          if (status[rep] != 0) continue;  // restored from checkpoint
          if (cancel != nullptr && cancel->cancelled()) return;  // drain
          try {
            resil::chaos::worker_hook(rep);
            const obs::Span span("sim.jsas.replication");
            ReplicationOutcome outcome;
            Replication replication(config, sim_params, options,
                                    root.split(rep), outcome);
            outcome.availability = replication.run();
            outcome.as_down_time = replication.as_down_time();
            outcome.hadb_down_time = replication.hadb_down_time();
            outcomes[rep] = outcome;
            status[rep] = 1;
            if (checkpoint != nullptr) {
              checkpoint->record({rep, resil::EntryStatus::kOk,
                                  encode_outcome(outcome), {}});
            }
          } catch (const resil::CancelledError&) {
            return;  // interrupted mid-replication: leave it pending
          } catch (const std::exception& failure) {
            if (!options.control.skip_failures) throw;
            status[rep] = 2;
            if (checkpoint != nullptr) {
              checkpoint->record({rep, resil::EntryStatus::kFailed, {},
                                  failure.what()});
            }
          }
        }
      });
  if (checkpoint != nullptr) checkpoint->flush();

  JsasSimResult result;
  double as_down_total = 0.0;
  double hadb_down_total = 0.0;
  std::size_t failed = 0;
  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    if (status[rep] == 2) ++failed;
    if (status[rep] != 1) continue;
    const ReplicationOutcome& outcome = outcomes[rep];
    ++result.completed_replications;
    result.per_replication_availability.add(outcome.availability);
    as_down_total += outcome.as_down_time;
    hadb_down_total += outcome.hadb_down_time;
    result.system_failures += outcome.system_failures;
    result.as_cluster_failures += outcome.as_cluster_failures;
    result.hadb_pair_failures += outcome.hadb_pair_failures;
    result.imperfect_recoveries += outcome.imperfect_recoveries;
    result.as_instance_failures += outcome.as_instance_failures;
    result.hadb_node_failures += outcome.hadb_node_failures;
    result.events_simulated += outcome.events;
  }
  result.interrupted =
      cancel != nullptr && cancel->cancelled() &&
      result.completed_replications + failed < options.replications;
  if (result.interrupted) result.interrupt_reason = cancel->describe();
  // Counters are fed from the ordered merge, not from inside the
  // parallel region, so the tallies are identical for any thread count.
  if (obs::enabled()) {
    obs::counter("sim.jsas.replications").add(result.completed_replications);
    obs::counter("sim.jsas.events").add(result.events_simulated);
  }
  if (result.completed_replications == 0) return result;

  const double total_time =
      options.duration * static_cast<double>(result.completed_replications);
  result.availability = result.per_replication_availability.mean();
  result.availability_ci95 = stats::mean_confidence_interval(
      result.per_replication_availability, 0.95);
  result.downtime_minutes_per_year =
      core::downtime_minutes_per_year(1.0 - result.availability);
  result.downtime_as_minutes =
      core::downtime_minutes_per_year(as_down_total / total_time);
  result.downtime_hadb_minutes =
      core::downtime_minutes_per_year(hadb_down_total / total_time);
  result.mtbf_hours =
      result.system_failures > 0
          ? total_time / static_cast<double>(result.system_failures)
          : std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace rascal::sim

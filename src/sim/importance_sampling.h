// Rare-event estimation of steady-state unavailability by
// regenerative simulation with failure biasing.
//
// Plain trajectory simulation of a five-9s system wastes almost all
// of its samples on uneventful up-time: at Config-1 rates, a simulated
// *century* sees ~10 outages.  The classic fix (Goyal, Shahabuddin,
// et al.) is
//
//   * regenerative structure: the process restarts statistically at
//     every visit to the all-up state, so unavailability =
//     E[down time per cycle] / E[cycle length];
//   * measure-specific importance sampling: estimate the numerator
//     under *failure-biased* dynamics — the embedded jump chain is
//     steered toward failure transitions, and each cycle is weighted
//     by its likelihood ratio — while the denominator (dominated by
//     ordinary up-time) is estimated under the original measure.
//
// Only the jump choices are biased; holding times keep their original
// exponential distributions, so the likelihood ratio is a product of
// per-jump probability ratios.
#pragma once

#include <cstdint>
#include <functional>

#include "ctmc/ctmc.h"
#include "stats/summary.h"

namespace rascal::sim {

/// Classifies a transition as a "failure" move to be boosted.  The
/// default heuristic treats a transition as a failure when its rate
/// is a small fraction of its source state's total exit rate — in
/// availability models repairs are orders of magnitude faster than
/// failures, so the split is unambiguous.
using FailurePredicate =
    std::function<bool(const ctmc::Ctmc&, const ctmc::Transition&)>;

[[nodiscard]] FailurePredicate default_failure_predicate(
    double rate_fraction = 0.05);

struct ImportanceSamplingOptions {
  std::size_t cycles = 20000;        // biased cycles (numerator)
  std::size_t plain_cycles = 20000;  // unbiased cycles (denominator)
  std::uint64_t seed = 271828;
  ctmc::StateId regeneration_state = 0;  // must be an up state
  double up_threshold = 0.5;
  /// Probability mass given to the failure group at each biased jump
  /// (balanced failure biasing).  0.5 is the standard choice; 0
  /// disables biasing entirely.
  double failure_bias = 0.5;
  FailurePredicate is_failure;  // default_failure_predicate() when empty
  std::size_t max_jumps_per_cycle = 1000000;  // runaway guard
};

struct ImportanceSamplingResult {
  double unavailability = 0.0;
  stats::Interval unavailability_ci95;
  double downtime_minutes_per_year = 0.0;
  double mean_cycle_length_hours = 0.0;
  std::size_t cycles_observing_downtime = 0;
  double relative_half_width = 0.0;  // CI half-width / estimate
};

/// Estimates the steady-state unavailability of `chain`.  Throws
/// std::invalid_argument for bad options (zero cycles, regeneration
/// state out of range or not an up state, bias outside [0, 1)).
[[nodiscard]] ImportanceSamplingResult estimate_unavailability(
    const ctmc::Ctmc& chain, const ImportanceSamplingOptions& options = {});

}  // namespace rascal::sim

#include "sim/scheduler.h"

#include <stdexcept>

#include "obs/obs.h"

namespace rascal::sim {

EventId Scheduler::schedule_at(double at, EventAction action) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  queue_.push({at, id, std::move(action)});
  pending_ids_.insert(id);
  if (obs::enabled()) {
    static obs::Counter& scheduled = obs::counter("sim.scheduler.scheduled");
    static obs::Gauge& hwm = obs::gauge("sim.scheduler.queue_hwm");
    scheduled.add(1);
    hwm.record_max(static_cast<double>(queue_.size()));
  }
  return id;
}

EventId Scheduler::schedule_after(double delay, EventAction action) {
  if (delay < 0.0) {
    throw std::invalid_argument("Scheduler: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  // Only ids still waiting in the calendar are cancellable; fired,
  // already-cancelled, unissued, and the never-issued id 0 all fall
  // out of pending_ids_ naturally (next_id_ starts at 1, so 0 is
  // never inserted).
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  if (obs::enabled()) {
    static obs::Counter& cancelled = obs::counter("sim.scheduler.cancelled");
    cancelled.add(1);
  }
  return true;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;
    pending_ids_.erase(entry.id);
    now_ = entry.time;
    entry.action();
    if (obs::enabled()) {
      static obs::Counter& fired = obs::counter("sim.scheduler.fired");
      fired.add(1);
    }
    return true;
  }
  return false;
}

void Scheduler::run_until(double until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    // step() may push new events; the loop re-checks the horizon.
    if (!step()) break;
  }
  if (now_ < until) now_ = until;
}

}  // namespace rascal::sim

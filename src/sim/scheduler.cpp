#include "sim/scheduler.h"

#include <stdexcept>

namespace rascal::sim {

EventId Scheduler::schedule_at(double at, EventAction action) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  queue_.push({at, id, std::move(action)});
  return id;
}

EventId Scheduler::schedule_after(double delay, EventAction action) {
  if (delay < 0.0) {
    throw std::invalid_argument("Scheduler: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (cancelled_.erase(entry.id) > 0) continue;
    now_ = entry.time;
    entry.action();
    return true;
  }
  return false;
}

void Scheduler::run_until(double until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    // step() may push new events; the loop re-checks the horizon.
    if (!step()) break;
  }
  if (now_ < until) now_ = until;
}

}  // namespace rascal::sim

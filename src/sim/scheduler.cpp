#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rascal::sim {

namespace {
// Comparator for the std heap algorithms: max-heap semantics, so the
// root is the event that fires first.
struct Later {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return fires_before(b, a);
  }
};
}  // namespace

Scheduler::Scheduler(QueueKind kind)
    : kind_(kind),
      scheduled_counter_(obs::counter("sim.scheduler.scheduled")),
      cancelled_counter_(obs::counter("sim.scheduler.cancelled")),
      fired_counter_(obs::counter("sim.scheduler.fired")),
      queue_hwm_(obs::gauge("sim.scheduler.queue_hwm")) {}

void Scheduler::push_event(Event event) {
  if (kind_ == QueueKind::kBinaryHeap) {
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    calendar_.push(std::move(event));
  }
}

Event Scheduler::pop_front() {
  if (kind_ == QueueKind::kBinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }
  return calendar_.pop_min();
}

bool Scheduler::queue_empty() const noexcept {
  return kind_ == QueueKind::kBinaryHeap ? heap_.empty() : calendar_.empty();
}

std::size_t Scheduler::queue_size() const noexcept {
  return kind_ == QueueKind::kBinaryHeap ? heap_.size() : calendar_.size();
}

const Event* Scheduler::peek_live() {
  while (!queue_empty()) {
    const Event& front =
        kind_ == QueueKind::kBinaryHeap ? heap_.front() : calendar_.min();
    if (pending_ids_.count(front.id) != 0) return &front;
    // Cancelled: discard lazily so cancel() itself stays O(1).
    (void)pop_front();
  }
  return nullptr;
}

EventId Scheduler::schedule_at(double at, EventAction action) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  push_event({at, id, std::move(action)});
  pending_ids_.insert(id);
  if (obs::enabled()) {
    scheduled_counter_.add(1);
    queue_hwm_.record_max(static_cast<double>(queue_size()));
  }
  return id;
}

EventId Scheduler::schedule_after(double delay, EventAction action) {
  if (delay < 0.0) {
    throw std::invalid_argument("Scheduler: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  // Only ids still waiting in the calendar are cancellable; fired,
  // already-cancelled, unissued, and the never-issued id 0 all fall
  // out of pending_ids_ naturally (next_id_ starts at 1, so 0 is
  // never inserted).
  if (pending_ids_.erase(id) == 0) return false;
  if (obs::enabled()) cancelled_counter_.add(1);
  return true;
}

bool Scheduler::step() {
  while (!queue_empty()) {
    Event event = pop_front();
    if (pending_ids_.erase(event.id) == 0) continue;  // was cancelled
    now_ = event.time;
    event.action();
    if (obs::enabled()) fired_counter_.add(1);
    return true;
  }
  return false;
}

void Scheduler::run_until(double until) {
  for (;;) {
    // peek_live skips cancelled entries, so a cancelled front cannot
    // drag an event from beyond the horizon into this run.
    const Event* next = peek_live();
    if (next == nullptr || next->time > until) break;
    // step() may push new events; the loop re-checks the horizon.
    if (!step()) break;
  }
  if (now_ < until) now_ = until;
}

}  // namespace rascal::sim

#include "sim/importance_sampling.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/units.h"
#include "stats/rng.h"

namespace rascal::sim {

FailurePredicate default_failure_predicate(double rate_fraction) {
  return [rate_fraction](const ctmc::Ctmc& chain,
                         const ctmc::Transition& t) {
    return t.rate < rate_fraction * chain.exit_rate(t.from);
  };
}

namespace {

struct Outgoing {
  const ctmc::Transition* transition = nullptr;
  double original_probability = 0.0;
  double biased_probability = 0.0;
};

// Per-state jump tables with original and biased embedded-chain
// probabilities.
std::vector<std::vector<Outgoing>> build_jump_tables(
    const ctmc::Ctmc& chain, const ImportanceSamplingOptions& options,
    const FailurePredicate& is_failure) {
  std::vector<std::vector<Outgoing>> tables(chain.num_states());
  for (const ctmc::Transition& t : chain.transitions()) {
    tables[t.from].push_back(
        {&t, t.rate / chain.exit_rate(t.from), 0.0});
  }
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    auto& table = tables[s];
    const bool is_up = chain.reward(s) >= options.up_threshold;

    double failure_mass = 0.0;
    for (const Outgoing& out : table) {
      if (is_failure(chain, *out.transition)) {
        failure_mass += out.original_probability;
      }
    }
    const bool biasable = is_up && options.failure_bias > 0.0 &&
                          failure_mass > 0.0 && failure_mass < 1.0;
    for (Outgoing& out : table) {
      if (!biasable) {
        out.biased_probability = out.original_probability;
        continue;
      }
      // Balanced failure biasing: the failure group gets probability
      // `failure_bias`, split proportionally; likewise the rest.
      if (is_failure(chain, *out.transition)) {
        out.biased_probability = options.failure_bias *
                                 out.original_probability / failure_mass;
      } else {
        out.biased_probability = (1.0 - options.failure_bias) *
                                 out.original_probability /
                                 (1.0 - failure_mass);
      }
    }
  }
  return tables;
}

struct Cycle {
  double weighted_downtime = 0.0;  // W * D
  double length = 0.0;             // T (unweighted)
  bool saw_downtime = false;
};

Cycle run_cycle(const ctmc::Ctmc& chain,
                const std::vector<std::vector<Outgoing>>& tables,
                const ImportanceSamplingOptions& options, bool biased,
                stats::RandomEngine& rng) {
  Cycle cycle;
  ctmc::StateId state = options.regeneration_state;
  double weight = 1.0;
  double downtime = 0.0;
  std::size_t jumps = 0;
  while (true) {
    const double exit = chain.exit_rate(state);
    if (exit <= 0.0) {
      throw std::domain_error(
          "estimate_unavailability: absorbing state '" +
          chain.state_name(state) + "' breaks the regenerative structure");
    }
    const double hold = rng.exponential(exit);
    cycle.length += hold;
    if (chain.reward(state) < options.up_threshold) {
      downtime += hold;
      cycle.saw_downtime = true;
    }

    const auto& table = tables[state];
    double pick = rng.uniform01();
    const Outgoing* chosen = &table.back();
    for (const Outgoing& out : table) {
      const double p =
          biased ? out.biased_probability : out.original_probability;
      if (pick < p) {
        chosen = &out;
        break;
      }
      pick -= p;
    }
    if (biased) {
      weight *=
          chosen->original_probability / chosen->biased_probability;
    }
    state = chosen->transition->to;
    if (state == options.regeneration_state) break;
    if (++jumps > options.max_jumps_per_cycle) {
      throw std::runtime_error(
          "estimate_unavailability: cycle exceeded max_jumps_per_cycle "
          "(regeneration state not revisited)");
    }
  }
  cycle.weighted_downtime = weight * downtime;
  return cycle;
}

}  // namespace

ImportanceSamplingResult estimate_unavailability(
    const ctmc::Ctmc& chain, const ImportanceSamplingOptions& options) {
  if (options.cycles == 0 || options.plain_cycles == 0) {
    throw std::invalid_argument("estimate_unavailability: zero cycles");
  }
  if (options.regeneration_state >= chain.num_states()) {
    throw std::invalid_argument(
        "estimate_unavailability: regeneration state out of range");
  }
  if (chain.reward(options.regeneration_state) < options.up_threshold) {
    throw std::invalid_argument(
        "estimate_unavailability: regeneration state must be up");
  }
  if (options.failure_bias < 0.0 || options.failure_bias >= 1.0) {
    throw std::invalid_argument(
        "estimate_unavailability: failure_bias outside [0, 1)");
  }
  const FailurePredicate is_failure =
      options.is_failure ? options.is_failure : default_failure_predicate();
  const auto tables = build_jump_tables(chain, options, is_failure);

  stats::RandomEngine root(options.seed);
  stats::RandomEngine rng_biased = root.split(1);
  stats::RandomEngine rng_plain = root.split(2);

  ImportanceSamplingResult result;
  stats::Summary weighted_downtime;
  for (std::size_t i = 0; i < options.cycles; ++i) {
    const Cycle cycle =
        run_cycle(chain, tables, options, /*biased=*/true, rng_biased);
    weighted_downtime.add(cycle.weighted_downtime);
    if (cycle.saw_downtime) ++result.cycles_observing_downtime;
  }
  stats::Summary cycle_length;
  for (std::size_t i = 0; i < options.plain_cycles; ++i) {
    cycle_length.add(
        run_cycle(chain, tables, options, /*biased=*/false, rng_plain)
            .length);
  }

  const double numerator = weighted_downtime.mean();
  const double denominator = cycle_length.mean();
  const double estimate = numerator / denominator;
  result.unavailability = estimate;
  result.downtime_minutes_per_year =
      core::downtime_minutes_per_year(estimate);
  result.mean_cycle_length_hours = denominator;

  // Delta-method variance of the ratio of independent sample means.
  const double var_ratio =
      (weighted_downtime.standard_error() *
           weighted_downtime.standard_error() +
       estimate * estimate * cycle_length.standard_error() *
           cycle_length.standard_error()) /
      (denominator * denominator);
  const double half_width = 1.959964 * std::sqrt(var_ratio);
  result.unavailability_ci95 = {estimate - half_width,
                                estimate + half_width};
  result.relative_half_width =
      estimate > 0.0 ? half_width / estimate
                     : std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace rascal::sim

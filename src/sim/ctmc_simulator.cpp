#include "sim/ctmc_simulator.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "core/units.h"
#include "obs/obs.h"

namespace rascal::sim {

CtmcSimResult simulate_ctmc(const ctmc::Ctmc& chain,
                            const CtmcSimOptions& options,
                            double up_threshold) {
  const obs::Span span("sim.ctmc.simulate");
  if (options.replications == 0 || !(options.duration > 0.0)) {
    throw std::invalid_argument("simulate_ctmc: bad options");
  }
  if (options.initial_state >= chain.num_states()) {
    throw std::invalid_argument("simulate_ctmc: initial state out of range");
  }

  // Per-state outgoing transition tables for O(out-degree) sampling.
  std::vector<std::vector<const ctmc::Transition*>> outgoing(
      chain.num_states());
  for (const ctmc::Transition& t : chain.transitions()) {
    outgoing[t.from].push_back(&t);
  }
  std::vector<bool> up(chain.num_states());
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    up[s] = chain.reward(s) >= up_threshold;
  }

  CtmcSimResult result;
  stats::RandomEngine root(options.seed);
  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    stats::RandomEngine rng = root.split(rep);
    ctmc::StateId state = options.initial_state;
    double t = 0.0;
    double up_time = 0.0;
    while (t < options.duration) {
      const double exit = chain.exit_rate(state);
      double hold;
      if (exit <= 0.0) {
        hold = options.duration - t;  // absorbing state
      } else {
        hold = rng.exponential(exit);
      }
      const double slice = std::min(hold, options.duration - t);
      if (up[state]) up_time += slice;
      t += hold;
      if (t >= options.duration || exit <= 0.0) break;

      // Choose the successor proportionally to its rate.
      double pick = rng.uniform01() * exit;
      const ctmc::Transition* chosen = outgoing[state].back();
      for (const ctmc::Transition* tr : outgoing[state]) {
        if (pick < tr->rate) {
          chosen = tr;
          break;
        }
        pick -= tr->rate;
      }
      if (up[state] && !up[chosen->to]) ++result.total_failures;
      state = chosen->to;
      ++result.total_transitions;
    }
    const double observed = up_time / options.duration;
    result.per_replication_availability.add(observed);
    result.replication_availabilities.push_back(observed);
  }

  if (obs::enabled()) {
    obs::counter("sim.ctmc.replications").add(options.replications);
    obs::counter("sim.ctmc.transitions").add(result.total_transitions);
  }

  result.availability = result.per_replication_availability.mean();
  result.availability_ci95 =
      stats::mean_confidence_interval(result.per_replication_availability,
                                      0.95);
  result.downtime_minutes_per_year =
      core::downtime_minutes_per_year(1.0 - result.availability);
  const double total_time =
      options.duration * static_cast<double>(options.replications);
  result.mtbf_hours =
      result.total_failures > 0
          ? total_time / static_cast<double>(result.total_failures)
          : std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace rascal::sim

#include "sim/calendar_queue.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rascal::sim {

namespace {
constexpr std::size_t kMinBuckets = 8;  // ring sizes stay powers of two
}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

std::size_t CalendarQueue::bucket_of(double day) const noexcept {
  // `day` is a non-negative integer-valued double; fmod is exact.
  return static_cast<std::size_t>(
      std::fmod(day, static_cast<double>(buckets_.size())));
}

void CalendarQueue::push(Event event) {
  if (!(event.time >= 0.0) || !std::isfinite(event.time)) {
    throw std::invalid_argument(
        "CalendarQueue: event time must be finite and non-negative");
  }
  if (event.time < floor_time_) floor_time_ = event.time;
  buckets_[bucket_of(std::floor(event.time / width_))].push_back(
      std::move(event));
  ++size_;
  if (size_ > buckets_.size() * 2) rebuild(buckets_.size() * 2);
}

CalendarQueue::Pos CalendarQueue::find_min() const {
  // Scan days in increasing order starting at the search floor.  An
  // event's day is floor(time / width): days scan in time order, and
  // equal-time events share a day (hence a bucket), so the first day
  // holding a resident event contains the global (time, id) minimum.
  double day = std::floor(floor_time_ / width_);
  for (std::size_t step = 0; step < buckets_.size(); ++step, day += 1.0) {
    const std::vector<Event>& bucket = buckets_[bucket_of(day)];
    std::size_t best = bucket.size();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      // Skip residents from later ring revolutions ("future years").
      if (std::floor(bucket[i].time / width_) != day) continue;
      if (best == bucket.size() || fires_before(bucket[i], bucket[best])) {
        best = i;
      }
    }
    if (best != bucket.size()) return {bucket_of(day), best};
  }
  // Every queued event is at least a full revolution ahead of the
  // floor: fall back to a direct scan for the global minimum.
  Pos pos;
  const Event* best = nullptr;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      const Event& event = buckets_[b][i];
      if (best == nullptr || fires_before(event, *best)) {
        best = &event;
        pos = {b, i};
      }
    }
  }
  return pos;  // size_ > 0 guarantees a hit
}

const Event& CalendarQueue::min() const {
  const Pos pos = find_min();
  return buckets_[pos.bucket][pos.index];
}

Event CalendarQueue::pop_min() {
  const Pos pos = find_min();
  std::vector<Event>& bucket = buckets_[pos.bucket];
  Event event = std::move(bucket[pos.index]);
  if (pos.index + 1 != bucket.size()) {
    bucket[pos.index] = std::move(bucket.back());
  }
  bucket.pop_back();
  --size_;
  floor_time_ = event.time;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
    rebuild(buckets_.size() / 2);
  }
  return event;
}

void CalendarQueue::rebuild(std::size_t bucket_count) {
  std::vector<Event> all;
  all.reserve(size_);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& event : bucket) {
      lo = std::min(lo, event.time);
      hi = std::max(hi, event.time);
      all.push_back(std::move(event));
    }
    bucket.clear();
  }
  buckets_.assign(bucket_count, {});
  // Re-estimate the day width so the live window spreads over about
  // half the ring; degenerate spans keep the current width.
  if (size_ > 1 && hi > lo) {
    const double width = 2.0 * (hi - lo) / static_cast<double>(size_);
    if (std::isfinite(width) && width > 0.0) width_ = width;
  }
  for (Event& event : all) {
    buckets_[bucket_of(std::floor(event.time / width_))].push_back(
        std::move(event));
  }
}

}  // namespace rascal::sim

// Shared event record for the simulation event queues (binary heap
// and calendar queue).
#pragma once

#include <cstdint>
#include <functional>

namespace rascal::sim {

using EventId = std::uint64_t;
using EventAction = std::function<void()>;

/// A scheduled (time, id, action) record.  Queues order events by
/// (time, id): equal-time events pop in ascending id, i.e. insertion
/// order — the deterministic tie-break the campaign RNG scheme
/// depends on (pinned by Scheduler unit tests).
struct Event {
  double time = 0.0;
  EventId id = 0;
  EventAction action;
};

/// True when `a` fires strictly before `b` under the (time, id) order.
[[nodiscard]] inline bool fires_before(const Event& a,
                                       const Event& b) noexcept {
  return a.time != b.time ? a.time < b.time : a.id < b.id;
}

}  // namespace rascal::sim

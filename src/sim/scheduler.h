// Discrete-event simulation core: a time-ordered event calendar with
// cancellation.  Ties break in schedule order, so runs are fully
// deterministic given a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace rascal::sim {

using EventId = std::uint64_t;
using EventAction = std::function<void()>;

class Scheduler {
 public:
  /// Schedules `action` at absolute time `at` (>= now).  Returns an id
  /// usable with cancel().  Throws std::invalid_argument for the past.
  EventId schedule_at(double at, EventAction action);

  /// Schedules `action` after `delay` (>= 0).
  EventId schedule_after(double delay, EventAction action);

  /// Cancels a pending event; cancelling an already-fired or unknown
  /// id is a no-op (returns false).
  bool cancel(EventId id);

  /// Runs events in time order until the calendar is empty or the
  /// next event is later than `until`; the clock then rests at
  /// `until` (or the last event time when the calendar drained).
  void run_until(double until);

  /// Runs a single event; returns false when the calendar is empty.
  bool step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Entry {
    double time = 0.0;
    EventId id = 0;
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  EventId next_id_ = 1;
};

}  // namespace rascal::sim

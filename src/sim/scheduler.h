// Discrete-event simulation core: a time-ordered event calendar with
// cancellation.  Ties break in schedule order, so runs are fully
// deterministic given a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace rascal::sim {

using EventId = std::uint64_t;
using EventAction = std::function<void()>;

class Scheduler {
 public:
  /// Schedules `action` at absolute time `at` (>= now).  Returns an id
  /// usable with cancel().  Throws std::invalid_argument for the past.
  EventId schedule_at(double at, EventAction action);

  /// Schedules `action` after `delay` (>= 0).
  EventId schedule_after(double delay, EventAction action);

  /// Cancels a pending event.  Returns false — and records nothing —
  /// for ids that already fired, were already cancelled, or were
  /// never issued, so long campaigns cannot accumulate stale
  /// cancellation state.
  bool cancel(EventId id);

  /// Runs events in time order until the calendar is empty or the
  /// next event is later than `until`; the clock then rests at
  /// `until` (or the last event time when the calendar drained).
  void run_until(double until);

  /// Runs a single event; returns false when the calendar is empty.
  bool step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Entry {
    double time = 0.0;
    EventId id = 0;
    EventAction action;
  };
  // Min-heap on (time, id): equal-time events pop in ascending id,
  // i.e. insertion order — the deterministic tie-break the campaign
  // RNG scheme depends on (pinned by Scheduler unit tests).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ids scheduled but not yet fired or cancelled.  Membership is the
  // cancellation authority: ids leave on pop or cancel, so both sets
  // stay bounded by the calendar size over arbitrarily long runs.
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  EventId next_id_ = 1;
};

}  // namespace rascal::sim

// Discrete-event simulation core: a time-ordered event calendar with
// cancellation.  Ties break in schedule order, so runs are fully
// deterministic given a seed.
//
// Two interchangeable queue backends produce identical event
// sequences (pinned by property tests):
//   * QueueKind::kBinaryHeap (default) — contiguous binary heap with
//     move-on-pop (no std::function copies), O(log n) per operation;
//   * QueueKind::kCalendar — index-bucketed calendar queue, O(1)
//     amortized for the roughly uniform event-time streams of
//     million-event JSAS runs.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "obs/obs.h"
#include "sim/calendar_queue.h"
#include "sim/event.h"

namespace rascal::sim {

enum class QueueKind { kBinaryHeap, kCalendar };

class Scheduler {
 public:
  explicit Scheduler(QueueKind kind = QueueKind::kBinaryHeap);

  /// Schedules `action` at absolute time `at` (>= now).  Returns an id
  /// usable with cancel().  Throws std::invalid_argument for the past.
  EventId schedule_at(double at, EventAction action);

  /// Schedules `action` after `delay` (>= 0).
  EventId schedule_after(double delay, EventAction action);

  /// Cancels a pending event.  Returns false — and records nothing —
  /// for ids that already fired, were already cancelled, or were
  /// never issued, so long campaigns cannot accumulate stale
  /// cancellation state.
  bool cancel(EventId id);

  /// Runs events in time order until the calendar is empty or the
  /// next live event is later than `until`; the clock then rests at
  /// `until` (or the last event time when the calendar drained).
  void run_until(double until);

  /// Runs a single event; returns false when the calendar is empty.
  bool step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_ids_.size();
  }

 private:
  void push_event(Event event);
  [[nodiscard]] Event pop_front();  // precondition: queue not empty
  [[nodiscard]] bool queue_empty() const noexcept;
  [[nodiscard]] std::size_t queue_size() const noexcept;
  /// Front of the queue after lazily discarding cancelled events;
  /// nullptr when the calendar drained.
  [[nodiscard]] const Event* peek_live();

  QueueKind kind_;
  std::vector<Event> heap_;  // kBinaryHeap storage, (time, id) min-heap
  CalendarQueue calendar_;   // kCalendar storage
  // Ids scheduled but not yet fired or cancelled — the single
  // cancellation authority: a popped event whose id is no longer here
  // was cancelled and is dropped.  Ids leave on fire or cancel, so
  // the set stays bounded by the calendar size over arbitrarily long
  // runs.  rascal-unordered-iteration: clean — used only for
  // count/insert/erase/size membership queries, never iterated, so
  // its unspecified order cannot reach results.
  std::unordered_set<EventId> pending_ids_;
  double now_ = 0.0;
  EventId next_id_ = 1;
  // Registry lookups resolved once per scheduler so the per-event hot
  // path pays one enabled() load instead of function-local-static
  // guard checks.
  obs::Counter& scheduled_counter_;
  obs::Counter& cancelled_counter_;
  obs::Counter& fired_counter_;
  obs::Gauge& queue_hwm_;
};

}  // namespace rascal::sim

// Discrete-event simulation of the JSAS cluster itself (not of the
// Markov model): AS instances with session failover and restarts,
// HADB node pairs with mutual takeover, spare rebuild, scheduled
// maintenance, and imperfect recovery.
//
// Two recovery-time regimes are supported:
//   * exponential_recoveries = true  reproduces the analytic model's
//     assumptions exactly (all durations exponential) — used to
//     validate the CTMC solvers end to end;
//   * exponential_recoveries = false uses deterministic recovery /
//     restart / repair durations, which is how the real system behaves
//     (the paper notes most recovery times are deterministic) — used
//     to quantify how much the exponential approximation matters.
#pragma once

#include <cstdint>
#include <string>

#include "expr/parameter_set.h"
#include "models/jsas_system.h"
#include "resil/resil.h"
#include "stats/summary.h"

namespace rascal::sim {

struct JsasSimOptions {
  double duration = 100.0 * 8760.0;  // simulated hours per replication
  std::size_t replications = 10;
  std::uint64_t seed = 7;
  bool exponential_recoveries = false;
  // Worker threads across replications: 0 = automatic (RASCAL_THREADS
  // env, else hardware_concurrency).  Each replication draws from its
  // own RandomEngine::split(rep) substream and per-replication totals
  // are merged in replication order after the parallel region, so any
  // thread count produces bit-identical results.
  std::size_t threads = 0;
  // Resilience: cancellation (polled inside the event loop every few
  // thousand events), replication-granular checkpoint/resume, and
  // skip-failed-replications.  Excluded from the checkpoint digest.
  resil::ExecutionControl control;
};

struct JsasSimResult {
  double availability = 1.0;
  stats::Interval availability_ci95;
  double downtime_minutes_per_year = 0.0;
  double downtime_as_minutes = 0.0;    // time with the whole AS tier down
  double downtime_hadb_minutes = 0.0;  // time with some pair double-down
  double mtbf_hours = 0.0;
  std::uint64_t system_failures = 0;
  std::uint64_t as_cluster_failures = 0;   // all instances down events
  std::uint64_t hadb_pair_failures = 0;    // pair double-down events
  std::uint64_t imperfect_recoveries = 0;  // subset of pair failures
  std::uint64_t as_instance_failures = 0;  // component-level events
  std::uint64_t hadb_node_failures = 0;
  std::uint64_t events_simulated = 0;  // dispatched events, all replications
  stats::Summary per_replication_availability;

  std::size_t completed_replications = 0;  // merged into the result
  bool interrupted = false;                // cancelled with work pending
  std::string interrupt_reason;            // cancel token's describe()
};

/// Fingerprint of everything that determines the simulation's result
/// bits (config, parameters, duration, replication count, seed,
/// recovery regime, and the RNG substream derivation — NOT the thread
/// count); the checkpoint digest.
[[nodiscard]] std::uint64_t jsas_sim_checkpoint_digest(
    const models::JsasConfig& config, const expr::ParameterSet& params,
    const JsasSimOptions& options);

/// Simulates `config` under `params` (same parameter names as the
/// analytic models).  Throws std::invalid_argument for configurations
/// with fewer than 2 instances or 1 pair, or non-positive durations.
[[nodiscard]] JsasSimResult simulate_jsas(const models::JsasConfig& config,
                                          const expr::ParameterSet& params,
                                          const JsasSimOptions& options = {});

}  // namespace rascal::sim

// Monte-Carlo simulation of a CTMC trajectory.  Statistically checks
// the analytic steady-state solvers: long-run reward-weighted time
// fractions must converge to the solver's availability.
#pragma once

#include <cstdint>

#include "ctmc/ctmc.h"
#include "stats/rng.h"
#include "stats/summary.h"

namespace rascal::sim {

struct CtmcSimOptions {
  double duration = 1e6;          // simulated hours per replication
  std::size_t replications = 10;
  std::uint64_t seed = 42;
  ctmc::StateId initial_state = 0;
};

struct CtmcSimResult {
  double availability = 0.0;       // mean over replications
  stats::Interval availability_ci95;
  double downtime_minutes_per_year = 0.0;
  double mtbf_hours = 0.0;           // duration / system failures
  std::uint64_t total_failures = 0;  // up -> down crossings observed
  std::uint64_t total_transitions = 0;
  stats::Summary per_replication_availability;
  // Observed interval availability of each replication (fraction of
  // the horizon spent up) — the empirical interval-availability
  // distribution over missions of length `duration`.
  std::vector<double> replication_availabilities;
};

/// Simulates the chain with the embedded-jump method (exponential
/// holding times, categorical successor choice).  `up_threshold`
/// separates up from down states as in core::availability_metrics.
/// Throws std::invalid_argument on empty options or bad initial state.
[[nodiscard]] CtmcSimResult simulate_ctmc(const ctmc::Ctmc& chain,
                                          const CtmcSimOptions& options = {},
                                          double up_threshold = 0.5);

}  // namespace rascal::sim

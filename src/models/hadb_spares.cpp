#include "models/hadb_spares.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/builder.h"

namespace rascal::models {

namespace {

enum class Condition {
  kOk,
  kRestartShort,
  kRestartLong,
  kRepair,
  kWaitSpare,  // HW failure with an empty pool: degraded until a
               // replacement arrives
  kMaintenance,
  kDown,
};

const char* condition_name(Condition c) {
  switch (c) {
    case Condition::kOk: return "Ok";
    case Condition::kRestartShort: return "RestartShort";
    case Condition::kRestartLong: return "RestartLong";
    case Condition::kRepair: return "Repair";
    case Condition::kWaitSpare: return "WaitSpare";
    case Condition::kMaintenance: return "Maintenance";
    case Condition::kDown: return "2_Down";
  }
  return "?";
}

double condition_reward(Condition c) {
  return c == Condition::kDown ? 0.0 : 1.0;
}

}  // namespace

ctmc::Ctmc hadb_pair_with_spares_model(std::size_t spares,
                                       const expr::ParameterSet& params) {
  if (spares == 0) {
    throw std::invalid_argument(
        "hadb_pair_with_spares_model: needs at least one spare (the "
        "Repair path would be unreachable)");
  }
  const double la_hadb = params.get("hadb_La_hadb");
  const double la_os = params.get("hadb_La_os");
  const double la_hw = params.get("hadb_La_hw");
  const double la = la_hadb + la_os + la_hw;
  const double la_mnt = params.get("hadb_La_mnt");
  const double fir = params.get("hadb_FIR");
  const double acc = params.get("Acc");
  const double t_short = params.get("hadb_Tstart_short");
  const double t_long = params.get("hadb_Tstart_long");
  const double t_repair = params.get("hadb_Trepair");
  const double t_mnt = params.get("hadb_Tmnt");
  const double t_restore = params.get("hadb_Trestore");
  const double t_replenish = params.get(kTreplenishParam);
  if (!(t_replenish > 0.0)) {
    throw std::invalid_argument(
        "hadb_pair_with_spares_model: hadb_Treplenish must be > 0");
  }

  constexpr Condition kConditions[] = {
      Condition::kOk,        Condition::kRestartShort,
      Condition::kRestartLong, Condition::kRepair,
      Condition::kWaitSpare, Condition::kMaintenance,
      Condition::kDown,
  };

  ctmc::CtmcBuilder builder;
  // id lookup: state(condition, pool level).  WaitSpare exists only at
  // pool level 0 (it is entered exactly when the pool is empty).
  std::vector<std::vector<ctmc::StateId>> id(
      std::size(kConditions), std::vector<ctmc::StateId>(spares + 1));
  for (std::size_t ci = 0; ci < std::size(kConditions); ++ci) {
    const Condition c = kConditions[ci];
    const std::size_t max_s = c == Condition::kWaitSpare ? 0 : spares;
    for (std::size_t s = 0; s <= max_s; ++s) {
      id[ci][s] = builder.state(std::string(condition_name(c)) + "/s" +
                                    std::to_string(s),
                                condition_reward(c));
    }
  }
  const auto at = [&](Condition c, std::size_t s) {
    return id[static_cast<std::size_t>(c)][s];
  };

  for (std::size_t s = 0; s <= spares; ++s) {
    // First failures from the mirrored state.
    builder.rate(at(Condition::kOk, s), at(Condition::kRestartShort, s),
                 2.0 * la_hadb * (1.0 - fir));
    builder.rate(at(Condition::kOk, s), at(Condition::kRestartLong, s),
                 2.0 * la_os * (1.0 - fir));
    if (s > 0) {
      // HW failure consumes a spare for the rebuild.
      builder.rate(at(Condition::kOk, s), at(Condition::kRepair, s - 1),
                   2.0 * la_hw * (1.0 - fir));
    } else {
      builder.rate(at(Condition::kOk, 0), at(Condition::kWaitSpare, 0),
                   2.0 * la_hw * (1.0 - fir));
    }
    builder.rate(at(Condition::kOk, s), at(Condition::kDown, s),
                 2.0 * la * fir);
    builder.rate(at(Condition::kOk, s), at(Condition::kMaintenance, s),
                 la_mnt);

    // Recovery completions.
    builder.rate(at(Condition::kRestartShort, s), at(Condition::kOk, s),
                 1.0 / t_short);
    builder.rate(at(Condition::kRestartLong, s), at(Condition::kOk, s),
                 1.0 / t_long);
    builder.rate(at(Condition::kRepair, s), at(Condition::kOk, s),
                 1.0 / t_repair);
    builder.rate(at(Condition::kMaintenance, s), at(Condition::kOk, s),
                 1.0 / t_mnt);
    builder.rate(at(Condition::kDown, s), at(Condition::kOk, s),
                 1.0 / t_restore);

    // Second failure of the surviving, workload-accelerated node.
    for (Condition degraded :
         {Condition::kRestartShort, Condition::kRestartLong,
          Condition::kRepair, Condition::kMaintenance}) {
      builder.rate(at(degraded, s), at(Condition::kDown, s), acc * la);
    }

    // A replacement node arrives while waiting: the rebuild starts
    // immediately (the arriving spare is consumed on the spot).
    if (s == 0) {
      builder.rate(at(Condition::kWaitSpare, 0), at(Condition::kRepair, 0),
                   1.0 / t_replenish);
      builder.rate(at(Condition::kWaitSpare, 0), at(Condition::kDown, 0),
                   acc * la);
    }

    // Refurbishment of consumed spares: each missing spare returns
    // independently.
    if (s < spares) {
      const double replenish_rate =
          static_cast<double>(spares - s) / t_replenish;
      for (Condition c :
           {Condition::kOk, Condition::kRestartShort, Condition::kRestartLong,
            Condition::kRepair, Condition::kMaintenance, Condition::kDown}) {
        builder.rate(at(c, s), at(c, s + 1), replenish_rate);
      }
    }
  }
  return builder.build();
}

}  // namespace rascal::models

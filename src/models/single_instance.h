// Single Application Server instance with no failover (Table 3,
// row 1): every failure is an outage.  AS process failures restart in
// as_Tstart_short (90 s); HW/OS failures take as_Tstart_long (1 h).
#pragma once

#include "ctmc/builder.h"

namespace rascal::models {

/// States: Ok(1), DownShort(0), DownLong(0).
[[nodiscard]] ctmc::SymbolicCtmc single_instance_model();

}  // namespace rascal::models

#include "models/hadb_pair_explicit.h"

#include <string>

#include "ctmc/builder.h"

namespace rascal::models {

ctmc::Ctmc hadb_pair_explicit_model(const expr::ParameterSet& params) {
  const double la_hadb = params.get("hadb_La_hadb");
  const double la_os = params.get("hadb_La_os");
  const double la_hw = params.get("hadb_La_hw");
  const double la = la_hadb + la_os + la_hw;
  const double la_mnt = params.get("hadb_La_mnt");
  const double fir = params.get("hadb_FIR");
  const double acc = params.get("Acc");

  ctmc::CtmcBuilder b;
  const auto ok = b.state("Ok", 1.0);
  struct DegradedKind {
    const char* name;
    double enter_rate;   // per-node rate into this condition
    double exit_mean;    // condition duration
  };
  const DegradedKind kinds[] = {
      {"RestartShort", la_hadb * (1.0 - fir),
       params.get("hadb_Tstart_short")},
      {"RestartLong", la_os * (1.0 - fir), params.get("hadb_Tstart_long")},
      {"Repair", la_hw * (1.0 - fir), params.get("hadb_Trepair")},
      // Maintenance is a pair-level event; splitting it evenly keeps
      // the per-pair rate at La_mnt.
      {"Maintenance", la_mnt / 2.0, params.get("hadb_Tmnt")},
  };
  const auto down = b.state("2_Down", 0.0);

  for (const char* node : {"A", "B"}) {
    for (const DegradedKind& kind : kinds) {
      const auto degraded =
          b.state(std::string(node) + ":" + kind.name, 1.0);
      b.rate(ok, degraded, kind.enter_rate);
      b.rate(degraded, ok, 1.0 / kind.exit_mean);
      // Second failure of the surviving node, workload-accelerated.
      b.rate(degraded, down, acc * la);
    }
  }
  b.rate(ok, down, 2.0 * la * fir);
  b.rate(down, ok, 1.0 / params.get("hadb_Trestore"));
  return b.build();
}

}  // namespace rascal::models

// Node-identity-explicit variant of the HADB pair model: instead of
// Figure 3's "one node is restarting" states, this chain tracks WHICH
// node (A or B) is in which condition.  It exists to validate the
// paper's aggregation formally: lumping the (A down)/(B down) twins
// must reproduce Figure 3 exactly (see tests/test_lumping.cpp).
//
// States: Ok | {A,B} x {RestartShort, RestartLong, Repair, Maintenance}
// | 2_Down — ten states that lump to Figure 3's six.
#pragma once

#include "ctmc/ctmc.h"
#include "expr/parameter_set.h"

namespace rascal::models {

[[nodiscard]] ctmc::Ctmc hadb_pair_explicit_model(
    const expr::ParameterSet& params);

}  // namespace rascal::models

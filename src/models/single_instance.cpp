#include "models/single_instance.h"

namespace rascal::models {

ctmc::SymbolicCtmc single_instance_model() {
  ctmc::SymbolicCtmc m;
  m.state("Ok", 1.0);
  m.state("DownShort", 0.0);
  m.state("DownLong", 0.0);
  m.rate("Ok", "DownShort", "as_La_as");
  m.rate("Ok", "DownLong", "as_La_os+as_La_hw");
  m.rate("DownShort", "Ok", "1/as_Tstart_short");
  m.rate("DownLong", "Ok", "1/as_Tstart_long");
  return m;
}

}  // namespace rascal::models

#include "models/kofn_as.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace rascal::models {

namespace {

// Per-node local states (base-3 digit of the global state encoding).
constexpr unsigned char kUp = 0;
constexpr unsigned char kRestarting = 1;
constexpr unsigned char kRebuilding = 2;

void validate(const KofnAsConfig& c) {
  if (c.nodes == 0) {
    throw std::invalid_argument("kofn_as: nodes must be >= 1");
  }
  if (c.quorum == 0 || c.quorum > c.nodes) {
    throw std::invalid_argument("kofn_as: quorum must be in [1, nodes]");
  }
  if (c.repair_crews == 0) {
    throw std::invalid_argument("kofn_as: repair_crews must be >= 1");
  }
  if (!(c.failure_rate > 0.0) || !(c.restart_rate > 0.0) ||
      !(c.rebuild_rate > 0.0)) {
    throw std::invalid_argument("kofn_as: rates must be positive");
  }
  if (!(c.restart_coverage >= 0.0) || !(c.restart_coverage <= 1.0)) {
    throw std::invalid_argument(
        "kofn_as: restart_coverage must be in [0, 1]");
  }
  // Keep 3^nodes inside std::size_t with headroom; nodes = 13 is
  // already 1.6M states, far past any practical solve.
  if (c.nodes > 20) {
    throw std::invalid_argument("kofn_as: nodes > 20 is not supported");
  }
}

std::size_t pow3(std::size_t n) {
  std::size_t p = 1;
  for (std::size_t i = 0; i < n; ++i) p *= 3;
  return p;
}

void decode(std::size_t s, std::size_t nodes,
            std::vector<unsigned char>& digits) {
  for (std::size_t i = 0; i < nodes; ++i) {
    digits[i] = static_cast<unsigned char>(s % 3);
    s /= 3;
  }
}

// Enumerates the outgoing transitions of state `s` (digits already
// decoded) in deterministic order: failures by node index, then
// repairs by node index.  Repair crews serve down nodes head-of-line
// by node index, which couples the nodes through the shared pool.
template <typename Emit>
void for_each_transition(const KofnAsConfig& c, std::size_t s,
                         const std::vector<unsigned char>& digits,
                         Emit&& emit) {
  std::size_t stride = 1;
  std::size_t crews_left = c.repair_crews;
  for (std::size_t i = 0; i < c.nodes; ++i, stride *= 3) {
    const unsigned char d = digits[i];
    if (d == kUp) {
      const double to_restart = c.failure_rate * c.restart_coverage;
      const double to_rebuild = c.failure_rate * (1.0 - c.restart_coverage);
      if (to_restart > 0.0) {
        emit(s, s + stride * std::size_t{kRestarting}, to_restart);
      }
      if (to_rebuild > 0.0) {
        emit(s, s + stride * std::size_t{kRebuilding}, to_rebuild);
      }
    } else if (crews_left > 0) {
      --crews_left;
      const double rate = d == kRestarting ? c.restart_rate : c.rebuild_rate;
      emit(s, s - stride * std::size_t{d}, rate);
    }
  }
}

double reward_of(const KofnAsConfig& c,
                 const std::vector<unsigned char>& digits) {
  std::size_t up = 0;
  for (unsigned char d : digits) up += d == kUp ? 1 : 0;
  return up >= c.quorum ? 1.0 : 0.0;
}

}  // namespace

std::size_t kofn_as_state_count(const KofnAsConfig& config) {
  validate(config);
  return pow3(config.nodes);
}

ctmc::Ctmc kofn_as_model(const KofnAsConfig& config) {
  validate(config);
  const std::size_t n = pow3(config.nodes);

  std::vector<ctmc::State> states;
  states.reserve(n);
  std::vector<ctmc::Transition> transitions;
  std::vector<unsigned char> digits(config.nodes, 0);
  std::string name(config.nodes, '0');
  for (std::size_t s = 0; s < n; ++s) {
    decode(s, config.nodes, digits);
    for (std::size_t i = 0; i < config.nodes; ++i) {
      name[i] = static_cast<char>('0' + digits[i]);
    }
    states.push_back({"as:" + name, reward_of(config, digits)});
    for_each_transition(config, s, digits,
                        [&transitions](std::size_t from, std::size_t to,
                                       double rate) {
                          transitions.push_back({from, to, rate});
                        });
  }
  return ctmc::Ctmc(states, transitions);
}

KofnAsSparseModel kofn_as_sparse_model(const KofnAsConfig& config) {
  validate(config);
  const std::size_t n = pow3(config.nodes);

  KofnAsSparseModel out;
  out.rewards.reserve(n);
  std::vector<linalg::Triplet> triplets;
  // Per state: at most 2 failure edges per Up node plus one repair
  // edge per busy crew, plus the diagonal.
  triplets.reserve(n * (2 * config.nodes / 3 + config.repair_crews + 2));
  std::vector<unsigned char> digits(config.nodes, 0);
  for (std::size_t s = 0; s < n; ++s) {
    decode(s, config.nodes, digits);
    out.rewards.push_back(reward_of(config, digits));
    double exit = 0.0;
    for_each_transition(config, s, digits,
                        [&triplets, &exit](std::size_t from, std::size_t to,
                                           double rate) {
                          triplets.push_back({from, to, rate});
                          exit += rate;
                        });
    if (exit != 0.0) triplets.push_back({s, s, -exit});
  }
  out.generator = linalg::CsrMatrix(n, n, std::move(triplets));
  return out;
}

}  // namespace rascal::models

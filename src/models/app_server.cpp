#include "models/app_server.h"

#include <functional>
#include <stdexcept>
#include <string>

namespace rascal::models {

namespace {

const std::string kLa = "(as_La_as+as_La_os+as_La_hw)";
// Branching probabilities after session recovery: fraction of short
// (process-level) restarts vs long (HW/OS) restarts.
const std::string kFss = "(as_La_as/" + kLa + ")";
const std::string kFls = "((as_La_os+as_La_hw)/" + kLa + ")";

std::string occupancy_name(std::size_t r, std::size_t s, std::size_t l) {
  if (r == 0 && s == 0 && l == 0) return "All_Work";
  return "d" + std::to_string(r + s + l) + "r" + std::to_string(r) + "s" +
         std::to_string(s) + "l" + std::to_string(l);
}

}  // namespace

ctmc::SymbolicCtmc app_server_two_instance_model() {
  ctmc::SymbolicCtmc m;
  m.state("All_Work", 1.0);
  m.state("Recovery", 1.0);
  m.state("1DownShort", 1.0);
  m.state("1DownLong", 1.0);
  m.state("2_Down", 0.0);

  // First failure on either instance; sessions fail over.
  m.rate("All_Work", "Recovery", "2*" + kLa);
  // Session recovery completes; the failed instance restarts via the
  // short path (AS failure) or long path (HW/OS failure).
  m.rate("Recovery", "1DownShort", kFss + "/as_Trecovery");
  m.rate("Recovery", "1DownLong", kFls + "/as_Trecovery");
  m.rate("1DownShort", "All_Work", "1/as_Tstart_short");
  m.rate("1DownLong", "All_Work", "1/as_Tstart_long");
  // Second failure on the surviving, workload-accelerated instance.
  m.rate("Recovery", "2_Down", "Acc*" + kLa);
  m.rate("1DownShort", "2_Down", "Acc*" + kLa);
  m.rate("1DownLong", "2_Down", "Acc*" + kLa);
  // Manual restart of the whole cluster.
  m.rate("2_Down", "All_Work", "1/as_Tstart_all");
  return m;
}

namespace {

// Occupancy-state reward as a function of (recovering, short, long)
// counts; the total instance count is baked into the callback.
using OccupancyReward =
    std::function<double(std::size_t r, std::size_t s, std::size_t l)>;

ctmc::SymbolicCtmc build_n_instance_model(std::size_t n,
                                          const OccupancyReward& reward) {
  ctmc::SymbolicCtmc m;
  // Declare all occupancy states (r, s, l) with r + s + l <= n - 1.
  for (std::size_t d = 0; d <= n - 1; ++d) {
    for (std::size_t r = 0; r <= d; ++r) {
      for (std::size_t s = 0; s + r <= d; ++s) {
        const std::size_t l = d - r - s;
        m.state(occupancy_name(r, s, l), reward(r, s, l));
      }
    }
  }
  m.state("All_Down", 0.0);

  for (std::size_t d = 0; d <= n - 1; ++d) {
    for (std::size_t r = 0; r <= d; ++r) {
      for (std::size_t s = 0; s + r <= d; ++s) {
        const std::size_t l = d - r - s;
        const std::string here = occupancy_name(r, s, l);
        const std::size_t up = n - d;

        // Next failure: each of the `up` instances fails at the
        // workload-accelerated rate La * Acc^d.
        const std::string fail_rate =
            std::to_string(up) + "*" + kLa + "*Acc^" + std::to_string(d);
        const std::string fail_target =
            (d + 1 <= n - 1) ? occupancy_name(r + 1, s, l) : "All_Down";
        m.rate(here, fail_target, fail_rate);

        // Session recovery completes for one of the r recovering
        // instances, which then enters short or long restart.
        if (r > 0) {
          const std::string base =
              std::to_string(r) + "/as_Trecovery*";
          m.rate(here, occupancy_name(r - 1, s + 1, l), base + kFss);
          m.rate(here, occupancy_name(r - 1, s, l + 1), base + kFls);
        }
        // Restart completions.
        if (s > 0) {
          m.rate(here, occupancy_name(r, s - 1, l),
                 std::to_string(s) + "/as_Tstart_short");
        }
        if (l > 0) {
          m.rate(here, occupancy_name(r, s, l - 1),
                 std::to_string(l) + "/as_Tstart_long");
        }
      }
    }
  }
  m.rate("All_Down", "All_Work", "1/as_Tstart_all");
  return m;
}

}  // namespace

ctmc::SymbolicCtmc app_server_n_instance_model(std::size_t n,
                                               double recovery_reward) {
  if (n < 2) {
    throw std::invalid_argument(
        "app_server_n_instance_model: requires n >= 2 (use "
        "single_instance_model for n == 1)");
  }
  return build_n_instance_model(
      n, [recovery_reward](std::size_t r, std::size_t, std::size_t) {
        return r > 0 ? recovery_reward : 1.0;
      });
}

ctmc::SymbolicCtmc app_server_capacity_model(std::size_t n) {
  if (n < 2) {
    throw std::invalid_argument(
        "app_server_capacity_model: requires n >= 2");
  }
  return build_n_instance_model(
      n, [n](std::size_t r, std::size_t s, std::size_t l) {
        return static_cast<double>(n - r - s - l) / static_cast<double>(n);
      });
}

std::size_t app_server_n_instance_state_count(std::size_t n) noexcept {
  // Occupancy vectors with r+s+l <= n-1: C(n+2, 3); plus All_Down.
  return (n + 2) * (n + 1) * n / 6 + 1;
}

}  // namespace rascal::models

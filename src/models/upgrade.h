// Extension: dual-cluster rolling upgrades.
//
// The paper notes that "online upgrades ... can be orchestrated by
// the administrator, using single or dual cluster deployments" but
// restricts its model to one cluster.  This model covers the dual
// deployment: two identical JSAS clusters (each abstracted to its
// two-state equivalent, obtained from the Figure-2 hierarchy), where
// upgrades periodically take one cluster offline and traffic rides on
// the other; when the upgrade finishes, a brief switchover moves
// sessions onto the upgraded cluster.
//
// States: BothUp(1), OneDown(1) [unplanned single-cluster failure],
// Upgrading(1) [planned; reduced redundancy], Switchover(0) [traffic
// cut-over, conservatively counted as downtime], AllDown(0).
#pragma once

#include "ctmc/builder.h"
#include "expr/parameter_set.h"

namespace rascal::models {

/// Symbolic model.  Parameters:
///   La_cluster  — equivalent failure rate of one cluster (per hour)
///   Mu_cluster  — equivalent recovery rate of one cluster
///   La_upgrade  — rate of starting planned upgrades (e.g. 12/year)
///   T_upgrade   — mean time one cluster is offline for the upgrade
///   T_switch    — traffic switchover time after the upgrade
///   T_restore   — manual restore time after losing both clusters
///   Acc         — workload acceleration on the surviving cluster
[[nodiscard]] ctmc::SymbolicCtmc dual_cluster_upgrade_model();

/// Convenience: derives La_cluster/Mu_cluster from a JSAS
/// configuration solved under `params` (via the standard hierarchy),
/// merges the upgrade parameters, and returns bindings ready for
/// dual_cluster_upgrade_model().bind().
[[nodiscard]] expr::ParameterSet upgrade_parameters_for(
    const expr::ParameterSet& jsas_params, std::size_t as_instances,
    std::size_t hadb_pairs, double upgrades_per_year, double t_upgrade_hours,
    double t_switch_hours);

}  // namespace rascal::models

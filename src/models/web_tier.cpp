#include "models/web_tier.h"

#include <stdexcept>
#include <string>

#include "core/units.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"

namespace rascal::models {

ctmc::SymbolicCtmc web_tier_model(std::size_t servers) {
  if (servers == 0) {
    throw std::invalid_argument("web_tier_model: needs at least 1 server");
  }
  ctmc::SymbolicCtmc m;
  // State k = k servers down; serving while k < n.
  for (std::size_t k = 0; k <= servers; ++k) {
    m.state(k == 0 ? "All_Up" : std::to_string(k) + "_Down",
            k < servers ? 1.0 : 0.0);
  }
  const auto name = [&](std::size_t k) {
    return k == 0 ? std::string("All_Up") : std::to_string(k) + "_Down";
  };
  for (std::size_t k = 0; k < servers; ++k) {
    // Stateless tier: remaining servers fail independently, no
    // acceleration; failed ones restart in parallel.
    m.rate(name(k), name(k + 1),
           std::to_string(servers - k) + "*web_La");
    if (k > 0) {
      m.rate(name(k), name(k - 1), std::to_string(k) + "/web_Tstart");
    }
  }
  // Losing the whole tier needs operations to step in.
  m.rate(name(servers), name(0), "1/web_Trestore");
  return m;
}

expr::ParameterSet default_web_parameters() {
  expr::ParameterSet p;
  p.set("web_La", core::per_year(12.0));
  p.set("web_Tstart", core::minutes(5.0));
  p.set("web_Trestore", core::minutes(30.0));
  return p;
}

core::HierarchicalModel jsas_with_web_model(const JsasConfig& config,
                                            std::size_t web_servers) {
  if (config.as_instances < 2 || config.hadb_pairs < 1) {
    throw std::invalid_argument(
        "jsas_with_web_model: needs >= 2 instances and >= 1 pair");
  }
  core::HierarchicalModel model;
  model.add_submodel({"Web Tier",
                      web_tier_model(web_servers),
                      {{"La_web", core::ExportKind::kLambdaEq},
                       {"Mu_web", core::ExportKind::kMuEq}},
                      core::kDefaultUpThreshold});
  model.add_submodel(
      {"Appl Server",
       config.as_instances == 2
           ? app_server_two_instance_model()
           : app_server_n_instance_model(config.as_instances),
       {{"La_appl", core::ExportKind::kLambdaEq},
        {"Mu_appl", core::ExportKind::kMuEq}},
       core::kDefaultUpThreshold});
  model.add_submodel({"HADB Node Pair",
                      hadb_pair_model(),
                      {{"La_hadb_pair", core::ExportKind::kLambdaEq},
                       {"Mu_hadb_pair", core::ExportKind::kMuEq}},
                      core::kDefaultUpThreshold});

  ctmc::SymbolicCtmc root;
  root.state("Ok", 1.0);
  root.state("Web_Fail", 0.0);
  root.state("AS_Fail", 0.0);
  root.state("HADB_Fail", 0.0);
  root.rate("Ok", "Web_Fail", "La_web");
  root.rate("Web_Fail", "Ok", "Mu_web");
  root.rate("Ok", "AS_Fail", "La_appl");
  root.rate("AS_Fail", "Ok", "Mu_appl");
  root.rate("Ok", "HADB_Fail", "N_pair*La_hadb_pair");
  root.rate("HADB_Fail", "Ok", "Mu_hadb_pair");
  model.set_root(std::move(root));
  return model;
}

}  // namespace rascal::models

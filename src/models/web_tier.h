// Extension: the web-server tier the paper leaves out of scope
// ("failures of the following elements are not included in the model:
// The web server tier ...") while noting the hierarchy could be
// extended "to include more events and subsystems".  This model does
// exactly that extension.
//
// The tier is stateless (the LBP keeps session affinity in cookies),
// so a web server failure only removes capacity; the tier fails when
// every server is down.  Serving resumes as soon as one restarts.
#pragma once

#include <cstddef>

#include "core/hierarchy.h"
#include "ctmc/builder.h"
#include "expr/parameter_set.h"
#include "models/jsas_system.h"

namespace rascal::models {

/// Parameters: web_La (failure rate per server), web_Tstart (restart
/// time), web_Trestore (manual tier restore).  States count down
/// servers 0..n; reward 0 only when all are down.  Stateless servers
/// restart independently, so no workload acceleration applies.
/// Throws std::invalid_argument for n == 0.
[[nodiscard]] ctmc::SymbolicCtmc web_tier_model(std::size_t servers);

/// Conservative defaults for the web tier: 12 failures/server-year,
/// 5-minute automatic restart, 30-minute manual tier restore.
[[nodiscard]] expr::ParameterSet default_web_parameters();

/// Full three-submodel hierarchy: web tier + AS cluster + HADB pairs
/// under a four-state root (Ok, Web_Fail, AS_Fail, HADB_Fail).
[[nodiscard]] core::HierarchicalModel jsas_with_web_model(
    const JsasConfig& config, std::size_t web_servers);

}  // namespace rascal::models

#include "models/upgrade.h"

#include "core/units.h"
#include "models/jsas_system.h"

namespace rascal::models {

ctmc::SymbolicCtmc dual_cluster_upgrade_model() {
  ctmc::SymbolicCtmc m;
  m.state("BothUp", 1.0);
  m.state("OneDown", 1.0);
  m.state("Upgrading", 1.0);
  m.state("Switchover", 0.0);
  m.state("AllDown", 0.0);

  // Unplanned failure of either cluster; the survivor carries the
  // whole load (accelerated) until the failed cluster recovers.
  m.rate("BothUp", "OneDown", "2*La_cluster");
  m.rate("OneDown", "BothUp", "Mu_cluster");
  m.rate("OneDown", "AllDown", "Acc*La_cluster");

  // Planned upgrade: drain one cluster, run on the other.
  m.rate("BothUp", "Upgrading", "La_upgrade");
  m.rate("Upgrading", "Switchover", "1/T_upgrade");
  m.rate("Upgrading", "AllDown", "Acc*La_cluster");
  // Cut traffic over to the upgraded cluster (conservatively counted
  // as an outage, like the paper's restore intervals).
  m.rate("Switchover", "BothUp", "1/T_switch");

  m.rate("AllDown", "BothUp", "1/T_restore");
  return m;
}

expr::ParameterSet upgrade_parameters_for(
    const expr::ParameterSet& jsas_params, std::size_t as_instances,
    std::size_t hadb_pairs, double upgrades_per_year, double t_upgrade_hours,
    double t_switch_hours) {
  const JsasResult cluster = solve_jsas(
      JsasConfig{as_instances, hadb_pairs, 2}, jsas_params);
  // Two-state equivalent of one whole cluster, from the system-level
  // metrics of the hierarchy.
  const double p_up = cluster.availability;
  const double freq = 1.0 / cluster.mtbf_hours;

  expr::ParameterSet out = jsas_params;
  out.set("La_cluster", freq / p_up);
  out.set("Mu_cluster", freq / (1.0 - p_up));
  out.set("La_upgrade", core::per_year(upgrades_per_year));
  out.set("T_upgrade", t_upgrade_hours);
  out.set("T_switch", t_switch_hours);
  out.set("T_restore", jsas_params.get("hadb_Trestore"));
  return out;
}

}  // namespace rascal::models

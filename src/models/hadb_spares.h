// Extension: HADB node pair with an explicit, finite spare pool.
//
// Figure 3 assumes a spare node is always on hand when a HW failure
// triggers the rebuild ("Repair") path; the paper's configurations
// actually provision 2 spares.  This model makes the pool explicit:
// a HW failure consumes a spare if one is available, otherwise the
// pair waits (degraded, accelerated second-failure risk) until a
// replacement node arrives; consumed spares are refurbished at a
// physical-replacement rate.  With a large pool or fast replenishment
// the model converges to Figure 3 (asserted in tests); bench_spares
// quantifies how many spares the five-9s target actually needs.
#pragma once

#include <cstddef>

#include "ctmc/ctmc.h"
#include "expr/parameter_set.h"

namespace rascal::models {

/// Extra parameter on top of params.h: hadb_Treplenish — mean time to
/// physically provision a replacement node (hours).
inline constexpr const char* kTreplenishParam = "hadb_Treplenish";

/// Builds the chain for a pool of `spares` (>= 1).  States are
/// condition names suffixed with the current pool level, e.g.
/// "Repair/s1", plus "WaitSpare/s0".  Throws std::invalid_argument
/// for spares == 0 (the Repair path would be unreachable) and when
/// hadb_Treplenish is missing or non-positive.
[[nodiscard]] ctmc::Ctmc hadb_pair_with_spares_model(
    std::size_t spares, const expr::ParameterSet& params);

}  // namespace rascal::models

// Stochastic-Petri-net formulations of the paper's submodels.
//
// These re-derive the Figure 3 / Figure 4 CTMCs from token-level GSPN
// descriptions (the SPNP/UltraSAN route the paper cites), giving an
// independent construction path: tests assert that the generated
// chains produce the same availability as the hand-built models in
// hadb_pair.h / app_server.h.
#pragma once

#include <cstddef>

#include "expr/parameter_set.h"
#include "spn/petri_net.h"
#include "spn/reachability.h"

namespace rascal::models {

/// HADB node pair as a GSPN.  Places: NodesOk (2 tokens),
/// NodeRestartShort, NodeRestartLong, NodeRepair, NodeMnt, PairDown.
/// The marking is tangible-only (no immediate transitions); the
/// reachability graph is exactly the 6-state Figure 3 chain.
[[nodiscard]] spn::PetriNet hadb_pair_spn(const expr::ParameterSet& params);

/// Reward function for hadb_pair_spn markings: up while PairDown is
/// empty.
[[nodiscard]] spn::RewardFunction hadb_pair_spn_reward();

/// N-instance Application Server cluster as a GSPN.  Uses immediate
/// transitions to flush in-flight recoveries when the last instance
/// dies (the whole cluster is then restarted manually), exercising
/// vanishing-marking elimination.
[[nodiscard]] spn::PetriNet app_server_spn(std::size_t instances,
                                           const expr::ParameterSet& params);

/// Reward for app_server_spn markings: up while ClusterDown is empty.
[[nodiscard]] spn::RewardFunction app_server_spn_reward();

}  // namespace rascal::models

#include "models/spn_variants.h"

#include <cmath>

namespace rascal::models {

namespace {

// Fixed place layout for the HADB pair net.
enum HadbPlace : std::size_t {
  kNodesOk = 0,
  kNodeRestartShort,
  kNodeRestartLong,
  kNodeRepair,
  kNodeMnt,
  kPairDown,
};

// Fixed place layout for the AS cluster net.
enum AsPlace : std::size_t {
  kInstUp = 0,
  kInstRecovering,
  kInstShort,
  kInstLong,
  kClusterDown,
};

}  // namespace

spn::PetriNet hadb_pair_spn(const expr::ParameterSet& params) {
  const double la_hadb = params.get("hadb_La_hadb");
  const double la_os = params.get("hadb_La_os");
  const double la_hw = params.get("hadb_La_hw");
  const double la = la_hadb + la_os + la_hw;
  const double la_mnt = params.get("hadb_La_mnt");
  const double fir = params.get("hadb_FIR");
  const double acc = params.get("Acc");

  spn::PetriNet net;
  const spn::PlaceId ok = net.add_place("NodesOk", 2);
  const spn::PlaceId rs = net.add_place("NodeRestartShort");
  const spn::PlaceId rl = net.add_place("NodeRestartLong");
  const spn::PlaceId rep = net.add_place("NodeRepair");
  const spn::PlaceId mnt = net.add_place("NodeMnt");
  const spn::PlaceId down = net.add_place("PairDown");

  const auto both_ok = [ok](const spn::Marking& m) { return m[ok] == 2; };

  // First failure of either node, branched by failure class; only
  // fires from the fully mirrored marking.
  struct FirstFailure {
    const char* name;
    double class_rate;
    spn::PlaceId recovery_place;
  };
  for (const FirstFailure& f :
       {FirstFailure{"fail_hadb", la_hadb, rs},
        FirstFailure{"fail_os", la_os, rl},
        FirstFailure{"fail_hw", la_hw, rep}}) {
    const spn::TransitionId t =
        net.add_timed_transition(f.name, 2.0 * f.class_rate * (1.0 - fir));
    net.input_arc(t, ok).output_arc(t, f.recovery_place).set_guard(t,
                                                                   both_ok);
  }

  // Imperfect recovery takes both nodes down at once.
  if (fir > 0.0) {
    const spn::TransitionId t =
        net.add_timed_transition("imperfect_recovery", 2.0 * la * fir);
    net.input_arc(t, ok, 2).output_arc(t, down);
  }

  // Scheduled maintenance switchover (pair-level).
  {
    const spn::TransitionId t =
        net.add_timed_transition("maintenance_start", la_mnt);
    net.input_arc(t, ok).output_arc(t, mnt).set_guard(t, both_ok);
  }

  // Second failure of the surviving (accelerated) node while the
  // companion is in any recovery state.
  for (const auto& [name, place] :
       {std::pair{"second_fail_rs", rs}, std::pair{"second_fail_rl", rl},
        std::pair{"second_fail_rep", rep},
        std::pair{"second_fail_mnt", mnt}}) {
    const spn::TransitionId t = net.add_timed_transition(name, acc * la);
    net.input_arc(t, ok).input_arc(t, place).output_arc(t, down);
  }

  // Recovery completions.
  const auto completion = [&](const char* name, spn::PlaceId place,
                              double mean_time) {
    const spn::TransitionId t =
        net.add_timed_transition(name, 1.0 / mean_time);
    net.input_arc(t, place).output_arc(t, ok);
  };
  completion("restart_short_done", rs, params.get("hadb_Tstart_short"));
  completion("restart_long_done", rl, params.get("hadb_Tstart_long"));
  completion("repair_done", rep, params.get("hadb_Trepair"));
  completion("maintenance_done", mnt, params.get("hadb_Tmnt"));

  // Manual restore rebuilds the whole pair.
  {
    const spn::TransitionId t = net.add_timed_transition(
        "restore", 1.0 / params.get("hadb_Trestore"));
    net.input_arc(t, down).output_arc(t, ok, 2);
  }
  return net;
}

spn::RewardFunction hadb_pair_spn_reward() {
  return [](const spn::Marking& m) {
    return m[kPairDown] == 0 ? 1.0 : 0.0;
  };
}

spn::PetriNet app_server_spn(std::size_t instances,
                             const expr::ParameterSet& params) {
  if (instances < 2) {
    throw std::invalid_argument("app_server_spn: requires >= 2 instances");
  }
  const double la = params.get("as_La_as") + params.get("as_La_os") +
                    params.get("as_La_hw");
  const double fss = params.get("as_La_as") / la;
  const double acc = params.get("Acc");
  const double trecovery = params.get("as_Trecovery");
  const auto n = static_cast<std::uint32_t>(instances);

  spn::PetriNet net;
  const spn::PlaceId up = net.add_place("InstUp", n);
  const spn::PlaceId rec = net.add_place("InstRecovering");
  const spn::PlaceId sht = net.add_place("InstShort");
  const spn::PlaceId lng = net.add_place("InstLong");
  const spn::PlaceId down = net.add_place("ClusterDown");

  const double dn = static_cast<double>(n);

  // Workload-accelerated failure of one of the up instances (at least
  // one other instance remains serving).
  {
    const spn::TransitionId t = net.add_timed_transition(
        "fail", [up, la, acc, dn](const spn::Marking& m) {
          const double up_count = m[up];
          if (up_count < 2.0) return 0.0;
          return up_count * la * std::pow(acc, dn - up_count);
        });
    net.input_arc(t, up).output_arc(t, rec);
  }
  // Failure of the last serving instance: the cluster is down; any
  // in-flight restarts are abandoned (flushed by the immediates).
  {
    const spn::TransitionId t = net.add_timed_transition(
        "last_fail", [up, la, acc, dn](const spn::Marking& m) {
          return m[up] == 1 ? la * std::pow(acc, dn - 1.0) : 0.0;
        });
    net.input_arc(t, up).output_arc(t, down);
  }
  // Vanishing flush of abandoned recoveries once the cluster is down.
  for (const auto& [name, place] :
       {std::pair{"drain_recovering", rec}, std::pair{"drain_short", sht},
        std::pair{"drain_long", lng}}) {
    const spn::TransitionId t = net.add_immediate_transition(name);
    net.input_arc(t, place);
    net.set_guard(t, [down](const spn::Marking& m) { return m[down] > 0; });
  }

  // Session recovery completes; the instance restarts short or long.
  {
    const spn::TransitionId t = net.add_timed_transition(
        "recovery_done_short", [rec, fss, trecovery](const spn::Marking& m) {
          return static_cast<double>(m[rec]) * fss / trecovery;
        });
    net.input_arc(t, rec).output_arc(t, sht);
  }
  {
    const spn::TransitionId t = net.add_timed_transition(
        "recovery_done_long", [rec, fss, trecovery](const spn::Marking& m) {
          return static_cast<double>(m[rec]) * (1.0 - fss) / trecovery;
        });
    net.input_arc(t, rec).output_arc(t, lng);
  }
  {
    const double tstart_short = params.get("as_Tstart_short");
    const spn::TransitionId t = net.add_timed_transition(
        "short_done", [sht, tstart_short](const spn::Marking& m) {
          return static_cast<double>(m[sht]) / tstart_short;
        });
    net.input_arc(t, sht).output_arc(t, up);
  }
  {
    const double tstart_long = params.get("as_Tstart_long");
    const spn::TransitionId t = net.add_timed_transition(
        "long_done", [lng, tstart_long](const spn::Marking& m) {
          return static_cast<double>(m[lng]) / tstart_long;
        });
    net.input_arc(t, lng).output_arc(t, up);
  }
  // Manual whole-cluster restart.
  {
    const spn::TransitionId t = net.add_timed_transition(
        "restore_all", 1.0 / params.get("as_Tstart_all"));
    net.input_arc(t, down).output_arc(t, up, n);
  }
  return net;
}

spn::RewardFunction app_server_spn_reward() {
  return [](const spn::Marking& m) {
    return m[kClusterDown] == 0 ? 1.0 : 0.0;
  };
}

}  // namespace rascal::models

// Extension: a k-of-n replicated application-server tier.
//
// The paper's AS cluster has two instances; cluster-scale deployments
// replicate the AS tier across n nodes and declare service up while
// at least k of them are serving (load-balancer quorum).  Each node
// cycles through three local states — Up, Restarting (the watchdog
// caught the failure; fast automatic restart) and Rebuilding (the
// failure escaped coverage; slow session-store resync) — and repairs
// draw from a shared pool of repair crews, which couples the nodes
// and breaks any product form.  The full chain has 3^n states: n = 11
// already gives 177,147 states and n = 13 gives 1.6 million, exactly
// the regime the sparse Krylov engine (linalg/krylov.h) exists for.
#pragma once

#include <cstddef>

#include "ctmc/ctmc.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace rascal::models {

struct KofnAsConfig {
  std::size_t nodes = 6;         // n replicated AS instances (3^n states)
  std::size_t quorum = 4;        // service up while >= quorum nodes are Up
  std::size_t repair_crews = 2;  // shared repair pool (head-of-line service)
  double failure_rate = 0.02;    // per-node failure rate while Up
  double restart_coverage = 0.9;  // failure caught by the watchdog
  double restart_rate = 12.0;     // Restarting -> Up (fast)
  double rebuild_rate = 0.5;      // Rebuilding -> Up (slow resync)
};

/// 3^nodes — the chain size a config implies, so callers can budget
/// before generating anything.
[[nodiscard]] std::size_t kofn_as_state_count(const KofnAsConfig& config);

/// Full named Ctmc for moderate n (state names encode the per-node
/// digits, e.g. "as:001020").  Throws std::invalid_argument on an
/// ill-formed config (quorum/crews out of range, non-positive rates,
/// coverage outside [0, 1]).
[[nodiscard]] ctmc::Ctmc kofn_as_model(const KofnAsConfig& config);

struct KofnAsSparseModel {
  linalg::CsrMatrix generator;  // Q in CSR form, diagonal included
  linalg::Vector rewards;       // 1.0 iff >= quorum nodes Up
};

/// CSR-direct generator for the large-n path: states are enumerated
/// in encoding order so the triplets are emitted row-sorted, and no
/// Ctmc, state-name strings, or dense Matrix are ever built.  Same
/// validation as kofn_as_model.
[[nodiscard]] KofnAsSparseModel kofn_as_sparse_model(
    const KofnAsConfig& config);

}  // namespace rascal::models

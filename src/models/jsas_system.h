// Top-level JSAS system model — Figure 2 of the paper — and named
// configurations.
//
// The system model is a 3-state chain: Ok(1), AS_Fail(0),
// HADB_Fail(0).  Its rates are the two-state equivalents exported by
// the Application Server and HADB node-pair submodels; the HADB entry
// rate is multiplied by the number of node pairs, since losing any
// pair loses a fragment of every session table.
#pragma once

#include <cstddef>
#include <string>

#include "core/hierarchy.h"
#include "ctmc/solve_cache.h"
#include "expr/parameter_set.h"

namespace rascal::models {

struct JsasConfig {
  std::size_t as_instances = 2;
  std::size_t hadb_pairs = 2;
  std::size_t hadb_spares = 2;  // informational; Figure 3 assumes a
                                // spare is available for Repair

  /// Config 1 of the paper: 2 AS instances, 2 HADB pairs, 2 spares.
  [[nodiscard]] static JsasConfig config1() { return {2, 2, 2}; }
  /// Config 2 of the paper: 4 AS instances, 4 HADB pairs, 2 spares.
  [[nodiscard]] static JsasConfig config2() { return {4, 4, 2}; }
  /// Table 3 sweep entry: n instances with n HADB pairs.
  [[nodiscard]] static JsasConfig symmetric(std::size_t n) {
    return {n, n, 2};
  }

  [[nodiscard]] std::string name() const;
};

/// Builds the full hierarchy for a configuration: the AS submodel
/// (Figure 4 for 2 instances, generalized otherwise), the HADB pair
/// submodel (Figure 3), and the Figure-2 root.  Requires
/// as_instances >= 2 and hadb_pairs >= 1.
[[nodiscard]] core::HierarchicalModel jsas_model(const JsasConfig& config);

/// Result of solving a configuration, in the units the paper reports.
struct JsasResult {
  double availability = 1.0;
  double downtime_minutes_per_year = 0.0;
  double downtime_as_minutes = 0.0;    // YD attributed to the AS submodel
  double downtime_hadb_minutes = 0.0;  // YD attributed to HADB pairs
  double mtbf_hours = 0.0;
  core::HierarchicalResult detail;
};

/// Solves a configuration with the given parameters (typically
/// default_parameters() plus overrides).  N_pair is bound internally
/// from the configuration.  The single-instance configuration
/// (as_instances == 1) is handled via single_instance_model() with no
/// HADB tier, matching Table 3 row 1.
[[nodiscard]] JsasResult solve_jsas(const JsasConfig& config,
                                    const expr::ParameterSet& params);

/// Batch-friendly overload: solves through a caller-owned per-worker
/// SolveCache (reusable factorisation scratch + generator memoization)
/// and a process-wide cache of the symbolic model structure, so the
/// expression re-parsing and solver allocations drop out of per-sample
/// cost.  Bit-identical to the plain overload (oracle-gated).
[[nodiscard]] JsasResult solve_jsas(const JsasConfig& config,
                                    const expr::ParameterSet& params,
                                    ctmc::SolveCache& cache);

}  // namespace rascal::models

// Application Server cluster availability models — Figure 4 of the
// paper (2 instances) and its generalization to N instances.
//
// After any instance failure the cluster spends Trecovery re-homing
// the failed instance's sessions onto survivors (HTTP session
// failover via HADB), then the instance restarts: quickly (AS process
// failure, probability FSS = La_as/La) or slowly (HW/OS failure).
// Surviving instances absorb the failed instance's load, so their
// failure rate accelerates by Acc per failed peer (La_i = La_0*Acc^i).
// The system is down only when every instance is down, after which a
// human restarts the whole cluster in Tstart_all.
#pragma once

#include <cstddef>

#include "ctmc/builder.h"

namespace rascal::models {

/// The literal Figure-4 model: states All_Work(1), Recovery(1),
/// 1DownShort(1), 1DownLong(1), 2_Down(0).  Parameters: as_La_as,
/// as_La_os, as_La_hw, as_Trecovery, as_Tstart_short, as_Tstart_long,
/// as_Tstart_all, Acc.
[[nodiscard]] ctmc::SymbolicCtmc app_server_two_instance_model();

/// Generalized N-instance model (the paper's "more complex" Config 2
/// model).  States are counted occupancy vectors (r, s, l) = number of
/// instances in session-recovery / short-restart / long-restart, with
/// at least one instance up, plus an All_Down state.  For n == 2 this
/// reduces exactly to the Figure-4 chain (with 1DownShort/1DownLong
/// named d0r0s1l0 / d0r0s0l1).
///
/// `recovery_reward` sets the reward of states with at least one
/// instance in session recovery (1.0 for pure availability, < 1 for
/// performability analysis of degraded service).
///
/// Throws std::invalid_argument for n < 2.
[[nodiscard]] ctmc::SymbolicCtmc app_server_n_instance_model(
    std::size_t n, double recovery_reward = 1.0);

/// Number of states of app_server_n_instance_model(n):
/// C(n+2, 3) + 1 (occupancy vectors with r+s+l <= n-1, plus All_Down).
[[nodiscard]] std::size_t app_server_n_instance_state_count(
    std::size_t n) noexcept;

/// Capacity-reward variant for performability analysis: the reward of
/// an occupancy state is the fraction of instances serving
/// (n_up / n), so the expected reward rate is the cluster's expected
/// serving capacity — the paper notes Recovery "could be a degraded
/// state in performability modeling"; this extends that idea to every
/// degraded level.  Same state space as app_server_n_instance_model.
[[nodiscard]] ctmc::SymbolicCtmc app_server_capacity_model(std::size_t n);

}  // namespace rascal::models

#include "models/jsas_system.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/units.h"
#include "ctmc/steady_state.h"
#include "models/app_server.h"
#include "models/hadb_pair.h"
#include "models/single_instance.h"

namespace rascal::models {

std::string JsasConfig::name() const {
  return std::to_string(as_instances) + " AS / " +
         std::to_string(hadb_pairs) + " HADB pairs / " +
         std::to_string(hadb_spares) + " spares";
}

namespace {

ctmc::SymbolicCtmc jsas_root_model() {
  ctmc::SymbolicCtmc root;
  root.state("Ok", 1.0);
  root.state("AS_Fail", 0.0);
  root.state("HADB_Fail", 0.0);
  root.rate("Ok", "AS_Fail", "La_appl");
  root.rate("AS_Fail", "Ok", "Mu_appl");
  // Any of the N_pair pairs going down loses a fragment of the
  // session table, so pair failures aggregate linearly.
  root.rate("Ok", "HADB_Fail", "N_pair*La_hadb_pair");
  root.rate("HADB_Fail", "Ok", "Mu_hadb_pair");
  return root;
}

// Building a symbolic model re-parses every rate expression, which
// dominates per-sample cost in batch drivers (the structure depends
// only on the configuration, not the parameter values).  These caches
// hand out shared immutable structures instead; SymbolicCtmc::bind and
// HierarchicalModel::solve are const and safe to run concurrently.
const ctmc::SymbolicCtmc& cached_jsas_root() {
  static const ctmc::SymbolicCtmc root = jsas_root_model();
  return root;
}

const core::HierarchicalModel& cached_jsas_model(const JsasConfig& config) {
  static std::mutex mutex;
  // hadb_spares is informational and does not change the structure.
  static std::map<std::pair<std::size_t, std::size_t>,
                  core::HierarchicalModel>
      cache;
  const std::scoped_lock lock(mutex);
  const auto key = std::make_pair(config.as_instances, config.hadb_pairs);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, jsas_model(config)).first;
  }
  return it->second;
}

const ctmc::SymbolicCtmc& cached_single_instance_model() {
  static const ctmc::SymbolicCtmc model = single_instance_model();
  return model;
}

}  // namespace

core::HierarchicalModel jsas_model(const JsasConfig& config) {
  if (config.as_instances < 2) {
    throw std::invalid_argument(
        "jsas_model: requires at least 2 AS instances (the single "
        "instance case has no failover hierarchy; see solve_jsas)");
  }
  if (config.hadb_pairs < 1) {
    throw std::invalid_argument("jsas_model: requires at least 1 HADB pair");
  }

  core::HierarchicalModel model;
  model.add_submodel(
      {"Appl Server",
       config.as_instances == 2
           ? app_server_two_instance_model()
           : app_server_n_instance_model(config.as_instances),
       {{"La_appl", core::ExportKind::kLambdaEq},
        {"Mu_appl", core::ExportKind::kMuEq}},
       core::kDefaultUpThreshold});
  model.add_submodel({"HADB Node Pair",
                      hadb_pair_model(),
                      {{"La_hadb_pair", core::ExportKind::kLambdaEq},
                       {"Mu_hadb_pair", core::ExportKind::kMuEq}},
                      core::kDefaultUpThreshold});
  model.set_root(jsas_root_model());
  return model;
}

JsasResult solve_jsas(const JsasConfig& config,
                      const expr::ParameterSet& params) {
  ctmc::SolveCache cache;
  return solve_jsas(config, params, cache);
}

JsasResult solve_jsas(const JsasConfig& config,
                      const expr::ParameterSet& params,
                      ctmc::SolveCache& cache) {
  JsasResult result;

  if (config.as_instances == 1) {
    // Table 3 row 1: one instance, no failover, no HADB tier modeled.
    const ctmc::Ctmc chain = cached_single_instance_model().bind(params);
    const ctmc::SteadyState& steady = cache.steady_state(chain);
    const core::AvailabilityMetrics m =
        core::availability_metrics(chain, steady);
    result.availability = m.availability;
    result.downtime_minutes_per_year = m.downtime_minutes_per_year;
    result.downtime_as_minutes = m.downtime_minutes_per_year;
    result.downtime_hadb_minutes = 0.0;
    result.mtbf_hours = m.mtbf_hours;
    return result;
  }

  const core::HierarchicalModel& model = cached_jsas_model(config);
  expr::ParameterSet bound = params;
  bound.set("N_pair", static_cast<double>(config.hadb_pairs));
  core::HierarchicalResult hr = model.solve(
      bound, ctmc::SteadyStateMethod::kGth, &cache);

  result.availability = hr.system.availability;
  result.downtime_minutes_per_year = hr.system.downtime_minutes_per_year;
  result.mtbf_hours = hr.system.mtbf_hours;

  // Attribute downtime to the submodel whose failure state the root
  // chain is occupying.
  const ctmc::Ctmc root = cached_jsas_root().bind(hr.effective_params);
  result.downtime_as_minutes = core::downtime_minutes_per_year(
      hr.root_steady.probability(root.state("AS_Fail")));
  result.downtime_hadb_minutes = core::downtime_minutes_per_year(
      hr.root_steady.probability(root.state("HADB_Fail")));

  result.detail = std::move(hr);
  return result;
}

}  // namespace rascal::models

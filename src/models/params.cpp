#include "models/params.h"

#include "core/units.h"

namespace rascal::models {

expr::ParameterSet default_parameters() {
  using core::hours;
  using core::minutes;
  using core::per_year;
  using core::seconds;

  expr::ParameterSet p;
  // Application Server instance parameters (Section 5).
  p.set("as_La_as", per_year(50.0))
      .set("as_La_os", per_year(1.0))
      .set("as_La_hw", per_year(1.0))
      .set("as_Trecovery", seconds(5.0))
      .set("as_Tstart_short", seconds(90.0))
      .set("as_Tstart_long", hours(1.0))
      .set("as_Tstart_all", minutes(30.0));

  // HADB node parameters (Section 5).
  p.set("hadb_La_hadb", per_year(2.0))
      .set("hadb_La_os", per_year(1.0))
      .set("hadb_La_hw", per_year(1.0))
      .set("hadb_La_mnt", per_year(4.0))
      .set("hadb_Tstart_short", minutes(1.0))
      .set("hadb_Tstart_long", minutes(15.0))
      .set("hadb_Trepair", minutes(30.0))
      .set("hadb_Tmnt", minutes(1.0))
      .set("hadb_Trestore", hours(1.0))
      .set("hadb_FIR", 0.001);

  // Workload acceleration: the failure rate on surviving replicas
  // doubles per failed peer (La_i = La_0 * 2^i).
  p.set("Acc", 2.0);
  return p;
}

}  // namespace rascal::models

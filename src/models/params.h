// Canonical parameter names and the paper's Section 5 defaults.
//
// Parameters are namespaced by subsystem because the two submodels
// reuse symbol names with different values (e.g. Tstart_short is 90 s
// for an AS instance but 1 min for an HADB node):
//
//   paper symbol          here                 default
//   -------------------   ------------------   ---------------------
//   AS   La_as            as_La_as             50/year
//   AS   La_os            as_La_os             1/year
//   AS   La_hw            as_La_hw             1/year
//   AS   Trecovery        as_Trecovery         5 s
//   AS   Tstart_short     as_Tstart_short      90 s
//   AS   Tstart_long      as_Tstart_long       1 h
//   AS   Tstart_all       as_Tstart_all        30 min
//   HADB La_hadb          hadb_La_hadb         2/year
//   HADB La_os            hadb_La_os           1/year
//   HADB La_hw            hadb_La_hw           1/year
//   HADB La_mnt           hadb_La_mnt          4/year
//   HADB Tstart_short     hadb_Tstart_short    1 min
//   HADB Tstart_long      hadb_Tstart_long     15 min
//   HADB Trepair          hadb_Trepair         30 min
//   HADB Tmnt             hadb_Tmnt            1 min
//   HADB Trestore         hadb_Trestore        1 h
//   HADB FIR              hadb_FIR             0.1%
//        Acc              Acc                  2
//        N_pair           N_pair               per configuration
//
// All rates are per hour and all times are hours (see core/units.h).
#pragma once

#include "expr/parameter_set.h"

namespace rascal::models {

/// The conservative defaults of Section 5.  N_pair is NOT included;
/// it is set by the configuration (see jsas_system.h).
[[nodiscard]] expr::ParameterSet default_parameters();

}  // namespace rascal::models

// HADB node-pair availability model — Figure 3 of the paper.
//
// A pair of mirrored HADB nodes.  Either node may suffer a
// restartable HADB failure, an OS failure (reboot), or a permanent HW
// failure (spare rebuild); scheduled maintenance switches one node to
// a standby.  During any single-node outage the surviving node runs
// with doubled (Acc) failure rate and a second failure loses the
// session fragments held by the pair (state 2_Down, reward 0).  With
// probability FIR the automatic recovery itself fails, taking the
// pair straight down.
//
// States (reward): Ok(1), RestartShort(1), RestartLong(1), Repair(1),
// Maintenance(1), 2_Down(0).
#pragma once

#include "ctmc/builder.h"

namespace rascal::models {

/// Returns the symbolic Figure-3 model.  Parameters (see params.h):
/// hadb_La_hadb, hadb_La_os, hadb_La_hw, hadb_La_mnt,
/// hadb_Tstart_short, hadb_Tstart_long, hadb_Trepair, hadb_Tmnt,
/// hadb_Trestore, hadb_FIR, Acc.
[[nodiscard]] ctmc::SymbolicCtmc hadb_pair_model();

}  // namespace rascal::models

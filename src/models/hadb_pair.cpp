#include "models/hadb_pair.h"

namespace rascal::models {

ctmc::SymbolicCtmc hadb_pair_model() {
  ctmc::SymbolicCtmc m;
  m.state("Ok", 1.0);
  m.state("RestartShort", 1.0);
  m.state("RestartLong", 1.0);
  m.state("Repair", 1.0);
  m.state("Maintenance", 1.0);
  m.state("2_Down", 0.0);

  // Total failure rate of one node, all causes (La in Figure 3).
  const std::string la = "(hadb_La_hadb+hadb_La_os+hadb_La_hw)";

  // First failure on either of the two nodes, recovered automatically
  // with probability 1-FIR, branching on failure type.
  m.rate("Ok", "RestartShort", "2*hadb_La_hadb*(1-hadb_FIR)");
  m.rate("Ok", "RestartLong", "2*hadb_La_os*(1-hadb_FIR)");
  m.rate("Ok", "Repair", "2*hadb_La_hw*(1-hadb_FIR)");
  // Imperfect recovery: the companion node fails during recovery and
  // the pair's data is lost ("2*La*FIR" in Figure 3).
  m.rate("Ok", "2_Down", "2*" + la + "*hadb_FIR");
  // Scheduled maintenance switchover (4/year per pair).
  m.rate("Ok", "Maintenance", "hadb_La_mnt");

  // Recovery completions return the pair to mirrored operation.
  m.rate("RestartShort", "Ok", "1/hadb_Tstart_short");
  m.rate("RestartLong", "Ok", "1/hadb_Tstart_long");
  m.rate("Repair", "Ok", "1/hadb_Trepair");
  m.rate("Maintenance", "Ok", "1/hadb_Tmnt");

  // Second failure on the surviving node while degraded; its failure
  // rate is accelerated by Acc due to the doubled workload.
  m.rate("RestartShort", "2_Down", "Acc*" + la);
  m.rate("RestartLong", "2_Down", "Acc*" + la);
  m.rate("Repair", "2_Down", "Acc*" + la);
  m.rate("Maintenance", "2_Down", "Acc*" + la);

  // Human intervention recreates the pair (Trestore = 1 h for 7x24
  // on-site maintenance).
  m.rate("2_Down", "Ok", "1/hadb_Trestore");
  return m;
}

}  // namespace rascal::models

#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace rascal::stats {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::standard_error() const noexcept {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) {
    throw std::invalid_argument("percentile: empty sample");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("percentile: p outside [0, 1]");
  }
  std::sort(sample.begin(), sample.end());
  const double h = p * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

Interval sample_interval(const std::vector<double>& sample, double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("sample_interval: level outside (0, 1)");
  }
  const double tail = 0.5 * (1.0 - level);
  return {percentile(sample, tail), percentile(sample, 1.0 - tail)};
}

Interval mean_confidence_interval(const Summary& summary, double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument(
        "mean_confidence_interval: level outside (0, 1)");
  }
  const double z = standard_normal_quantile(0.5 + level / 2.0);
  const double half_width = z * summary.standard_error();
  return {summary.mean() - half_width, summary.mean() + half_width};
}

double fraction_below(const std::vector<double>& sample, double threshold) {
  if (sample.empty()) {
    throw std::invalid_argument("fraction_below: empty sample");
  }
  const auto below = std::count_if(sample.begin(), sample.end(),
                                   [&](double x) { return x < threshold; });
  return static_cast<double>(below) / static_cast<double>(sample.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: requires lo < hi and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lower");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + static_cast<double>(bin) * width;
}

double Histogram::bin_upper(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_upper");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + static_cast<double>(bin + 1) * width;
}

}  // namespace rascal::stats

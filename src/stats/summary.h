// Descriptive statistics: streaming summary accumulator, percentiles,
// confidence intervals for a mean, and fixed-width histograms.  Used
// to post-process uncertainty-analysis and simulation outputs
// (Figures 7 and 8 of the paper).
#pragma once

#include <cstddef>
#include <vector>

namespace rascal::stats {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation between order statistics
/// (type-7, the numpy/R default).  `p` in [0, 1].  Throws
/// std::invalid_argument on an empty sample or p outside [0, 1].
/// The input is copied and sorted.
[[nodiscard]] double percentile(std::vector<double> sample, double p);

/// Symmetric sample interval: returns {percentile((1-level)/2),
/// percentile(1-(1-level)/2)} — e.g. level = 0.8 gives the (10%, 90%)
/// interval used for the paper's "80% confidence interval".
struct Interval {
  double lower = 0.0;
  double upper = 0.0;
};
[[nodiscard]] Interval sample_interval(const std::vector<double>& sample,
                                       double level);

/// Normal-approximation confidence interval for the mean.
[[nodiscard]] Interval mean_confidence_interval(const Summary& summary,
                                                double level);

/// Fraction of observations strictly below the threshold.
[[nodiscard]] double fraction_below(const std::vector<double>& sample,
                                    double threshold);

/// Fixed-width histogram over [lo, hi); samples outside the range are
/// counted in underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rascal::stats

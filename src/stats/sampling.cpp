#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rascal::stats {

namespace {

void validate(const std::vector<ParameterRange>& ranges) {
  for (const ParameterRange& r : ranges) {
    if (!std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      throw std::invalid_argument(
          "sampling: range '" + r.name +
          "' has a non-finite bound (NaN or infinity); every bound must "
          "be a finite number");
    }
    if (r.lo > r.hi) {
      throw std::invalid_argument(
          "sampling: range '" + r.name + "' is inverted (lo " +
          std::to_string(r.lo) + " > hi " + std::to_string(r.hi) + ")");
    }
  }
}

}  // namespace

std::vector<Sample> monte_carlo_samples(
    const std::vector<ParameterRange>& ranges, std::size_t count,
    RandomEngine& rng) {
  validate(ranges);
  std::vector<Sample> samples(count, Sample(ranges.size()));
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      samples[i][d] = rng.uniform(ranges[d].lo, ranges[d].hi);
    }
  }
  return samples;
}

std::vector<Sample> latin_hypercube_samples(
    const std::vector<ParameterRange>& ranges, std::size_t count,
    RandomEngine& rng) {
  validate(ranges);
  std::vector<Sample> samples(count, Sample(ranges.size()));
  if (count == 0) return samples;
  std::vector<std::size_t> cells(count);
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    std::iota(cells.begin(), cells.end(), std::size_t{0});
    std::shuffle(cells.begin(), cells.end(), rng.raw());
    const double width =
        (ranges[d].hi - ranges[d].lo) / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double offset = rng.uniform01();
      samples[i][d] = ranges[d].lo +
                      (static_cast<double>(cells[i]) + offset) * width;
    }
  }
  return samples;
}

}  // namespace rascal::stats

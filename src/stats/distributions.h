// Probability distributions with density, CDF, quantile, moments, and
// sampling.  The availability estimators (estimators.h) use ChiSquare
// and FisherF quantiles exactly as the paper's equations (1) and (2);
// the simulators use Exponential / LogNormal / Weibull / Deterministic
// event times.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "stats/rng.h"

namespace rascal::stats {

/// Common interface for continuous distributions.
class Distribution {
 public:
  virtual ~Distribution() = default;

  [[nodiscard]] virtual double pdf(double x) const = 0;
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Inverse CDF for p in (0, 1); endpoints may be +-infinity where
  /// the support allows.  Throws std::domain_error outside (0, 1).
  [[nodiscard]] virtual double quantile(double p) const = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] virtual double sample(RandomEngine& rng) const;
  [[nodiscard]] virtual std::string name() const = 0;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] double sample(RandomEngine& rng) const override;
  [[nodiscard]] std::string name() const override { return "Exponential"; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override {
    return (hi_ - lo_) * (hi_ - lo_) / 12.0;
  }
  [[nodiscard]] std::string name() const override { return "Uniform"; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
};

class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] double variance() const override { return sigma_ * sigma_; }
  [[nodiscard]] std::string name() const override { return "Normal"; }

 private:
  double mu_;
  double sigma_;
};

class LogNormal final : public Distribution {
 public:
  /// mu/sigma are the parameters of the underlying normal.
  LogNormal(double mu, double sigma);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override { return "LogNormal"; }

 private:
  double mu_;
  double sigma_;
};

class Gamma final : public Distribution {
 public:
  /// Shape/rate parameterization.
  Gamma(double shape, double rate);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return shape_ / rate_; }
  [[nodiscard]] double variance() const override {
    return shape_ / (rate_ * rate_);
  }
  [[nodiscard]] double sample(RandomEngine& rng) const override;
  [[nodiscard]] std::string name() const override { return "Gamma"; }

 private:
  double shape_;
  double rate_;
};

class ChiSquare final : public Distribution {
 public:
  explicit ChiSquare(double degrees_of_freedom);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return dof_; }
  [[nodiscard]] double variance() const override { return 2.0 * dof_; }
  [[nodiscard]] std::string name() const override { return "ChiSquare"; }

 private:
  double dof_;
};

class FisherF final : public Distribution {
 public:
  FisherF(double d1, double d2);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override { return "FisherF"; }

 private:
  double d1_;
  double d2_;
};

class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override { return "Weibull"; }

 private:
  double shape_;
  double scale_;
};

/// Point mass at `value` — used for deterministic recovery times in
/// the discrete-event simulator.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] double sample(RandomEngine& rng) const override;
  [[nodiscard]] std::string name() const override { return "Deterministic"; }

 private:
  double value_;
};

/// Binomial(n, p) distribution over counts 0..n (discrete; kept
/// outside the continuous hierarchy).
class Binomial {
 public:
  Binomial(std::uint64_t n, double p);
  [[nodiscard]] double pmf(std::uint64_t k) const;
  [[nodiscard]] double cdf(std::uint64_t k) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] std::uint64_t sample(RandomEngine& rng) const;

 private:
  std::uint64_t n_;
  double p_;
};

}  // namespace rascal::stats

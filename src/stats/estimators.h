// Parameter estimators used in Section 5 of the paper:
//
//  * Equation (1): lower confidence bound on a coverage probability
//    C = 1 - FIR from s successes in n fault-injection trials, via the
//    F-distribution form of the Clopper-Pearson bound.
//  * Equation (2): upper confidence bound on a failure rate from n
//    failures observed in total exposure time T, via the chi-square
//    distribution.
//
// Both handle the zero-failure case that dominated the paper's
// measurements (3,287 successful injections; 24 days without failure).
#pragma once

#include <cstdint>
#include <vector>

namespace rascal::stats {

/// Equation (1).  Lower bound on the success (coverage) probability at
/// the given confidence level:
///
///   C_low = s / (s + (n - s + 1) * F_{1-alpha}(2(n-s)+2, 2s))
///
/// `trials` = n, `successes` = s, confidence = 1 - alpha.  s == 0
/// yields the degenerate-but-correct bound 0 (and the companion FIR
/// upper bound 1), matching the Clopper-Pearson convention.  Throws
/// std::invalid_argument for s > n or confidence outside (0, 1).
[[nodiscard]] double coverage_lower_bound(std::uint64_t trials,
                                          std::uint64_t successes,
                                          double confidence);

/// Convenience: upper bound on FIR = 1 - C at the given confidence.
[[nodiscard]] double imperfect_recovery_upper_bound(std::uint64_t trials,
                                                    std::uint64_t successes,
                                                    double confidence);

/// Exact Clopper-Pearson interval for a binomial proportion (both
/// endpoints), using the beta-quantile form.  Returned as
/// {lower, upper}; degenerate cases (s=0, s=n) handled per convention.
struct ProportionInterval {
  double lower = 0.0;
  double upper = 1.0;
};
[[nodiscard]] ProportionInterval clopper_pearson(std::uint64_t trials,
                                                 std::uint64_t successes,
                                                 double confidence);

/// Equation (2).  Upper bound on an exponential failure rate given n
/// observed failures over total (time-on-test) exposure T:
///
///   lambda_max = chi2_{1-alpha}(2n + 2) / (2 T)
///
/// Units of T determine units of the returned rate.  Throws
/// std::invalid_argument for T <= 0 or confidence outside (0, 1).
[[nodiscard]] double failure_rate_upper_bound(double total_exposure,
                                              std::uint64_t failures,
                                              double confidence);

/// Two-sided chi-square confidence interval for a failure rate
/// (time-censored test): [chi2_{a/2}(2n)/2T, chi2_{1-a/2}(2n+2)/2T].
struct RateInterval {
  double lower = 0.0;
  double upper = 0.0;
};
[[nodiscard]] RateInterval failure_rate_interval(double total_exposure,
                                                 std::uint64_t failures,
                                                 double confidence);

/// Maximum-likelihood rate estimate n / T with the convention 0 for
/// n == 0.
[[nodiscard]] double failure_rate_mle(double total_exposure,
                                      std::uint64_t failures);

}  // namespace rascal::stats

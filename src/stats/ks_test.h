// One-sample Kolmogorov-Smirnov goodness-of-fit test.
//
// Used by the test suite to verify that simulator outputs follow the
// distributions they claim (exponential holding times, lognormal
// recovery times) — the same check one would run on real lab
// measurements before fitting model parameters.
#pragma once

#include <functional>
#include <vector>

namespace rascal::stats {

class Distribution;

struct KsResult {
  double statistic = 0.0;  // sup |F_n(x) - F(x)|
  double p_value = 1.0;    // asymptotic (Kolmogorov distribution)
  std::size_t sample_size = 0;

  /// True when the hypothesis "sample ~ F" survives at significance
  /// alpha (i.e. p_value >= alpha).
  [[nodiscard]] bool accepts(double alpha = 0.05) const noexcept {
    return p_value >= alpha;
  }
};

/// KS test of `sample` against the CDF `cdf`.  Throws
/// std::invalid_argument on an empty sample.
[[nodiscard]] KsResult ks_test(std::vector<double> sample,
                               const std::function<double(double)>& cdf);

/// Convenience overload against a Distribution.
[[nodiscard]] KsResult ks_test(std::vector<double> sample,
                               const Distribution& distribution);

/// Asymptotic Kolmogorov distribution survival function:
/// P(sqrt(n) D_n > x) for large n.
[[nodiscard]] double kolmogorov_survival(double x);

}  // namespace rascal::stats

#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace rascal::stats {

double kolmogorov_survival(double x) {
  if (x <= 0.0) return 1.0;
  // Q(x) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); converges fast.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::vector<double> sample,
                 const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    throw std::invalid_argument("ks_test: empty sample");
  }
  if (!cdf) {
    throw std::invalid_argument("ks_test: null cdf");
  }
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double below = static_cast<double>(i) / n;
    const double above = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - below), std::abs(above - f)});
  }
  KsResult result;
  result.statistic = d;
  result.sample_size = sample.size();
  // Asymptotic p-value with the standard small-sample correction
  // sqrt(n) -> sqrt(n) + 0.12 + 0.11/sqrt(n).
  const double sqrt_n = std::sqrt(n);
  result.p_value =
      kolmogorov_survival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

KsResult ks_test(std::vector<double> sample,
                 const Distribution& distribution) {
  return ks_test(std::move(sample),
                 [&distribution](double x) { return distribution.cdf(x); });
}

}  // namespace rascal::stats

#include "stats/special_functions.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rascal::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Series expansion of P(a, x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for Q(a, x) (Lentz), effective for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for the incomplete beta (Lentz / NR betacf).
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("log_gamma: requires x > 0");
  }
  return std::lgamma(x);
}

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("regularized_gamma_p: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("regularized_gamma_q: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double inverse_regularized_gamma_p(double a, double p) {
  if (!(a > 0.0) || p < 0.0 || p >= 1.0) {
    throw std::domain_error(
        "inverse_regularized_gamma_p: requires a > 0, p in [0, 1)");
  }
  if (p == 0.0) return 0.0;

  // Bracket the root, then bisect with Newton acceleration.
  double lo = 0.0;
  double hi = std::max(a, 1.0);
  while (regularized_gamma_p(a, hi) < p) {
    hi *= 2.0;
    if (hi > 1e308) {
      throw std::runtime_error("inverse_regularized_gamma_p: no bracket");
    }
  }
  double x = 0.5 * (lo + hi);
  for (int i = 0; i < 200; ++i) {
    const double fx = regularized_gamma_p(a, x) - p;
    if (fx > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the gamma pdf as the derivative.
    const double log_pdf = (a - 1.0) * std::log(x) - x - log_gamma(a);
    const double pdf = std::exp(log_pdf);
    double next = x;
    if (pdf > 0.0 && std::isfinite(pdf)) next = x - fx / pdf;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) < 1e-14 * std::max(1.0, x)) return next;
    x = next;
  }
  return x;
}

double regularized_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0) || x < 0.0 || x > 1.0) {
    throw std::domain_error(
        "regularized_beta: requires a, b > 0 and x in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inverse_regularized_beta(double a, double b, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("inverse_regularized_beta: p outside [0, 1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  double x = 0.5;
  for (int i = 0; i < 300; ++i) {
    const double fx = regularized_beta(a, b, x) - p;
    if (fx > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double next = 0.5 * (lo + hi);
    if (std::abs(next - x) < 1e-15) return next;
    x = next;
  }
  return x;
}

double standard_normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double standard_normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::domain_error("standard_normal_quantile: p outside (0, 1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement for ~1e-15 accuracy.
  const double e = standard_normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace rascal::stats

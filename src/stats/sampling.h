// Design-of-experiments sampling over parameter hyper-rectangles, as
// used by the paper's uncertainty analysis (Section 7): each of N
// virtual "customer systems" draws every uncertain parameter uniformly
// from its stated range.  Latin hypercube sampling is provided as a
// variance-reduction alternative (ablated in bench_sampling).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace rascal::stats {

/// A uniformly distributed uncertain parameter.
struct ParameterRange {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
};

/// One draw: values aligned with the ranges passed to the sampler.
using Sample = std::vector<double>;

/// Independent uniform sampling: `count` draws over the ranges.
/// Throws std::invalid_argument when a range has lo > hi or a
/// non-finite (NaN/infinite) bound.
[[nodiscard]] std::vector<Sample> monte_carlo_samples(
    const std::vector<ParameterRange>& ranges, std::size_t count,
    RandomEngine& rng);

/// Latin hypercube sampling: each dimension is stratified into `count`
/// equiprobable cells, one draw per cell, with cell order shuffled per
/// dimension.  Marginals cover each range far more evenly than plain
/// Monte Carlo at the same sample count.
[[nodiscard]] std::vector<Sample> latin_hypercube_samples(
    const std::vector<ParameterRange>& ranges, std::size_t count,
    RandomEngine& rng);

}  // namespace rascal::stats

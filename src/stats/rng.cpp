#include "stats/rng.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace rascal::stats {

namespace {

// SplitMix64 finalizer; good avalanche for deriving substream seeds.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Tallies primitive variate draws (one per public sampling call, not
// per underlying engine step).  The counter reference is resolved
// once; with collection disabled the cost is a single relaxed load.
void count_draw() {
  if (obs::enabled()) {
    static obs::Counter& draws = obs::counter("stats.rng.draws");
    draws.add(1);
  }
}

}  // namespace

RandomEngine RandomEngine::split(std::uint64_t stream_id) const {
  return RandomEngine(substream_seed(stream_id));
}

std::uint64_t RandomEngine::substream_seed(std::uint64_t stream_id) const {
  return splitmix64(seed_ ^ splitmix64(stream_id));
}

double RandomEngine::uniform01() {
  count_draw();
  // 53-bit mantissa resolution in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RandomEngine::uniform(double lo, double hi) {
  if (lo > hi) {
    throw std::invalid_argument("RandomEngine::uniform: lo > hi");
  }
  return lo + (hi - lo) * uniform01();
}

double RandomEngine::exponential(double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("RandomEngine::exponential: rate <= 0");
  }
  // -log(1 - U) avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double RandomEngine::normal01() {
  count_draw();
  return std::normal_distribution<double>{}(engine_);
}

bool RandomEngine::bernoulli(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("RandomEngine::bernoulli: p outside [0,1]");
  }
  return uniform01() < probability;
}

std::uint64_t RandomEngine::uniform_index(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("RandomEngine::uniform_index: bound == 0");
  }
  count_draw();
  return std::uniform_int_distribution<std::uint64_t>{0, bound - 1}(engine_);
}

}  // namespace rascal::stats

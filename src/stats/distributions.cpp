#include "stats/distributions.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special_functions.h"

namespace rascal::stats {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

void require_probability_open(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::domain_error("quantile: p outside (0, 1)");
  }
}

}  // namespace

double Distribution::sample(RandomEngine& rng) const {
  return quantile(std::max(rng.uniform01(), 1e-300));
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0, "Exponential: rate must be > 0");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : -std::expm1(-rate_ * x);
}

double Exponential::quantile(double p) const {
  require_probability_open(p);
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(RandomEngine& rng) const {
  return rng.exponential(rate_);
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(lo < hi, "Uniform: requires lo < hi");
}

double Uniform::pdf(double x) const {
  return (x < lo_ || x > hi_) ? 0.0 : 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  require_probability_open(p);
  return lo_ + p * (hi_ - lo_);
}

// --------------------------------------------------------------------- Normal

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "Normal: sigma must be > 0");
}

double Normal::pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (sigma_ * std::sqrt(2.0 * M_PI));
}

double Normal::cdf(double x) const {
  return standard_normal_cdf((x - mu_) / sigma_);
}

double Normal::quantile(double p) const {
  require_probability_open(p);
  return mu_ + sigma_ * standard_normal_quantile(p);
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "LogNormal: sigma must be > 0");
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return standard_normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  require_probability_open(p);
  return std::exp(mu_ + sigma_ * standard_normal_quantile(p));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

// ---------------------------------------------------------------------- Gamma

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate) {
  require(shape > 0.0 && rate > 0.0, "Gamma: shape and rate must be > 0");
}

double Gamma::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ < 1.0 ? std::numeric_limits<double>::infinity()
                                    : (shape_ == 1.0 ? rate_ : 0.0);
  const double log_pdf = shape_ * std::log(rate_) +
                         (shape_ - 1.0) * std::log(x) - rate_ * x -
                         log_gamma(shape_);
  return std::exp(log_pdf);
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, rate_ * x);
}

double Gamma::quantile(double p) const {
  require_probability_open(p);
  return inverse_regularized_gamma_p(shape_, p) / rate_;
}

double Gamma::sample(RandomEngine& rng) const {
  return std::gamma_distribution<double>{shape_, 1.0 / rate_}(rng.raw());
}

// ------------------------------------------------------------------ ChiSquare

ChiSquare::ChiSquare(double degrees_of_freedom) : dof_(degrees_of_freedom) {
  require(dof_ > 0.0, "ChiSquare: degrees of freedom must be > 0");
}

double ChiSquare::pdf(double x) const {
  return Gamma(dof_ / 2.0, 0.5).pdf(x);
}

double ChiSquare::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(dof_ / 2.0, x / 2.0);
}

double ChiSquare::quantile(double p) const {
  require_probability_open(p);
  return 2.0 * inverse_regularized_gamma_p(dof_ / 2.0, p);
}

// -------------------------------------------------------------------- FisherF

FisherF::FisherF(double d1, double d2) : d1_(d1), d2_(d2) {
  require(d1 > 0.0 && d2 > 0.0, "FisherF: degrees of freedom must be > 0");
}

double FisherF::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double log_pdf =
      0.5 * (d1_ * std::log(d1_ * x) + d2_ * std::log(d2_) -
             (d1_ + d2_) * std::log(d1_ * x + d2_)) -
      std::log(x) - (log_gamma(d1_ / 2.0) + log_gamma(d2_ / 2.0) -
                     log_gamma((d1_ + d2_) / 2.0));
  return std::exp(log_pdf);
}

double FisherF::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = d1_ * x / (d1_ * x + d2_);
  return regularized_beta(d1_ / 2.0, d2_ / 2.0, z);
}

double FisherF::quantile(double p) const {
  require_probability_open(p);
  const double z = inverse_regularized_beta(d1_ / 2.0, d2_ / 2.0, p);
  if (z >= 1.0) return std::numeric_limits<double>::infinity();
  return d2_ * z / (d1_ * (1.0 - z));
}

double FisherF::mean() const {
  if (d2_ <= 2.0) {
    throw std::domain_error("FisherF::mean: undefined for d2 <= 2");
  }
  return d2_ / (d2_ - 2.0);
}

double FisherF::variance() const {
  if (d2_ <= 4.0) {
    throw std::domain_error("FisherF::variance: undefined for d2 <= 4");
  }
  return 2.0 * d2_ * d2_ * (d1_ + d2_ - 2.0) /
         (d1_ * (d2_ - 2.0) * (d2_ - 2.0) * (d2_ - 4.0));
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0 && scale > 0.0, "Weibull: shape and scale must be > 0");
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ < 1.0 ? std::numeric_limits<double>::infinity()
                                    : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require_probability_open(p);
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::exp(log_gamma(1.0 + 1.0 / shape_));
}

double Weibull::variance() const {
  const double g1 = std::exp(log_gamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(log_gamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {}

double Deterministic::pdf(double x) const {
  return x == value_ ? std::numeric_limits<double>::infinity() : 0.0;
}

double Deterministic::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double Deterministic::quantile(double p) const {
  require_probability_open(p);
  return value_;
}

double Deterministic::sample(RandomEngine& /*rng*/) const { return value_; }

// ------------------------------------------------------------------- Binomial

Binomial::Binomial(std::uint64_t n, double p) : n_(n), p_(p) {
  require(p >= 0.0 && p <= 1.0, "Binomial: p outside [0, 1]");
}

double Binomial::pmf(std::uint64_t k) const {
  if (k > n_) return 0.0;
  if (p_ == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p_ == 1.0) return k == n_ ? 1.0 : 0.0;
  const double nd = static_cast<double>(n_);
  const double kd = static_cast<double>(k);
  const double log_pmf = log_gamma(nd + 1.0) - log_gamma(kd + 1.0) -
                         log_gamma(nd - kd + 1.0) + kd * std::log(p_) +
                         (nd - kd) * std::log1p(-p_);
  return std::exp(log_pmf);
}

double Binomial::cdf(std::uint64_t k) const {
  if (k >= n_) return 1.0;
  if (p_ == 0.0) return 1.0;
  if (p_ == 1.0) return 0.0;
  // P(X <= k) = I_{1-p}(n-k, k+1).
  const double nd = static_cast<double>(n_);
  const double kd = static_cast<double>(k);
  return regularized_beta(nd - kd, kd + 1.0, 1.0 - p_);
}

double Binomial::mean() const noexcept {
  return static_cast<double>(n_) * p_;
}

double Binomial::variance() const noexcept {
  return static_cast<double>(n_) * p_ * (1.0 - p_);
}

std::uint64_t Binomial::sample(RandomEngine& rng) const {
  return std::binomial_distribution<std::uint64_t>{n_, p_}(rng.raw());
}

}  // namespace rascal::stats

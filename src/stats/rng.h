// Deterministic, stream-splittable random number engine.
//
// All stochastic components of the library (uncertainty analysis,
// discrete-event simulation, fault injection campaigns) draw from
// RandomEngine so experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace rascal::stats {

class RandomEngine {
 public:
  using result_type = std::uint64_t;

  explicit RandomEngine(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : engine_(seed), seed_(seed) {}

  /// Creates an independent substream; substreams with different ids
  /// produced from the same parent are decorrelated (SplitMix-style
  /// seed derivation).
  [[nodiscard]] RandomEngine split(std::uint64_t stream_id) const;

  /// Seed that split(stream_id) would use.  Exposed so checkpoint
  /// digests can fingerprint the substream-derivation scheme: a
  /// checkpointed run and its resume agree on every pending index's
  /// stream iff they agree on this value for a probe id.
  [[nodiscard]] std::uint64_t substream_seed(std::uint64_t stream_id) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).  Throws std::invalid_argument when
  /// lo > hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Exponential variate with the given rate (>0).
  [[nodiscard]] double exponential(double rate);

  /// Standard normal variate.
  [[nodiscard]] double normal01();

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double probability);

  /// Uniform integer in [0, bound).  bound must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t bound);

  /// Underlying engine (for std distributions).
  [[nodiscard]] std::mt19937_64& raw() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace rascal::stats

// Special functions underpinning the distribution layer: regularized
// incomplete gamma and beta functions and their inverses, plus the
// standard-normal quantile.  Implementations follow the classic
// series / continued-fraction expansions (Abramowitz & Stegun 6.5,
// 26.5; Lentz's algorithm for the continued fractions).
#pragma once

namespace rascal::stats {

/// log Gamma(x) for x > 0.
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// for a > 0, x >= 0.  Throws std::domain_error outside the domain.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Inverse of P(a, .): returns x with P(a, x) = p, for p in [0, 1).
[[nodiscard]] double inverse_regularized_gamma_p(double a, double p);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1].
[[nodiscard]] double regularized_beta(double a, double b, double x);

/// Inverse of I_.(a, b): returns x with I_x(a, b) = p.
[[nodiscard]] double inverse_regularized_beta(double a, double b, double p);

/// Standard normal CDF.
[[nodiscard]] double standard_normal_cdf(double x);

/// Standard normal quantile (inverse CDF) for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step.
[[nodiscard]] double standard_normal_quantile(double p);

}  // namespace rascal::stats

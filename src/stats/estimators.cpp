#include "stats/estimators.h"

#include <stdexcept>

#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace rascal::stats {

namespace {

void require_confidence(double confidence) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("confidence must be in (0, 1)");
  }
}

}  // namespace

double coverage_lower_bound(std::uint64_t trials, std::uint64_t successes,
                            double confidence) {
  require_confidence(confidence);
  if (successes > trials) {
    throw std::invalid_argument("coverage_lower_bound: successes > trials");
  }
  if (successes == 0) {
    // Degenerate all-failures outcome: the one-sided Clopper-Pearson
    // lower bound is exactly 0 (and the FIR upper bound is 1), so a
    // campaign where every injection failed recovery still reports a
    // valid — vacuous — bound instead of aborting.
    return 0.0;
  }
  const double n = static_cast<double>(trials);
  const double s = static_cast<double>(successes);
  const double d1 = 2.0 * (n - s) + 2.0;
  const double d2 = 2.0 * s;
  const double f = FisherF(d1, d2).quantile(confidence);
  return s / (s + (n - s + 1.0) * f);
}

double imperfect_recovery_upper_bound(std::uint64_t trials,
                                      std::uint64_t successes,
                                      double confidence) {
  return 1.0 - coverage_lower_bound(trials, successes, confidence);
}

ProportionInterval clopper_pearson(std::uint64_t trials,
                                   std::uint64_t successes,
                                   double confidence) {
  require_confidence(confidence);
  if (successes > trials) {
    throw std::invalid_argument("clopper_pearson: successes > trials");
  }
  const double alpha = 1.0 - confidence;
  const double n = static_cast<double>(trials);
  const double s = static_cast<double>(successes);
  ProportionInterval interval;
  if (successes > 0) {
    interval.lower =
        inverse_regularized_beta(s, n - s + 1.0, alpha / 2.0);
  }
  if (successes < trials) {
    interval.upper =
        inverse_regularized_beta(s + 1.0, n - s, 1.0 - alpha / 2.0);
  }
  return interval;
}

double failure_rate_upper_bound(double total_exposure, std::uint64_t failures,
                                double confidence) {
  require_confidence(confidence);
  if (!(total_exposure > 0.0)) {
    throw std::invalid_argument(
        "failure_rate_upper_bound: exposure must be > 0");
  }
  const double dof = 2.0 * static_cast<double>(failures) + 2.0;
  return ChiSquare(dof).quantile(confidence) / (2.0 * total_exposure);
}

RateInterval failure_rate_interval(double total_exposure,
                                   std::uint64_t failures, double confidence) {
  require_confidence(confidence);
  if (!(total_exposure > 0.0)) {
    throw std::invalid_argument("failure_rate_interval: exposure must be > 0");
  }
  const double alpha = 1.0 - confidence;
  RateInterval interval;
  if (failures > 0) {
    interval.lower =
        ChiSquare(2.0 * static_cast<double>(failures)).quantile(alpha / 2.0) /
        (2.0 * total_exposure);
  }
  interval.upper =
      ChiSquare(2.0 * static_cast<double>(failures) + 2.0)
          .quantile(1.0 - alpha / 2.0) /
      (2.0 * total_exposure);
  return interval;
}

double failure_rate_mle(double total_exposure, std::uint64_t failures) {
  if (!(total_exposure > 0.0)) {
    throw std::invalid_argument("failure_rate_mle: exposure must be > 0");
  }
  return static_cast<double>(failures) / total_exposure;
}

}  // namespace rascal::stats

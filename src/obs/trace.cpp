#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace rascal::obs {

namespace {

// JSON string escaping for span paths and counter names (which are
// plain identifiers today, but the writer must stay valid JSON for
// any input).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

TraceSession::TraceSession(const TraceSessionOptions& options) {
  reset();
  set_event_recording(options.collect_events, options.max_events);
  set_enabled(true);
}

TraceSession::~TraceSession() {
  if (!stopped_) (void)stop();
}

Snapshot TraceSession::stop() {
  if (!stopped_) {
    set_enabled(false);
    set_event_recording(false);
    final_ = snapshot();
    stopped_ = true;
  }
  return final_;
}

std::string chrome_trace_json(const Snapshot& snap) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"rascal\"}}";
  for (const TraceEvent& event : snap.events) {
    out += ",\n    {\"name\": \"" + json_escape(event.path) +
           "\", \"cat\": \"rascal\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%d, \"ts\": %.3f, \"dur\": %.3f}",
                  event.tid, event.ts_us, event.dur_us);
    out += buffer;
  }
  out += "\n  ],\n  \"otherData\": {\n    \"counters\": {";
  bool first = true;
  for (const CounterValue& c : snap.counters) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, c.value);
    out += first ? "\n" : ",\n";
    out += "      \"" + json_escape(c.name) + "\": " + buffer;
    first = false;
  }
  out += "\n    },\n    \"gauges\": {";
  first = true;
  for (const GaugeValue& g : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "      \"" + json_escape(g.name) + "\": " + format_double(g.value);
    first = false;
  }
  out += "\n    },\n    \"spans\": {";
  first = true;
  for (const SpanStat& s : snap.spans) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"count\": %" PRIu64
                  ", \"wall_ms\": %.3f, \"cpu_ms\": %.3f}",
                  s.count, s.wall_ms, s.cpu_ms);
    out += first ? "\n" : ",\n";
    out += "      \"" + json_escape(s.path) + "\": " + buffer;
    first = false;
  }
  out += "\n    },\n    \"dropped_events\": ";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, snap.dropped_events);
  out += buffer;
  out += "\n  }\n}\n";
  return out;
}

void write_chrome_trace(const std::string& path, const Snapshot& snap) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  file << chrome_trace_json(snap);
  if (!file.good()) {
    throw std::runtime_error("write_chrome_trace: write failed for " + path);
  }
}

std::string render_summary(const Snapshot& snap) {
  std::string out;
  std::size_t width = 24;
  for (const SpanStat& s : snap.spans) width = std::max(width, s.path.size());
  for (const CounterValue& c : snap.counters) {
    width = std::max(width, c.name.size());
  }
  for (const GaugeValue& g : snap.gauges) {
    width = std::max(width, g.name.size());
  }

  char line[512];
  out += "== telemetry ==\n";
  if (!snap.spans.empty()) {
    std::snprintf(line, sizeof(line), "spans:\n  %-*s %10s %12s %12s\n",
                  static_cast<int>(width), "path", "count", "wall(ms)",
                  "cpu(ms)");
    out += line;
    for (const SpanStat& s : snap.spans) {
      std::snprintf(line, sizeof(line),
                    "  %-*s %10" PRIu64 " %12.3f %12.3f\n",
                    static_cast<int>(width), s.path.c_str(), s.count,
                    s.wall_ms, s.cpu_ms);
      out += line;
    }
  }
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const CounterValue& c : snap.counters) {
      std::snprintf(line, sizeof(line), "  %-*s %20" PRIu64 "\n",
                    static_cast<int>(width), c.name.c_str(), c.value);
      out += line;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeValue& g : snap.gauges) {
      std::snprintf(line, sizeof(line), "  %-*s %20.6g\n",
                    static_cast<int>(width), g.name.c_str(), g.value);
      out += line;
    }
  }
  if (snap.dropped_events > 0) {
    std::snprintf(line, sizeof(line),
                  "dropped trace events: %" PRIu64 "\n", snap.dropped_events);
    out += line;
  }
  return out;
}

}  // namespace rascal::obs

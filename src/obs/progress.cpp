#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/obs.h"

namespace rascal::obs {

namespace {
constexpr std::uint64_t kReportIntervalNs = 1000000000ULL;  // 1 s
}  // namespace

Progress::Progress(std::string label, std::uint64_t total)
    : label_(std::move(label)), total_(total), active_(enabled()) {
  if (!active_) return;
  start_ns_ = wall_now_ns();
  next_report_ns_.store(start_ns_ + kReportIntervalNs,
                        std::memory_order_relaxed);
}

Progress::~Progress() { finish(); }

void Progress::tick(std::uint64_t delta) noexcept {
  const std::uint64_t done =
      done_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (!active_) return;
  std::uint64_t due = next_report_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = wall_now_ns();
  if (now < due) return;
  // One thread wins the slot; everyone else skips this report.
  if (!next_report_ns_.compare_exchange_strong(due, now + kReportIntervalNs,
                                               std::memory_order_relaxed)) {
    return;
  }
  report(done, /*final_line=*/false);
}

void Progress::finish() noexcept {
  if (!active_ || finished_) return;
  finished_ = true;
  report(done_.load(std::memory_order_relaxed), /*final_line=*/true);
}

void Progress::report(std::uint64_t done, bool final_line) const noexcept {
  const double elapsed_s =
      static_cast<double>(wall_now_ns() - start_ns_) / 1e9;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) /
                       static_cast<double>(total_)
                 : 0.0;
  if (final_line) {
    std::fprintf(stderr, "%s: %" PRIu64 "/%" PRIu64 " done in %.1fs\n",
                 label_.c_str(), done, total_, elapsed_s);
    return;
  }
  const double eta_s =
      done > 0 ? elapsed_s * static_cast<double>(total_ - done) /
                     static_cast<double>(done)
               : 0.0;
  std::fprintf(stderr,
               "%s: %" PRIu64 "/%" PRIu64 " (%.1f%%) elapsed %.1fs eta %.1fs\n",
               label_.c_str(), done, total_, pct, elapsed_s, eta_s);
}

}  // namespace rascal::obs

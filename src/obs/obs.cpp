#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace rascal::obs {

namespace {

struct SpanAccum {
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
};

// Single process-wide registry.  Entries are only ever added, never
// removed, so Counter/Gauge references handed out stay valid; the
// mutex guards map growth, span aggregation, and the event buffer —
// the hot counter/gauge mutations themselves are lock-free atomics.
// Deliberately ordered std::map, not unordered_map: the stats
// summary and trace export iterate these, and iteration order must
// not depend on hash seeding (rascal-unordered-iteration contract).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, SpanAccum> spans;
  bool record_events = false;
  std::size_t max_events = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t recording_start_ns = 0;
  std::vector<TraceEvent> events;
  std::map<std::thread::id, int> thread_numbers;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

// Per-thread stack of open span names; a span's aggregation key is
// the '/'-joined path of this stack at destruction time.
thread_local std::vector<std::string> open_spans;

std::uint64_t thread_cpu_now_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace

std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_enabled(bool on) noexcept {
  detail::collection_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.counters.find(name);
  if (it == reg.counters.end()) {
    it = reg.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.gauges.find(name);
  if (it == reg.gauges.end()) {
    it = reg.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  open_spans.emplace_back(name);
  start_wall_ns_ = wall_now_ns();
  start_cpu_ns_ = thread_cpu_now_ns();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t wall_end = wall_now_ns();
  const std::uint64_t cpu_end = thread_cpu_now_ns();
  std::string path;
  for (const std::string& part : open_spans) {
    if (!path.empty()) path += '/';
    path += part;
  }
  open_spans.pop_back();

  const std::uint64_t wall_ns =
      wall_end > start_wall_ns_ ? wall_end - start_wall_ns_ : 0;
  const std::uint64_t cpu_ns =
      cpu_end > start_cpu_ns_ ? cpu_end - start_cpu_ns_ : 0;

  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  SpanAccum& accum = reg.spans[path];
  ++accum.count;
  accum.wall_ns += wall_ns;
  accum.cpu_ns += cpu_ns;
  if (reg.record_events) {
    if (reg.events.size() >= reg.max_events) {
      ++reg.dropped_events;
    } else {
      const auto thread_it =
          reg.thread_numbers
              .emplace(std::this_thread::get_id(),
                       static_cast<int>(reg.thread_numbers.size()))
              .first;
      TraceEvent event;
      event.path = std::move(path);
      event.tid = thread_it->second;
      event.ts_us = static_cast<double>(start_wall_ns_ -
                                        std::min(start_wall_ns_,
                                                 reg.recording_start_ns)) /
                    1000.0;
      event.dur_us = static_cast<double>(wall_ns) / 1000.0;
      reg.events.push_back(std::move(event));
    }
  }
}

Snapshot snapshot() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  Snapshot snap;
  snap.spans.reserve(reg.spans.size());
  for (const auto& [path, accum] : reg.spans) {
    snap.spans.push_back({path, accum.count,
                          static_cast<double>(accum.wall_ns) / 1e6,
                          static_cast<double>(accum.cpu_ns) / 1e6});
  }
  snap.counters.reserve(reg.counters.size());
  for (const auto& [name, value] : reg.counters) {
    snap.counters.push_back({name, value->value()});
  }
  snap.gauges.reserve(reg.gauges.size());
  for (const auto& [name, value] : reg.gauges) {
    snap.gauges.push_back({name, value->value()});
  }
  snap.events = reg.events;
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  snap.dropped_events = reg.dropped_events;
  return snap;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, value] : reg.counters) value->reset();
  for (auto& [name, value] : reg.gauges) value->reset();
  reg.spans.clear();
  reg.events.clear();
  reg.thread_numbers.clear();
  reg.dropped_events = 0;
  reg.recording_start_ns = wall_now_ns();
}

void set_event_recording(bool on, std::size_t max_events) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.record_events = on;
  reg.max_events = max_events;
  if (on) reg.recording_start_ns = wall_now_ns();
}

}  // namespace rascal::obs

// Trace sessions and exporters on top of the obs registry:
//
//   * TraceSession — RAII control of one observed run: resets the
//     registry, enables collection (and, by default, per-span trace
//     events), and restores the previous state on destruction.
//   * chrome_trace_json / write_chrome_trace — Chrome trace-event
//     JSON ("X" duration events plus final counter/gauge values),
//     loadable in chrome://tracing or https://ui.perfetto.dev.
//   * render_summary — human-readable span tree + counter/gauge
//     table for `rascal_cli --stats`.
#pragma once

#include <cstddef>
#include <string>

#include "obs/obs.h"

namespace rascal::obs {

struct TraceSessionOptions {
  bool collect_events = true;        // record per-span trace events
  std::size_t max_events = 1u << 20; // buffer cap; excess is counted
};

/// One observed run.  Only one session should be active at a time
/// (collection is a process-wide flag).
class TraceSession {
 public:
  explicit TraceSession(const TraceSessionOptions& options = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Stops collection and returns the final snapshot.  Idempotent:
  /// later calls return the snapshot taken by the first.
  Snapshot stop();

 private:
  bool stopped_ = false;
  Snapshot final_;
};

/// Chrome trace-event JSON for a snapshot.  Deterministically ordered
/// (events by timestamp, counters/gauges by name); timing *values*
/// naturally vary between runs.
[[nodiscard]] std::string chrome_trace_json(const Snapshot& snap);

/// Writes chrome_trace_json(snap) to `path`.  Throws
/// std::runtime_error when the file cannot be written.
void write_chrome_trace(const std::string& path, const Snapshot& snap);

/// Fixed-width text report: spans (count, wall ms, CPU ms), then
/// counters, then gauges.
[[nodiscard]] std::string render_summary(const Snapshot& snap);

}  // namespace rascal::obs

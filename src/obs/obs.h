// Runtime observability: named counters and gauges, scoped spans with
// wall/CPU timings, and an optional in-memory trace-event buffer.
//
// Design contract (relied on by the deterministic sampling engine):
//   * Zero overhead when disabled.  Every instrumentation point
//     guards itself on `enabled()` (one relaxed atomic load); spans
//     constructed while disabled record nothing.
//   * Telemetry lives entirely outside the RNG stream.  Recording a
//     counter, gauge, span, or trace event never draws randomness and
//     never changes a numerical result — tracing-on and tracing-off
//     runs are bit-identical (asserted by tests and a CLI ctest).
//   * Thread safe.  Counters and gauges are relaxed atomics; the
//     registry only ever adds entries, so references returned by
//     counter()/gauge() stay valid for the process lifetime.
//
// Typical hot-path usage:
//
//   if (obs::enabled()) {
//     static obs::Counter& events = obs::counter("sim.jsas.events");
//     events.add(n);
//   }
//
// and for timings:
//
//   obs::Span span("faultinj.campaign");   // no-op unless enabled
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rascal::obs {

namespace detail {
inline std::atomic<bool> collection_enabled{false};
}  // namespace detail

/// True when telemetry collection is on (one relaxed atomic load —
/// cheap enough for per-event hot paths).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::collection_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off.  Prefer TraceSession (obs/trace.h),
/// which also resets state and restores the flag on destruction.
void set_enabled(bool on) noexcept;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / high-water-mark gauge (e.g. final solver residual,
/// event-queue depth).  Starts at 0.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Keeps the maximum of all recorded values.
  void record_max(double value) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Returns the counter/gauge registered under `name`, creating it on
/// first use.  References stay valid forever; reset() zeroes values
/// without invalidating them.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);

/// RAII scoped span.  When collection is enabled at construction,
/// records wall and per-thread CPU time between construction and
/// destruction, aggregated under a '/'-joined path of the enclosing
/// spans on the same thread ("campaign/trial").  When event recording
/// is on (see TraceSession) each completed span also appends one
/// Chrome-trace "X" event.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::uint64_t start_wall_ns_ = 0;
  std::uint64_t start_cpu_ns_ = 0;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

/// Aggregated statistics for one span path.
struct SpanStat {
  std::string path;
  std::uint64_t count = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

/// One completed span occurrence (Chrome-trace "X" event).
struct TraceEvent {
  std::string path;
  int tid = 0;        // small dense thread number, not the OS id
  double ts_us = 0.0;   // start, microseconds since recording began
  double dur_us = 0.0;  // wall duration, microseconds
};

/// Point-in-time copy of everything collected so far.  All vectors
/// are sorted by name/path (events by timestamp) so output is stable.
struct Snapshot {
  std::vector<SpanStat> spans;
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<TraceEvent> events;
  std::uint64_t dropped_events = 0;
};

[[nodiscard]] Snapshot snapshot();

/// Zeroes every counter/gauge, clears span statistics and the event
/// buffer.  Registered Counter/Gauge references remain valid.
void reset();

/// Turns per-span trace-event recording on/off.  `max_events` bounds
/// the buffer; completions past the cap are counted as dropped.
void set_event_recording(bool on, std::size_t max_events = 1u << 20);

/// Monotonic wall clock in nanoseconds (steady_clock), exposed for
/// the progress meter and tests.
[[nodiscard]] std::uint64_t wall_now_ns() noexcept;

}  // namespace rascal::obs

// Periodic progress reporting for long campaigns and Monte-Carlo
// sweeps.  Active only while obs collection is enabled; ticks are
// relaxed atomics so worker threads can report without coordination,
// and the meter never touches the RNG stream or any result.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rascal::obs {

/// Prints "<label>: done/total (pct) elapsed .. eta .." to stderr at
/// most once per second, plus a final line from finish().  Inactive
/// (fully silent, near-zero cost) when obs collection is disabled at
/// construction time.
class Progress {
 public:
  Progress(std::string label, std::uint64_t total);
  ~Progress();
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Thread-safe; callable from pool workers.
  void tick(std::uint64_t delta = 1) noexcept;

  /// Prints the final summary line (once).
  void finish() noexcept;

 private:
  void report(std::uint64_t done, bool final_line) const noexcept;

  std::string label_;
  std::uint64_t total_ = 0;
  std::uint64_t start_ns_ = 0;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> next_report_ns_{0};
  bool active_ = false;
  bool finished_ = false;
};

}  // namespace rascal::obs

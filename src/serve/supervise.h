// Per-request fault domain for the batch/serve engine.
//
// A supervised request runs inside three nested guards:
//
//   1. Admission control — before any solver memory is committed, the
//      request's declared state count and transition count are checked
//      against the configured caps, and the number of admitted
//      in-flight solves against the queue cap.  Refused requests are
//      *shed* (a distinct "status":"shed" record), deterministically:
//      admission is decided in request-index order during the serial
//      prep phase, so the same stream sheds the same requests at any
//      RASCAL_THREADS.
//
//   2. Retry with attempt-indexed budget escalation — a transient
//      fault (chaos injection, environmental) retries the identical
//      attempt; genuine nonconvergence first re-runs the same
//      configuration with a doubled iteration budget (a converging
//      trajectory is bit-identical regardless of its cap, so a
//      recovered retry equals the fault-free run byte for byte).
//
//   3. The fallback ladder — when a rung keeps failing, the request
//      descends: below the sparse threshold gmres -> bicgstab -> gth
//      (GTH is exact and terminal, the same escalation target the
//      ctmc layer uses); above it the preconditioner downgrades
//      ilu0 -> jacobi -> none and finally switches Krylov method,
//      because densifying a 10^6-state generator is never an option.
//      A result recovered on a lower rung carries a "fallback"
//      annotation in its record — degraded answers are never silent.
//
// Everything here is wall-clock-free and RNG-free: the attempt
// schedule of a request is a pure function of the request and the
// options, so retries preserve the engine-wide bit-identity contract
// (oracle-gated by check_retry_consensus).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ctmc/solve_cache.h"
#include "ctmc/steady_state.h"
#include "io/model_file.h"
#include "resil/cancel.h"
#include "resil/retry.h"

namespace rascal::serve {

struct SupervisionOptions {
  /// Attempt bound and budget escalation (resil/retry.h).
  /// max_attempts counts the first try: 1 disables supervision
  /// retries entirely.
  resil::RetryPolicy retry{/*max_attempts=*/3, /*base_iterations=*/0};

  /// Enables the method/preconditioner fallback ladder.  Off, every
  /// attempt re-runs the requested configuration.
  bool fallback_ladder = true;

  /// Admission caps (0 = unlimited).  Checked against the *declared*
  /// model size before binding, so an oversized request is refused
  /// for the cost of a map lookup, not an allocation.
  std::size_t admission_states = 0;
  std::size_t admission_nnz = 0;

  /// Bounded in-flight queue: at most this many solve-requiring
  /// requests are admitted per run (0 = unlimited); the rest are shed
  /// in index order.
  std::size_t queue_cap = 0;

  /// Test hook: the first N solve attempts of every request throw a
  /// retryable resil::TransientError before reaching the solver.
  /// Lets the oracle exercise the retry path without global chaos
  /// state.
  std::size_t inject_transient_faults = 0;
};

/// One rung of the fallback ladder.
struct LadderRung {
  ctmc::SteadyStateMethod method = ctmc::SteadyStateMethod::kGth;
  linalg::PrecondKind precond = linalg::PrecondKind::kIlu0;
};

/// Builds the deterministic rung sequence for a request.  Rung 0 is
/// always the requested configuration; `num_states` against the
/// threshold (0 = ctmc::kDefaultSparseThreshold) picks the descent:
/// method substitution below it, preconditioner downgrade above it.
[[nodiscard]] std::vector<LadderRung> fallback_ladder(
    ctmc::SteadyStateMethod method, linalg::PrecondKind precond,
    std::size_t num_states, std::size_t sparse_threshold);

/// Solver configuration of one request, decoupled from the JSONL
/// Request so the check/ oracle can supervise raw chains.
struct SolveSpec {
  ctmc::SteadyStateMethod method = ctmc::SteadyStateMethod::kGth;
  linalg::PrecondKind precond = linalg::PrecondKind::kIlu0;
  std::size_t sparse_threshold = 0;
  std::size_t max_iterations = 0;
  std::size_t gmres_restart = 0;
};

/// Outcome of a supervised solve, with enough provenance to render
/// the record and to let the oracle re-run the final attempt
/// directly.
struct SupervisedSolve {
  ctmc::SteadyState steady;
  std::size_t attempts = 1;    // attempts consumed (1 = first try)
  std::size_t rung = 0;        // final ladder rung index
  LadderRung final_rung;       // configuration that produced `steady`
  std::size_t final_budget = 0;  // max_iterations of the final attempt
  /// Empty when rung 0 succeeded; otherwise the annotation for the
  /// result record ("gth", "precond:jacobi", ...).
  std::string fallback;
};

/// Runs one request under the retry/fallback discipline.  Throws the
/// final failure when every allowed attempt is exhausted (classified
/// by resil::classify); resil::CancelledError always propagates
/// immediately and is never retried.
[[nodiscard]] SupervisedSolve supervised_solve(
    const ctmc::Ctmc& chain, const SolveSpec& spec, ctmc::SolveCache& cache,
    const SupervisionOptions& options,
    const resil::CancellationToken* cancel = nullptr);

/// Admission verdict for a parsed model: empty string admits, a
/// non-empty string is the shed reason.  Cheap: reads the declared
/// symbolic sizes, never binds.
[[nodiscard]] std::string admission_verdict(const io::ModelFile& file,
                                            const SupervisionOptions& options);

}  // namespace rascal::serve

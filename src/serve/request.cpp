#include "serve/request.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace rascal::serve {

namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

// Minimal recursive-descent reader for the one-line request objects.
// Deliberately strict: no escape sequences beyond the JSON basics, no
// non-finite numbers, no unknown fields, no trailing content.
class RequestReader {
 public:
  explicit RequestReader(const std::string& text) : text_(text) {}

  Request parse() {
    Request request;
    bool has_model = false;
    bool has_outputs = false;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        const std::string key = parse_string();
        // Duplicate keys are hostile input: JSON leaves their meaning
        // undefined, and "last one wins" would let an attacker smuggle
        // a second "model" past a prefix-scanning auditor.
        for (const std::string& prior : seen_keys_) {
          if (prior == key) fail("duplicate field '" + key + "'");
        }
        seen_keys_.push_back(key);
        expect(':');
        parse_field(key, request, has_model, has_outputs);
        skip_whitespace();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after request object");
    if (!has_model) fail("request is missing the \"model\" field");
    return request;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw RequestError("request, offset " + std::to_string(pos_) + ": " +
                       message);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_whitespace();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("unterminated escape");
        switch (text_[pos_]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape sequence");
        }
      }
      out += c;
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_finite_number() {
    skip_whitespace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    if (!std::isfinite(value)) fail("non-finite number");
    return value;
  }

  std::size_t parse_count(const std::string& field) {
    const double value = parse_finite_number();
    if (value < 0.0 || value != std::floor(value)) {
      fail("field \"" + field + "\" must be a non-negative integer");
    }
    return static_cast<std::size_t>(value);
  }

  void parse_overrides(Request& request) {
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string name = parse_string();
      if (name.empty()) fail("empty parameter name in \"set\"");
      expect(':');
      request.overrides.set(name, parse_finite_number());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_outputs(Request& request) {
    request.outputs.clear();
    expect('[');
    skip_whitespace();
    if (peek() == ']') fail("\"outputs\" must name at least one metric");
    while (true) {
      const std::string name = parse_string();
      OutputKind kind{};
      if (!parse_output(name, kind)) fail("unknown output '" + name + "'");
      request.outputs.push_back(kind);
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  void parse_field(const std::string& key, Request& request, bool& has_model,
                   bool& has_outputs) {
    if (key == "model") {
      request.model_path = parse_string();
      if (request.model_path.empty()) fail("\"model\" must not be empty");
      has_model = true;
    } else if (key == "id") {
      request.id = parse_string();
    } else if (key == "set") {
      parse_overrides(request);
    } else if (key == "method") {
      const std::string name = parse_string();
      if (!parse_method(name, request.method)) {
        fail("unknown method '" + name + "'");
      }
    } else if (key == "precond") {
      const std::string name = parse_string();
      if (!parse_precond(name, request.precond)) {
        fail("unknown preconditioner '" + name + "'");
      }
    } else if (key == "sparse_threshold") {
      request.sparse_threshold = parse_count(key);
    } else if (key == "max_iterations") {
      request.max_iterations = parse_count(key);
    } else if (key == "gmres_restart") {
      request.gmres_restart = parse_count(key);
    } else if (key == "outputs") {
      parse_outputs(request);
      has_outputs = true;
    } else {
      fail("unknown field '" + key + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::vector<std::string> seen_keys_;
};

}  // namespace

const char* to_string(OutputKind kind) {
  switch (kind) {
    case OutputKind::kAvailability: return "availability";
    case OutputKind::kUnavailability: return "unavailability";
    case OutputKind::kDowntime: return "downtime";
    case OutputKind::kMtbf: return "mtbf";
    case OutputKind::kMttf: return "mttf";
    case OutputKind::kMttr: return "mttr";
    case OutputKind::kRewardRate: return "reward_rate";
    case OutputKind::kFailureFrequency: return "failure_frequency";
  }
  return "unknown";
}

bool parse_output(const std::string& name, OutputKind& out) {
  if (name == "availability") out = OutputKind::kAvailability;
  else if (name == "unavailability") out = OutputKind::kUnavailability;
  else if (name == "downtime") out = OutputKind::kDowntime;
  else if (name == "mtbf") out = OutputKind::kMtbf;
  else if (name == "mttf") out = OutputKind::kMttf;
  else if (name == "mttr") out = OutputKind::kMttr;
  else if (name == "reward_rate") out = OutputKind::kRewardRate;
  else if (name == "failure_frequency") out = OutputKind::kFailureFrequency;
  else return false;
  return true;
}

bool parse_method(const std::string& name, ctmc::SteadyStateMethod& out) {
  if (name == "gth") out = ctmc::SteadyStateMethod::kGth;
  else if (name == "lu") out = ctmc::SteadyStateMethod::kLu;
  else if (name == "power") out = ctmc::SteadyStateMethod::kPower;
  else if (name == "gauss-seidel") out = ctmc::SteadyStateMethod::kGaussSeidel;
  else if (name == "gmres") out = ctmc::SteadyStateMethod::kGmres;
  else if (name == "bicgstab") out = ctmc::SteadyStateMethod::kBiCgStab;
  else return false;
  return true;
}

bool parse_precond(const std::string& name, linalg::PrecondKind& out) {
  if (name == "none") out = linalg::PrecondKind::kNone;
  else if (name == "jacobi") out = linalg::PrecondKind::kJacobi;
  else if (name == "ilu0") out = linalg::PrecondKind::kIlu0;
  else return false;
  return true;
}

Request parse_request(const std::string& line) {
  return RequestReader(line).parse();
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_result_line(std::size_t index, const Request& request,
                               const std::vector<double>& values,
                               const std::string& fallback) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kResultSchema << "\",\"index\":" << index;
  if (!request.id.empty()) {
    os << ",\"id\":\"" << escape_json(request.id) << "\"";
  }
  os << ",\"status\":\"ok\"";
  if (!fallback.empty()) {
    os << ",\"fallback\":\"" << escape_json(fallback) << "\"";
  }
  os << ",\"results\":{";
  for (std::size_t k = 0; k < request.outputs.size(); ++k) {
    if (k > 0) os << ",";
    os << "\"" << to_string(request.outputs[k])
       << "\":" << format_double(values.at(k));
  }
  os << "}}";
  return os.str();
}

std::string render_error_line(std::size_t index, const std::string& id,
                              const std::string& error,
                              const std::string& error_class) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kResultSchema << "\",\"index\":" << index;
  if (!id.empty()) os << ",\"id\":\"" << escape_json(id) << "\"";
  os << ",\"status\":\"error\"";
  if (!error_class.empty()) {
    os << ",\"class\":\"" << escape_json(error_class) << "\"";
  }
  os << ",\"error\":\"" << escape_json(error) << "\"}";
  return os.str();
}

std::string render_shed_line(std::size_t index, const std::string& id,
                             const std::string& reason) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kResultSchema << "\",\"index\":" << index;
  if (!id.empty()) os << ",\"id\":\"" << escape_json(id) << "\"";
  os << ",\"status\":\"shed\",\"reason\":\"" << escape_json(reason) << "\"}";
  return os.str();
}

}  // namespace rascal::serve

// Structured results sink for batch/serve campaigns.
//
// Workers finish requests in whatever order the pool schedules them,
// but the sink must emit records in request order so the output file
// is byte-identical at any RASCAL_THREADS and diffable across runs.
// A dedicated writer thread (the gacspp COutput idiom: producers
// enqueue under a mutex, one consumer owns the stream) buffers
// out-of-order completions and appends each line the moment its index
// becomes the next contiguous one.
//
// The writer never reads clocks or randomness, so sink activity can
// never perturb solver determinism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace rascal::serve {

class ResultsSink {
 public:
  /// The sink appends to `out` (not owned; must outlive the sink)
  /// from its writer thread until close() — no other writer may touch
  /// the stream in between.
  explicit ResultsSink(std::ostream& out);

  /// Joins the writer (close()) if the owner forgot to.
  ~ResultsSink();

  ResultsSink(const ResultsSink&) = delete;
  ResultsSink& operator=(const ResultsSink&) = delete;

  /// Hands record `index` to the writer.  Thread-safe; each index
  /// must be pushed at most once.  `line` must not contain newlines
  /// (one record per line is the JSONL contract).
  void push(std::size_t index, std::string line);

  /// Drains the contiguous prefix, flushes the stream, and stops the
  /// writer thread.  Records still gapped at close (an interrupted
  /// run killed the request that would have filled the gap) are
  /// dropped — the checkpoint has them, and the resumed run re-emits
  /// the full stream.  Returns the number of records written.
  std::size_t close();

  /// Records written so far (monotonic; final after close()).
  [[nodiscard]] std::size_t written() const;

 private:
  void writer_loop();

  std::ostream& out_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::size_t, std::string> pending_;  // index-ordered buffer
  std::size_t next_index_ = 0;  // the only index allowed to write next
  std::size_t written_ = 0;
  bool closing_ = false;
  std::thread writer_;
};

}  // namespace rascal::serve

// Structured results sink for batch/serve campaigns.
//
// Workers finish requests in whatever order the pool schedules them,
// but the sink must emit records in request order so the output file
// is byte-identical at any RASCAL_THREADS and diffable across runs.
// A dedicated writer thread (the gacspp COutput idiom: producers
// enqueue under a mutex, one consumer owns the stream) buffers
// out-of-order completions and appends each line the moment its index
// becomes the next contiguous one.
//
// The writer never reads clocks or randomness, so sink activity can
// never perturb solver determinism.
//
// Accounting contract: the sink never loses a record silently.  A
// record gapped at close (a dead worker never pushed the index that
// would unblock the prefix) is filled with a structured error record
// from the gap filler and counted in gaps(); a record the stream
// refused to take is counted in write_failures().  Callers surface
// both in the run summary and the exit code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace rascal::serve {

class ResultsSink {
 public:
  /// The sink appends to `out` (not owned; must outlive the sink)
  /// from its writer thread until close() — no other writer may touch
  /// the stream in between.
  explicit ResultsSink(std::ostream& out);

  /// Joins the writer (close()) if the owner forgot to.
  ~ResultsSink();

  ResultsSink(const ResultsSink&) = delete;
  ResultsSink& operator=(const ResultsSink&) = delete;

  /// Renders the substitute record for an index whose real record
  /// never arrived.  Called from the writer thread at close, in index
  /// order, once per gap.
  using GapFiller = std::function<std::string(std::size_t index)>;

  /// Installs the gap filler.  Without one, gapped records are still
  /// counted in gaps() but nothing is emitted for them (the historic
  /// drop behaviour).  Call before any gap can occur — i.e. before
  /// close().
  void set_gap_filler(GapFiller filler);

  /// Hands record `index` to the writer.  Thread-safe; each index
  /// must be pushed at most once.  `line` must not contain newlines
  /// (one record per line is the JSONL contract).
  void push(std::size_t index, std::string line);

  /// Drains the contiguous prefix, fills any interior gaps via the
  /// gap filler (an index below a buffered record that no worker ever
  /// pushed — a dead or abandoned worker), flushes the stream, and
  /// stops the writer thread.  Trailing never-pushed indices are not
  /// gaps: an interrupted run legitimately stops early and the
  /// checkpoint covers the rest.  Returns the number of records
  /// written (gap records included).
  std::size_t close();

  /// Records written so far (monotonic; final after close()).
  [[nodiscard]] std::size_t written() const;

  /// Interior gaps discovered at close (0 before close()).
  [[nodiscard]] std::size_t gaps() const;

  /// Records the output stream refused (stream entered a failed state
  /// or a `sink-write-fail` chaos site fired).  The stream position
  /// still advances so later records keep their indices.
  [[nodiscard]] std::size_t write_failures() const;

 private:
  void writer_loop();
  // Writes one line, dropping the lock around the stream operation.
  // Returns with the lock re-held.
  void write_line(std::unique_lock<std::mutex>& lock,
                  const std::string& line);

  std::ostream& out_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::size_t, std::string> pending_;  // index-ordered buffer
  std::size_t next_index_ = 0;  // the only index allowed to write next
  std::size_t written_ = 0;
  std::size_t gaps_ = 0;
  std::size_t write_failures_ = 0;
  GapFiller gap_filler_;
  bool closing_ = false;
  std::thread writer_;
};

}  // namespace rascal::serve

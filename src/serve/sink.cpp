#include "serve/sink.h"

#include <utility>

#include "obs/obs.h"
#include "resil/chaos.h"

namespace rascal::serve {

ResultsSink::ResultsSink(std::ostream& out) : out_(out) {
  writer_ = std::thread([this] { writer_loop(); });
}

ResultsSink::~ResultsSink() { close(); }

void ResultsSink::set_gap_filler(GapFiller filler) {
  std::lock_guard<std::mutex> lock(mutex_);
  gap_filler_ = std::move(filler);
}

void ResultsSink::push(std::size_t index, std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) return;  // late completion after close(): checkpoint has it
    pending_.emplace(index, std::move(line));
    if (obs::enabled()) {
      obs::gauge("serve.sink.buffered")
          .set(static_cast<double>(pending_.size()));
    }
  }
  ready_cv_.notify_one();
}

std::size_t ResultsSink::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_ && !writer_.joinable()) return written_;
    closing_ = true;
  }
  ready_cv_.notify_one();
  if (writer_.joinable()) writer_.join();
  return written_;
}

std::size_t ResultsSink::written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

std::size_t ResultsSink::gaps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gaps_;
}

std::size_t ResultsSink::write_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

void ResultsSink::write_line(std::unique_lock<std::mutex>& lock,
                             const std::string& line) {
  // The writer visits records in index order, so chaos occurrences
  // map to the same record at any RASCAL_THREADS.
  const bool chaos_drop =
      resil::chaos::enabled() && resil::chaos::tick("sink-write-fail");
  bool failed = chaos_drop;
  if (!chaos_drop) {
    lock.unlock();
    out_ << line << '\n';
    const bool ok = static_cast<bool>(out_);
    lock.lock();
    failed = !ok;
  }
  ++next_index_;
  ++written_;
  if (failed) {
    ++write_failures_;
    if (obs::enabled()) obs::counter("serve.sink.write_failures").add(1);
  }
  if (obs::enabled()) {
    obs::counter("serve.sink.records").add(1);
    obs::gauge("serve.sink.buffered")
        .set(static_cast<double>(pending_.size()));
  }
}

void ResultsSink::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    ready_cv_.wait(lock, [this] {
      return closing_ ||
             (!pending_.empty() && pending_.begin()->first == next_index_);
    });
    // Drain the contiguous prefix; drop the stream lock per record so
    // workers are never blocked on disk.
    while (!pending_.empty() && pending_.begin()->first == next_index_) {
      const std::string line = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      write_line(lock, line);
    }
    if (closing_) {
      if (!pending_.empty()) {
        // Interior gap: a buffered record sits above indices nobody
        // ever pushed.  Fill the hole so every request up to the
        // highest completed one is accounted for, then loop to drain
        // the now-contiguous prefix.
        while (next_index_ < pending_.begin()->first) {
          ++gaps_;
          if (obs::enabled()) obs::counter("serve.sink.gap_records").add(1);
          if (gap_filler_) {
            write_line(lock, gap_filler_(next_index_));
          } else {
            ++next_index_;  // historic behaviour: count, emit nothing
          }
        }
        continue;
      }
      break;
    }
  }
  lock.unlock();
  out_.flush();
  lock.lock();
}

}  // namespace rascal::serve

#include "serve/sink.h"

#include <utility>

#include "obs/obs.h"

namespace rascal::serve {

ResultsSink::ResultsSink(std::ostream& out) : out_(out) {
  writer_ = std::thread([this] { writer_loop(); });
}

ResultsSink::~ResultsSink() { close(); }

void ResultsSink::push(std::size_t index, std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) return;  // late completion after close(): checkpoint has it
    pending_.emplace(index, std::move(line));
    if (obs::enabled()) {
      obs::gauge("serve.sink.buffered")
          .set(static_cast<double>(pending_.size()));
    }
  }
  ready_cv_.notify_one();
}

std::size_t ResultsSink::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_ && !writer_.joinable()) return written_;
    closing_ = true;
  }
  ready_cv_.notify_one();
  if (writer_.joinable()) writer_.join();
  return written_;
}

std::size_t ResultsSink::written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

void ResultsSink::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    ready_cv_.wait(lock, [this] {
      return closing_ ||
             (!pending_.empty() && pending_.begin()->first == next_index_);
    });
    // Drain the contiguous prefix; drop the stream lock per record so
    // workers are never blocked on disk.
    while (!pending_.empty() && pending_.begin()->first == next_index_) {
      const std::string line = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      lock.unlock();
      out_ << line << '\n';
      lock.lock();
      ++next_index_;
      ++written_;
      if (obs::enabled()) {
        obs::counter("serve.sink.records").add(1);
        obs::gauge("serve.sink.buffered")
            .set(static_cast<double>(pending_.size()));
      }
    }
    if (closing_) break;
  }
  out_.flush();
}

}  // namespace rascal::serve

#include "serve/batch.h"

#include <atomic>
#include <istream>
#include <map>
#include <optional>
#include <utility>

#include "core/metrics.h"
#include "core/thread_pool.h"
#include "io/model_file.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "resil/chaos.h"
#include "serve/request.h"
#include "serve/sink.h"

namespace rascal::serve {

namespace {

double metric_value(OutputKind kind, const core::AvailabilityMetrics& m) {
  switch (kind) {
    case OutputKind::kAvailability: return m.availability;
    case OutputKind::kUnavailability: return m.unavailability;
    case OutputKind::kDowntime: return m.downtime_minutes_per_year;
    case OutputKind::kMtbf: return m.mtbf_hours;
    case OutputKind::kMttf: return m.mttf_hours;
    case OutputKind::kMttr: return m.mttr_hours;
    case OutputKind::kRewardRate: return m.expected_reward_rate;
    case OutputKind::kFailureFrequency: return m.failure_frequency;
  }
  return 0.0;
}

struct SolveOutcome {
  std::vector<double> values;
  std::string fallback;  // annotation when a lower rung answered
};

SolveOutcome solve_request(const Request& request, const io::ModelFile& file,
                           ctmc::SolveCache& cache,
                           const SupervisionOptions& supervision,
                           const resil::CancellationToken* cancel) {
  const ctmc::Ctmc chain = file.bind(request.overrides);
  SolveSpec spec;
  spec.method = request.method;
  spec.precond = request.precond;
  spec.sparse_threshold = request.sparse_threshold;
  spec.max_iterations = request.max_iterations;
  spec.gmres_restart = request.gmres_restart;
  const SupervisedSolve solved =
      supervised_solve(chain, spec, cache, supervision, cancel);
  const core::AvailabilityMetrics metrics =
      core::availability_metrics(chain, solved.steady);
  SolveOutcome out;
  out.fallback = solved.fallback;
  out.values.reserve(request.outputs.size());
  for (const OutputKind kind : request.outputs) {
    out.values.push_back(metric_value(kind, metrics));
  }
  return out;
}

// Request completion states tracked by the runner.  Every request
// must leave kPending exactly once (or stay pending only when the run
// was interrupted / a worker died — both surfaced, never silent).
enum : unsigned char {
  kPending = 0,
  kOk = 1,
  kFailed = 2,
  kShed = 3,
};

}  // namespace

double BatchResult::hit_rate() const noexcept {
  const double hits =
      static_cast<double>(cache.hits) + static_cast<double>(worker_hits);
  const double total = hits + static_cast<double>(cache.misses);
  // Shared misses count exactly the lookups neither tier answered: a
  // local hit never consults the shared tier, a local miss always
  // does.  worker_misses would double-count them.
  return total > 0.0 ? hits / total : 0.0;
}

std::vector<std::string> read_request_lines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::uint64_t batch_checkpoint_digest(const std::vector<std::string>& lines,
                                      const SupervisionOptions& supervision) {
  resil::DigestBuilder digest;
  digest.add_str("serve").add_u64(lines.size());
  for (const std::string& line : lines) digest.add_str(line);
  // Supervision knobs that change which records a run emits: a resume
  // under different retry/shedding rules would splice incompatible
  // streams together.
  digest.add_str("supervision")
      .add_u64(supervision.retry.max_attempts)
      .add_u64(supervision.fallback_ladder ? 1 : 0)
      .add_u64(supervision.admission_states)
      .add_u64(supervision.admission_nnz)
      .add_u64(supervision.queue_cap);
  return digest.value();
}

BatchResult run_batch(const std::vector<std::string>& lines,
                      std::ostream& out, const BatchOptions& options) {
  const obs::Span span("serve.batch");
  const std::size_t n = lines.size();
  const resil::CancellationToken* cancel = options.control.cancel;
  resil::Checkpointer* checkpoint = options.control.checkpoint;
  const SupervisionOptions& supervision = options.supervision;

  BatchResult result;
  result.requests = n;

  // Everything that can fail without touching a solver is resolved
  // serially up front: parse every line, load every distinct model
  // once, then run admission in request-index order.  The parallel
  // region below only ever sees requests that are structurally able
  // and admitted to run, so its behaviour (and the output bytes) are
  // independent of RASCAL_THREADS.
  std::vector<std::optional<Request>> requests(n);
  std::vector<unsigned char> status(n, kPending);
  std::vector<std::string> errors(n);
  std::vector<std::string> classes(n);  // taxonomy slug per error
  for (std::size_t i = 0; i < n; ++i) {
    try {
      requests[i] = parse_request(lines[i]);
    } catch (const RequestError& failure) {
      status[i] = kFailed;
      errors[i] = failure.what();
      classes[i] = resil::to_string(failure.error_class());
    }
  }

  std::map<std::string, io::ModelFile> models;
  std::map<std::string, std::string> model_errors;
  for (std::size_t i = 0; i < n; ++i) {
    if (!requests[i]) continue;
    const std::string& path = requests[i]->model_path;
    if (models.count(path) != 0 || model_errors.count(path) != 0) continue;
    try {
      models.emplace(path, io::load_model(path));
    } catch (const std::exception& failure) {
      model_errors.emplace(path, failure.what());
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!requests[i] || status[i] != kPending) continue;
    const auto bad = model_errors.find(requests[i]->model_path);
    if (bad != model_errors.end()) {
      status[i] = kFailed;
      errors[i] = "model '" + requests[i]->model_path + "': " + bad->second;
      classes[i] = resil::to_string(resil::ErrorClass::kModel);
    }
  }

  // Admission control, decided before checkpoint replay so a resumed
  // run sheds exactly the requests the first run shed: the verdict is
  // a pure function of the stream and the supervision options, both
  // covered by the checkpoint digest.
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] != kPending || !requests[i]) continue;
    std::string reason =
        admission_verdict(models.at(requests[i]->model_path), supervision);
    const bool by_size = !reason.empty();
    if (reason.empty() && supervision.queue_cap != 0 &&
        admitted >= supervision.queue_cap) {
      reason = "queue full: " + std::to_string(supervision.queue_cap) +
               " requests already admitted";
    }
    if (reason.empty()) {
      ++admitted;
      continue;
    }
    status[i] = kShed;
    errors[i] = reason;
    if (obs::enabled()) {
      obs::counter(by_size ? "serve.shed.admission" : "serve.shed.queue")
          .add(1);
    }
  }
  if (obs::enabled()) {
    obs::gauge("serve.admission.admitted").set(static_cast<double>(admitted));
  }

  // Checkpoint replay: completed indices come back as their exact
  // result bits (kOk; the note carries the fallback annotation) or
  // their recorded failure (kFailed; words[0] carries the error
  // class), so the re-rendered records are byte-identical to the
  // first run's.
  std::vector<std::vector<double>> values(n);
  std::vector<std::string> fallbacks(n);
  if (checkpoint != nullptr) {
    if (checkpoint->total() != n) {
      throw resil::CheckpointError(
          "run_batch: checkpoint total does not match the request count");
    }
    for (const resil::CheckpointEntry& entry : checkpoint->entries()) {
      const std::size_t i = static_cast<std::size_t>(entry.index);
      if (i >= n || status[i] != kPending || !requests[i]) continue;
      if (entry.status == resil::EntryStatus::kOk) {
        if (entry.words.size() != requests[i]->outputs.size()) {
          throw resil::CheckpointError(
              "run_batch: checkpoint entry has wrong payload size");
        }
        values[i].reserve(entry.words.size());
        for (const std::uint64_t word : entry.words) {
          values[i].push_back(resil::bits_f64(word));
        }
        fallbacks[i] = entry.note;
        status[i] = kOk;
      } else {
        status[i] = kFailed;
        errors[i] = entry.note;
        if (!entry.words.empty()) {
          classes[i] = resil::to_string(
              static_cast<resil::ErrorClass>(entry.words.front()));
        }
      }
      ++result.restored;
    }
  }

  ctmc::SharedSolveCache::Config cache_config;
  cache_config.capacity = options.cache_capacity;
  ctmc::SharedSolveCache shared(cache_config);
  std::atomic<std::uint64_t> worker_hits{0};
  std::atomic<std::uint64_t> worker_misses{0};

  ResultsSink sink(out);
  // A gap at close means a worker died between claiming an index and
  // pushing its record; the filler keeps the stream complete and the
  // loss loud (counted, classed, exit 3).
  sink.set_gap_filler([](std::size_t index) {
    return render_error_line(index, "",
                             "request record lost: worker abandoned or run "
                             "interrupted before completion",
                             "lost");
  });
  // Pre-resolved records (parse/model errors, shed requests,
  // checkpoint replays) go to the sink before the workers start:
  // their indices would otherwise gap the contiguous prefix forever.
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == kOk) {
      sink.push(i, render_result_line(i, *requests[i], values[i],
                                      fallbacks[i]));
    } else if (status[i] == kFailed) {
      sink.push(i, render_error_line(i, requests[i] ? requests[i]->id : "",
                                     errors[i], classes[i]));
    } else if (status[i] == kShed) {
      sink.push(i, render_shed_line(i, requests[i]->id, errors[i]));
    }
  }

  obs::Progress progress("serve.batch", n);
  core::parallel_for(
      n, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        ctmc::SolveCache local;
        local.set_shared(shared.enabled() ? &shared : nullptr);
        for (std::size_t i = begin; i < end; ++i) {
          if (status[i] != kPending) continue;  // pre-resolved or restored
          if (cancel != nullptr && cancel->cancelled()) break;  // drain
          if (resil::chaos::enabled() &&
              resil::chaos::fires_at("worker-abandon", i)) {
            // Simulated worker death: the chunk vanishes without
            // recording anything.  The sink's gap accounting is what
            // turns this into a loud failure instead of a short file.
            return;
          }
          const Request& request = *requests[i];
          try {
            resil::chaos::worker_hook(i);
            const obs::Span request_span("serve.batch.request");
            SolveOutcome outcome =
                solve_request(request, models.at(request.model_path), local,
                              supervision, cancel);
            values[i] = std::move(outcome.values);
            status[i] = kOk;
            if (checkpoint != nullptr) {
              resil::CheckpointEntry entry{i, resil::EntryStatus::kOk, {},
                                           outcome.fallback};
              entry.words.reserve(values[i].size());
              for (const double v : values[i]) {
                entry.words.push_back(resil::f64_bits(v));
              }
              checkpoint->record(std::move(entry));
            }
            sink.push(i, render_result_line(i, request, values[i],
                                            outcome.fallback));
          } catch (const resil::CancelledError&) {
            break;  // interrupted mid-solve: leave the index pending
          } catch (const std::exception& failure) {
            const resil::ErrorClass cls = resil::classify(failure);
            status[i] = kFailed;
            errors[i] = failure.what();
            classes[i] = resil::to_string(cls);
            if (checkpoint != nullptr) {
              checkpoint->record({i,
                                  resil::EntryStatus::kFailed,
                                  {static_cast<std::uint64_t>(cls)},
                                  failure.what()});
            }
            sink.push(i, render_error_line(i, request.id, errors[i],
                                           classes[i]));
            if (obs::enabled()) {
              obs::counter("serve.batch.requests_failed").add(1);
            }
          }
          progress.tick();
        }
        worker_hits.fetch_add(local.hits(), std::memory_order_relaxed);
        worker_misses.fetch_add(local.misses(), std::memory_order_relaxed);
      });
  progress.finish();
  if (checkpoint != nullptr) checkpoint->flush();
  result.written = sink.close();
  result.gaps = sink.gaps();
  result.sink_write_failures = sink.write_failures();

  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == kOk) ++result.succeeded;
    else if (status[i] == kFailed) ++result.failed;
    else if (status[i] == kShed) ++result.shed;
    else ++pending;
  }
  result.interrupted = cancel != nullptr && cancel->cancelled() && pending > 0;
  if (result.interrupted) {
    result.interrupt_reason = cancel->describe();
  } else {
    // Not interrupted, yet some requests never completed: a worker
    // abandoned its chunk.  The sink already emitted gap records for
    // the interior ones; `lost` makes the trailing ones loud too.
    result.lost = pending;
  }
  result.cache = shared.stats();
  result.worker_hits = worker_hits.load(std::memory_order_relaxed);
  result.worker_misses = worker_misses.load(std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::counter("serve.batch.requests").add(n);
    if (result.lost > 0) obs::counter("serve.batch.requests_lost").add(result.lost);
  }
  return result;
}

}  // namespace rascal::serve

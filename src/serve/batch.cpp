#include "serve/batch.h"

#include <atomic>
#include <istream>
#include <map>
#include <optional>
#include <utility>

#include "core/metrics.h"
#include "core/thread_pool.h"
#include "io/model_file.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "resil/chaos.h"
#include "serve/request.h"
#include "serve/sink.h"

namespace rascal::serve {

namespace {

double metric_value(OutputKind kind, const core::AvailabilityMetrics& m) {
  switch (kind) {
    case OutputKind::kAvailability: return m.availability;
    case OutputKind::kUnavailability: return m.unavailability;
    case OutputKind::kDowntime: return m.downtime_minutes_per_year;
    case OutputKind::kMtbf: return m.mtbf_hours;
    case OutputKind::kMttf: return m.mttf_hours;
    case OutputKind::kMttr: return m.mttr_hours;
    case OutputKind::kRewardRate: return m.expected_reward_rate;
    case OutputKind::kFailureFrequency: return m.failure_frequency;
  }
  return 0.0;
}

std::vector<double> solve_request(const Request& request,
                                  const io::ModelFile& file,
                                  ctmc::SolveCache& cache,
                                  const resil::CancellationToken* cancel) {
  const ctmc::Ctmc chain = file.bind(request.overrides);
  ctmc::SolveControl control;
  control.max_iterations = request.max_iterations;
  control.sparse_threshold = request.sparse_threshold;
  control.precond = request.precond;
  control.gmres_restart = request.gmres_restart;
  control.cancel = cancel;
  const ctmc::SteadyState& steady = cache.steady_state(
      chain, request.method, ctmc::Validation::kOn, control);
  const core::AvailabilityMetrics metrics =
      core::availability_metrics(chain, steady);
  std::vector<double> values;
  values.reserve(request.outputs.size());
  for (const OutputKind kind : request.outputs) {
    values.push_back(metric_value(kind, metrics));
  }
  return values;
}

}  // namespace

double BatchResult::hit_rate() const noexcept {
  const double hits =
      static_cast<double>(cache.hits) + static_cast<double>(worker_hits);
  const double total = hits + static_cast<double>(cache.misses);
  // Shared misses count exactly the lookups neither tier answered: a
  // local hit never consults the shared tier, a local miss always
  // does.  worker_misses would double-count them.
  return total > 0.0 ? hits / total : 0.0;
}

std::vector<std::string> read_request_lines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::uint64_t batch_checkpoint_digest(const std::vector<std::string>& lines) {
  resil::DigestBuilder digest;
  digest.add_str("serve").add_u64(lines.size());
  for (const std::string& line : lines) digest.add_str(line);
  return digest.value();
}

BatchResult run_batch(const std::vector<std::string>& lines,
                      std::ostream& out, const BatchOptions& options) {
  const obs::Span span("serve.batch");
  const std::size_t n = lines.size();
  const resil::CancellationToken* cancel = options.control.cancel;
  resil::Checkpointer* checkpoint = options.control.checkpoint;

  BatchResult result;
  result.requests = n;

  // Everything that can fail without touching a solver is resolved
  // serially up front: parse every line, then load every distinct
  // model once.  The parallel region below only ever sees requests
  // that are structurally able to run.
  std::vector<std::optional<Request>> requests(n);
  std::vector<unsigned char> status(n, 0);  // 0 pending, 1 ok, 2 failed
  std::vector<std::string> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      requests[i] = parse_request(lines[i]);
    } catch (const RequestError& failure) {
      status[i] = 2;
      errors[i] = failure.what();
    }
  }

  std::map<std::string, io::ModelFile> models;
  std::map<std::string, std::string> model_errors;
  for (std::size_t i = 0; i < n; ++i) {
    if (!requests[i]) continue;
    const std::string& path = requests[i]->model_path;
    if (models.count(path) != 0 || model_errors.count(path) != 0) continue;
    try {
      models.emplace(path, io::load_model(path));
    } catch (const std::exception& failure) {
      model_errors.emplace(path, failure.what());
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!requests[i] || status[i] != 0) continue;
    const auto bad = model_errors.find(requests[i]->model_path);
    if (bad != model_errors.end()) {
      status[i] = 2;
      errors[i] = "model '" + requests[i]->model_path + "': " + bad->second;
    }
  }

  // Checkpoint replay: completed indices come back as their exact
  // result bits (kOk) or their recorded failure message (kFailed), so
  // the re-rendered records are byte-identical to the first run's.
  std::vector<std::vector<double>> values(n);
  if (checkpoint != nullptr) {
    if (checkpoint->total() != n) {
      throw resil::CheckpointError(
          "run_batch: checkpoint total does not match the request count");
    }
    for (const resil::CheckpointEntry& entry : checkpoint->entries()) {
      const std::size_t i = static_cast<std::size_t>(entry.index);
      if (i >= n || status[i] != 0 || !requests[i]) continue;
      if (entry.status == resil::EntryStatus::kOk) {
        if (entry.words.size() != requests[i]->outputs.size()) {
          throw resil::CheckpointError(
              "run_batch: checkpoint entry has wrong payload size");
        }
        values[i].reserve(entry.words.size());
        for (const std::uint64_t word : entry.words) {
          values[i].push_back(resil::bits_f64(word));
        }
        status[i] = 1;
      } else {
        status[i] = 2;
        errors[i] = entry.note;
      }
      ++result.restored;
    }
  }

  ctmc::SharedSolveCache::Config cache_config;
  cache_config.capacity = options.cache_capacity;
  ctmc::SharedSolveCache shared(cache_config);
  std::atomic<std::uint64_t> worker_hits{0};
  std::atomic<std::uint64_t> worker_misses{0};

  ResultsSink sink(out);
  // Pre-resolved records (parse/model errors, checkpoint replays) go
  // to the sink before the workers start: their indices would
  // otherwise gap the contiguous prefix forever.
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == 1) {
      sink.push(i, render_result_line(i, *requests[i], values[i]));
    } else if (status[i] == 2) {
      sink.push(i, render_error_line(
                       i, requests[i] ? requests[i]->id : "", errors[i]));
    }
  }

  obs::Progress progress("serve.batch", n);
  core::parallel_for(
      n, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        ctmc::SolveCache local;
        local.set_shared(shared.enabled() ? &shared : nullptr);
        for (std::size_t i = begin; i < end; ++i) {
          if (status[i] != 0) continue;  // pre-resolved or restored
          if (cancel != nullptr && cancel->cancelled()) break;  // drain
          const Request& request = *requests[i];
          try {
            resil::chaos::worker_hook(i);
            const obs::Span request_span("serve.batch.request");
            values[i] = solve_request(request, models.at(request.model_path),
                                      local, cancel);
            status[i] = 1;
            if (checkpoint != nullptr) {
              resil::CheckpointEntry entry{i, resil::EntryStatus::kOk, {}, {}};
              entry.words.reserve(values[i].size());
              for (const double v : values[i]) {
                entry.words.push_back(resil::f64_bits(v));
              }
              checkpoint->record(std::move(entry));
            }
            sink.push(i, render_result_line(i, request, values[i]));
          } catch (const resil::CancelledError&) {
            break;  // interrupted mid-solve: leave the index pending
          } catch (const std::exception& failure) {
            status[i] = 2;
            errors[i] = failure.what();
            if (checkpoint != nullptr) {
              checkpoint->record(
                  {i, resil::EntryStatus::kFailed, {}, failure.what()});
            }
            sink.push(i, render_error_line(i, request.id, errors[i]));
            if (obs::enabled()) {
              obs::counter("serve.batch.requests_failed").add(1);
            }
          }
          progress.tick();
        }
        worker_hits.fetch_add(local.hits(), std::memory_order_relaxed);
        worker_misses.fetch_add(local.misses(), std::memory_order_relaxed);
      });
  progress.finish();
  if (checkpoint != nullptr) checkpoint->flush();
  result.written = sink.close();

  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == 1) ++result.succeeded;
    else if (status[i] == 2) ++result.failed;
  }
  result.interrupted = cancel != nullptr && cancel->cancelled() &&
                       result.succeeded + result.failed < n;
  if (result.interrupted) result.interrupt_reason = cancel->describe();
  result.cache = shared.stats();
  result.worker_hits = worker_hits.load(std::memory_order_relaxed);
  result.worker_misses = worker_misses.load(std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::counter("serve.batch.requests").add(n);
  }
  return result;
}

}  // namespace rascal::serve

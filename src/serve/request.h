// Solve-request records for the batch/serve execution mode.
//
// A request stream is JSONL: one self-contained JSON object per line,
// read from a file (`rascal_cli batch`) or stdin (`rascal_cli
// serve`).  Each request names a model file, optional parameter
// overrides, the solver configuration, and which metrics to report:
//
//   {"model": "examples/models/hadb_pair.rasc",
//    "set": {"FIR": 0.0005, "La_hadb": 0.00023},
//    "method": "gmres", "precond": "ilu0",
//    "outputs": ["availability", "downtime"], "id": "sweep-17"}
//
// Only "model" is required.  Unknown fields are rejected (a typoed
// "methd" must not silently solve with the default), numeric fields
// must be finite (strict io/number_parse rules), and a malformed line
// becomes a per-request error record in the results sink — never a
// process abort.  docs/serving.md documents the full schema.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/steady_state.h"
#include "expr/parameter_set.h"
#include "resil/retry.h"

namespace rascal::serve {

/// Malformed request line (bad JSON, unknown field, duplicate field,
/// non-finite number, missing "model").  Caught by the batch runner
/// and turned into an error record carrying this message.
class RequestError : public std::runtime_error,
                     public resil::ErrorClassTag {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] resil::ErrorClass error_class() const noexcept override {
    return resil::ErrorClass::kParse;
  }
};

/// Metrics a request may ask for (the "outputs" array).
enum class OutputKind {
  kAvailability,
  kUnavailability,
  kDowntime,          // minutes per year
  kMtbf,              // hours
  kMttf,              // hours
  kMttr,              // hours
  kRewardRate,        // expected reward rate (performability)
  kFailureFrequency,  // system failures per hour
};

[[nodiscard]] const char* to_string(OutputKind kind);
[[nodiscard]] bool parse_output(const std::string& name, OutputKind& out);
[[nodiscard]] bool parse_method(const std::string& name,
                                ctmc::SteadyStateMethod& out);
[[nodiscard]] bool parse_precond(const std::string& name,
                                 linalg::PrecondKind& out);

/// One parsed solve request.
struct Request {
  std::string id;          // echoed in the response when non-empty
  std::string model_path;  // required
  expr::ParameterSet overrides;
  ctmc::SteadyStateMethod method = ctmc::SteadyStateMethod::kGth;
  linalg::PrecondKind precond = linalg::PrecondKind::kIlu0;
  std::size_t sparse_threshold = 0;
  std::size_t max_iterations = 0;
  std::size_t gmres_restart = 0;
  /// Defaults to {availability, downtime} when the line has no
  /// "outputs" array.
  std::vector<OutputKind> outputs = {OutputKind::kAvailability,
                                     OutputKind::kDowntime};
};

/// Parses one JSONL line.  Throws RequestError on any problem; the
/// message carries a byte offset so a 10^4-line campaign file is
/// debuggable.
[[nodiscard]] Request parse_request(const std::string& line);

/// JSON string escaping for ids and error messages embedded in result
/// records (quotes, backslashes, control characters).
[[nodiscard]] std::string escape_json(const std::string& text);

/// Schema tag stamped into every result record.  Bump when the record
/// shape changes so downstream query tooling can dispatch.
inline constexpr const char* kResultSchema = "rascal.serve.v1";

/// Renders the result record of a successful solve: values are
/// printed with %.17g so records round-trip exactly and rendering is
/// deterministic (byte-identical across thread counts and cache
/// temperature).  `values` aligns with `request.outputs`.  A
/// non-empty `fallback` annotates a request the supervisor recovered
/// on a lower rung of the fallback ladder (e.g. "gth",
/// "precond:jacobi"): the numbers are honest, but they were not
/// produced by the configuration the request asked for, and the
/// record says so — degraded results are never silent.
[[nodiscard]] std::string render_result_line(
    std::size_t index, const Request& request,
    const std::vector<double>& values, const std::string& fallback = "");

/// Renders a per-request error record (parse failure, unknown model,
/// solver error).  `id` may be empty (unparsable lines have none).
/// `error_class` is the resil taxonomy slug (resil::to_string); empty
/// omits the field (legacy records and checkpoint-replayed failures).
[[nodiscard]] std::string render_error_line(
    std::size_t index, const std::string& id, const std::string& error,
    const std::string& error_class = "");

/// Renders the record of a request refused by admission control
/// ("status":"shed").  Shed requests are accounted for — distinct
/// from errors so a stream consumer can tell "your request was bad"
/// from "the server refused to run it under current limits".
[[nodiscard]] std::string render_shed_line(std::size_t index,
                                           const std::string& id,
                                           const std::string& reason);

}  // namespace rascal::serve

#include "serve/supervise.h"

#include <utility>

#include "obs/obs.h"
#include "resil/chaos.h"

namespace rascal::serve {

namespace {

const char* method_slug(ctmc::SteadyStateMethod method) noexcept {
  switch (method) {
    case ctmc::SteadyStateMethod::kGth: return "gth";
    case ctmc::SteadyStateMethod::kLu: return "lu";
    case ctmc::SteadyStateMethod::kPower: return "power";
    case ctmc::SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
    case ctmc::SteadyStateMethod::kGmres: return "gmres";
    case ctmc::SteadyStateMethod::kBiCgStab: return "bicgstab";
  }
  return "unknown";
}

// Preconditioner downgrade chain: each step is strictly cheaper and
// structurally harder to reject than the one before it.
linalg::PrecondKind downgrade(linalg::PrecondKind precond) noexcept {
  switch (precond) {
    case linalg::PrecondKind::kIlu0: return linalg::PrecondKind::kJacobi;
    case linalg::PrecondKind::kJacobi: return linalg::PrecondKind::kNone;
    case linalg::PrecondKind::kNone: return linalg::PrecondKind::kNone;
  }
  return linalg::PrecondKind::kNone;
}

std::string describe_fallback(const LadderRung& requested,
                              const LadderRung& final_rung) {
  if (final_rung.method != requested.method) {
    return method_slug(final_rung.method);
  }
  return std::string("precond:") + linalg::precond_name(final_rung.precond);
}

}  // namespace

std::vector<LadderRung> fallback_ladder(ctmc::SteadyStateMethod method,
                                        linalg::PrecondKind precond,
                                        std::size_t num_states,
                                        std::size_t sparse_threshold) {
  const std::size_t threshold =
      sparse_threshold == 0 ? ctmc::kDefaultSparseThreshold : sparse_threshold;
  std::vector<LadderRung> rungs;
  rungs.push_back({method, precond});
  if (num_states <= threshold) {
    // Dense regime: substitute methods, ending at GTH — the same
    // exact, cannot-nonconverge terminal the ctmc escalation cascade
    // uses.  Krylov rungs keep the requested preconditioner.
    const ctmc::SteadyStateMethod chain[] = {
        ctmc::SteadyStateMethod::kGmres, ctmc::SteadyStateMethod::kBiCgStab,
        ctmc::SteadyStateMethod::kGth};
    for (const ctmc::SteadyStateMethod next : chain) {
      if (next != method) rungs.push_back({next, precond});
    }
  } else {
    // Sparse regime: a dense fallback would materialize an n x n
    // matrix the threshold exists to forbid, so the descent stays
    // Krylov — downgrade the preconditioner, then switch method.
    const ctmc::SteadyStateMethod base =
        method == ctmc::SteadyStateMethod::kBiCgStab
            ? ctmc::SteadyStateMethod::kBiCgStab
            : ctmc::SteadyStateMethod::kGmres;
    linalg::PrecondKind p = precond;
    while (p != linalg::PrecondKind::kNone) {
      p = downgrade(p);
      rungs.push_back({base, p});
    }
    const ctmc::SteadyStateMethod other =
        base == ctmc::SteadyStateMethod::kGmres
            ? ctmc::SteadyStateMethod::kBiCgStab
            : ctmc::SteadyStateMethod::kGmres;
    rungs.push_back({other, linalg::PrecondKind::kNone});
  }
  return rungs;
}

SupervisedSolve supervised_solve(const ctmc::Ctmc& chain,
                                 const SolveSpec& spec,
                                 ctmc::SolveCache& cache,
                                 const SupervisionOptions& options,
                                 const resil::CancellationToken* cancel) {
  std::vector<LadderRung> rungs;
  if (options.fallback_ladder) {
    rungs = fallback_ladder(spec.method, spec.precond, chain.num_states(),
                            spec.sparse_threshold);
  } else {
    rungs.push_back({spec.method, spec.precond});
  }

  resil::RetryPolicy policy = options.retry;
  if (policy.max_attempts == 0) policy.max_attempts = 1;
  policy.base_iterations = spec.max_iterations;

  std::size_t rung = 0;
  std::size_t boost = 0;     // budget escalations on the current rung
  std::size_t attempt = 0;   // attempts consumed
  std::size_t injected = 0;  // test-hook faults already thrown
  for (;;) {
    ++attempt;
    try {
      if (injected < options.inject_transient_faults) {
        ++injected;
        throw resil::TransientError("injected transient fault (test hook)");
      }
      if (resil::chaos::enabled() && resil::chaos::tick("solver-fault")) {
        throw resil::TransientError("chaos: injected solver fault");
      }
      ctmc::SolveControl control;
      control.max_iterations = policy.iterations_for_attempt(boost);
      control.sparse_threshold = spec.sparse_threshold;
      control.precond = rungs[rung].precond;
      control.gmres_restart = spec.gmres_restart;
      control.cancel = cancel;
      const ctmc::SteadyState& steady = cache.steady_state(
          chain, rungs[rung].method, ctmc::Validation::kOn, control);
      SupervisedSolve out;
      out.steady = steady;
      out.attempts = attempt;
      out.rung = rung;
      out.final_rung = rungs[rung];
      out.final_budget = control.max_iterations;
      if (rung > 0) out.fallback = describe_fallback(rungs[0], rungs[rung]);
      if (obs::enabled()) {
        obs::counter("serve.supervise.attempts").add(attempt);
        if (attempt > 1) {
          obs::counter("serve.supervise.retries").add(attempt - 1);
          obs::counter("serve.supervise.recovered").add(1);
        }
        if (rung > 0) obs::counter("serve.supervise.fallbacks").add(1);
      }
      return out;
    } catch (const std::exception& failure) {
      const resil::ErrorClass cls = resil::classify(failure);
      if (!resil::retryable(cls) || !policy.allows_another(attempt - 1)) {
        if (obs::enabled() && cls != resil::ErrorClass::kCancelled) {
          obs::counter("serve.supervise.attempts").add(attempt);
          obs::counter("serve.supervise.exhausted").add(1);
        }
        throw;
      }
      if (cls == resil::ErrorClass::kTransient) {
        // Retry the identical attempt: a recovered transient is
        // bit-identical to a run the fault never touched.
        continue;
      }
      if (cls == resil::ErrorClass::kNonConvergence &&
          spec.max_iterations > 0 && boost == 0) {
        // One budget doubling before descending: a solve that was
        // merely short on budget converges along the same trajectory,
        // so the recovered bits match a first-try run with the larger
        // cap.
        ++boost;
        continue;
      }
      if (rung + 1 < rungs.size()) {
        ++rung;
        boost = 0;
        continue;
      }
      if (obs::enabled()) {
        obs::counter("serve.supervise.attempts").add(attempt);
        obs::counter("serve.supervise.exhausted").add(1);
      }
      throw;
    }
  }
}

std::string admission_verdict(const io::ModelFile& file,
                              const SupervisionOptions& options) {
  const std::size_t states = file.model.num_states();
  const std::size_t nnz = file.model.transitions().size();
  if (options.admission_states != 0 && states > options.admission_states) {
    return "admission: model declares " + std::to_string(states) +
           " states, cap is " + std::to_string(options.admission_states);
  }
  if (options.admission_nnz != 0 && nnz > options.admission_nnz) {
    return "admission: model declares " + std::to_string(nnz) +
           " transitions, cap is " + std::to_string(options.admission_nnz);
  }
  return "";
}

}  // namespace rascal::serve

// Batch/serve execution: dispatch a stream of solve requests across
// the thread pool, share solved distributions through the concurrent
// solve cache, and emit one JSONL result record per request.
//
// The runner owns the full determinism contract of the serve mode:
// the sink bytes are identical at any RASCAL_THREADS, with a cold or
// warm cache, and across a kill/resume (checkpoint replay of exact
// result bits).  A malformed request line becomes a per-request error
// record, never a process abort.
//
// Every request is accounted for, exactly once: it ends as a result
// record ("ok", possibly with a "fallback" annotation), an error
// record (classified by the resil taxonomy), a shed record (refused
// by admission control), or — for a request a dead worker abandoned —
// a gap-filled error record from the sink.  The counts in BatchResult
// reconcile against the stream length, and the CLI turns any loss
// (gaps, lost, sink write failures) into exit 3.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ctmc/solve_cache.h"
#include "resil/resil.h"
#include "serve/supervise.h"

namespace rascal::serve {

struct BatchOptions {
  /// Worker threads (0 = RASCAL_THREADS / hardware default).
  std::size_t threads = 0;
  /// Shared solve-cache slots (0 disables the shared tier; workers
  /// keep their single-entry local caches either way).
  std::size_t cache_capacity = 1024;
  /// Cancellation / checkpoint / failure policy.  skip_failures is
  /// implied: a failing request always becomes an error record.
  resil::ExecutionControl control;
  /// Retry / fallback-ladder / admission configuration.
  SupervisionOptions supervision;
};

struct BatchResult {
  std::size_t requests = 0;
  std::size_t succeeded = 0;  // "status":"ok" records
  std::size_t failed = 0;     // "status":"error" records
  std::size_t shed = 0;       // "status":"shed" records (admission)
  std::size_t restored = 0;   // replayed from the checkpoint
  std::size_t written = 0;    // records the sink actually emitted
  std::size_t gaps = 0;       // gap-filled records at sink close
  std::size_t lost = 0;       // never completed though not interrupted
  std::size_t sink_write_failures = 0;  // records the stream refused
  bool interrupted = false;   // drained before finishing
  std::string interrupt_reason;
  /// Shared-tier statistics plus the per-worker local caches.
  ctmc::SharedSolveCache::Stats cache;
  std::uint64_t worker_hits = 0;
  std::uint64_t worker_misses = 0;

  /// Fraction of solve lookups answered by either cache tier.
  [[nodiscard]] double hit_rate() const noexcept;

  /// True when the stream lost records: a gap, a lost request, or a
  /// record the sink could not write.  Forces exit 3 in the CLI.
  [[nodiscard]] bool lossy() const noexcept {
    return gaps > 0 || lost > 0 || sink_write_failures > 0;
  }
};

/// Reads one request line per record, keeping blank lines (they
/// become error records) so request indices always equal input line
/// numbers minus one.  Trailing newline does not create a record.
[[nodiscard]] std::vector<std::string> read_request_lines(std::istream& in);

/// Fingerprint of the request stream *and* the supervision knobs that
/// change the output (retry bound, ladder, admission caps) for
/// checkpoint compatibility: resuming against a different stream or
/// different shedding rules is rejected.
[[nodiscard]] std::uint64_t batch_checkpoint_digest(
    const std::vector<std::string>& lines,
    const SupervisionOptions& supervision = {});

/// Runs every request and writes the result records to `out` in
/// request order.  Throws only on infrastructure failures (checkpoint
/// mismatch); per-request problems are error/shed records in the
/// stream.
BatchResult run_batch(const std::vector<std::string>& lines,
                      std::ostream& out, const BatchOptions& options);

}  // namespace rascal::serve

#include "io/number_parse.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace rascal::io {

namespace {

// std::stod is laxer than the CLI contract: it skips leading
// whitespace and accepts hexfloats ("0x1p3").  Both are rejected up
// front so the std parsers only ever see plain decimal tokens.
bool plausible_decimal(const std::string& text) {
  if (text.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  const std::size_t start =
      (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (text.size() > start + 1 && text[start] == '0' &&
      (text[start + 1] == 'x' || text[start + 1] == 'X')) {
    return false;
  }
  return true;
}

}  // namespace

bool parse_finite_double(const std::string& text, double& out) {
  if (!plausible_decimal(text)) return false;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || !std::isfinite(value)) return false;
    out = value;
    return true;
  } catch (const std::exception&) {
    return false;  // empty, non-numeric, or out of double range
  }
}

bool parse_size(const std::string& text, std::size_t& out) {
  // stoul happily wraps "-3" to a huge count and skips whitespace;
  // demand a leading digit.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  try {
    std::size_t used = 0;
    const unsigned long value = std::stoul(text, &used);
    if (used != text.size()) return false;
    out = static_cast<std::size_t>(value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_uint64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) return false;
    out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace rascal::io

// Text format for availability models, so the toolkit is usable from
// the command line (tools/rascal_cli) without writing C++.
//
// Line-based syntax ('#' starts a comment anywhere):
//
//   model  JSAS HADB node pair          # optional title
//   param  La_hadb  2/8760              # value may use earlier params
//   param  FIR      0.001
//   state  Ok           reward 1
//   state  2_Down       reward 0
//   rate   Ok 2_Down    2*La_hadb*FIR   # rest of line = expression
//
// Parameter values are expressions evaluated eagerly against the
// parameters defined above them; rate expressions stay symbolic so
// the CLI can override parameters and re-solve.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "ctmc/builder.h"
#include "expr/parameter_set.h"

namespace rascal::io {

/// Parse failure with 1-based line number.
class ModelFileError : public std::runtime_error {
 public:
  ModelFileError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct ModelFile {
  std::string name;
  expr::ParameterSet parameters;  // defaults declared in the file
  ctmc::SymbolicCtmc model;

  /// Binds the symbolic model against the file's defaults overridden
  /// by `overrides`.
  [[nodiscard]] ctmc::Ctmc bind(
      const expr::ParameterSet& overrides = {}) const;
};

/// Parses a model from a stream.  Throws ModelFileError on syntax
/// problems (unknown directive, bad state reference, duplicate
/// parameter, missing reward, unparsable expression).
[[nodiscard]] ModelFile parse_model(std::istream& in);

/// Parses a model from a string.
[[nodiscard]] ModelFile parse_model_text(const std::string& text);

/// Loads a model from a file path.  Throws std::runtime_error when
/// the file cannot be opened, ModelFileError on parse problems.
[[nodiscard]] ModelFile load_model(const std::string& path);

}  // namespace rascal::io

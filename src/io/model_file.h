// Text format for availability models, so the toolkit is usable from
// the command line (tools/rascal_cli) without writing C++.
//
// Line-based syntax ('#' starts a comment anywhere):
//
//   model  JSAS HADB node pair          # optional title
//   param  La_hadb  2/8760              # value may use earlier params
//   param  FIR      0.001
//   state  Ok           reward 1
//   state  2_Down       reward 0
//   rate   Ok 2_Down    2*La_hadb*FIR   # rest of line = expression
//
// Parameter values are expressions evaluated eagerly against the
// parameters defined above them; rate expressions stay symbolic so
// the CLI can override parameters and re-solve.
#pragma once

#include <iosfwd>
#include <set>
#include <stdexcept>
#include <string>

#include "ctmc/builder.h"
#include "expr/parameter_set.h"
#include "lint/lint.h"

namespace rascal::io {

/// Parse failure with 1-based line number and (when known) 1-based
/// column of the offending token; column 0 means "whole line".
/// Line 0 marks a file-level failure (e.g. the file cannot be
/// opened), where no position prefix makes sense.
class ModelFileError : public std::runtime_error {
 public:
  ModelFileError(const std::string& message, std::size_t line,
                 std::size_t column = 0)
      : std::runtime_error(
            line == 0
                ? message
                : "line " + std::to_string(line) +
                      (column > 0 ? ", column " + std::to_string(column) : "") +
                      ": " + message),
        line_(line),
        column_(column),
        message_(message) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  /// The bare message, without the "line L, column C: " prefix that
  /// what() carries (diagnostics render the position separately).
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  std::size_t line_;
  std::size_t column_;
  std::string message_;
};

struct ModelFile {
  std::string name;
  expr::ParameterSet parameters;  // defaults declared in the file
  ctmc::SymbolicCtmc model;
  // Where each param/state/rate was declared; lets the linter report
  // file:line:column locations.  `source.file` is filled by
  // load_model (streams have no path).
  lint::SourceMap source;
  // Parameters referenced by other param values or state rewards
  // ("param La La_as+La_os").  Those expressions are evaluated eagerly
  // at parse time, so the symbolic model never sees them; without this
  // record the unused-parameter check (R021) would false-positive.
  std::set<std::string> params_used_in_definitions;

  /// Binds the symbolic model against the file's defaults overridden
  /// by `overrides`.
  [[nodiscard]] ctmc::Ctmc bind(
      const expr::ParameterSet& overrides = {}) const;
};

/// Parses a model from a stream.  Throws ModelFileError on syntax
/// problems (unknown directive, bad state reference, duplicate
/// parameter, missing reward, unparsable expression).  Parse only —
/// no lint; use lint_model_file or load_model for analysis.
[[nodiscard]] ModelFile parse_model(std::istream& in);

/// Parses a model from a string.
[[nodiscard]] ModelFile parse_model_text(const std::string& text);

/// Runs the full static analysis (lint::lint_model) over a parsed
/// file, with diagnostics located at file:line:column via the file's
/// SourceMap.  Unused-parameter warnings (R021) are on: file-local
/// params have no other consumer.  `overrides` participate so linting
/// matches what bind() would solve.
[[nodiscard]] lint::LintReport lint_model_file(
    const ModelFile& file, const expr::ParameterSet& overrides = {},
    const lint::LintOptions& options = {});

/// Opt-out switch for lint-on-load.
enum class LintOnLoad { kOn, kOff };

/// Loads a model from a file path.  Throws std::runtime_error when
/// the file cannot be opened, ModelFileError on parse problems, and —
/// with lint on (the default) — lint::LintError when the model has
/// error-severity diagnostics.  Warnings do not throw; use
/// lint_model_file directly to see them.
[[nodiscard]] ModelFile load_model(const std::string& path,
                                   LintOnLoad lint = LintOnLoad::kOn);

}  // namespace rascal::io

// Graphviz DOT export of a CTMC — render model diagrams like the
// paper's Figures 2-4 with `dot -Tpng`.
#pragma once

#include <iosfwd>
#include <string>

#include "ctmc/ctmc.h"

namespace rascal::io {

struct DotOptions {
  std::string graph_name = "ctmc";
  bool show_rates = true;
  int rate_precision = 4;  // significant digits on edge labels
};

/// Writes the chain as a directed graph: up states are ellipses, down
/// states are shaded boxes, edges carry rates.
void write_dot(std::ostream& os, const ctmc::Ctmc& chain,
               const DotOptions& options = {});

/// Convenience: DOT text as a string.
[[nodiscard]] std::string to_dot(const ctmc::Ctmc& chain,
                                 const DotOptions& options = {});

}  // namespace rascal::io

#include "io/dot_export.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace rascal::io {

namespace {

// DOT identifiers allow few characters; quote and escape everything.
std::string quoted(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const ctmc::Ctmc& chain,
               const DotOptions& options) {
  os << "digraph " << quoted(options.graph_name) << " {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\"];\n";
  for (ctmc::StateId s = 0; s < chain.num_states(); ++s) {
    os << "  " << quoted(chain.state_name(s));
    if (chain.reward(s) < 0.5) {
      os << " [shape=box, style=filled, fillcolor=\"#f4cccc\"]";
    } else if (chain.reward(s) < 1.0) {
      os << " [shape=ellipse, style=filled, fillcolor=\"#fff2cc\"]";
    } else {
      os << " [shape=ellipse]";
    }
    os << ";\n";
  }
  for (const ctmc::Transition& t : chain.transitions()) {
    os << "  " << quoted(chain.state_name(t.from)) << " -> "
       << quoted(chain.state_name(t.to));
    if (options.show_rates) {
      std::ostringstream rate;
      rate << std::setprecision(options.rate_precision) << t.rate;
      os << " [label=" << quoted(rate.str()) << "]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const ctmc::Ctmc& chain, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, chain, options);
  return os.str();
}

}  // namespace rascal::io

// Strict numeric parsing for untrusted text (CLI flags, serve-mode
// request fields).  Every helper requires the WHOLE token to parse —
// trailing garbage ("1.5junk") is rejected, not silently dropped —
// and parse_finite_double additionally rejects non-finite values
// ("nan", "inf", "1e999"): a NaN failure rate or an infinite deadline
// is always an input mistake, and letting it through produces garbage
// far downstream of the message that could have named the bad flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rascal::io {

/// Parses `text` as a finite double.  Returns false (leaving `out`
/// untouched) on empty input, trailing characters, overflow, or a
/// non-finite result (nan/inf in any capitalisation).
[[nodiscard]] bool parse_finite_double(const std::string& text, double& out);

/// Parses `text` as a non-negative size.  Whole-token match required;
/// rejects negative values ("-3" is not a count, not 2^64-3).
[[nodiscard]] bool parse_size(const std::string& text, std::size_t& out);

/// Parses `text` as an unsigned 64-bit integer (seeds).  Whole-token
/// match required; rejects negative values.
[[nodiscard]] bool parse_uint64(const std::string& text, std::uint64_t& out);

}  // namespace rascal::io

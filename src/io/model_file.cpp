#include "io/model_file.h"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "expr/expression.h"
#include "expr/lexer.h"

namespace rascal::io {

namespace {

// Cursor over one comment-stripped line that remembers the 1-based
// column of every token it hands out, so errors and the SourceMap can
// point at the offending word rather than just the line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& raw) : line_(raw) {
    const auto hash = line_.find('#');
    if (hash != std::string::npos) line_.erase(hash);
    const auto last = line_.find_last_not_of(" \t\r");
    line_.erase(last == std::string::npos ? 0 : last + 1);
    skip_spaces();
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= line_.size(); }

  /// Column the next token would start at (1-based).
  [[nodiscard]] std::size_t column() const noexcept { return pos_ + 1; }

  /// Next whitespace-delimited word ("" at end of line).
  std::pair<std::string, std::size_t> word() {
    const std::size_t column = pos_ + 1;
    const auto end = line_.find_first_of(" \t", pos_);
    std::string text =
        line_.substr(pos_, end == std::string::npos ? end : end - pos_);
    pos_ = end == std::string::npos ? line_.size() : end;
    skip_spaces();
    return {std::move(text), column};
  }

  /// Rest of the line verbatim (expressions keep internal spaces).
  std::pair<std::string, std::size_t> rest() {
    const std::size_t column = pos_ + 1;
    std::string text = line_.substr(pos_);
    pos_ = line_.size();
    return {std::move(text), column};
  }

 private:
  void skip_spaces() {
    pos_ = line_.find_first_not_of(" \t", pos_);
    if (pos_ == std::string::npos) pos_ = line_.size();
  }

  std::string line_;
  std::size_t pos_ = 0;
};

}  // namespace

ctmc::Ctmc ModelFile::bind(const expr::ParameterSet& overrides) const {
  return model.bind(parameters.with(overrides));
}

ModelFile parse_model(std::istream& in) {
  ModelFile out;
  std::set<std::string> state_names;
  std::set<std::string> param_names;
  std::string raw;
  std::size_t line_number = 0;
  bool has_rate = false;

  while (std::getline(in, raw)) {
    ++line_number;
    LineScanner scan(raw);
    if (scan.at_end()) continue;

    const auto [directive, directive_col] = scan.word();
    if (directive == "model") {
      out.name = scan.rest().first;
    } else if (directive == "param") {
      const auto [name, name_col] = scan.word();
      const auto [value_text, value_col] = scan.rest();
      if (name.empty() || value_text.empty()) {
        throw ModelFileError("expected 'param NAME VALUE'", line_number,
                             directive_col);
      }
      if (!param_names.insert(name).second) {
        throw ModelFileError("duplicate parameter '" + name + "'",
                             line_number, name_col);
      }
      try {
        // Values may reference earlier parameters ("La_as/La").
        const expr::Expression value = expr::Expression::parse(value_text);
        for (const std::string& used : value.variables()) {
          out.params_used_in_definitions.insert(used);
        }
        out.parameters.set(name, value.evaluate(out.parameters));
      } catch (const std::exception& e) {
        throw ModelFileError(
            "bad value for parameter '" + name + "': " + e.what(),
            line_number, value_col);
      }
      out.source.parameters[name] = {line_number, name_col};
    } else if (directive == "state") {
      const auto [name, name_col] = scan.word();
      const auto [reward_kw, reward_kw_col] = scan.word();
      const auto [reward_text, reward_col] = scan.rest();
      if (name.empty() || reward_kw != "reward" || reward_text.empty()) {
        throw ModelFileError("expected 'state NAME reward VALUE'",
                             line_number,
                             reward_kw == "reward" || reward_kw.empty()
                                 ? directive_col
                                 : reward_kw_col);
      }
      if (!state_names.insert(name).second) {
        throw ModelFileError("duplicate state '" + name + "'", line_number,
                             name_col);
      }
      double reward = 0.0;
      try {
        const expr::Expression parsed = expr::Expression::parse(reward_text);
        for (const std::string& used : parsed.variables()) {
          out.params_used_in_definitions.insert(used);
        }
        reward = parsed.evaluate(out.parameters);
      } catch (const std::exception& e) {
        throw ModelFileError(
            "bad reward for state '" + name + "': " + e.what(), line_number,
            reward_col);
      }
      (void)out.model.state(name, reward);
      out.source.states[name] = {line_number, name_col};
    } else if (directive == "rate") {
      const auto [from, from_col] = scan.word();
      const auto [to, to_col] = scan.word();
      const auto [expression, expr_col] = scan.rest();
      if (from.empty() || to.empty() || expression.empty()) {
        throw ModelFileError("expected 'rate FROM TO EXPRESSION'",
                             line_number, directive_col);
      }
      if (!state_names.count(from)) {
        throw ModelFileError("unknown state '" + from + "'", line_number,
                             from_col);
      }
      if (!state_names.count(to)) {
        throw ModelFileError("unknown state '" + to + "'", line_number,
                             to_col);
      }
      try {
        out.model.rate(from, to, expression);
      } catch (const std::exception& e) {
        throw ModelFileError(std::string("bad rate expression: ") + e.what(),
                             line_number, expr_col);
      }
      out.source.transitions.push_back({line_number, from_col});
      has_rate = true;
    } else {
      throw ModelFileError("unknown directive '" + directive + "'",
                           line_number, directive_col);
    }
  }

  if (state_names.empty()) {
    throw ModelFileError("model declares no states", line_number);
  }
  if (!has_rate) {
    throw ModelFileError("model declares no transitions", line_number);
  }
  return out;
}

ModelFile parse_model_text(const std::string& text) {
  std::istringstream in(text);
  return parse_model(in);
}

lint::LintReport lint_model_file(const ModelFile& file,
                                 const expr::ParameterSet& overrides,
                                 const lint::LintOptions& options) {
  lint::LintOptions file_options = options;
  file_options.warn_unused_parameters = true;
  const lint::LintReport report =
      lint::lint_model(file.model, file.parameters.with(overrides),
                       file_options, &file.source);
  // A parameter consumed by another param's value (or a state reward)
  // was used, even though the eager evaluation hides that use from the
  // symbolic model; drop the R021 false positives.
  lint::LintReport filtered;
  for (const lint::Diagnostic& d : report) {
    if (d.code == lint::codes::kUnusedParameter &&
        file.params_used_in_definitions.count(d.location.parameter) > 0) {
      continue;
    }
    filtered.add(d);
  }
  return filtered;
}

ModelFile load_model(const std::string& path, LintOnLoad lint) {
  std::ifstream in(path);
  if (!in) {
    throw ModelFileError("cannot open model file: " + path, 0);
  }
  ModelFile file = parse_model(in);
  file.source.file = path;
  if (lint == LintOnLoad::kOn) {
    lint::LintReport report = lint_model_file(file);
    if (report.has_errors()) {
      throw lint::LintError(std::move(report));
    }
  }
  return file;
}

}  // namespace rascal::io

#include "io/model_file.h"

#include <fstream>
#include <set>
#include <sstream>

#include "expr/expression.h"
#include "expr/lexer.h"

namespace rascal::io {

namespace {

// Strips a trailing comment and surrounding whitespace.
std::string clean_line(const std::string& raw) {
  std::string line = raw;
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

// Splits off the first whitespace-delimited word.
std::pair<std::string, std::string> split_word(const std::string& text) {
  const auto end = text.find_first_of(" \t");
  if (end == std::string::npos) return {text, ""};
  const auto rest = text.find_first_not_of(" \t", end);
  return {text.substr(0, end),
          rest == std::string::npos ? "" : text.substr(rest)};
}

}  // namespace

ctmc::Ctmc ModelFile::bind(const expr::ParameterSet& overrides) const {
  return model.bind(parameters.with(overrides));
}

ModelFile parse_model(std::istream& in) {
  ModelFile out;
  std::set<std::string> state_names;
  std::set<std::string> param_names;
  std::string raw;
  std::size_t line_number = 0;
  bool has_rate = false;

  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;

    const auto [directive, rest] = split_word(line);
    if (directive == "model") {
      out.name = rest;
    } else if (directive == "param") {
      const auto [name, value_text] = split_word(rest);
      if (name.empty() || value_text.empty()) {
        throw ModelFileError("expected 'param NAME VALUE'", line_number);
      }
      if (!param_names.insert(name).second) {
        throw ModelFileError("duplicate parameter '" + name + "'",
                             line_number);
      }
      try {
        // Values may reference earlier parameters ("La_as/La").
        out.parameters.set(
            name,
            expr::Expression::parse(value_text).evaluate(out.parameters));
      } catch (const std::exception& e) {
        throw ModelFileError(
            "bad value for parameter '" + name + "': " + e.what(),
            line_number);
      }
    } else if (directive == "state") {
      const auto [name, reward_part] = split_word(rest);
      const auto [reward_kw, reward_text] = split_word(reward_part);
      if (name.empty() || reward_kw != "reward" || reward_text.empty()) {
        throw ModelFileError("expected 'state NAME reward VALUE'",
                             line_number);
      }
      if (!state_names.insert(name).second) {
        throw ModelFileError("duplicate state '" + name + "'", line_number);
      }
      double reward = 0.0;
      try {
        reward =
            expr::Expression::parse(reward_text).evaluate(out.parameters);
      } catch (const std::exception& e) {
        throw ModelFileError(
            "bad reward for state '" + name + "': " + e.what(), line_number);
      }
      (void)out.model.state(name, reward);
    } else if (directive == "rate") {
      const auto [from, after_from] = split_word(rest);
      const auto [to, expression] = split_word(after_from);
      if (from.empty() || to.empty() || expression.empty()) {
        throw ModelFileError("expected 'rate FROM TO EXPRESSION'",
                             line_number);
      }
      if (!state_names.count(from)) {
        throw ModelFileError("unknown state '" + from + "'", line_number);
      }
      if (!state_names.count(to)) {
        throw ModelFileError("unknown state '" + to + "'", line_number);
      }
      try {
        out.model.rate(from, to, expression);
      } catch (const std::exception& e) {
        throw ModelFileError(std::string("bad rate expression: ") + e.what(),
                             line_number);
      }
      has_rate = true;
    } else {
      throw ModelFileError("unknown directive '" + directive + "'",
                           line_number);
    }
  }

  if (state_names.empty()) {
    throw ModelFileError("model declares no states", line_number);
  }
  if (!has_rate) {
    throw ModelFileError("model declares no transitions", line_number);
  }
  return out;
}

ModelFile parse_model_text(const std::string& text) {
  std::istringstream in(text);
  return parse_model(in);
}

ModelFile load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file: " + path);
  }
  return parse_model(in);
}

}  // namespace rascal::io

#include "analysis/cost.h"

#include <stdexcept>

#include "core/units.h"
#include "stats/summary.h"

namespace rascal::analysis {

CostBreakdown yearly_cost(const core::AvailabilityMetrics& metrics,
                          std::size_t hosts, const CostStructure& costs) {
  if (costs.downtime_cost_per_minute < 0.0 || costs.cost_per_failure < 0.0 ||
      costs.host_cost_per_year < 0.0 || costs.sla_downtime_minutes < 0.0 ||
      costs.sla_breach_penalty < 0.0) {
    throw std::invalid_argument("yearly_cost: negative cost input");
  }
  CostBreakdown breakdown;
  breakdown.downtime_cost =
      metrics.downtime_minutes_per_year * costs.downtime_cost_per_minute;
  breakdown.incident_cost = metrics.failure_frequency *
                            core::kHoursPerYear * costs.cost_per_failure;
  breakdown.infrastructure_cost =
      static_cast<double>(hosts) * costs.host_cost_per_year;
  breakdown.expected_sla_penalty =
      metrics.downtime_minutes_per_year > costs.sla_downtime_minutes
          ? costs.sla_breach_penalty
          : 0.0;
  breakdown.total = breakdown.downtime_cost + breakdown.incident_cost +
                    breakdown.infrastructure_cost +
                    breakdown.expected_sla_penalty;
  return breakdown;
}

double sla_breach_probability(const std::vector<double>& downtime_samples,
                              double sla_downtime_minutes) {
  return 1.0 -
         stats::fraction_below(downtime_samples, sla_downtime_minutes);
}

}  // namespace rascal::analysis

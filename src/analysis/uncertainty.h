// Uncertainty analysis (paper Section 7, Figures 7 and 8).
//
// Parameters that cannot be measured accurately in bounded lab time —
// failure rates, customer-controlled recovery times, the imperfect
// recovery fraction — are sampled from stated ranges; the model is
// solved once per virtual "customer system"; and the output metric is
// summarized by its mean and symmetric sample intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/parametric.h"
#include "stats/sampling.h"
#include "stats/summary.h"

namespace rascal::analysis {

struct UncertaintyOptions {
  std::size_t samples = 1000;  // paper uses 1,000 snapshots
  std::uint64_t seed = 2004;   // reproducible by default
  bool latin_hypercube = false;
};

struct UncertaintySample {
  stats::Sample parameters;  // aligned with the ranges
  double metric = 0.0;
};

struct UncertaintyResult {
  std::vector<UncertaintySample> samples;
  std::vector<double> metrics;  // convenience copy, in draw order
  double mean = 0.0;
  stats::Interval interval80;
  stats::Interval interval90;
  stats::Summary summary;

  /// Fraction of sampled systems whose metric is below `threshold`
  /// (e.g. yearly downtime under 5.25 min = five-9s availability).
  [[nodiscard]] double fraction_below(double threshold) const;
};

/// Runs the analysis: each draw overrides `base` with sampled values
/// for every range, then evaluates `model`.
[[nodiscard]] UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options = {});

}  // namespace rascal::analysis

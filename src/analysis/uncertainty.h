// Uncertainty analysis (paper Section 7, Figures 7 and 8).
//
// Parameters that cannot be measured accurately in bounded lab time —
// failure rates, customer-controlled recovery times, the imperfect
// recovery fraction — are sampled from stated ranges; the model is
// solved once per virtual "customer system"; and the output metric is
// summarized by its mean and symmetric sample intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/parametric.h"
#include "stats/sampling.h"
#include "stats/summary.h"

namespace rascal::analysis {

struct UncertaintyOptions {
  std::size_t samples = 1000;  // paper uses 1,000 snapshots
  std::uint64_t seed = 2004;   // reproducible by default
  bool latin_hypercube = false;
  // Worker threads for the per-sample model solves: 0 = automatic
  // (RASCAL_THREADS env, else hardware_concurrency).  All draws are
  // generated up front and metrics are accumulated in draw order, so
  // every thread count returns bit-identical results.  threads != 1
  // requires `model` to be safe to call concurrently.
  std::size_t threads = 1;
};

struct UncertaintySample {
  stats::Sample parameters;  // aligned with the ranges
  double metric = 0.0;
};

struct UncertaintyResult {
  std::vector<UncertaintySample> samples;
  std::vector<double> metrics;  // convenience copy, in draw order
  double mean = 0.0;
  stats::Interval interval80;
  stats::Interval interval90;
  stats::Summary summary;

  /// Fraction of sampled systems whose metric is below `threshold`
  /// (e.g. yearly downtime under 5.25 min = five-9s availability).
  [[nodiscard]] double fraction_below(double threshold) const;
};

/// Pure helper: `base` with every range's parameter overridden by the
/// corresponding coordinate of `draw`.  Shared by the serial and
/// parallel evaluation paths.
[[nodiscard]] expr::ParameterSet sample_parameters(
    const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const stats::Sample& draw);

/// Runs the analysis: each draw overrides `base` with sampled values
/// for every range, then evaluates `model`.
[[nodiscard]] UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options = {});

}  // namespace rascal::analysis

// Uncertainty analysis (paper Section 7, Figures 7 and 8).
//
// Parameters that cannot be measured accurately in bounded lab time —
// failure rates, customer-controlled recovery times, the imperfect
// recovery fraction — are sampled from stated ranges; the model is
// solved once per virtual "customer system"; and the output metric is
// summarized by its mean and symmetric sample intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parametric.h"
#include "resil/resil.h"
#include "stats/sampling.h"
#include "stats/summary.h"

namespace rascal::analysis {

struct UncertaintyOptions {
  std::size_t samples = 1000;  // paper uses 1,000 snapshots
  std::uint64_t seed = 2004;   // reproducible by default
  bool latin_hypercube = false;
  // Worker threads for the per-sample model solves: 0 = automatic
  // (RASCAL_THREADS env, else hardware_concurrency).  All draws are
  // generated up front and metrics are accumulated in draw order, so
  // every thread count returns bit-identical results.  threads != 1
  // requires `model` to be safe to call concurrently.
  std::size_t threads = 1;
  // Resilience: cancellation, checkpoint/resume, skip-failed-samples.
  // Excluded from the checkpoint digest (resume may legally change
  // thread count or control settings).
  resil::ExecutionControl control;
};

struct UncertaintySample {
  stats::Sample parameters;  // aligned with the ranges
  double metric = 0.0;
};

/// A sample whose model solve threw (recorded under
/// ExecutionControl::skip_failures instead of aborting the run).
struct SampleFailure {
  std::size_t index = 0;
  stats::Sample parameters;  // the draw that failed, for reproduction
  std::string error;
};

struct UncertaintyResult {
  std::vector<UncertaintySample> samples;  // successful solves only
  std::vector<double> metrics;  // convenience copy, in draw order
  double mean = 0.0;
  stats::Interval interval80;
  stats::Interval interval90;
  stats::Summary summary;

  std::vector<SampleFailure> failures;  // dropped samples, in draw order
  std::size_t requested = 0;            // draws asked for
  std::size_t completed = 0;            // == samples.size()
  bool interrupted = false;             // cancelled with work pending
  std::string interrupt_reason;         // cancel token's describe()

  /// Fraction of sampled systems whose metric is below `threshold`
  /// (e.g. yearly downtime under 5.25 min = five-9s availability).
  [[nodiscard]] double fraction_below(double threshold) const;
};

/// Pure helper: `base` with every range's parameter overridden by the
/// corresponding coordinate of `draw`.  Shared by the serial and
/// parallel evaluation paths.
[[nodiscard]] expr::ParameterSet sample_parameters(
    const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const stats::Sample& draw);

/// Fingerprint of everything that determines the draw stream and
/// result bits (seed, sample count, sampler, ranges, and the RNG
/// substream-derivation scheme — NOT the thread count).  Used as the
/// checkpoint digest so a resume under different settings is rejected.
[[nodiscard]] std::uint64_t uncertainty_checkpoint_digest(
    const UncertaintyOptions& options,
    const std::vector<stats::ParameterRange>& ranges);

/// Runs the analysis: each draw overrides `base` with sampled values
/// for every range, then evaluates `model`.
[[nodiscard]] UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options = {});

/// Context-aware overload (the hot path): each worker chunk owns one
/// SolveCache and one parameter-set copy of `base`, so a thousand
/// samples perform O(workers) solver allocations instead of
/// O(samples).  Metrics are bit-identical to the plain overload at any
/// thread count (oracle-gated).
[[nodiscard]] UncertaintyResult uncertainty_analysis(
    const ContextModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options = {});

}  // namespace rascal::analysis

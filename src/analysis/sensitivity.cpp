#include "analysis/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/thread_pool.h"

namespace rascal::analysis {

std::vector<Sensitivity> finite_difference_sensitivities(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<std::string>& parameters, double relative_step,
    std::size_t threads) {
  if (!(relative_step > 0.0)) {
    throw std::invalid_argument(
        "finite_difference_sensitivities: step must be > 0");
  }
  const double y0 = model(base);
  return core::parallel_map(
      parameters.size(), core::resolve_threads(threads),
      [&](std::size_t i) {
        const std::string& name = parameters[i];
        const double x0 = base.get(name);
        const double h =
            x0 == 0.0 ? relative_step : std::abs(x0) * relative_step;
        expr::ParameterSet lo = base;
        expr::ParameterSet hi = base;
        lo.set(name, x0 - h);
        hi.set(name, x0 + h);
        const double dydx = (model(hi) - model(lo)) / (2.0 * h);
        Sensitivity s;
        s.parameter = name;
        s.derivative = dydx;
        s.elasticity = y0 != 0.0 ? dydx * x0 / y0 : 0.0;
        return s;
      });
}

std::vector<TornadoBar> tornado_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    std::size_t threads) {
  std::vector<TornadoBar> bars = core::parallel_map(
      ranges.size(), core::resolve_threads(threads), [&](std::size_t i) {
        const stats::ParameterRange& range = ranges[i];
        expr::ParameterSet lo = base;
        expr::ParameterSet hi = base;
        lo.set(range.name, range.lo);
        hi.set(range.name, range.hi);
        return TornadoBar{range.name, model(lo), model(hi)};
      });
  std::sort(bars.begin(), bars.end(),
            [](const TornadoBar& a, const TornadoBar& b) {
              return a.swing() > b.swing();
            });
  return bars;
}

namespace {

// Average ranks, with ties sharing the mean rank.
std::vector<double> ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double mean_rank =
        0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = mean_rank;
    i = j + 1;
  }
  return r;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("spearman: length mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("spearman: need at least 2 observations");
  }
  return pearson(ranks(xs), ranks(ys));
}

std::vector<ParameterImportance> parameter_importance(
    const UncertaintyResult& result,
    const std::vector<stats::ParameterRange>& ranges) {
  std::vector<ParameterImportance> out;
  out.reserve(ranges.size());
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    std::vector<double> xs;
    xs.reserve(result.samples.size());
    for (const UncertaintySample& s : result.samples) {
      xs.push_back(s.parameters.at(d));
    }
    out.push_back(
        {ranges[d].name, spearman_rank_correlation(xs, result.metrics)});
  }
  std::sort(out.begin(), out.end(),
            [](const ParameterImportance& a, const ParameterImportance& b) {
              return std::abs(a.rank_correlation) >
                     std::abs(b.rank_correlation);
            });
  return out;
}

}  // namespace rascal::analysis

// Local and global sensitivity analysis.
//
//  * finite_difference_sensitivities: local partial derivatives and
//    elasticities around a base point.
//  * tornado_analysis: metric at each range endpoint, holding the
//    remaining parameters at base values — ranks which uncertain
//    parameter moves the output most.
//  * spearman / parameter_importance: rank correlation between sampled
//    parameter values and the output metric across an uncertainty
//    run — a global importance measure.
#pragma once

#include <string>
#include <vector>

#include "analysis/parametric.h"
#include "analysis/uncertainty.h"
#include "stats/sampling.h"

namespace rascal::analysis {

struct Sensitivity {
  std::string parameter;
  double derivative = 0.0;  // d(metric)/d(parameter), central difference
  double elasticity = 0.0;  // (x / y) * dy/dx, scale-free
};

/// Central-difference sensitivities for each named parameter around
/// `base`.  `relative_step` scales the perturbation per parameter
/// (|x| * step, or step when x == 0).  `threads` workers evaluate the
/// per-parameter stencils (0 = automatic); results are index-ordered,
/// so any thread count returns identical sensitivities.  threads != 1
/// requires `model` to be safe to call concurrently.
[[nodiscard]] std::vector<Sensitivity> finite_difference_sensitivities(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<std::string>& parameters, double relative_step = 1e-4,
    std::size_t threads = 1);

struct TornadoBar {
  std::string parameter;
  double metric_at_lo = 0.0;
  double metric_at_hi = 0.0;
  [[nodiscard]] double swing() const noexcept {
    const double d = metric_at_hi - metric_at_lo;
    return d < 0.0 ? -d : d;
  }
};

/// One bar per range, sorted by descending swing.  `threads` workers
/// evaluate the endpoint pairs (0 = automatic); bars are assembled in
/// range order before sorting, so any thread count returns identical
/// bars.  threads != 1 requires a concurrency-safe `model`.
[[nodiscard]] std::vector<TornadoBar> tornado_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    std::size_t threads = 1);

/// Spearman rank correlation coefficient between two equal-length
/// samples.  Throws std::invalid_argument on mismatch or length < 2.
[[nodiscard]] double spearman_rank_correlation(const std::vector<double>& xs,
                                               const std::vector<double>& ys);

struct ParameterImportance {
  std::string parameter;
  double rank_correlation = 0.0;
};

/// Spearman correlation of each sampled parameter against the metric,
/// from an uncertainty_analysis result; sorted by descending |rho|.
[[nodiscard]] std::vector<ParameterImportance> parameter_importance(
    const UncertaintyResult& result,
    const std::vector<stats::ParameterRange>& ranges);

}  // namespace rascal::analysis

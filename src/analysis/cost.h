// Service-cost view of availability results: the paper closes by
// noting its numbers are "useful in planning data centers and web
// services deployments" — planning means money.  This module turns a
// solved model plus a cost structure into expected yearly cost, and
// compares deployment options.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.h"

namespace rascal::analysis {

struct CostStructure {
  double downtime_cost_per_minute = 0.0;   // revenue/SLA penalty
  double cost_per_failure = 0.0;           // incident handling, credits
  double host_cost_per_year = 0.0;         // amortized hardware + ops
  double sla_downtime_minutes = 0.0;       // contractual allowance
  double sla_breach_penalty = 0.0;         // flat penalty when exceeded
};

struct CostBreakdown {
  double downtime_cost = 0.0;
  double incident_cost = 0.0;
  double infrastructure_cost = 0.0;
  double expected_sla_penalty = 0.0;
  double total = 0.0;
};

/// Expected yearly cost of running a system with the given metrics on
/// `hosts` machines.  The SLA penalty is all-or-nothing on the
/// *expected* downtime (deterministic approximation); for a
/// probabilistic penalty use the uncertainty machinery and
/// sla_breach_probability below.  Throws std::invalid_argument on
/// negative cost inputs.
[[nodiscard]] CostBreakdown yearly_cost(
    const core::AvailabilityMetrics& metrics, std::size_t hosts,
    const CostStructure& costs);

/// Fraction of sampled systems (e.g. from uncertainty_analysis
/// downtime metrics) whose yearly downtime exceeds the SLA allowance.
[[nodiscard]] double sla_breach_probability(
    const std::vector<double>& downtime_samples,
    double sla_downtime_minutes);

}  // namespace rascal::analysis

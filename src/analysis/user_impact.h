// User-perceived impact of unavailability (the paper's motivating
// metric: "minimize loss of transactions") and performability.
//
// Translates steady-state results into workload terms: requests that
// arrive while the system is down are lost; requests served in
// partially-rewarded states are degraded (e.g. the +5 s session
// recovery latency of the paper's Recovery state); every system
// failure additionally aborts the transactions in flight.
#pragma once

#include "core/metrics.h"
#include "ctmc/ctmc.h"
#include "ctmc/steady_state.h"

namespace rascal::analysis {

struct Workload {
  double requests_per_hour = 0.0;
  double concurrent_sessions = 0.0;  // in-flight state lost per failure
};

struct UserImpact {
  double lost_requests_per_year = 0.0;      // arrived while down
  double degraded_requests_per_year = 0.0;  // served below full reward
  double sessions_lost_per_year = 0.0;      // aborted mid-transaction
  double failures_per_year = 0.0;
  double expected_reward_rate = 1.0;        // performability level
  double capacity_minutes_lost_per_year = 0.0;  // (1 - reward) x time
};

/// Computes the impact of running `workload` on the system described
/// by `chain`/`steady`.  `up_threshold` separates down states (which
/// lose requests) from degraded-but-up states (which degrade them).
/// Throws std::invalid_argument on negative workload figures or a
/// size mismatch.
[[nodiscard]] UserImpact user_impact(
    const ctmc::Ctmc& chain, const ctmc::SteadyState& steady,
    const Workload& workload,
    double up_threshold = core::kDefaultUpThreshold);

}  // namespace rascal::analysis

// Parametric (sensitivity-sweep) analysis: re-evaluate a model metric
// while one parameter walks a range — the RAScad capability behind
// Figures 5 and 6 of the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ctmc/solve_cache.h"
#include "expr/parameter_set.h"

namespace rascal::analysis {

/// A scalar model output as a function of parameter bindings, e.g.
/// "system availability of Config 1" or "yearly downtime of Config 2".
using ModelFunction = std::function<double(const expr::ParameterSet&)>;

/// Context-aware model: additionally receives a worker-local
/// SolveCache, letting the hot path reuse factorisation scratch and
/// memoized solves across a whole batch instead of allocating per
/// evaluation.  The cache never changes results (oracle-gated), so a
/// context model must return the same bits as its plain counterpart.
using ContextModelFunction =
    std::function<double(const expr::ParameterSet&, ctmc::SolveCache&)>;

/// `count` evenly spaced values covering [lo, hi] inclusive.
/// count >= 2; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

struct SweepPoint {
  double parameter_value = 0.0;
  double metric = 0.0;
};

/// Evaluates `model` at `base` with `parameter` overridden by each of
/// `values`, in order.  `threads` workers evaluate the points (0 =
/// automatic: RASCAL_THREADS env, else hardware_concurrency); results
/// are index-ordered so every thread count returns identical points.
/// threads != 1 requires `model` to be safe to call concurrently.
[[nodiscard]] std::vector<SweepPoint> parametric_sweep(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::string& parameter, const std::vector<double>& values,
    std::size_t threads = 1);

/// Context-aware overload: each worker evaluates its points through
/// its own SolveCache and a parameter set copied once per chunk, so a
/// sweep performs O(workers) instead of O(points) solver allocations.
/// Point values are bit-identical to the plain overload.
[[nodiscard]] std::vector<SweepPoint> parametric_sweep(
    const ContextModelFunction& model, const expr::ParameterSet& base,
    const std::string& parameter, const std::vector<double>& values,
    std::size_t threads = 1);

}  // namespace rascal::analysis

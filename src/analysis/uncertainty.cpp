#include "analysis/uncertainty.h"

#include <stdexcept>

#include "stats/rng.h"

namespace rascal::analysis {

double UncertaintyResult::fraction_below(double threshold) const {
  return stats::fraction_below(metrics, threshold);
}

UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options) {
  if (options.samples == 0) {
    throw std::invalid_argument("uncertainty_analysis: zero samples");
  }
  stats::RandomEngine rng(options.seed);
  const std::vector<stats::Sample> draws =
      options.latin_hypercube
          ? stats::latin_hypercube_samples(ranges, options.samples, rng)
          : stats::monte_carlo_samples(ranges, options.samples, rng);

  UncertaintyResult result;
  result.samples.reserve(draws.size());
  result.metrics.reserve(draws.size());
  for (const stats::Sample& draw : draws) {
    expr::ParameterSet params = base;
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      params.set(ranges[d].name, draw[d]);
    }
    const double metric = model(params);
    result.samples.push_back({draw, metric});
    result.metrics.push_back(metric);
    result.summary.add(metric);
  }
  result.mean = result.summary.mean();
  result.interval80 = stats::sample_interval(result.metrics, 0.8);
  result.interval90 = stats::sample_interval(result.metrics, 0.9);
  return result;
}

}  // namespace rascal::analysis

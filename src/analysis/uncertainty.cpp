#include "analysis/uncertainty.h"

#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "stats/rng.h"

namespace rascal::analysis {

double UncertaintyResult::fraction_below(double threshold) const {
  return stats::fraction_below(metrics, threshold);
}

expr::ParameterSet sample_parameters(
    const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const stats::Sample& draw) {
  expr::ParameterSet params = base;
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    params.set(ranges[d].name, draw[d]);
  }
  return params;
}

UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options) {
  const obs::Span span("analysis.uncertainty");
  if (options.samples == 0) {
    throw std::invalid_argument("uncertainty_analysis: zero samples");
  }
  stats::RandomEngine rng(options.seed);
  const std::vector<stats::Sample> draws =
      options.latin_hypercube
          ? stats::latin_hypercube_samples(ranges, options.samples, rng)
          : stats::monte_carlo_samples(ranges, options.samples, rng);

  // The draws are fixed before the parallel region, each model solve
  // depends only on its own draw, and every reduction below runs over
  // the index-ordered metrics — so the thread count cannot change any
  // output bit.
  // Telemetry (spans, progress ticks) only reads clocks and atomics,
  // never the RNG, so instrumented runs stay on the same draw stream.
  obs::Progress progress("uncertainty", draws.size());
  const std::vector<double> metrics = core::parallel_map(
      draws.size(), core::resolve_threads(options.threads),
      [&](std::size_t i) {
        const obs::Span sample_span("analysis.uncertainty.sample");
        const double metric = model(sample_parameters(base, ranges, draws[i]));
        progress.tick();
        return metric;
      });
  progress.finish();
  if (obs::enabled()) {
    obs::counter("analysis.uncertainty.samples").add(draws.size());
  }

  UncertaintyResult result;
  result.samples.reserve(draws.size());
  result.metrics.reserve(draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i) {
    result.samples.push_back({draws[i], metrics[i]});
    result.metrics.push_back(metrics[i]);
    result.summary.add(metrics[i]);
  }
  result.mean = result.summary.mean();
  result.interval80 = stats::sample_interval(result.metrics, 0.8);
  result.interval90 = stats::sample_interval(result.metrics, 0.9);
  return result;
}

}  // namespace rascal::analysis

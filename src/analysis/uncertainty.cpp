#include "analysis/uncertainty.h"

#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "resil/chaos.h"
#include "stats/rng.h"

namespace rascal::analysis {

double UncertaintyResult::fraction_below(double threshold) const {
  return stats::fraction_below(metrics, threshold);
}

expr::ParameterSet sample_parameters(
    const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const stats::Sample& draw) {
  expr::ParameterSet params = base;
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    params.set(ranges[d].name, draw[d]);
  }
  return params;
}

std::uint64_t uncertainty_checkpoint_digest(
    const UncertaintyOptions& options,
    const std::vector<stats::ParameterRange>& ranges) {
  resil::DigestBuilder digest;
  digest.add_str("uncertainty")
      .add_u64(options.seed)
      .add_u64(options.samples)
      .add_u64(options.latin_hypercube ? 1 : 0)
      // Probe the substream-derivation scheme itself: if it ever
      // changes, old checkpoints stop matching instead of replaying
      // bits that a fresh run would no longer produce.
      .add_u64(stats::RandomEngine(options.seed).substream_seed(0));
  digest.add_u64(ranges.size());
  for (const stats::ParameterRange& range : ranges) {
    digest.add_str(range.name).add_f64(range.lo).add_f64(range.hi);
  }
  return digest.value();
}

UncertaintyResult uncertainty_analysis(
    const ModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options) {
  // The context path only threads extra scratch through; ignoring the
  // cache makes it evaluate the identical operation sequence.
  return uncertainty_analysis(
      ContextModelFunction(
          [&model](const expr::ParameterSet& params, ctmc::SolveCache&) {
            return model(params);
          }),
      base, ranges, options);
}

UncertaintyResult uncertainty_analysis(
    const ContextModelFunction& model, const expr::ParameterSet& base,
    const std::vector<stats::ParameterRange>& ranges,
    const UncertaintyOptions& options) {
  const obs::Span span("analysis.uncertainty");
  if (options.samples == 0) {
    throw std::invalid_argument("uncertainty_analysis: zero samples");
  }
  stats::RandomEngine rng(options.seed);
  const std::vector<stats::Sample> draws =
      options.latin_hypercube
          ? stats::latin_hypercube_samples(ranges, options.samples, rng)
          : stats::monte_carlo_samples(ranges, options.samples, rng);
  const std::size_t n = draws.size();

  const resil::CancellationToken* cancel = options.control.cancel;
  resil::Checkpointer* checkpoint = options.control.checkpoint;
  const bool skip_failures = options.control.skip_failures;

  // Per-index completion state: 0 = pending, 1 = solved, 2 = failed.
  // Restored checkpoint entries are replayed into these slots before
  // the parallel region; workers skip any non-pending index, so a
  // resumed run recomputes exactly the indices an uninterrupted run
  // would have produced (the draws above regenerate identically from
  // the seed).
  std::vector<double> metrics(n, 0.0);
  std::vector<unsigned char> status(n, 0);
  std::vector<std::string> errors(n);
  if (checkpoint != nullptr) {
    if (checkpoint->total() != n) {
      throw resil::CheckpointError(
          "uncertainty_analysis: checkpoint total does not match the "
          "sample count");
    }
    for (const resil::CheckpointEntry& entry : checkpoint->entries()) {
      const std::size_t i = static_cast<std::size_t>(entry.index);
      if (entry.status == resil::EntryStatus::kOk) {
        if (entry.words.size() != 1) {
          throw resil::CheckpointError(
              "uncertainty_analysis: checkpoint entry has wrong payload "
              "size");
        }
        metrics[i] = resil::bits_f64(entry.words[0]);
        status[i] = 1;
      } else {
        status[i] = 2;
        errors[i] = entry.note;
      }
    }
  }

  // The draws are fixed before the parallel region, each model solve
  // depends only on its own draw, and every reduction below runs over
  // the index-ordered metrics — so the thread count cannot change any
  // output bit.
  // Telemetry (spans, progress ticks) only reads clocks and atomics,
  // never the RNG, so instrumented runs stay on the same draw stream.
  obs::Progress progress("uncertainty", n);
  core::parallel_for(
      n, core::resolve_threads(options.threads),
      [&](std::size_t begin, std::size_t end) {
        // Chunk-local = worker-local: the solver cache and the
        // parameter set are set up once per chunk.  Every draw
        // overrides every ranged parameter, so reusing the set leaves
        // exactly the same bindings sample_parameters() would build.
        ctmc::SolveCache cache;
        expr::ParameterSet params = base;
        for (std::size_t i = begin; i < end; ++i) {
          if (status[i] != 0) continue;  // restored from checkpoint
          if (cancel != nullptr && cancel->cancelled()) return;  // drain
          try {
            resil::chaos::worker_hook(i);
            const obs::Span sample_span("analysis.uncertainty.sample");
            for (std::size_t d = 0; d < ranges.size(); ++d) {
              params.set(ranges[d].name, draws[i][d]);
            }
            metrics[i] = model(params, cache);
            status[i] = 1;
            if (checkpoint != nullptr) {
              checkpoint->record({i, resil::EntryStatus::kOk,
                                  {resil::f64_bits(metrics[i])}, {}});
            }
          } catch (const resil::CancelledError&) {
            return;  // interrupted mid-solve: leave index pending
          } catch (const std::exception& failure) {
            if (!skip_failures) throw;
            status[i] = 2;
            errors[i] = failure.what();
            if (checkpoint != nullptr) {
              checkpoint->record({i, resil::EntryStatus::kFailed, {},
                                  failure.what()});
            }
            if (obs::enabled()) {
              obs::counter("analysis.uncertainty.samples_failed").add(1);
            }
          }
          progress.tick();
        }
      });
  progress.finish();
  if (checkpoint != nullptr) checkpoint->flush();
  if (obs::enabled()) {
    obs::counter("analysis.uncertainty.samples").add(n);
  }

  UncertaintyResult result;
  result.requested = n;
  result.samples.reserve(n);
  result.metrics.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == 1) {
      result.samples.push_back({draws[i], metrics[i]});
      result.metrics.push_back(metrics[i]);
      result.summary.add(metrics[i]);
    } else if (status[i] == 2) {
      result.failures.push_back({i, draws[i], errors[i]});
    }
  }
  result.completed = result.metrics.size();
  result.interrupted =
      cancel != nullptr && cancel->cancelled() &&
      result.completed + result.failures.size() < n;
  if (result.interrupted) result.interrupt_reason = cancel->describe();
  if (!result.metrics.empty()) {
    result.mean = result.summary.mean();
    result.interval80 = stats::sample_interval(result.metrics, 0.8);
    result.interval90 = stats::sample_interval(result.metrics, 0.9);
  }
  return result;
}

}  // namespace rascal::analysis

#include "analysis/user_impact.h"

#include <stdexcept>

#include "core/units.h"

namespace rascal::analysis {

UserImpact user_impact(const ctmc::Ctmc& chain,
                       const ctmc::SteadyState& steady,
                       const Workload& workload, double up_threshold) {
  if (workload.requests_per_hour < 0.0 ||
      workload.concurrent_sessions < 0.0) {
    throw std::invalid_argument("user_impact: negative workload");
  }
  if (steady.probabilities.size() != chain.num_states()) {
    throw std::invalid_argument("user_impact: steady-state size mismatch");
  }

  UserImpact impact;
  double p_down = 0.0;
  double degraded_weight = 0.0;  // sum pi * (1 - reward) over up states
  double reward_rate = 0.0;
  for (ctmc::StateId i = 0; i < chain.num_states(); ++i) {
    const double p = steady.probability(i);
    const double r = chain.reward(i);
    reward_rate += p * r;
    if (r < up_threshold) {
      p_down += p;
    } else if (r < 1.0) {
      degraded_weight += p * (1.0 - r);
    }
  }

  const core::AvailabilityMetrics metrics =
      core::availability_metrics(chain, steady, up_threshold);
  const double requests_per_year =
      workload.requests_per_hour * core::kHoursPerYear;

  impact.lost_requests_per_year = p_down * requests_per_year;
  impact.degraded_requests_per_year = degraded_weight * requests_per_year;
  impact.failures_per_year =
      metrics.failure_frequency * core::kHoursPerYear;
  impact.sessions_lost_per_year =
      impact.failures_per_year * workload.concurrent_sessions;
  impact.expected_reward_rate = reward_rate;
  impact.capacity_minutes_lost_per_year =
      (1.0 - reward_rate) * core::kMinutesPerYear;
  return impact;
}

}  // namespace rascal::analysis

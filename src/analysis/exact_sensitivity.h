// Exact (non-finite-difference) steady-state sensitivities.
//
// Differentiating the balance equations pi Q = 0, sum(pi) = 1 with
// respect to a parameter theta gives the linear system
//
//     (d pi) Q = - pi (dQ/dtheta),   sum(d pi) = 0,
//
// where dQ/dtheta comes from the symbolic derivatives of the model's
// rate expressions.  This yields machine-precision derivatives of
// availability, downtime, and any reward metric — no step-size tuning
// — and is validated against finite differences in the tests.
#pragma once

#include <string>

#include "ctmc/builder.h"
#include "expr/parameter_set.h"
#include "linalg/matrix.h"

namespace rascal::analysis {

struct ExactSensitivity {
  std::string parameter;
  linalg::Vector d_pi;                    // derivative of each state prob.
  double d_availability = 0.0;            // d P(up) / d theta
  double d_downtime_minutes = 0.0;        // d (yearly downtime) / d theta
  double d_expected_reward_rate = 0.0;    // d (sum pi r) / d theta
};

/// Differentiates the steady state of `model` (bound at `params`)
/// with respect to `parameter`.  Throws expr::UnknownParameterError
/// for unbound parameters and std::domain_error when a rate uses a
/// non-differentiable function of the parameter.
[[nodiscard]] ExactSensitivity steady_state_sensitivity(
    const ctmc::SymbolicCtmc& model, const expr::ParameterSet& params,
    const std::string& parameter, double up_threshold = 0.5);

}  // namespace rascal::analysis

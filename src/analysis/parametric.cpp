#include "analysis/parametric.h"

#include <stdexcept>

#include "core/thread_pool.h"

namespace rascal::analysis {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count < 2) {
    throw std::invalid_argument("linspace: count must be >= 2");
  }
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + static_cast<double>(i) * step;
  }
  out.back() = hi;  // avoid accumulated round-off at the endpoint
  return out;
}

std::vector<SweepPoint> parametric_sweep(const ModelFunction& model,
                                         const expr::ParameterSet& base,
                                         const std::string& parameter,
                                         const std::vector<double>& values,
                                         std::size_t threads) {
  return core::parallel_map(
      values.size(), core::resolve_threads(threads), [&](std::size_t i) {
        expr::ParameterSet params = base;
        params.set(parameter, values[i]);
        return SweepPoint{values[i], model(params)};
      });
}

std::vector<SweepPoint> parametric_sweep(const ContextModelFunction& model,
                                         const expr::ParameterSet& base,
                                         const std::string& parameter,
                                         const std::vector<double>& values,
                                         std::size_t threads) {
  std::vector<SweepPoint> out(values.size());
  core::parallel_for(values.size(), core::resolve_threads(threads),
                     [&](std::size_t begin, std::size_t end) {
                       // Chunk-local = worker-local: the cache and the
                       // parameter set are copied once per chunk, and
                       // each point only rebinds the swept parameter.
                       ctmc::SolveCache cache;
                       expr::ParameterSet params = base;
                       for (std::size_t i = begin; i < end; ++i) {
                         params.set(parameter, values[i]);
                         out[i] = {values[i], model(params, cache)};
                       }
                     });
  return out;
}

}  // namespace rascal::analysis

#include "analysis/exact_sensitivity.h"

#include "core/units.h"
#include "ctmc/steady_state.h"
#include "linalg/lu.h"

namespace rascal::analysis {

ExactSensitivity steady_state_sensitivity(const ctmc::SymbolicCtmc& model,
                                          const expr::ParameterSet& params,
                                          const std::string& parameter,
                                          double up_threshold) {
  const ctmc::Ctmc chain = model.bind(params);
  const std::size_t n = chain.num_states();
  const auto steady = ctmc::solve_steady_state(chain);

  // dQ/dtheta from the symbolic rate derivatives.  Note: transitions
  // whose bound rate is exactly zero are dropped from `chain` but
  // their derivative can still be nonzero (e.g. FIR = 0), so dQ is
  // assembled from the *symbolic* transition list.
  linalg::Matrix dq(n, n, 0.0);
  for (const auto& t : model.transitions()) {
    const double d = t.rate.derivative(parameter).evaluate(params);
    if (d == 0.0) continue;
    dq(t.from, t.to) += d;
    dq(t.from, t.from) -= d;
  }

  // Solve (d pi) Q = -pi dQ with the normalization sum(d pi) = 0:
  // transpose to Q^T x = rhs and overwrite the last balance row.
  linalg::Matrix a = chain.generator().transposed();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  linalg::Vector rhs = dq.left_multiply(steady.probabilities);
  for (double& v : rhs) v = -v;
  rhs[n - 1] = 0.0;
  linalg::Vector d_pi = linalg::solve_linear_system(std::move(a), rhs);

  ExactSensitivity out;
  out.parameter = parameter;
  for (std::size_t i = 0; i < n; ++i) {
    if (chain.reward(i) >= up_threshold) out.d_availability += d_pi[i];
    out.d_expected_reward_rate += d_pi[i] * chain.reward(i);
  }
  out.d_downtime_minutes =
      -out.d_availability * core::kMinutesPerYear;
  out.d_pi = std::move(d_pi);
  return out;
}

}  // namespace rascal::analysis

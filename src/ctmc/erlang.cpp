#include "ctmc/erlang.h"

#include <set>
#include <stdexcept>
#include <string>

namespace rascal::ctmc {

Ctmc erlangize(const Ctmc& chain, StateId state, StateId completion_target,
               std::size_t stages) {
  if (stages == 0) {
    throw std::invalid_argument("erlangize: stages must be >= 1");
  }
  if (state >= chain.num_states() ||
      completion_target >= chain.num_states()) {
    throw std::invalid_argument("erlangize: state id out of range");
  }
  const double mu = chain.rate(state, completion_target);
  if (!(mu > 0.0)) {
    throw std::invalid_argument(
        "erlangize: no completion transition from '" +
        chain.state_name(state) + "' to '" +
        chain.state_name(completion_target) + "'");
  }
  if (stages == 1) return chain;

  // Original states keep their ids; stages 2..k are appended.
  std::vector<State> states(chain.states());
  std::vector<StateId> stage_id(stages);
  stage_id[0] = state;
  for (std::size_t i = 1; i < stages; ++i) {
    stage_id[i] = states.size();
    states.push_back({chain.state_name(state) + "#" + std::to_string(i + 1),
                      chain.reward(state)});
  }

  const double stage_rate = static_cast<double>(stages) * mu;
  std::vector<Transition> transitions;
  for (const Transition& t : chain.transitions()) {
    if (t.from == state && t.to == completion_target) continue;  // replaced
    transitions.push_back(t);
    // Competing exits from the expanded state fire from every stage.
    if (t.from == state) {
      for (std::size_t i = 1; i < stages; ++i) {
        transitions.push_back({stage_id[i], t.to, t.rate});
      }
    }
  }
  for (std::size_t i = 0; i + 1 < stages; ++i) {
    transitions.push_back({stage_id[i], stage_id[i + 1], stage_rate});
  }
  transitions.push_back({stage_id[stages - 1], completion_target,
                         stage_rate});
  return Ctmc(std::move(states), std::move(transitions));
}

Ctmc erlangize_all(const Ctmc& chain,
                   const std::vector<ErlangTarget>& targets,
                   std::size_t stages) {
  std::set<StateId> seen;
  for (const ErlangTarget& t : targets) {
    if (!seen.insert(t.state).second) {
      throw std::invalid_argument(
          "erlangize_all: duplicate state in targets");
    }
  }
  Ctmc out = chain;
  // Ids of untouched states are stable across passes, so sequential
  // application is safe.
  for (const ErlangTarget& t : targets) {
    out = erlangize(out, t.state, t.completion_target, stages);
  }
  return out;
}

}  // namespace rascal::ctmc

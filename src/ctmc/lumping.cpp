#include "ctmc/lumping.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace rascal::ctmc {

namespace {

// block_of[state] = block index; validates coverage.
std::vector<std::size_t> block_index(const Ctmc& chain,
                                     const Partition& partition) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> block_of(chain.num_states(), kNone);
  for (std::size_t b = 0; b < partition.size(); ++b) {
    for (StateId s : partition[b]) {
      if (s >= chain.num_states()) {
        throw std::invalid_argument("lumping: state id out of range");
      }
      if (block_of[s] != kNone) {
        throw std::invalid_argument("lumping: state '" +
                                    chain.state_name(s) +
                                    "' appears in two blocks");
      }
      block_of[s] = b;
    }
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (block_of[s] == kNone) {
      throw std::invalid_argument("lumping: state '" + chain.state_name(s) +
                                  "' not covered by the partition");
    }
  }
  return block_of;
}

// Aggregate rate vector of `s` toward each block (excluding s's own
// block, whose internal flow is irrelevant to lumpability).
std::vector<double> aggregate_rates(const Ctmc& chain, StateId s,
                                    const std::vector<std::size_t>& block_of,
                                    std::size_t num_blocks) {
  std::vector<double> rates(num_blocks, 0.0);
  for (const Transition& t : chain.transitions()) {
    if (t.from != s) continue;
    if (block_of[t.to] == block_of[s]) continue;
    rates[block_of[t.to]] += t.rate;
  }
  return rates;
}

}  // namespace

bool is_lumpable(const Ctmc& chain, const Partition& partition,
                 double tolerance, std::string* violation) {
  const auto block_of = block_index(chain, partition);
  for (std::size_t b = 0; b < partition.size(); ++b) {
    if (partition[b].empty()) continue;
    const auto reference =
        aggregate_rates(chain, partition[b][0], block_of, partition.size());
    for (std::size_t i = 1; i < partition[b].size(); ++i) {
      const auto rates =
          aggregate_rates(chain, partition[b][i], block_of, partition.size());
      for (std::size_t j = 0; j < partition.size(); ++j) {
        const double scale =
            std::max({std::abs(reference[j]), std::abs(rates[j]), 1e-300});
        if (std::abs(reference[j] - rates[j]) > tolerance * scale) {
          if (violation != nullptr) {
            *violation = "states '" + chain.state_name(partition[b][0]) +
                         "' and '" + chain.state_name(partition[b][i]) +
                         "' disagree on the aggregate rate into block " +
                         std::to_string(j);
          }
          return false;
        }
      }
    }
  }
  return true;
}

Ctmc lump(const Ctmc& chain, const Partition& partition,
          const std::vector<std::string>& block_names, double tolerance) {
  std::string violation;
  if (!is_lumpable(chain, partition, tolerance, &violation)) {
    throw std::invalid_argument("lump: partition is not lumpable: " +
                                violation);
  }
  if (!block_names.empty() && block_names.size() != partition.size()) {
    throw std::invalid_argument("lump: block_names arity mismatch");
  }
  const auto block_of = block_index(chain, partition);

  std::vector<State> states;
  states.reserve(partition.size());
  for (std::size_t b = 0; b < partition.size(); ++b) {
    if (partition[b].empty()) {
      throw std::invalid_argument("lump: empty block");
    }
    const double reward = chain.reward(partition[b][0]);
    for (StateId s : partition[b]) {
      if (chain.reward(s) != reward) {
        throw std::invalid_argument(
            "lump: block mixes different rewards (state '" +
            chain.state_name(s) + "')");
      }
    }
    states.push_back({block_names.empty()
                          ? "lump:" + chain.state_name(partition[b][0])
                          : block_names[b],
                      reward});
  }

  std::vector<Transition> transitions;
  for (std::size_t b = 0; b < partition.size(); ++b) {
    const auto rates =
        aggregate_rates(chain, partition[b][0], block_of, partition.size());
    for (std::size_t j = 0; j < partition.size(); ++j) {
      if (j != b && rates[j] > 0.0) {
        transitions.push_back({b, j, rates[j]});
      }
    }
  }
  return Ctmc(std::move(states), std::move(transitions));
}

Partition coarsest_ordinary_lumping(const Ctmc& chain, double tolerance) {
  // Start from reward classes, then refine: states stay together only
  // while their aggregate rates toward every current block agree.
  std::vector<std::size_t> block_of(chain.num_states());
  {
    std::map<double, std::size_t> reward_class;
    for (StateId s = 0; s < chain.num_states(); ++s) {
      block_of[s] = reward_class.try_emplace(chain.reward(s),
                                             reward_class.size())
                        .first->second;
    }
  }

  for (bool changed = true; changed;) {
    changed = false;
    const std::size_t num_blocks =
        *std::max_element(block_of.begin(), block_of.end()) + 1;

    // Aggregate rates of every state toward every block.
    std::vector<std::vector<double>> rates(chain.num_states());
    for (StateId s = 0; s < chain.num_states(); ++s) {
      rates[s] = aggregate_rates(chain, s, block_of, num_blocks);
    }

    // For each target block, cluster the observed rates within the
    // relative tolerance; a state's signature is its current block
    // plus the cluster id of its rate toward every block.
    std::vector<std::vector<std::size_t>> signature(
        chain.num_states(), std::vector<std::size_t>(num_blocks + 1));
    for (StateId s = 0; s < chain.num_states(); ++s) {
      signature[s][0] = block_of[s];
    }
    for (std::size_t j = 0; j < num_blocks; ++j) {
      std::vector<StateId> order(chain.num_states());
      for (StateId s = 0; s < chain.num_states(); ++s) order[s] = s;
      std::sort(order.begin(), order.end(), [&](StateId a, StateId b) {
        return rates[a][j] < rates[b][j];
      });
      std::size_t cluster = 0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) {
          const double prev = rates[order[i - 1]][j];
          const double curr = rates[order[i]][j];
          const double scale =
              std::max({std::abs(prev), std::abs(curr), 1e-300});
          if (curr - prev > tolerance * scale) ++cluster;
        }
        signature[order[i]][j + 1] = cluster;
      }
    }

    std::map<std::vector<std::size_t>, std::size_t> signature_class;
    std::vector<std::size_t> next(chain.num_states());
    for (StateId s = 0; s < chain.num_states(); ++s) {
      next[s] = signature_class
                    .try_emplace(signature[s], signature_class.size())
                    .first->second;
    }
    if (next != block_of) {
      block_of = std::move(next);
      changed = true;
    }
  }

  const std::size_t num_blocks =
      *std::max_element(block_of.begin(), block_of.end()) + 1;
  Partition partition(num_blocks);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    partition[block_of[s]].push_back(s);
  }
  // The refinement uses quantized signatures; re-verify exactly and
  // fall back to splitting any offending block into singletons.
  std::string violation;
  if (!is_lumpable(chain, partition, tolerance, &violation)) {
    Partition singletons(chain.num_states());
    for (StateId s = 0; s < chain.num_states(); ++s) {
      singletons[s].push_back(s);
    }
    return singletons;
  }
  return partition;
}

}  // namespace rascal::ctmc

// Fail-fast structural validation at the solvers' entry points.
//
// Each solver used to discover broken input deep inside a
// factorization (a singular LU, a stalled iteration) or not at all
// (GTH on a reducible chain quietly concentrates probability in one
// recurrent class).  These checks run a cheap O(states + transitions)
// structural analysis up front and throw lint::LintError — carrying
// the full structured diagnostics — before any numerics start.
//
// Every solver takes an opt-out (Validation::kOff here, or
// TransientOptions::validate) for callers that construct chains by
// trusted machinery and solve in hot loops.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/ctmc.h"
#include "lint/diagnostic.h"

namespace rascal::ctmc {

/// Opt-out switch for fail-fast validation.
enum class Validation { kOn, kOff };

/// Steady-state preconditions: the stationary distribution must be
/// unique, i.e. exactly one closed communicating class.  Transient
/// states are allowed (they get probability zero; the linter flags
/// them as R011/R014 separately).  Returns R010 plus one R013 per
/// closed class when two or more classes are closed.
[[nodiscard]] lint::LintReport validate_for_steady_state(const Ctmc& chain);

/// Absorption preconditions: every non-target state must be able to
/// reach the target set.  Returns one R015 error per offending state
/// (all of them, not just the first).
[[nodiscard]] lint::LintReport validate_for_absorption(
    const Ctmc& chain, const std::vector<StateId>& targets);

/// Transient feasibility: the uniformization truncation point for
/// horizon `t` is at least ceil(max_exit_rate * t); when that already
/// exceeds `max_terms`, summation is guaranteed to abort.  Returns an
/// R032 error in that case.
[[nodiscard]] lint::LintReport validate_for_transient(
    const Ctmc& chain, double t, std::size_t max_terms);

/// Throws lint::LintError when `report` carries error diagnostics;
/// otherwise discards it.
void throw_if_errors(lint::LintReport report);

}  // namespace rascal::ctmc

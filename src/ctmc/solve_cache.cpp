#include "ctmc/solve_cache.h"

#include "obs/obs.h"
#include "resil/checkpoint.h"

namespace rascal::ctmc {

std::uint64_t SolveCache::generator_digest(const Ctmc& chain) {
  resil::DigestBuilder digest;
  digest.add_u64(chain.num_states());
  for (const Transition& t : chain.transitions()) {
    digest.add_u64(t.from);
    digest.add_u64(t.to);
    digest.add_f64(t.rate);
  }
  return digest.value();
}

const SteadyState& SolveCache::steady_state(const Ctmc& chain,
                                            SteadyStateMethod method,
                                            Validation validation,
                                            SolveControl control) {
  resil::DigestBuilder key_builder;
  key_builder.add_u64(generator_digest(chain));
  key_builder.add_u64(static_cast<std::uint64_t>(method));
  key_builder.add_u64(validation == Validation::kOn ? 1 : 0);
  key_builder.add_u64(control.max_iterations);
  key_builder.add_u64(control.escalate ? 1 : 0);
  key_builder.add_u64(control.sparse_threshold);
  key_builder.add_u64(static_cast<std::uint64_t>(control.precond));
  key_builder.add_u64(control.gmres_restart);
  const std::uint64_t key = key_builder.value();

  if (valid_ && key == key_) {
    ++hits_;
    if (obs::enabled()) obs::counter("ctmc.solve_cache.hits").add(1);
    return cached_;
  }
  ++misses_;
  if (obs::enabled()) obs::counter("ctmc.solve_cache.misses").add(1);
  control.workspace = &workspace_;
  valid_ = false;  // stay invalid if the solve throws
  cached_ = solve_steady_state(chain, method, validation, control);
  key_ = key;
  valid_ = true;
  return cached_;
}

}  // namespace rascal::ctmc

#include "ctmc/solve_cache.h"

#include "obs/obs.h"
#include "resil/chaos.h"
#include "resil/checkpoint.h"

namespace rascal::ctmc {

namespace {

// Fibonacci multiplier: spreads the FNV-1a key so that shard and
// slot indices stay uniform even when keys share low bits.
constexpr std::uint64_t kSpread = 0x9E3779B97F4A7C15ULL;

[[nodiscard]] std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t SolveCache::generator_digest(const Ctmc& chain) {
  resil::DigestBuilder digest;
  digest.add_u64(chain.num_states());
  for (const Transition& t : chain.transitions()) {
    digest.add_u64(t.from);
    digest.add_u64(t.to);
    digest.add_f64(t.rate);
  }
  return digest.value();
}

std::uint64_t steady_state_key(const Ctmc& chain, SteadyStateMethod method,
                               Validation validation,
                               const SolveControl& control) {
  resil::DigestBuilder key_builder;
  key_builder.add_u64(SolveCache::generator_digest(chain));
  key_builder.add_u64(static_cast<std::uint64_t>(method));
  key_builder.add_u64(validation == Validation::kOn ? 1 : 0);
  key_builder.add_u64(control.max_iterations);
  key_builder.add_u64(control.escalate ? 1 : 0);
  key_builder.add_u64(control.sparse_threshold);
  key_builder.add_u64(static_cast<std::uint64_t>(control.precond));
  key_builder.add_u64(control.gmres_restart);
  return key_builder.value();
}

// ---- SharedSolveCache -------------------------------------------------

SharedSolveCache::SharedSolveCache(const Config& config) {
  if (config.capacity == 0) return;
  std::size_t shard_count = ceil_pow2(config.shards == 0 ? 1 : config.shards);
  while (shard_count > 1 && shard_count > config.capacity) shard_count >>= 1;
  slots_per_shard_ = (config.capacity + shard_count - 1) / shard_count;
  shards_ = std::vector<Shard>(shard_count);
  for (Shard& shard : shards_) {
    shard.slots.resize(slots_per_shard_);
  }
}

std::size_t SharedSolveCache::shard_index(std::uint64_t key) const noexcept {
  return static_cast<std::size_t>((key * kSpread) & (shards_.size() - 1));
}

std::size_t SharedSolveCache::slot_index(std::uint64_t key) const noexcept {
  // High bits: independent of the shard-selecting low bits.
  return static_cast<std::size_t>((key * kSpread) >> 32) % slots_per_shard_;
}

bool SharedSolveCache::lookup(std::uint64_t key, SteadyState& out) const {
  if (!enabled()) return false;
  const Shard& shard = shards_[shard_index(key)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const Slot& slot = shard.slots[slot_index(key)];
    if (slot.used && slot.key == key) {
      out = slot.value;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) obs::counter("ctmc.shared_cache.hits").add(1);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs::counter("ctmc.shared_cache.misses").add(1);
  return false;
}

void SharedSolveCache::insert(std::uint64_t key, const SteadyState& value) {
  if (!enabled()) return;
  Shard& shard = shards_[shard_index(key)];
  bool evicted = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    Slot& slot = shard.slots[slot_index(key)];
    if (slot.used && slot.key != key) evicted = true;
    if (!slot.used) ++shard.used;
    slot.used = true;
    slot.key = key;
    slot.value = value;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::counter("ctmc.shared_cache.insertions").add(1);
    if (evicted) obs::counter("ctmc.shared_cache.evictions").add(1);
    obs::gauge("ctmc.shared_cache.occupancy")
        .set(static_cast<double>(stats().occupancy));
  }
}

SharedSolveCache::Stats SharedSolveCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.capacity = shards_.size() * slots_per_shard_;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.occupancy += shard.used;
  }
  return out;
}

void SharedSolveCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (Slot& slot : shard.slots) slot.used = false;
    shard.used = 0;
  }
}

// ---- SolveCache -------------------------------------------------------

const SteadyState& SolveCache::steady_state(const Ctmc& chain,
                                            SteadyStateMethod method,
                                            Validation validation,
                                            SolveControl control) {
  const std::uint64_t key =
      steady_state_key(chain, method, validation, control);

  if (valid_ && key == key_) {
    ++hits_;
    if (obs::enabled()) obs::counter("ctmc.solve_cache.hits").add(1);
    return cached_;
  }
  ++misses_;
  if (obs::enabled()) obs::counter("ctmc.solve_cache.misses").add(1);
  valid_ = false;  // stay invalid if the copy or solve below throws
  if (shared_ != nullptr && shared_->lookup(key, cached_)) {
    key_ = key;
    valid_ = true;
    return cached_;
  }
  control.workspace = &workspace_;
  cached_ = solve_steady_state(chain, method, validation, control);
  key_ = key;
  valid_ = true;
  if (shared_ != nullptr) {
    // The shared tier is an accelerator, never a dependency: a failed
    // publish (chaos `cache-publish-fail`, simulating a full or
    // poisoned shard) costs other workers a recompute but can never
    // change any result bit.
    if (resil::chaos::enabled() &&
        resil::chaos::tick("cache-publish-fail")) {
      if (obs::enabled()) {
        obs::counter("ctmc.shared_cache.publish_failures").add(1);
      }
    } else {
      shared_->insert(key, cached_);
    }
  }
  return cached_;
}

}  // namespace rascal::ctmc

#include "ctmc/steady_state.h"

#include <stdexcept>
#include <string>

#include "linalg/gth.h"
#include "linalg/iterative.h"
#include "linalg/lu.h"
#include "obs/obs.h"

namespace rascal::ctmc {

namespace {

const char* method_slug(SteadyStateMethod method) {
  switch (method) {
    case SteadyStateMethod::kGth: return "gth";
    case SteadyStateMethod::kLu: return "lu";
    case SteadyStateMethod::kPower: return "power";
    case SteadyStateMethod::kGaussSeidel: return "gauss_seidel";
  }
  return "unknown";
}

// Per-method solve/iteration/residual telemetry (counters are keyed
// by method slug; the residual gauges track the worst and the most
// recent solve of the run).
void record_solve_telemetry(SteadyStateMethod method,
                            const SteadyState& result) {
  if (!obs::enabled()) return;
  const std::string slug = method_slug(method);
  obs::counter("ctmc.solver.solves").add(1);
  obs::counter("ctmc.solver.solves." + slug).add(1);
  if (result.iterations > 0) {
    obs::counter("ctmc.solver.iterations." + slug).add(result.iterations);
  }
  obs::gauge("ctmc.solver.residual.last").set(result.residual);
  obs::gauge("ctmc.solver.residual.max").record_max(result.residual);
}

// An iterative method exhausted its budget; the caller is about to
// throw, but the failure still shows up in the run's counters.
void record_nonconvergence(SteadyStateMethod method, std::size_t iterations) {
  if (!obs::enabled()) return;
  const std::string slug = method_slug(method);
  obs::counter("ctmc.solver.nonconverged").add(1);
  obs::counter("ctmc.solver.iterations." + slug).add(iterations);
}

// Escalation bookkeeping: the requested method's result was rejected
// (nonconvergence or a near-singular direct solve) and GTH is being
// used instead.
void record_escalation(SteadyStateMethod from) {
  if (!obs::enabled()) return;
  obs::counter("ctmc.solver.escalated").add(1);
  obs::counter(std::string("ctmc.solver.escalated.") + method_slug(from) +
               "_to_gth")
      .add(1);
}

// A direct LU solve of an availability model can silently produce a
// poor pi when the generator is near-singular; residuals above this
// mean the solve is untrustworthy and (under escalation) GTH is used.
constexpr double kDirectResidualLimit = 1e-8;

linalg::Vector solve_lu(const Ctmc& chain) {
  // pi Q = 0  <=>  Q^T pi^T = 0.  Replace the last balance equation
  // with the normalization sum(pi) = 1 to obtain a nonsingular system.
  const std::size_t n = chain.num_states();
  linalg::Matrix a = chain.generator().transposed();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;
  linalg::Vector pi = linalg::solve_linear_system(std::move(a), b);
  // Direct solves can leave tiny negative round-off in near-zero
  // probabilities; clamp and renormalize.
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
  }
  linalg::normalize_to_sum_one(pi);
  return pi;
}

}  // namespace

SteadyState solve_steady_state(const Ctmc& chain, SteadyStateMethod method,
                               Validation validation,
                               const SolveControl& control) {
  const obs::Span span("ctmc.solve_steady_state");
  if (validation == Validation::kOn) {
    throw_if_errors(validate_for_steady_state(chain));
  }

  linalg::IterativeOptions iterative;
  if (control.max_iterations > 0) {
    iterative.max_iterations = control.max_iterations;
  }
  iterative.cancel = control.cancel;

  const auto residual_of = [&chain](const linalg::Vector& pi) {
    return linalg::norm_inf(chain.sparse_generator().left_multiply(pi));
  };
  const auto escalate_to_gth = [&](SteadyState& result) {
    record_escalation(method);
    result.probabilities = linalg::gth_stationary(chain.generator());
    result.escalated = true;
  };

  SteadyState result;
  result.method = method;
  switch (method) {
    case SteadyStateMethod::kGth:
      result.probabilities = linalg::gth_stationary(chain.generator());
      break;
    case SteadyStateMethod::kLu: {
      bool solved = false;
      if (control.escalate) {
        try {
          result.probabilities = solve_lu(chain);
          solved = residual_of(result.probabilities) <= kDirectResidualLimit;
        } catch (const std::exception&) {
          solved = false;  // singular system: fall through to GTH
        }
        if (!solved) escalate_to_gth(result);
      } else {
        result.probabilities = solve_lu(chain);
      }
      break;
    }
    case SteadyStateMethod::kPower:
    case SteadyStateMethod::kGaussSeidel: {
      auto it = method == SteadyStateMethod::kPower
                    ? linalg::power_stationary(chain.sparse_generator(),
                                               iterative)
                    : linalg::gauss_seidel_stationary(chain.sparse_generator(),
                                                      iterative);
      if (it.cancelled) {
        // Never escalate a cancelled solve: the caller asked to stop.
        throw resil::CancelledError(
            std::string("solve_steady_state: ") + method_slug(method) +
            " solve cancelled after " + std::to_string(it.iterations) +
            " iterations");
      }
      if (!it.converged) {
        record_nonconvergence(method, it.iterations);
        if (control.escalate) {
          escalate_to_gth(result);
        } else {
          throw NonConvergenceError(
              std::string("solve_steady_state: ") + method_slug(method) +
              " did not converge within " + std::to_string(it.iterations) +
              " iterations (residual " + std::to_string(it.residual) + ")");
        }
      } else {
        result.probabilities = std::move(it.pi);
        result.iterations = it.iterations;
      }
      break;
    }
  }
  result.residual = residual_of(result.probabilities);
  record_solve_telemetry(method, result);
  return result;
}

}  // namespace rascal::ctmc

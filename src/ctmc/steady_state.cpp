#include "ctmc/steady_state.h"

#include <stdexcept>

#include "linalg/gth.h"
#include "linalg/iterative.h"
#include "linalg/lu.h"

namespace rascal::ctmc {

namespace {

linalg::Vector solve_lu(const Ctmc& chain) {
  // pi Q = 0  <=>  Q^T pi^T = 0.  Replace the last balance equation
  // with the normalization sum(pi) = 1 to obtain a nonsingular system.
  const std::size_t n = chain.num_states();
  linalg::Matrix a = chain.generator().transposed();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;
  linalg::Vector pi = linalg::solve_linear_system(std::move(a), b);
  // Direct solves can leave tiny negative round-off in near-zero
  // probabilities; clamp and renormalize.
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
  }
  linalg::normalize_to_sum_one(pi);
  return pi;
}

}  // namespace

SteadyState solve_steady_state(const Ctmc& chain, SteadyStateMethod method,
                               Validation validation) {
  if (validation == Validation::kOn) {
    throw_if_errors(validate_for_steady_state(chain));
  }
  SteadyState result;
  result.method = method;
  switch (method) {
    case SteadyStateMethod::kGth:
      result.probabilities = linalg::gth_stationary(chain.generator());
      break;
    case SteadyStateMethod::kLu:
      result.probabilities = solve_lu(chain);
      break;
    case SteadyStateMethod::kPower: {
      auto it = linalg::power_stationary(chain.sparse_generator());
      if (!it.converged) {
        throw std::runtime_error(
            "solve_steady_state: power iteration did not converge");
      }
      result.probabilities = std::move(it.pi);
      result.iterations = it.iterations;
      break;
    }
    case SteadyStateMethod::kGaussSeidel: {
      auto it = linalg::gauss_seidel_stationary(chain.sparse_generator());
      if (!it.converged) {
        throw std::runtime_error(
            "solve_steady_state: Gauss-Seidel did not converge");
      }
      result.probabilities = std::move(it.pi);
      result.iterations = it.iterations;
      break;
    }
  }
  result.residual =
      linalg::norm_inf(chain.sparse_generator().left_multiply(
          result.probabilities));
  return result;
}

}  // namespace rascal::ctmc

#include "ctmc/steady_state.h"

#include <stdexcept>
#include <string>

#include "linalg/gth.h"
#include "linalg/iterative.h"
#include "linalg/krylov.h"
#include "linalg/lu.h"
#include "obs/obs.h"

namespace rascal::ctmc {

namespace {

const char* method_slug(SteadyStateMethod method) {
  switch (method) {
    case SteadyStateMethod::kGth: return "gth";
    case SteadyStateMethod::kLu: return "lu";
    case SteadyStateMethod::kPower: return "power";
    case SteadyStateMethod::kGaussSeidel: return "gauss_seidel";
    case SteadyStateMethod::kGmres: return "gmres";
    case SteadyStateMethod::kBiCgStab: return "bicgstab";
  }
  return "unknown";
}

// Per-method solve/iteration/residual telemetry (counters are keyed
// by method slug; the residual gauges track the worst and the most
// recent solve of the run).
void record_solve_telemetry(SteadyStateMethod method,
                            const SteadyState& result) {
  if (!obs::enabled()) return;
  const std::string slug = method_slug(method);
  obs::counter("ctmc.solver.solves").add(1);
  obs::counter("ctmc.solver.solves." + slug).add(1);
  if (result.iterations > 0) {
    obs::counter("ctmc.solver.iterations." + slug).add(result.iterations);
  }
  obs::gauge("ctmc.solver.residual.last").set(result.residual);
  obs::gauge("ctmc.solver.residual.max").record_max(result.residual);
}

// An iterative method exhausted its budget; the caller is about to
// throw, but the failure still shows up in the run's counters.
void record_nonconvergence(SteadyStateMethod method, std::size_t iterations) {
  if (!obs::enabled()) return;
  const std::string slug = method_slug(method);
  obs::counter("ctmc.solver.nonconverged").add(1);
  obs::counter("ctmc.solver.iterations." + slug).add(iterations);
}

// Escalation bookkeeping: the requested method's result was rejected
// (nonconvergence or a near-singular direct solve) and GTH is being
// used instead.
void record_escalation(SteadyStateMethod from) {
  if (!obs::enabled()) return;
  obs::counter("ctmc.solver.escalated").add(1);
  obs::counter(std::string("ctmc.solver.escalated.") + method_slug(from) +
               "_to_gth")
      .add(1);
}

// A direct LU solve of an availability model can silently produce a
// poor pi when the generator is near-singular; residuals above this
// mean the solve is untrustworthy and (under escalation) GTH is used.
constexpr double kDirectResidualLimit = 1e-8;

// Writes the transposed generator with the last balance equation
// replaced by the normalization row sum(pi) = 1 (the LU system).
void write_lu_system(const Ctmc& chain, linalg::Matrix& a) {
  const std::size_t n = chain.num_states();
  a.reshape(n, n, 0.0);
  for (const Transition& t : chain.transitions()) a(t.to, t.from) = t.rate;
  for (std::size_t i = 0; i < n; ++i) a(i, i) = -chain.exit_rate(i);
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
}

void solve_lu(const Ctmc& chain, linalg::SolveWorkspace* ws,
              linalg::Vector& pi) {
  // pi Q = 0  <=>  Q^T pi^T = 0.  Replace the last balance equation
  // with the normalization sum(pi) = 1 to obtain a nonsingular system.
  const std::size_t n = chain.num_states();
  linalg::SolveWorkspace local;
  if (ws == nullptr) ws = &local;
  linalg::Matrix& a = ws->dense_storage();
  write_lu_system(chain, a);
  ws->lu().refactor(a);
  linalg::Vector& b = ws->vec(0, n);
  b[n - 1] = 1.0;
  ws->lu().solve_into(b, pi);
  // Direct solves can leave tiny negative round-off in near-zero
  // probabilities; clamp and renormalize.
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-12) p = 0.0;
  }
  linalg::normalize_to_sum_one(pi);
}

// ||pi Q||_inf accumulated transition-wise from the sorted adjacency,
// with the diagonal spliced in at its column-sorted position.  This
// visits every (row, col) entry exactly once in the same order as a
// CSR left-multiply of sparse_generator(), so the result is
// bit-identical to the matrix-based residual without building a CSR
// matrix per solve.
double residual_inf(const Ctmc& chain, const linalg::Vector& pi,
                    linalg::Vector& scratch) {
  const std::size_t n = chain.num_states();
  const std::vector<Transition>& ts = chain.transitions();
  scratch.assign(n, 0.0);
  std::size_t k = 0;
  for (StateId i = 0; i < n; ++i) {
    const double xi = pi[i];
    if (xi == 0.0) {
      while (k < ts.size() && ts[k].from == i) ++k;
      continue;
    }
    const double exit = chain.exit_rate(i);
    bool diag_pending = exit != 0.0;
    while (k < ts.size() && ts[k].from == i) {
      if (diag_pending && ts[k].to > i) {
        scratch[i] += xi * -exit;
        diag_pending = false;
      }
      scratch[ts[k].to] += xi * ts[k].rate;
      ++k;
    }
    if (diag_pending) scratch[i] += xi * -exit;
  }
  return linalg::norm_inf(scratch);
}

}  // namespace

SteadyState solve_steady_state(const Ctmc& chain, SteadyStateMethod method,
                               Validation validation,
                               const SolveControl& control) {
  const obs::Span span("ctmc.solve_steady_state");
  if (validation == Validation::kOn) {
    throw_if_errors(validate_for_steady_state(chain));
  }

  linalg::IterativeOptions iterative;
  if (control.max_iterations > 0) {
    iterative.max_iterations = control.max_iterations;
  }
  iterative.cancel = control.cancel;

  linalg::SolveWorkspace local_ws;
  linalg::SolveWorkspace* ws =
      control.workspace != nullptr ? control.workspace : &local_ws;

  // Dense/sparse boundary: above the threshold a dense-method request
  // is re-routed to the sparse GMRES path, never materializing the
  // n x n Matrix, and escalation refuses to densify.
  const std::size_t sparse_threshold = control.sparse_threshold > 0
                                           ? control.sparse_threshold
                                           : kDefaultSparseThreshold;
  SteadyStateMethod effective = method;
  if ((method == SteadyStateMethod::kGth || method == SteadyStateMethod::kLu) &&
      chain.num_states() > sparse_threshold) {
    effective = SteadyStateMethod::kGmres;
    if (obs::enabled()) obs::counter("ctmc.solver.sparse_rerouted").add(1);
  }

  const auto residual_of = [&chain, ws](const linalg::Vector& pi) {
    return residual_inf(chain, pi, ws->vec(1, 0));
  };
  const auto solve_gth = [&chain, ws](linalg::Vector& pi) {
    linalg::Matrix& q = ws->dense_storage();
    chain.write_generator(q);
    linalg::gth_stationary_in(q, pi);
  };
  const auto escalate_to_gth = [&](SteadyState& result) {
    record_escalation(effective);
    solve_gth(result.probabilities);
    result.escalated = true;
  };

  SteadyState result;
  result.method = method;
  result.effective_method = effective;
  switch (effective) {
    case SteadyStateMethod::kGth:
      solve_gth(result.probabilities);
      break;
    case SteadyStateMethod::kLu: {
      bool solved = false;
      if (control.escalate) {
        try {
          solve_lu(chain, ws, result.probabilities);
          solved = residual_of(result.probabilities) <= kDirectResidualLimit;
        } catch (const std::exception&) {
          solved = false;  // singular system: fall through to GTH
        }
        if (!solved) escalate_to_gth(result);
      } else {
        solve_lu(chain, ws, result.probabilities);
      }
      break;
    }
    case SteadyStateMethod::kPower:
    case SteadyStateMethod::kGaussSeidel: {
      auto it = method == SteadyStateMethod::kPower
                    ? linalg::power_stationary(chain.sparse_generator(),
                                               iterative)
                    : linalg::gauss_seidel_stationary(chain.sparse_generator(),
                                                      iterative);
      if (it.cancelled) {
        // Never escalate a cancelled solve: the caller asked to stop.
        throw resil::CancelledError(
            std::string("solve_steady_state: ") + method_slug(method) +
            " solve cancelled after " + std::to_string(it.iterations) +
            " iterations");
      }
      if (!it.converged) {
        record_nonconvergence(method, it.iterations);
        if (control.escalate && chain.num_states() <= sparse_threshold) {
          escalate_to_gth(result);
        } else if (control.escalate) {
          throw NonConvergenceError(
              std::string("solve_steady_state: ") + method_slug(method) +
              " did not converge within " + std::to_string(it.iterations) +
              " iterations; " + std::to_string(chain.num_states()) +
              " states exceed the sparse threshold (" +
              std::to_string(sparse_threshold) +
              "), so dense GTH escalation is unavailable");
        } else {
          throw NonConvergenceError(
              std::string("solve_steady_state: ") + method_slug(method) +
              " did not converge within " + std::to_string(it.iterations) +
              " iterations (residual " + std::to_string(it.residual) + ")");
        }
      } else {
        result.probabilities = std::move(it.pi);
        result.iterations = it.iterations;
      }
      break;
    }
    case SteadyStateMethod::kGmres:
    case SteadyStateMethod::kBiCgStab: {
      linalg::KrylovOptions kopts;
      if (control.max_iterations > 0) {
        kopts.max_iterations = control.max_iterations;
      }
      if (control.gmres_restart > 0) kopts.restart = control.gmres_restart;
      kopts.precond = control.precond;
      kopts.cancel = control.cancel;
      kopts.workspace = ws;

      linalg::KrylovResult kr;
      bool precond_rejected = false;
      std::string failure_note;
      try {
        kr = effective == SteadyStateMethod::kGmres
                 ? linalg::gmres_stationary(chain.sparse_generator(), kopts)
                 : linalg::bicgstab_stationary(chain.sparse_generator(),
                                               kopts);
      } catch (const linalg::PrecondError& e) {
        // A structurally unusable pattern (e.g. absorbing state with
        // validation off) is handled like nonconvergence so the
        // escalation cascade can still rescue the solve.
        precond_rejected = true;
        failure_note = e.what();
      }
      if (!precond_rejected && kr.cancelled) {
        // Never escalate a cancelled solve: the caller asked to stop.
        throw resil::CancelledError(
            std::string("solve_steady_state: ") + method_slug(effective) +
            " solve cancelled after " + std::to_string(kr.iterations) +
            " iterations");
      }
      if (precond_rejected || !kr.converged) {
        if (!precond_rejected) {
          failure_note = std::string(kr.breakdown ? "broke down"
                                                  : "did not converge") +
                         " within " + std::to_string(kr.iterations) +
                         " iterations (residual " +
                         std::to_string(kr.residual) + ")";
        }
        record_nonconvergence(effective,
                              precond_rejected ? 0 : kr.iterations);
        if (control.escalate && chain.num_states() <= sparse_threshold) {
          escalate_to_gth(result);
        } else if (control.escalate) {
          throw NonConvergenceError(
              std::string("solve_steady_state: ") + method_slug(effective) +
              " " + failure_note + "; " +
              std::to_string(chain.num_states()) +
              " states exceed the sparse threshold (" +
              std::to_string(sparse_threshold) +
              "), so dense GTH escalation is unavailable");
        } else {
          throw NonConvergenceError(std::string("solve_steady_state: ") +
                                    method_slug(effective) + " " +
                                    failure_note);
        }
      } else {
        result.probabilities = std::move(kr.x);
        result.iterations = kr.iterations;
      }
      break;
    }
  }
  result.residual = residual_of(result.probabilities);
  record_solve_telemetry(effective, result);
  return result;
}

}  // namespace rascal::ctmc

#include "ctmc/builder.h"

#include <cmath>
#include <stdexcept>

namespace rascal::ctmc {

StateId CtmcBuilder::state(std::string name, double reward) {
  states_.push_back({std::move(name), reward});
  return states_.size() - 1;
}

CtmcBuilder& CtmcBuilder::rate(StateId from, StateId to, double value) {
  if (value == 0.0) return *this;
  transitions_.push_back({from, to, value});
  return *this;
}

CtmcBuilder& CtmcBuilder::rate(const std::string& from, const std::string& to,
                               double value) {
  return rate(id_of(from), id_of(to), value);
}

StateId CtmcBuilder::id_of(const std::string& name) const {
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return i;
  }
  throw std::invalid_argument("CtmcBuilder: no state named '" + name + "'");
}

Ctmc CtmcBuilder::build() const { return Ctmc(states_, transitions_); }

StateId SymbolicCtmc::state(std::string name, double reward) {
  states_.push_back({std::move(name), reward});
  return states_.size() - 1;
}

SymbolicCtmc& SymbolicCtmc::rate(const std::string& from,
                                 const std::string& to,
                                 const std::string& expression) {
  return rate(from, to, expr::Expression::parse(expression));
}

SymbolicCtmc& SymbolicCtmc::rate(const std::string& from,
                                 const std::string& to,
                                 expr::Expression expression) {
  transitions_.push_back({id_of(from), id_of(to), std::move(expression)});
  return *this;
}

StateId SymbolicCtmc::id_of(const std::string& name) const {
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return i;
  }
  throw std::invalid_argument("SymbolicCtmc: no state named '" + name + "'");
}

std::set<std::string> SymbolicCtmc::parameters() const {
  std::set<std::string> out;
  for (const SymbolicTransition& t : transitions_) {
    const auto vars = t.rate.variables();
    out.insert(vars.begin(), vars.end());
  }
  return out;
}

Ctmc SymbolicCtmc::bind(const expr::ParameterSet& params) const {
  std::vector<Transition> transitions;
  transitions.reserve(transitions_.size());
  for (const SymbolicTransition& t : transitions_) {
    const double value = t.rate.evaluate(params);
    if (value == 0.0) continue;
    if (!(value > 0.0) || !std::isfinite(value)) {
      throw std::invalid_argument(
          "SymbolicCtmc::bind: rate '" + t.rate.source() + "' on " +
          states_[t.from].name + " -> " + states_[t.to].name +
          " evaluated to a negative or non-finite value");
    }
    transitions.push_back({t.from, t.to, value});
  }
  return Ctmc(states_, transitions);
}

}  // namespace rascal::ctmc

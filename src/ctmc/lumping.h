// Ordinary (strong) lumpability: collapsing symmetric states without
// changing the marginal law of the aggregated process.
//
// A partition {B_1..B_k} of the state space is ordinarily lumpable
// when, for every pair of states s, s' in the same block and every
// other block B_j, the aggregate rates sum_{t in B_j} q(s, t) and
// sum_{t in B_j} q(s', t) agree.  The quotient chain then carries
// those common aggregate rates.
//
// The paper's models are quotients of this kind: Figure 3 lumps
// "node A down / node B down" into one degraded state, and the
// N-instance occupancy model lumps instance identities into counts.
// tests/test_lumping.cpp verifies both constructions explicitly.
#pragma once

#include <string>
#include <vector>

#include "ctmc/ctmc.h"

namespace rascal::ctmc {

/// Disjoint blocks covering all states.
using Partition = std::vector<std::vector<StateId>>;

/// Checks ordinary lumpability within `tolerance` (relative to the
/// largest aggregate rate involved).  When `violation` is non-null
/// and the check fails, it receives a human-readable reason.
/// Throws std::invalid_argument when the partition does not cover the
/// state space exactly once.
[[nodiscard]] bool is_lumpable(const Ctmc& chain, const Partition& partition,
                               double tolerance = 1e-9,
                               std::string* violation = nullptr);

/// Builds the quotient chain.  Block rewards must be uniform within
/// each block (throws std::invalid_argument otherwise); block names
/// default to the name of the block's first state prefixed with
/// "lump:".  Throws std::invalid_argument when not lumpable.
[[nodiscard]] Ctmc lump(const Ctmc& chain, const Partition& partition,
                        const std::vector<std::string>& block_names = {},
                        double tolerance = 1e-9);

/// Coarsest ordinary lumping that also respects rewards: iterative
/// partition refinement starting from reward classes.  Always returns
/// a valid lumpable partition (possibly the trivial one with
/// singleton blocks).
[[nodiscard]] Partition coarsest_ordinary_lumping(const Ctmc& chain,
                                                  double tolerance = 1e-9);

}  // namespace rascal::ctmc

// Cross-product composition of independent CTMCs.
//
// Given component chains X_1 ... X_k that evolve independently, the
// joint process is a CTMC on the product space whose generator is the
// Kronecker sum: each transition changes exactly one coordinate.  The
// reward of a composite state is produced by a caller-supplied
// combiner over the component rewards (minimum by default: the system
// is as available as its least-available component — series systems).
//
// This is the exact alternative to the two-state-equivalent hierarchy
// of core/hierarchy.h; bench_hierarchy quantifies the difference.
#pragma once

#include <functional>
#include <vector>

#include "ctmc/ctmc.h"

namespace rascal::ctmc {

/// Combines component rewards into the composite state's reward.
using RewardCombiner =
    std::function<double(const std::vector<double>& component_rewards)>;

/// Series-system combiner: min of component rewards.
[[nodiscard]] RewardCombiner min_reward_combiner();

/// Parallel-system combiner: max of component rewards.
[[nodiscard]] RewardCombiner max_reward_combiner();

struct ComposeOptions {
  std::size_t max_states = 2000000;  // product-space guard
};

/// Composes independent chains.  State names join component names
/// with '|'.  Throws std::invalid_argument when `parts` is empty and
/// std::runtime_error when the product space exceeds max_states.
[[nodiscard]] Ctmc compose_independent(
    const std::vector<Ctmc>& parts,
    const RewardCombiner& combine = min_reward_combiner(),
    const ComposeOptions& options = {});

/// Maps a vector of component states to the composite state id
/// (row-major over the component order used at composition).
[[nodiscard]] StateId composite_state_id(const std::vector<Ctmc>& parts,
                                         const std::vector<StateId>& coords);

}  // namespace rascal::ctmc

#include "ctmc/compose.h"

#include <algorithm>
#include <stdexcept>

namespace rascal::ctmc {

RewardCombiner min_reward_combiner() {
  return [](const std::vector<double>& rewards) {
    return *std::min_element(rewards.begin(), rewards.end());
  };
}

RewardCombiner max_reward_combiner() {
  return [](const std::vector<double>& rewards) {
    return *std::max_element(rewards.begin(), rewards.end());
  };
}

StateId composite_state_id(const std::vector<Ctmc>& parts,
                           const std::vector<StateId>& coords) {
  if (coords.size() != parts.size()) {
    throw std::invalid_argument("composite_state_id: arity mismatch");
  }
  StateId index = 0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    if (coords[k] >= parts[k].num_states()) {
      throw std::invalid_argument("composite_state_id: coordinate range");
    }
    index = index * parts[k].num_states() + coords[k];
  }
  return index;
}

Ctmc compose_independent(const std::vector<Ctmc>& parts,
                         const RewardCombiner& combine,
                         const ComposeOptions& options) {
  if (parts.empty()) {
    throw std::invalid_argument("compose_independent: no components");
  }
  if (!combine) {
    throw std::invalid_argument("compose_independent: null combiner");
  }
  std::size_t total = 1;
  for (const Ctmc& part : parts) {
    if (total > options.max_states / part.num_states()) {
      throw std::runtime_error(
          "compose_independent: product space exceeds max_states");
    }
    total *= part.num_states();
  }

  std::vector<State> states(total);
  std::vector<Transition> transitions;
  std::vector<StateId> coords(parts.size(), 0);
  std::vector<double> rewards(parts.size(), 0.0);
  for (StateId index = 0; index < total; ++index) {
    // Decode row-major coordinates.
    std::size_t rest = index;
    for (std::size_t k = parts.size(); k-- > 0;) {
      coords[k] = rest % parts[k].num_states();
      rest /= parts[k].num_states();
    }
    std::string name;
    for (std::size_t k = 0; k < parts.size(); ++k) {
      rewards[k] = parts[k].reward(coords[k]);
      if (k > 0) name += '|';
      name += parts[k].state_name(coords[k]);
    }
    // Component state names may repeat across components; make the
    // composite name unique by its index.
    states[index] = {name + "@" + std::to_string(index), combine(rewards)};

    // Kronecker sum: one-coordinate moves at the component's rate.
    for (std::size_t k = 0; k < parts.size(); ++k) {
      // Stride of coordinate k in the row-major layout.
      std::size_t stride = 1;
      for (std::size_t j = k + 1; j < parts.size(); ++j) {
        stride *= parts[j].num_states();
      }
      for (const Transition& t : parts[k].transitions()) {
        if (t.from != coords[k]) continue;
        const StateId target = index - coords[k] * stride + t.to * stride;
        transitions.push_back({index, target, t.rate});
      }
    }
  }
  return Ctmc(std::move(states), std::move(transitions));
}

}  // namespace rascal::ctmc

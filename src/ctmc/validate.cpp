#include "ctmc/validate.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "lint/scc.h"

namespace rascal::ctmc {

namespace {

lint::Diagnostic state_error(const char* code, std::string message,
                             const std::string& state,
                             std::string fix_hint = {}) {
  lint::Diagnostic d;
  d.code = code;
  d.severity = lint::Severity::kError;
  d.message = std::move(message);
  d.location.state = state;
  d.fix_hint = std::move(fix_hint);
  return d;
}

}  // namespace

lint::LintReport validate_for_steady_state(const Ctmc& chain) {
  lint::LintReport report;
  lint::Adjacency edges(chain.num_states());
  for (const Transition& t : chain.transitions()) {
    edges[t.from].push_back(t.to);
  }
  const lint::SccResult scc = lint::tarjan_scc(edges);
  if (scc.num_components() == 1) return report;

  // A reducible chain still has a unique stationary distribution as
  // long as exactly one communicating class is closed: the transient
  // states simply get probability zero (the linter flags them
  // separately).  Only two or more closed classes make pi non-unique
  // and the solve ill-posed, so that is the fail-fast condition.
  const std::vector<bool> closed = lint::closed_components(edges, scc);
  std::vector<std::size_t> closed_ids;
  for (std::size_t c = 0; c < scc.num_components(); ++c) {
    if (closed[c]) closed_ids.push_back(c);
  }
  if (closed_ids.size() <= 1) return report;

  lint::Diagnostic d;
  d.code = lint::codes::kNotIrreducible;
  d.severity = lint::Severity::kError;
  d.message = "steady-state distribution is not unique: the chain has " +
              std::to_string(closed_ids.size()) +
              " closed communicating classes (" +
              std::to_string(scc.num_components()) +
              " strongly connected components in total)";
  d.fix_hint = "run the linter (rascal_cli lint) for the full structural "
               "report, or pass Validation::kOff to analyze a recurrent "
               "class deliberately";
  report.add(std::move(d));
  for (const std::size_t c : closed_ids) {
    const StateId representative = scc.components[c].front();
    report.add(state_error(
        lint::codes::kAbsorbingClass,
        "state '" + chain.state_name(representative) +
            "' belongs to a closed class of " +
            std::to_string(scc.components[c].size()) +
            " state(s) that the chain can never leave",
        chain.state_name(representative)));
  }
  return report;
}

lint::LintReport validate_for_absorption(const Ctmc& chain,
                                         const std::vector<StateId>& targets) {
  lint::LintReport report;
  // Backward reachability: which states can reach the target set?
  lint::Adjacency reverse(chain.num_states());
  for (const Transition& t : chain.transitions()) {
    reverse[t.to].push_back(t.from);
  }
  std::vector<bool> reaches(chain.num_states(), false);
  std::vector<StateId> stack;
  for (const StateId t : targets) {
    if (t < chain.num_states() && !reaches[t]) {
      reaches[t] = true;
      stack.push_back(t);
    }
  }
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const std::size_t p : reverse[s]) {
      if (!reaches[p]) {
        reaches[p] = true;
        stack.push_back(p);
      }
    }
  }
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!reaches[s]) {
      report.add(state_error(
          lint::codes::kTargetUnreachable,
          "state '" + chain.state_name(s) +
              "' can never reach the target set (mean time to "
              "absorption is infinite)",
          chain.state_name(s),
          "add a path into the target set or drop the state from the "
          "analysis"));
    }
  }
  return report;
}

lint::LintReport validate_for_transient(const Ctmc& chain, double t,
                                        std::size_t max_terms) {
  lint::LintReport report;
  if (!(t > 0.0)) return report;
  // The Poisson truncation point is at least the mean Lambda*t; when
  // even that exceeds max_terms the summation must abort, so fail
  // before burning through millions of matrix-vector products.
  const double mean_terms = chain.max_exit_rate() * t;
  if (mean_terms > static_cast<double>(max_terms)) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3g", mean_terms);
    lint::Diagnostic d;
    d.code = lint::codes::kHorizonInfeasible;
    d.severity = lint::Severity::kError;
    d.message = "uniformization needs at least " + std::string(buffer) +
                " terms for this horizon, over the max_terms cap of " +
                std::to_string(max_terms) +
                " (chain too stiff for the horizon)";
    d.fix_hint = "use steady state for long horizons, raise "
                 "TransientOptions::max_terms, or rescale the time unit";
    report.add(std::move(d));
  }
  return report;
}

void throw_if_errors(lint::LintReport report) {
  if (report.has_errors()) {
    throw lint::LintError(std::move(report));
  }
}

}  // namespace rascal::ctmc

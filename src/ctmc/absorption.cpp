#include "ctmc/absorption.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "linalg/lu.h"

namespace rascal::ctmc {

namespace {

struct Partition {
  std::vector<StateId> transient;            // states not in targets
  std::vector<bool> is_target;               // by state id
  std::vector<std::size_t> transient_index;  // state id -> index or npos
};

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

Partition partition_states(const Ctmc& chain,
                           const std::vector<StateId>& targets) {
  if (targets.empty()) {
    throw std::invalid_argument("absorption: empty target set");
  }
  Partition part;
  part.is_target.assign(chain.num_states(), false);
  for (StateId t : targets) {
    if (t >= chain.num_states()) {
      throw std::invalid_argument("absorption: target out of range");
    }
    part.is_target[t] = true;
  }
  part.transient_index.assign(chain.num_states(), kNone);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!part.is_target[s]) {
      part.transient_index[s] = part.transient.size();
      part.transient.push_back(s);
    }
  }
  return part;
}

// Generator restricted to transient states (Q_TT).
linalg::Matrix transient_generator(const Ctmc& chain, const Partition& part) {
  const std::size_t m = part.transient.size();
  linalg::Matrix qtt(m, m);
  for (const Transition& t : chain.transitions()) {
    if (part.is_target[t.from]) continue;
    const std::size_t r = part.transient_index[t.from];
    if (!part.is_target[t.to]) {
      qtt(r, part.transient_index[t.to]) += t.rate;
    }
    qtt(r, r) -= t.rate;  // full exit rate on the diagonal
  }
  return qtt;
}

}  // namespace

linalg::Vector mean_time_to_absorption(const Ctmc& chain,
                                       const std::vector<StateId>& targets,
                                       Validation validation) {
  const Partition part = partition_states(chain, targets);
  if (validation == Validation::kOn) {
    throw_if_errors(validate_for_absorption(chain, targets));
  }
  const std::size_t m = part.transient.size();
  linalg::Vector times(chain.num_states(), 0.0);
  if (m == 0) return times;

  // (-Q_TT) tau = 1.
  linalg::Matrix a = transient_generator(chain, part);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) a(r, c) = -a(r, c);
  }
  linalg::Vector ones(m, 1.0);
  linalg::Vector tau;
  try {
    tau = linalg::solve_linear_system(std::move(a), ones);
  } catch (const std::domain_error&) {
    // Singular Q_TT means some transient class never reaches the
    // targets; the structural check names every such state.
    throw lint::LintError(validate_for_absorption(chain, targets));
  }
  // Numeric fallback for validation == kOff (or near-singular cases
  // that slipped through the factorization): report every negative
  // component, not just the first.
  lint::LintReport negative;
  for (std::size_t i = 0; i < m; ++i) {
    if (tau[i] < 0.0) {
      lint::Diagnostic d;
      d.code = lint::codes::kTargetUnreachable;
      d.severity = lint::Severity::kError;
      d.message = "mean time to absorption from state '" +
                  chain.state_name(part.transient[i]) +
                  "' solved negative: the target set is unreachable "
                  "from it";
      d.location.state = chain.state_name(part.transient[i]);
      negative.add(std::move(d));
    } else {
      times[part.transient[i]] = tau[i];
    }
  }
  if (!negative.empty()) throw lint::LintError(std::move(negative));
  return times;
}

linalg::Matrix absorption_probabilities(const Ctmc& chain,
                                        const std::vector<StateId>& targets,
                                        Validation validation) {
  const Partition part = partition_states(chain, targets);
  if (validation == Validation::kOn) {
    throw_if_errors(validate_for_absorption(chain, targets));
  }
  const std::size_t m = part.transient.size();
  linalg::Matrix probs(chain.num_states(), targets.size());
  for (std::size_t j = 0; j < targets.size(); ++j) {
    probs(targets[j], j) = 1.0;
  }
  if (m == 0) return probs;

  // (-Q_TT) X = R, where R(r, j) = rate from transient r into target j.
  linalg::Matrix a = transient_generator(chain, part);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) a(r, c) = -a(r, c);
  }
  linalg::Matrix rhs(m, targets.size());
  for (const Transition& t : chain.transitions()) {
    if (part.is_target[t.from] || !part.is_target[t.to]) continue;
    const std::size_t r = part.transient_index[t.from];
    const auto j = static_cast<std::size_t>(
        std::find(targets.begin(), targets.end(), t.to) - targets.begin());
    rhs(r, j) += t.rate;
  }
  const linalg::Matrix x = linalg::LuDecomposition(std::move(a)).solve(rhs);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      probs(part.transient[i], j) = std::clamp(x(i, j), 0.0, 1.0);
    }
  }
  return probs;
}

}  // namespace rascal::ctmc

// Builders for CTMCs.
//
// CtmcBuilder assembles a chain from numeric rates.  SymbolicCtmc
// holds rates as parameter expressions (the strings printed in the
// paper's model figures) and is bound against a ParameterSet to
// produce a concrete Ctmc — the mechanism that lets one model
// definition serve parametric sweeps and uncertainty sampling.
#pragma once

#include <string>
#include <vector>

#include "ctmc/ctmc.h"
#include "expr/expression.h"
#include "expr/parameter_set.h"

namespace rascal::ctmc {

class CtmcBuilder {
 public:
  /// Declares a state; returns its id.  Duplicate names are rejected
  /// at build() time by Ctmc validation.
  StateId state(std::string name, double reward);

  /// Adds a transition.  Zero rates are silently dropped (convenient
  /// when a rate formula can legitimately vanish, e.g. FIR = 0);
  /// negative rates are rejected by build().
  CtmcBuilder& rate(StateId from, StateId to, double value);

  /// Name-based overload; both states must already be declared.
  CtmcBuilder& rate(const std::string& from, const std::string& to,
                    double value);

  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }

  /// Validates and constructs the chain.
  [[nodiscard]] Ctmc build() const;

 private:
  [[nodiscard]] StateId id_of(const std::string& name) const;

  std::vector<State> states_;
  std::vector<Transition> transitions_;
};

/// A CTMC whose transition rates are unevaluated expressions.
class SymbolicCtmc {
 public:
  struct SymbolicTransition {
    StateId from = 0;
    StateId to = 0;
    expr::Expression rate;
  };

  StateId state(std::string name, double reward);

  /// Adds a transition with a rate expression, e.g.
  /// rate("Ok", "RestartShort", "2*La_hadb*(1-FIR)").
  SymbolicCtmc& rate(const std::string& from, const std::string& to,
                     const std::string& expression);
  SymbolicCtmc& rate(const std::string& from, const std::string& to,
                     expr::Expression expression);

  /// Union of variables over all rate expressions.
  [[nodiscard]] std::set<std::string> parameters() const;

  /// Evaluates every rate against `params` and builds the chain.
  /// Expressions evaluating to exactly zero are dropped; negative or
  /// non-finite values raise std::invalid_argument naming the
  /// offending transition.
  [[nodiscard]] Ctmc bind(const expr::ParameterSet& params) const;

  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] const std::vector<SymbolicTransition>& transitions()
      const noexcept {
    return transitions_;
  }

 private:
  [[nodiscard]] StateId id_of(const std::string& name) const;

  std::vector<State> states_;
  std::vector<SymbolicTransition> transitions_;
};

}  // namespace rascal::ctmc

// Phase-type (Erlang) stage expansion.
//
// The paper's recovery times are deterministic in reality ("most
// recovery times are deterministic and are measured in the lab") but
// exponential in the model.  Replacing a recovery completion by an
// Erlang-k chain of stages keeps the mean while shrinking the
// variance by 1/k, interpolating between the exponential assumption
// (k = 1) and the deterministic limit (k -> infinity).  Competing
// transitions (e.g. a second failure striking mid-recovery) keep
// their original rates from every stage, so only the completion-time
// distribution changes.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/ctmc.h"

namespace rascal::ctmc {

/// Replaces the completion transition `state -> completion_target`
/// with `stages` serial stages of rate stages*mu each (mu = original
/// completion rate).  All other outgoing transitions of `state` are
/// replicated on every stage; incoming transitions still enter at the
/// first stage, which keeps `state`'s id stable (extra stages are
/// appended at the end and named "<state>#2", "#3", ...).
///
/// Throws std::invalid_argument when stages == 0 or the completion
/// transition does not exist.
[[nodiscard]] Ctmc erlangize(const Ctmc& chain, StateId state,
                             StateId completion_target, std::size_t stages);

struct ErlangTarget {
  StateId state = 0;
  StateId completion_target = 0;
};

/// Applies erlangize to several (state, completion) pairs with the
/// same stage count.  Pairs must name distinct states.
[[nodiscard]] Ctmc erlangize_all(const Ctmc& chain,
                                 const std::vector<ErlangTarget>& targets,
                                 std::size_t stages);

}  // namespace rascal::ctmc

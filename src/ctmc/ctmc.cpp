#include "ctmc/ctmc.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "lint/scc.h"

namespace rascal::ctmc {

Ctmc::Ctmc(std::vector<State> states, std::vector<Transition> transitions)
    : states_(std::move(states)) {
  if (states_.empty()) {
    throw std::invalid_argument("Ctmc: must have at least one state");
  }
  std::set<std::string> names;
  for (const State& s : states_) {
    if (s.name.empty()) {
      throw std::invalid_argument("Ctmc: empty state name");
    }
    if (!names.insert(s.name).second) {
      throw std::invalid_argument("Ctmc: duplicate state name '" + s.name +
                                  "'");
    }
    if (!std::isfinite(s.reward)) {
      throw std::invalid_argument("Ctmc: non-finite reward for state '" +
                                  s.name + "'");
    }
  }
  for (const Transition& t : transitions) {
    if (t.from >= states_.size() || t.to >= states_.size()) {
      throw std::invalid_argument("Ctmc: transition endpoint out of range");
    }
    if (t.from == t.to) {
      throw std::invalid_argument("Ctmc: self-loop on state '" +
                                  states_[t.from].name + "'");
    }
    if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
      throw std::invalid_argument("Ctmc: non-positive rate on transition " +
                                  states_[t.from].name + " -> " +
                                  states_[t.to].name);
    }
  }

  // Sort and merge parallel transitions.
  std::sort(transitions.begin(), transitions.end(),
            [](const Transition& a, const Transition& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  for (const Transition& t : transitions) {
    if (!transitions_.empty() && transitions_.back().from == t.from &&
        transitions_.back().to == t.to) {
      transitions_.back().rate += t.rate;
    } else {
      transitions_.push_back(t);
    }
  }

  row_offsets_.assign(states_.size() + 1, 0);
  for (const Transition& t : transitions_) ++row_offsets_[t.from + 1];
  for (std::size_t i = 0; i < states_.size(); ++i) {
    row_offsets_[i + 1] += row_offsets_[i];
  }
  exit_rates_.assign(states_.size(), 0.0);
  for (const Transition& t : transitions_) exit_rates_[t.from] += t.rate;
}

const std::string& Ctmc::state_name(StateId id) const {
  if (id >= states_.size()) throw std::out_of_range("Ctmc::state_name");
  return states_[id].name;
}

double Ctmc::reward(StateId id) const {
  if (id >= states_.size()) throw std::out_of_range("Ctmc::reward");
  return states_[id].reward;
}

std::optional<StateId> Ctmc::find_state(
    const std::string& name) const noexcept {
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return i;
  }
  return std::nullopt;
}

StateId Ctmc::state(const std::string& name) const {
  const auto id = find_state(name);
  if (!id) {
    throw std::invalid_argument("Ctmc: no state named '" + name + "'");
  }
  return *id;
}

double Ctmc::exit_rate(StateId id) const {
  if (id >= states_.size()) throw std::out_of_range("Ctmc::exit_rate");
  return exit_rates_[id];
}

double Ctmc::rate(StateId from, StateId to) const {
  if (from >= states_.size() || to >= states_.size()) {
    throw std::out_of_range("Ctmc::rate");
  }
  for (std::size_t k = row_offsets_[from]; k < row_offsets_[from + 1]; ++k) {
    if (transitions_[k].to == to) return transitions_[k].rate;
  }
  return 0.0;
}

linalg::Matrix Ctmc::generator() const {
  linalg::Matrix q(states_.size(), states_.size());
  for (const Transition& t : transitions_) q(t.from, t.to) = t.rate;
  for (StateId i = 0; i < states_.size(); ++i) q(i, i) = -exit_rates_[i];
  return q;
}

void Ctmc::write_generator(linalg::Matrix& q) const {
  q.reshape(states_.size(), states_.size(), 0.0);
  for (const Transition& t : transitions_) q(t.from, t.to) = t.rate;
  for (StateId i = 0; i < states_.size(); ++i) q(i, i) = -exit_rates_[i];
}

linalg::CsrMatrix Ctmc::sparse_generator() const {
  // transitions_ is already sorted by (from, to) with merged duplicates
  // and no self-loops, so each CSR row is the row's transitions with
  // the diagonal spliced in at its sorted position.
  const std::size_t n = states_.size();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(transitions_.size() + n);
  values.reserve(transitions_.size() + n);
  for (StateId i = 0; i < n; ++i) {
    // Zero-exit states store no diagonal, matching the triplet-based
    // assembly which dropped exact-zero sums.
    bool diag_pending = exit_rates_[i] != 0.0;
    for (std::size_t k = row_offsets_[i]; k < row_offsets_[i + 1]; ++k) {
      const Transition& t = transitions_[k];
      if (diag_pending && t.to > i) {
        col_idx.push_back(i);
        values.push_back(-exit_rates_[i]);
        diag_pending = false;
      }
      col_idx.push_back(t.to);
      values.push_back(t.rate);
    }
    if (diag_pending) {
      col_idx.push_back(i);
      values.push_back(-exit_rates_[i]);
    }
    row_ptr[i + 1] = col_idx.size();
  }
  return linalg::CsrMatrix::from_parts(n, n, std::move(row_ptr),
                                       std::move(col_idx),
                                       std::move(values));
}

bool Ctmc::is_irreducible() const {
  // Tarjan SCC (lint/scc.h): irreducible iff one strongly connected
  // component.  The same pass powers the structural linter, so the
  // two can never disagree about reducibility.
  lint::Adjacency edges(states_.size());
  for (const Transition& t : transitions_) {
    edges[t.from].push_back(t.to);
  }
  return lint::tarjan_scc(edges).num_components() == 1;
}

std::vector<StateId> Ctmc::states_with_reward_at_least(
    double threshold) const {
  std::vector<StateId> out;
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].reward >= threshold) out.push_back(i);
  }
  return out;
}

std::vector<StateId> Ctmc::states_with_reward_below(double threshold) const {
  std::vector<StateId> out;
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].reward < threshold) out.push_back(i);
  }
  return out;
}

double Ctmc::max_exit_rate() const noexcept {
  double m = 0.0;
  for (double r : exit_rates_) m = std::max(m, r);
  return m;
}

}  // namespace rascal::ctmc

// Steady-state solution of an irreducible CTMC.
#pragma once

#include "ctmc/ctmc.h"
#include "ctmc/validate.h"
#include "linalg/matrix.h"

namespace rascal::ctmc {

enum class SteadyStateMethod {
  kGth,          // Grassmann-Taksar-Heyman elimination (default; stable)
  kLu,           // direct solve of pi Q = 0 with normalization row
  kPower,        // power iteration on the uniformized chain
  kGaussSeidel,  // Gauss-Seidel sweeps on the balance equations
};

struct SteadyState {
  linalg::Vector probabilities;
  SteadyStateMethod method = SteadyStateMethod::kGth;
  std::size_t iterations = 0;  // 0 for direct methods
  double residual = 0.0;       // ||pi Q||_inf

  [[nodiscard]] double probability(StateId id) const {
    return probabilities.at(id);
  }
};

/// Solves pi Q = 0, sum(pi) = 1.  The stationary distribution must
/// be unique (exactly one closed communicating class; transient
/// states are tolerated and get probability zero): by default a
/// fail-fast structural check (validate.h, codes R010/R013) rejects
/// ill-posed chains with a diagnostics-carrying lint::LintError
/// (a std::domain_error) before any numerics run.  Pass
/// Validation::kOff to skip the check — direct methods then raise a
/// plain std::domain_error on singular systems and iterative methods
/// fail to converge (reported via residual).
[[nodiscard]] SteadyState solve_steady_state(
    const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth,
    Validation validation = Validation::kOn);

}  // namespace rascal::ctmc

// Steady-state solution of an irreducible CTMC.
#pragma once

#include "ctmc/ctmc.h"
#include "linalg/matrix.h"

namespace rascal::ctmc {

enum class SteadyStateMethod {
  kGth,          // Grassmann-Taksar-Heyman elimination (default; stable)
  kLu,           // direct solve of pi Q = 0 with normalization row
  kPower,        // power iteration on the uniformized chain
  kGaussSeidel,  // Gauss-Seidel sweeps on the balance equations
};

struct SteadyState {
  linalg::Vector probabilities;
  SteadyStateMethod method = SteadyStateMethod::kGth;
  std::size_t iterations = 0;  // 0 for direct methods
  double residual = 0.0;       // ||pi Q||_inf

  [[nodiscard]] double probability(StateId id) const {
    return probabilities.at(id);
  }
};

/// Solves pi Q = 0, sum(pi) = 1.  The chain must be irreducible;
/// reducible chains raise std::domain_error (direct methods) or fail
/// to converge (iterative methods, reported via residual).
[[nodiscard]] SteadyState solve_steady_state(
    const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth);

}  // namespace rascal::ctmc

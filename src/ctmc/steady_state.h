// Steady-state solution of an irreducible CTMC.
#pragma once

#include <stdexcept>

#include "ctmc/ctmc.h"
#include "ctmc/validate.h"
#include "linalg/matrix.h"
#include "linalg/workspace.h"
#include "resil/cancel.h"

namespace rascal::ctmc {

enum class SteadyStateMethod {
  kGth,          // Grassmann-Taksar-Heyman elimination (default; stable)
  kLu,           // direct solve of pi Q = 0 with normalization row
  kPower,        // power iteration on the uniformized chain
  kGaussSeidel,  // Gauss-Seidel sweeps on the balance equations
};

/// An iterative method exhausted its iteration budget without meeting
/// tolerance (and escalation was disabled or also failed).
class NonConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-solve resource budget and escalation policy.
struct SolveControl {
  /// Caps the iteration count of iterative methods (0 = library
  /// default).  Replaces unbounded loops for batch runs.
  std::size_t max_iterations = 0;

  /// Cooperative cancellation: an in-flight iterative solve polls the
  /// token and raises resil::CancelledError when it fires.
  const resil::CancellationToken* cancel = nullptr;

  /// Fallback cascade: LU escalates to GTH when the direct solve is
  /// near-singular (throws or leaves a large residual); power /
  /// Gauss-Seidel escalate to GTH on nonconvergence instead of
  /// throwing.  The result records `escalated = true` and keeps the
  /// originally requested method for reporting.
  bool escalate = false;

  /// Optional reusable scratch storage (dense elimination matrix, LU
  /// factors, residual vectors).  Batch drivers give each worker its
  /// own workspace so repeated solves stop allocating; results are
  /// bit-identical with and without one (oracle-gated).  Not owned.
  linalg::SolveWorkspace* workspace = nullptr;
};

struct SteadyState {
  linalg::Vector probabilities;
  SteadyStateMethod method = SteadyStateMethod::kGth;
  std::size_t iterations = 0;  // 0 for direct methods
  double residual = 0.0;       // ||pi Q||_inf
  bool escalated = false;      // fell back to GTH (see SolveControl)

  [[nodiscard]] double probability(StateId id) const {
    return probabilities.at(id);
  }
};

/// Solves pi Q = 0, sum(pi) = 1.  The stationary distribution must
/// be unique (exactly one closed communicating class; transient
/// states are tolerated and get probability zero): by default a
/// fail-fast structural check (validate.h, codes R010/R013) rejects
/// ill-posed chains with a diagnostics-carrying lint::LintError
/// (a std::domain_error) before any numerics run.  Pass
/// Validation::kOff to skip the check — direct methods then raise a
/// plain std::domain_error on singular systems and iterative methods
/// fail to converge (reported via residual).
/// Iterative nonconvergence raises NonConvergenceError (or escalates
/// to GTH when control.escalate is set); a cancelled solve raises
/// resil::CancelledError and never escalates.
[[nodiscard]] SteadyState solve_steady_state(
    const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth,
    Validation validation = Validation::kOn,
    const SolveControl& control = {});

}  // namespace rascal::ctmc

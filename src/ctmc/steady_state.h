// Steady-state solution of an irreducible CTMC.
#pragma once

#include <stdexcept>

#include "ctmc/ctmc.h"
#include "ctmc/validate.h"
#include "linalg/matrix.h"
#include "linalg/precond.h"
#include "linalg/workspace.h"
#include "resil/cancel.h"
#include "resil/retry.h"

namespace rascal::ctmc {

enum class SteadyStateMethod {
  kGth,          // Grassmann-Taksar-Heyman elimination (default; stable)
  kLu,           // direct solve of pi Q = 0 with normalization row
  kPower,        // power iteration on the uniformized chain
  kGaussSeidel,  // Gauss-Seidel sweeps on the balance equations
  kGmres,        // sparse GMRES(m) on the normalized augmented system
  kBiCgStab,     // sparse BiCGStab on the same system
};

/// Chains with more states than this never materialize a dense n x n
/// Matrix: dense method requests re-route to the sparse GMRES path,
/// and Krylov nonconvergence escalates to dense GTH only below it.
/// 2048 states is the point where the dense image (33 MB) and the
/// O(n^3) eliminations stop being a sensible per-sample cost.
inline constexpr std::size_t kDefaultSparseThreshold = 2048;

/// An iterative method exhausted its iteration budget without meeting
/// tolerance (and escalation was disabled or also failed).
/// Retryable: a supervisor can escalate the budget or descend the
/// fallback ladder (resil/retry.h).
class NonConvergenceError : public std::runtime_error,
                            public resil::ErrorClassTag {
 public:
  using std::runtime_error::runtime_error;
  [[nodiscard]] resil::ErrorClass error_class() const noexcept override {
    return resil::ErrorClass::kNonConvergence;
  }
};

/// Per-solve resource budget and escalation policy.
struct SolveControl {
  /// Caps the iteration count of iterative methods (0 = library
  /// default).  Replaces unbounded loops for batch runs.
  std::size_t max_iterations = 0;

  /// Cooperative cancellation: an in-flight iterative solve polls the
  /// token and raises resil::CancelledError when it fires.
  const resil::CancellationToken* cancel = nullptr;

  /// Fallback cascade: LU escalates to GTH when the direct solve is
  /// near-singular (throws or leaves a large residual); power /
  /// Gauss-Seidel escalate to GTH on nonconvergence instead of
  /// throwing.  The result records `escalated = true` and keeps the
  /// originally requested method for reporting.  The cascade crosses
  /// the dense/sparse boundary in both directions: a Krylov solve
  /// that fails to converge (or whose preconditioner rejects the
  /// pattern) escalates to dense GTH when the state count fits under
  /// `sparse_threshold`, and raises NonConvergenceError when the
  /// chain is too large for any dense fallback.
  bool escalate = false;

  /// Dense/sparse boundary (0 = kDefaultSparseThreshold): above this
  /// many states, kGth/kLu requests are re-routed to the sparse GMRES
  /// path instead of building a dense Matrix, and escalation refuses
  /// to densify.  The result records the re-route in
  /// `effective_method`.
  std::size_t sparse_threshold = 0;

  /// Preconditioner for the Krylov methods (kGmres/kBiCgStab).
  linalg::PrecondKind precond = linalg::PrecondKind::kIlu0;

  /// GMRES(m) restart length (0 = library default).
  std::size_t gmres_restart = 0;

  /// Optional reusable scratch storage (dense elimination matrix, LU
  /// factors, residual vectors).  Batch drivers give each worker its
  /// own workspace so repeated solves stop allocating; results are
  /// bit-identical with and without one (oracle-gated).  Not owned.
  linalg::SolveWorkspace* workspace = nullptr;
};

struct SteadyState {
  linalg::Vector probabilities;
  SteadyStateMethod method = SteadyStateMethod::kGth;
  /// Method that actually produced the numbers: differs from `method`
  /// when a dense request was re-routed to the sparse path (state
  /// count above SolveControl::sparse_threshold).
  SteadyStateMethod effective_method = SteadyStateMethod::kGth;
  std::size_t iterations = 0;  // 0 for direct methods
  double residual = 0.0;       // ||pi Q||_inf
  bool escalated = false;      // fell back to GTH (see SolveControl)

  [[nodiscard]] double probability(StateId id) const {
    return probabilities.at(id);
  }
};

/// Solves pi Q = 0, sum(pi) = 1.  The stationary distribution must
/// be unique (exactly one closed communicating class; transient
/// states are tolerated and get probability zero): by default a
/// fail-fast structural check (validate.h, codes R010/R013) rejects
/// ill-posed chains with a diagnostics-carrying lint::LintError
/// (a std::domain_error) before any numerics run.  Pass
/// Validation::kOff to skip the check — direct methods then raise a
/// plain std::domain_error on singular systems and iterative methods
/// fail to converge (reported via residual).
/// Iterative nonconvergence raises NonConvergenceError (or escalates
/// to GTH when control.escalate is set); a cancelled solve raises
/// resil::CancelledError and never escalates.
[[nodiscard]] SteadyState solve_steady_state(
    const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth,
    Validation validation = Validation::kOn,
    const SolveControl& control = {});

}  // namespace rascal::ctmc

#include "ctmc/transient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ctmc/validate.h"
#include "obs/obs.h"

namespace rascal::ctmc {

namespace {

constexpr double kLogUnderflow = -745.0;  // below exp() ~ 0 in double

// Once past the Poisson mode, terms with log-weight under this bound
// can never contribute at double precision; stopping on it guards
// against the summed CDF plateauing just below 1 - precision from
// accumulated rounding.
constexpr double kLogNegligible = -45.0;  // ~ 3e-20

void check_initial(const Ctmc& chain, const linalg::Vector& initial) {
  if (initial.size() != chain.num_states()) {
    throw std::invalid_argument("transient: initial vector size mismatch");
  }
  double sum = 0.0;
  for (double p : initial) {
    if (p < 0.0) {
      throw std::invalid_argument("transient: negative initial probability");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("transient: initial vector must sum to 1");
  }
}

// Polled at every ~128th Poisson term: stiff horizons sum millions of
// terms, so a deadline must be able to interrupt the summation itself.
void check_cancel(const TransientOptions& options, std::size_t term,
                  const char* where) {
  if (options.cancel != nullptr && term % 128 == 0 &&
      options.cancel->cancelled()) {
    throw resil::CancelledError(std::string(where) +
                                ": cancelled during uniformization after " +
                                std::to_string(term) + " terms");
  }
}

// One DTMC step of the uniformized chain, v <- v (I + Q/Lambda), using
// caller-owned scratch so the Poisson summation never allocates.
void uniformized_step(const linalg::CsrMatrix& q, linalg::Vector& v,
                      double lambda, linalg::Vector& vq,
                      linalg::Vector& next) {
  q.left_multiply_into(v, vq);
  next.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    next[i] = v[i] + vq[i] / lambda;
    if (next[i] < 0.0) next[i] = 0.0;  // round-off guard
  }
  std::swap(v, next);
}

}  // namespace

TransientResult transient_distribution(const Ctmc& chain,
                                       const linalg::Vector& initial,
                                       double t,
                                       const TransientOptions& options) {
  const obs::Span span("ctmc.transient");
  check_initial(chain, initial);
  if (t < 0.0) {
    throw std::invalid_argument("transient: negative time");
  }
  if (options.validate) {
    throw_if_errors(validate_for_transient(chain, t, options.max_terms));
  }
  TransientResult result;
  if (t == 0.0 || chain.max_exit_rate() == 0.0) {
    result.probabilities = initial;
    return result;
  }
  const double lambda = chain.max_exit_rate() * 1.02;
  const double lt = lambda * t;
  const linalg::CsrMatrix q = chain.sparse_generator();

  linalg::SolveWorkspace local_ws;
  linalg::SolveWorkspace* ws =
      options.workspace != nullptr ? options.workspace : &local_ws;
  linalg::Vector& v = ws->vec(0, chain.num_states());  // pi(0) P^k
  std::copy(initial.begin(), initial.end(), v.begin());
  linalg::Vector& vq = ws->vec(1, 0);
  linalg::Vector& next = ws->vec(2, 0);
  linalg::Vector acc(chain.num_states(), 0.0);  // weighted sum (the result)
  double log_w = -lt;                           // log Poisson pmf at k
  double accumulated_weight = 0.0;
  std::size_t k = 0;
  while (accumulated_weight < 1.0 - options.precision) {
    check_cancel(options, k, "transient_distribution");
    if (static_cast<double>(k) > lt && log_w < kLogNegligible) break;
    if (k > options.max_terms) {
      throw std::runtime_error(
          "transient_distribution: truncation point exceeds max_terms "
          "(chain too stiff for this horizon)");
    }
    if (log_w > kLogUnderflow) {
      const double w = std::exp(log_w);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += w * v[i];
      accumulated_weight += w;
    }
    uniformized_step(q, v, lambda, vq, next);
    ++k;
    log_w += std::log(lt) - std::log(static_cast<double>(k));
  }
  linalg::normalize_to_sum_one(acc);
  result.probabilities = std::move(acc);
  result.terms = k;
  if (obs::enabled()) {
    obs::counter("ctmc.transient.solves").add(1);
    obs::counter("ctmc.transient.terms").add(result.terms);
  }
  return result;
}

TransientResult transient_distribution(const Ctmc& chain,
                                       StateId initial_state, double t,
                                       const TransientOptions& options) {
  if (initial_state >= chain.num_states()) {
    throw std::invalid_argument("transient: initial state out of range");
  }
  linalg::Vector initial(chain.num_states(), 0.0);
  initial[initial_state] = 1.0;
  return transient_distribution(chain, initial, t, options);
}

IntervalRewardResult expected_interval_reward(
    const Ctmc& chain, const linalg::Vector& initial, double t,
    const TransientOptions& options) {
  linalg::Vector rewards(chain.num_states());
  for (StateId i = 0; i < chain.num_states(); ++i) {
    rewards[i] = chain.reward(i);
  }
  return expected_interval_rewards(chain, initial, t, {std::move(rewards)},
                                   options)
      .front();
}

std::vector<IntervalRewardResult> expected_interval_rewards(
    const Ctmc& chain, const linalg::Vector& initial, double t,
    const std::vector<linalg::Vector>& reward_sets,
    const TransientOptions& options) {
  const obs::Span span("ctmc.interval_reward");
  check_initial(chain, initial);
  if (!(t > 0.0)) {
    throw std::invalid_argument("expected_interval_reward: requires t > 0");
  }
  if (reward_sets.empty()) {
    throw std::invalid_argument(
        "expected_interval_rewards: need at least one reward vector");
  }
  const std::size_t n = chain.num_states();
  for (const linalg::Vector& rewards : reward_sets) {
    if (rewards.size() != n) {
      throw std::invalid_argument(
          "expected_interval_rewards: reward vector size mismatch");
    }
  }
  if (options.validate) {
    throw_if_errors(validate_for_transient(chain, t, options.max_terms));
  }
  std::vector<IntervalRewardResult> results(reward_sets.size());
  if (chain.max_exit_rate() == 0.0) {
    for (std::size_t j = 0; j < reward_sets.size(); ++j) {
      double reward = 0.0;
      for (StateId i = 0; i < n; ++i) {
        reward += initial[i] * reward_sets[j][i];
      }
      results[j].accumulated_reward = reward * t;
      results[j].time_averaged = reward;
    }
    return results;
  }
  const double lambda = chain.max_exit_rate() * 1.02;
  const double lt = lambda * t;
  const linalg::CsrMatrix q = chain.sparse_generator();

  // integral_0^t pi(u) du = (1/Lambda) sum_k (1 - W_k) v_k, where
  // W_k is the Poisson CDF at k.  We accumulate the reward-weighted
  // version directly, one running integral per reward set over a
  // single shared walk (the Poisson terms do not depend on rewards).
  linalg::SolveWorkspace local_ws;
  linalg::SolveWorkspace* ws =
      options.workspace != nullptr ? options.workspace : &local_ws;
  linalg::Vector& v = ws->vec(0, n);
  std::copy(initial.begin(), initial.end(), v.begin());
  linalg::Vector& vq = ws->vec(1, 0);
  linalg::Vector& next = ws->vec(2, 0);
  std::vector<double> integrals(reward_sets.size(), 0.0);
  double log_w = -lt;
  double cdf = 0.0;
  std::size_t k = 0;
  while (1.0 - cdf > options.precision) {
    check_cancel(options, k, "expected_interval_reward");
    if (static_cast<double>(k) > lt && log_w < kLogNegligible) break;
    if (k > options.max_terms) {
      throw std::runtime_error(
          "expected_interval_reward: truncation point exceeds max_terms");
    }
    if (log_w > kLogUnderflow) cdf += std::exp(log_w);
    for (std::size_t j = 0; j < reward_sets.size(); ++j) {
      const double* rj = reward_sets[j].data();
      double v_reward = 0.0;
      for (StateId i = 0; i < n; ++i) {
        v_reward += v[i] * rj[i];
      }
      integrals[j] += (1.0 - cdf) * v_reward;
    }
    uniformized_step(q, v, lambda, vq, next);
    ++k;
    log_w += std::log(lt) - std::log(static_cast<double>(k));
  }
  for (std::size_t j = 0; j < reward_sets.size(); ++j) {
    results[j].accumulated_reward = integrals[j] / lambda;
    results[j].time_averaged = results[j].accumulated_reward / t;
    results[j].terms = k;
  }
  if (obs::enabled()) {
    obs::counter("ctmc.transient.solves").add(1);
    obs::counter("ctmc.transient.terms").add(k);
  }
  return results;
}

}  // namespace rascal::ctmc

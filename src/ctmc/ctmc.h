// Continuous-time Markov chain with per-state reward rates.
//
// This is the core object of the library: states carry a reward rate
// (1 = up, 0 = down for plain availability; fractional values model
// degraded service), and transitions carry exponential rates.  The
// paper's Figures 2-4 are instances of this class, built either
// directly (models/), from symbolic rate expressions (builder.h), or
// from a stochastic Petri net (spn/).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace rascal::ctmc {

using StateId = std::size_t;

struct State {
  std::string name;
  double reward = 1.0;
};

struct Transition {
  StateId from = 0;
  StateId to = 0;
  double rate = 0.0;
};

class Ctmc {
 public:
  /// Validates invariants: non-empty state set, unique state names,
  /// transition endpoints in range, no self-loops, strictly positive
  /// rates, finite rewards.  Parallel transitions between the same
  /// pair of states are merged.  Throws std::invalid_argument on
  /// violation.
  Ctmc(std::vector<State> states, std::vector<Transition> transitions);

  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::string& state_name(StateId id) const;
  [[nodiscard]] double reward(StateId id) const;

  /// State id by name.
  [[nodiscard]] std::optional<StateId> find_state(
      const std::string& name) const noexcept;
  /// As find_state but throws std::invalid_argument when absent.
  [[nodiscard]] StateId state(const std::string& name) const;

  /// Total exit rate of a state.
  [[nodiscard]] double exit_rate(StateId id) const;

  /// Rate from `from` to `to` (0 when no transition).
  [[nodiscard]] double rate(StateId from, StateId to) const;

  /// Dense infinitesimal generator Q (diagonal = negative exit rate).
  [[nodiscard]] linalg::Matrix generator() const;

  /// Writes the dense generator into caller-owned storage (reshaped to
  /// n x n), so repeated solves through a SolveWorkspace reuse one
  /// heap block instead of allocating per call.
  void write_generator(linalg::Matrix& q) const;

  /// Sparse generator, diagonal included.  Assembled straight into CSR
  /// arrays from the sorted transition index — no triplet round trip.
  [[nodiscard]] linalg::CsrMatrix sparse_generator() const;

  /// True when every state can reach every other state.
  [[nodiscard]] bool is_irreducible() const;

  /// States with reward >= threshold (default: "up" states).
  [[nodiscard]] std::vector<StateId> states_with_reward_at_least(
      double threshold = 1.0) const;
  /// States with reward below threshold (default: "down" states).
  [[nodiscard]] std::vector<StateId> states_with_reward_below(
      double threshold = 1.0) const;

  /// Largest exit rate over all states (uniformization constant base).
  [[nodiscard]] double max_exit_rate() const noexcept;

 private:
  std::vector<State> states_;
  std::vector<Transition> transitions_;
  // Adjacency index: transitions_ offsets sorted by (from, to); built
  // once in the constructor.
  std::vector<std::size_t> row_offsets_;
  std::vector<double> exit_rates_;
};

}  // namespace rascal::ctmc

// Memoized steady-state solving for batch drivers.
//
// Hierarchical models solve the same bound chain more than once per
// sample (e.g. the availability metric and the downtime attribution
// both need the root distribution), and batched drivers often sweep
// parameters that leave some submodel generators untouched.  A
// SolveCache keys the most recent solve by an exact digest of the
// generator (state count plus every transition's endpoints and rate
// bit pattern, via resil::DigestBuilder) and returns the stored
// distribution on a match instead of re-running the factorisation.
// Because the solvers are deterministic, a cache hit is bit-identical
// to a fresh solve — gated by the src/check/ oracle.
//
// Two tiers share one key scheme (steady_state_key):
//
//   * SolveCache — worker-local, single entry, also owns the worker's
//     SolveWorkspace.  Not thread-safe; give each worker its own.
//   * SharedSolveCache — process-wide, sharded, fixed-memory
//     concurrent table (transposition-table idiom: every key maps to
//     exactly one slot, colliding inserts evict).  Attach one to many
//     SolveCaches via set_shared() and a parametric sweep dispatched
//     across workers never recomputes an identical CTMC.  Hits return
//     byte-exact copies of the stored distribution, so results stay
//     bit-identical across thread counts and cold/warm caches (also
//     oracle-gated, check_shared_cache_consensus).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ctmc/steady_state.h"

namespace rascal::ctmc {

/// Exact key of a steady-state solve: the generator digest plus every
/// SolveControl field that can change the computed bits (method,
/// validation, max_iterations, escalate, sparse_threshold, precond,
/// gmres_restart).  The cancellation token and workspace pointer are
/// excluded: they never change the solution.  Two solves with equal
/// keys are bit-identical; the property suite asserts every field
/// (and every transition rate) discriminates.
[[nodiscard]] std::uint64_t steady_state_key(const Ctmc& chain,
                                             SteadyStateMethod method,
                                             Validation validation,
                                             const SolveControl& control);

/// Process-wide concurrent solve cache: a fixed number of slots split
/// across mutex-guarded shards.  Each key owns exactly one slot
/// (multiplicative hash), so memory is bounded by `capacity` stored
/// distributions and an insert colliding with a live different-key
/// slot evicts it (counted).  Lookups copy the stored SteadyState out
/// under the shard lock, so a returned value is never touched by a
/// concurrent eviction.
class SharedSolveCache {
 public:
  struct Config {
    /// Total slot count across all shards (0 disables the cache:
    /// lookups miss, inserts drop).  Bounds resident results.
    std::size_t capacity = 1024;
    /// Shard count (rounded up to a power of two, capped by
    /// capacity).  One mutex per shard keeps workers out of each
    /// other's way.
    std::size_t shards = 16;
  };

  /// Point-in-time statistics.  Counters are cumulative over the
  /// cache lifetime; occupancy/evictions reflect slot state.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t occupancy = 0;  // live slots
    std::size_t capacity = 0;   // total slots
  };

  SharedSolveCache() : SharedSolveCache(Config{}) {}
  explicit SharedSolveCache(const Config& config);

  /// True when the cache has at least one slot.
  [[nodiscard]] bool enabled() const noexcept { return !shards_.empty(); }

  /// On a key match copies the stored solution into `out` and returns
  /// true; otherwise leaves `out` untouched.
  [[nodiscard]] bool lookup(std::uint64_t key, SteadyState& out) const;

  /// Stores `value` in the key's slot, evicting whatever different
  /// key lived there.  Re-inserting an existing key refreshes it.
  void insert(std::uint64_t key, const SteadyState& value);

  [[nodiscard]] Stats stats() const;

  /// Drops every stored entry (slots keep their memory reserved).
  void clear();

 private:
  struct Slot {
    bool used = false;
    std::uint64_t key = 0;
    SteadyState value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Slot> slots;
    std::size_t used = 0;
  };

  // 64-bit multiplicative spread of the FNV key: the low bits pick
  // the shard, the high bits the slot, so both stay well mixed even
  // for keys that differ in few bits.
  [[nodiscard]] std::size_t shard_index(std::uint64_t key) const noexcept;
  [[nodiscard]] std::size_t slot_index(std::uint64_t key) const noexcept;

  std::vector<Shard> shards_;
  std::size_t slots_per_shard_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

class SolveCache {
 public:
  /// The reusable scratch threaded into every cached solve.
  [[nodiscard]] linalg::SolveWorkspace& workspace() noexcept {
    return workspace_;
  }

  /// Attaches a cross-worker shared tier: consulted when the local
  /// entry misses, published to after every fresh solve.  Not owned;
  /// pass nullptr to detach.  The shared tier never changes results —
  /// its entries were produced by the identical deterministic solve.
  void set_shared(SharedSolveCache* shared) noexcept { shared_ = shared; }

  /// As solve_steady_state(), but returns the stored result when the
  /// chain's generator, the method, and the control knobs that affect
  /// the numerics (max_iterations, escalate, validation) match the
  /// previous call.  The cancellation token and workspace pointer are
  /// excluded from the key: they never change the solution.
  const SteadyState& steady_state(
      const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth,
      Validation validation = Validation::kOn, SolveControl control = {});

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Drops the stored solve (the workspace keeps its capacity).
  void invalidate() noexcept { valid_ = false; }

  /// Exact structural digest of a chain's generator: state count plus
  /// (from, to, rate-bits) of every merged transition.
  [[nodiscard]] static std::uint64_t generator_digest(const Ctmc& chain);

 private:
  linalg::SolveWorkspace workspace_;
  SharedSolveCache* shared_ = nullptr;  // optional cross-worker tier
  SteadyState cached_;
  std::uint64_t key_ = 0;
  bool valid_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rascal::ctmc

// Memoized steady-state solving for batch drivers.
//
// Hierarchical models solve the same bound chain more than once per
// sample (e.g. the availability metric and the downtime attribution
// both need the root distribution), and batched drivers often sweep
// parameters that leave some submodel generators untouched.  A
// SolveCache keys the most recent solve by an exact digest of the
// generator (state count plus every transition's endpoints and rate
// bit pattern, via resil::DigestBuilder) and returns the stored
// distribution on a match instead of re-running the factorisation.
// Because the solvers are deterministic, a cache hit is bit-identical
// to a fresh solve — gated by the src/check/ oracle.
//
// The cache also owns the worker's SolveWorkspace, so one object per
// worker provides both memoization and allocation-free scratch.  Not
// thread-safe; give each worker its own.
#pragma once

#include <cstdint>

#include "ctmc/steady_state.h"

namespace rascal::ctmc {

class SolveCache {
 public:
  /// The reusable scratch threaded into every cached solve.
  [[nodiscard]] linalg::SolveWorkspace& workspace() noexcept {
    return workspace_;
  }

  /// As solve_steady_state(), but returns the stored result when the
  /// chain's generator, the method, and the control knobs that affect
  /// the numerics (max_iterations, escalate, validation) match the
  /// previous call.  The cancellation token and workspace pointer are
  /// excluded from the key: they never change the solution.
  const SteadyState& steady_state(
      const Ctmc& chain, SteadyStateMethod method = SteadyStateMethod::kGth,
      Validation validation = Validation::kOn, SolveControl control = {});

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Drops the stored solve (the workspace keeps its capacity).
  void invalidate() noexcept { valid_ = false; }

  /// Exact structural digest of a chain's generator: state count plus
  /// (from, to, rate-bits) of every merged transition.
  [[nodiscard]] static std::uint64_t generator_digest(const Ctmc& chain);

 private:
  linalg::SolveWorkspace workspace_;
  SteadyState cached_;
  std::uint64_t key_ = 0;
  bool valid_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rascal::ctmc

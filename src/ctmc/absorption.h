// First-passage analysis: mean time to reach a target set and the
// distribution of which target is hit first.  Used to derive MTTF
// (mean time from the all-up state to the first system failure) and
// the equivalent failure rates of the hierarchical composition.
#pragma once

#include <vector>

#include "ctmc/ctmc.h"
#include "ctmc/validate.h"
#include "linalg/matrix.h"

namespace rascal::ctmc {

/// Expected time to first reach any state in `targets`, from every
/// state (0 for the targets themselves).  Targets are treated as
/// absorbing: their outgoing transitions are ignored.
///
/// Throws std::invalid_argument when `targets` is empty or contains
/// an out-of-range id, and lint::LintError (a std::domain_error,
/// code R015, one diagnostic per offending state) when some states
/// cannot reach the target set (infinite expectation).  The
/// reachability pre-check is skipped with Validation::kOff; the
/// numeric fallback then still reports every negative solution
/// component through the same diagnostics type.
[[nodiscard]] linalg::Vector mean_time_to_absorption(
    const Ctmc& chain, const std::vector<StateId>& targets,
    Validation validation = Validation::kOn);

/// Probability, for each (state, target) pair, that `target` is the
/// first target-set state entered.  Row = source state, column =
/// index into `targets`.  Rows for target states are the unit vector
/// of that target.
[[nodiscard]] linalg::Matrix absorption_probabilities(
    const Ctmc& chain, const std::vector<StateId>& targets,
    Validation validation = Validation::kOn);

}  // namespace rascal::ctmc

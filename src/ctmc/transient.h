// Transient (time-dependent) solution by uniformization (Jensen's
// method): pi(t) = sum_k PoissonPmf(Lambda t; k) * pi(0) P^k with
// P = I + Q/Lambda.  Also computes the expected accumulated reward
// over [0, t], which for 0/1 rewards is the interval availability the
// paper's companion reference [18] studies.
#pragma once

#include "ctmc/ctmc.h"
#include "linalg/matrix.h"
#include "linalg/workspace.h"
#include "resil/cancel.h"

namespace rascal::ctmc {

struct TransientOptions {
  double precision = 1e-12;          // tail mass left untruncated
  std::size_t max_terms = 20000000;  // hard cap on summation length
  // Fail fast with a diagnostics-carrying lint::LintError when the
  // Poisson truncation point provably exceeds max_terms (see
  // validate.h), instead of summing millions of terms first.
  bool validate = true;
  // Optional cooperative cancellation; polled every ~128 Poisson terms
  // and raises resil::CancelledError when it fires mid-summation.
  const resil::CancellationToken* cancel = nullptr;
  // Optional reusable scratch for the per-term vector temporaries, so
  // batch drivers stop allocating inside the Poisson summation.
  // Results are bit-identical with and without one.  Not owned.
  linalg::SolveWorkspace* workspace = nullptr;
};

struct TransientResult {
  linalg::Vector probabilities;  // pi(t)
  std::size_t terms = 0;         // Poisson terms accumulated
};

/// Distribution at time t >= 0 starting from `initial` (must be a
/// probability vector of matching size).  Throws std::invalid_argument
/// on bad input; lint::LintError (code R032) up front when the
/// horizon provably needs more than max_terms Poisson terms (disable
/// via TransientOptions::validate); and std::runtime_error when the
/// summation still overruns max_terms at run time.
[[nodiscard]] TransientResult transient_distribution(
    const Ctmc& chain, const linalg::Vector& initial, double t,
    const TransientOptions& options = {});

/// Convenience: start deterministically in `initial_state`.
[[nodiscard]] TransientResult transient_distribution(
    const Ctmc& chain, StateId initial_state, double t,
    const TransientOptions& options = {});

struct IntervalRewardResult {
  double accumulated_reward = 0.0;  // E[ integral_0^t reward(X_u) du ]
  double time_averaged = 0.0;       // accumulated / t (interval availability)
  std::size_t terms = 0;
};

/// Expected accumulated reward over [0, t].
[[nodiscard]] IntervalRewardResult expected_interval_reward(
    const Ctmc& chain, const linalg::Vector& initial, double t,
    const TransientOptions& options = {});

/// Batched variant: evaluates several per-state reward vectors over
/// one shared uniformization walk, so K reward sets cost one transient
/// summation instead of K.  Each reward vector must have one entry per
/// state.  Entry j of the result is bit-identical to a standalone
/// expected_interval_reward run on a chain whose state rewards are
/// reward_sets[j]: the Poisson walk does not depend on rewards, and
/// each reward accumulation uses the same operation order.
[[nodiscard]] std::vector<IntervalRewardResult> expected_interval_rewards(
    const Ctmc& chain, const linalg::Vector& initial, double t,
    const std::vector<linalg::Vector>& reward_sets,
    const TransientOptions& options = {});

}  // namespace rascal::ctmc

#include "spn/petri_net.h"

#include <stdexcept>

namespace rascal::spn {

PlaceId PetriNet::add_place(std::string name, std::uint32_t initial_tokens) {
  places_.push_back({std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId PetriNet::add_timed_transition(std::string name, double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("PetriNet: timed rate must be > 0");
  }
  return add_timed_transition(std::move(name),
                              [rate](const Marking&) { return rate; });
}

TransitionId PetriNet::add_timed_transition(std::string name,
                                            RateFunction rate) {
  if (!rate) {
    throw std::invalid_argument("PetriNet: null rate function");
  }
  Transition t;
  t.name = std::move(name);
  t.rate = std::move(rate);
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

TransitionId PetriNet::add_immediate_transition(std::string name,
                                                double weight, int priority) {
  if (!(weight > 0.0)) {
    throw std::invalid_argument("PetriNet: immediate weight must be > 0");
  }
  Transition t;
  t.name = std::move(name);
  t.immediate = true;
  t.priority = priority;
  t.rate = [weight](const Marking&) { return weight; };
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

void PetriNet::check_place(PlaceId id) const {
  if (id >= places_.size()) {
    throw std::out_of_range("PetriNet: place id out of range");
  }
}

void PetriNet::check_transition(TransitionId id) const {
  if (id >= transitions_.size()) {
    throw std::out_of_range("PetriNet: transition id out of range");
  }
}

PetriNet& PetriNet::input_arc(TransitionId transition, PlaceId place,
                              std::uint32_t multiplicity) {
  check_transition(transition);
  check_place(place);
  if (multiplicity == 0) {
    throw std::invalid_argument("PetriNet: zero-multiplicity arc");
  }
  transitions_[transition].inputs.push_back({place, multiplicity});
  return *this;
}

PetriNet& PetriNet::output_arc(TransitionId transition, PlaceId place,
                               std::uint32_t multiplicity) {
  check_transition(transition);
  check_place(place);
  if (multiplicity == 0) {
    throw std::invalid_argument("PetriNet: zero-multiplicity arc");
  }
  transitions_[transition].outputs.push_back({place, multiplicity});
  return *this;
}

PetriNet& PetriNet::inhibitor_arc(TransitionId transition, PlaceId place,
                                  std::uint32_t multiplicity) {
  check_transition(transition);
  check_place(place);
  if (multiplicity == 0) {
    throw std::invalid_argument("PetriNet: zero-multiplicity inhibitor");
  }
  transitions_[transition].inhibitors.push_back({place, multiplicity});
  return *this;
}

PetriNet& PetriNet::set_guard(TransitionId transition, GuardFunction guard) {
  check_transition(transition);
  transitions_[transition].guard = std::move(guard);
  return *this;
}

const std::string& PetriNet::place_name(PlaceId id) const {
  check_place(id);
  return places_[id].name;
}

const std::string& PetriNet::transition_name(TransitionId id) const {
  check_transition(id);
  return transitions_[id].name;
}

Marking PetriNet::initial_marking() const {
  Marking m(places_.size());
  for (std::size_t i = 0; i < places_.size(); ++i) m[i] = places_[i].initial;
  return m;
}

bool PetriNet::is_immediate(TransitionId id) const {
  check_transition(id);
  return transitions_[id].immediate;
}

int PetriNet::priority(TransitionId id) const {
  check_transition(id);
  return transitions_[id].priority;
}

bool PetriNet::is_enabled(TransitionId id, const Marking& m) const {
  check_transition(id);
  const Transition& t = transitions_[id];
  if (m.size() != places_.size()) {
    throw std::invalid_argument("PetriNet: marking size mismatch");
  }
  for (const Arc& a : t.inputs) {
    if (m[a.place] < a.multiplicity) return false;
  }
  for (const Arc& a : t.inhibitors) {
    if (m[a.place] >= a.multiplicity) return false;
  }
  if (t.guard && !t.guard(m)) return false;
  if (!t.immediate && !(t.rate(m) > 0.0)) return false;
  return true;
}

double PetriNet::rate(TransitionId id, const Marking& m) const {
  check_transition(id);
  return transitions_[id].rate(m);
}

Marking PetriNet::fire(TransitionId id, const Marking& m) const {
  if (!is_enabled(id, m)) {
    throw std::logic_error("PetriNet::fire: transition '" +
                           transitions_[id].name + "' is not enabled");
  }
  Marking next = m;
  const Transition& t = transitions_[id];
  for (const Arc& a : t.inputs) next[a.place] -= a.multiplicity;
  for (const Arc& a : t.outputs) next[a.place] += a.multiplicity;
  return next;
}

std::string PetriNet::format_marking(const Marking& m) const {
  std::string out;
  for (std::size_t i = 0; i < m.size() && i < places_.size(); ++i) {
    if (m[i] == 0) continue;
    if (!out.empty()) out += ",";
    out += places_[i].name + "=" + std::to_string(m[i]);
  }
  return out.empty() ? "empty" : out;
}

}  // namespace rascal::spn

// Reachability analysis: converts a bounded GSPN into a CTMC over its
// tangible markings, eliminating vanishing markings (those enabling
// immediate transitions) by pushing their firing probabilities into
// the incoming timed rates.
#pragma once

#include <functional>

#include "ctmc/ctmc.h"
#include "linalg/sparse.h"
#include "spn/petri_net.h"

namespace rascal::spn {

/// Reward rate of a tangible marking (1 = up, 0 = down, etc.).
using RewardFunction = std::function<double(const Marking&)>;

struct ReachabilityOptions {
  std::size_t max_tangible_markings = 1000000;
  std::size_t max_vanishing_depth = 10000;  // immediate-chain guard
};

struct GeneratedCtmc {
  ctmc::Ctmc chain;
  std::vector<Marking> markings;  // tangible marking per state id
};

/// Explores from the initial marking.  Throws std::runtime_error on a
/// vanishing loop (a cycle of immediate firings), when the state
/// space exceeds max_tangible_markings, or when the initial marking
/// cannot reach any tangible marking; std::invalid_argument when the
/// net has no places.
[[nodiscard]] GeneratedCtmc generate_ctmc(
    const PetriNet& net, const RewardFunction& reward,
    const ReachabilityOptions& options = {});

struct SparseGeneratedCtmc {
  linalg::CsrMatrix generator;    // Q in CSR form, diagonal included
  linalg::Vector rewards;         // reward rate per tangible state
  std::vector<Marking> markings;  // tangible marking per state id
};

/// Sparse twin of generate_ctmc for the million-state regime: the
/// same BFS exploration and vanishing elimination, but the generator
/// is emitted as CSR triplets straight from the frontier — state ids
/// are assigned in discovery order, so the triplets arrive sorted by
/// row and the counting-sort assembly is linear.  No Ctmc, dense
/// Matrix, or state-name strings are ever built.  The merged
/// generator equals generate_ctmc's sparse_generator() up to
/// duplicate-rate summation order.  Same exceptions as generate_ctmc.
[[nodiscard]] SparseGeneratedCtmc generate_sparse_ctmc(
    const PetriNet& net, const RewardFunction& reward,
    const ReachabilityOptions& options = {});

}  // namespace rascal::spn

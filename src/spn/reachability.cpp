#include "spn/reachability.h"

#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace rascal::spn {

namespace {

// Transitions eligible to fire in `m` under the GSPN rule: immediates
// of maximal priority pre-empt timed transitions.
std::vector<TransitionId> eligible(const PetriNet& net, const Marking& m) {
  std::vector<TransitionId> timed;
  std::vector<TransitionId> immediate;
  int best_priority = 0;
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    if (!net.is_enabled(t, m)) continue;
    if (net.is_immediate(t)) {
      if (immediate.empty() || net.priority(t) > best_priority) {
        immediate.clear();
        best_priority = net.priority(t);
      }
      if (net.priority(t) == best_priority) immediate.push_back(t);
    } else {
      timed.push_back(t);
    }
  }
  return immediate.empty() ? timed : immediate;
}

bool is_vanishing(const PetriNet& net, const Marking& m) {
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    if (net.is_immediate(t) && net.is_enabled(t, m)) return true;
  }
  return false;
}

class Explorer {
 public:
  Explorer(const PetriNet& net, const RewardFunction& reward,
           const ReachabilityOptions& options)
      : net_(net), reward_(reward), options_(options) {}

  GeneratedCtmc run() {
    explore();
    GeneratedCtmc out{make_chain(), std::move(markings_)};
    return out;
  }

  SparseGeneratedCtmc run_sparse() {
    explore();
    const std::size_t n = markings_.size();
    // Ids were assigned in BFS discovery order and the frontier is
    // FIFO, so transitions_ is already sorted by `from`: the triplet
    // build below is a pure counting sort with short per-row fixups.
    std::vector<linalg::Triplet> triplets;
    triplets.reserve(transitions_.size() + n);
    linalg::Vector exit(n, 0.0);
    for (const ctmc::Transition& t : transitions_) {
      triplets.push_back({t.from, t.to, t.rate});
      exit[t.from] += t.rate;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (exit[i] != 0.0) triplets.push_back({i, i, -exit[i]});
    }
    SparseGeneratedCtmc out;
    out.generator = linalg::CsrMatrix(n, n, std::move(triplets));
    out.rewards.reserve(n);
    for (const Marking& m : markings_) out.rewards.push_back(reward_(m));
    out.markings = std::move(markings_);
    return out;
  }

 private:
  void explore() {
    const Marking initial = net_.initial_marking();
    std::vector<std::pair<Marking, double>> roots;
    if (is_vanishing(net_, initial)) {
      std::set<Marking> on_path;
      resolve(initial, 1.0, roots, on_path, 0);
    } else {
      roots.emplace_back(initial, 1.0);
    }
    if (roots.empty()) {
      throw std::runtime_error(
          "generate_ctmc: no tangible marking reachable from the initial "
          "marking");
    }

    std::deque<std::size_t> frontier;
    for (const auto& [marking, probability] : roots) {
      frontier.push_back(intern(marking));
    }
    while (!frontier.empty()) {
      const std::size_t id = frontier.front();
      frontier.pop_front();
      // Copy: markings_ may reallocate during expansion.
      const Marking m = markings_[id];
      for (TransitionId t : eligible(net_, m)) {
        const double rate = net_.rate(t, m);
        const Marking next = net_.fire(t, m);
        std::vector<std::pair<Marking, double>> targets;
        if (is_vanishing(net_, next)) {
          std::set<Marking> on_path;
          resolve(next, 1.0, targets, on_path, 0);
        } else {
          targets.emplace_back(next, 1.0);
        }
        for (const auto& [target, probability] : targets) {
          const bool known = index_.count(target) != 0;
          const std::size_t target_id = intern(target);
          if (!known) frontier.push_back(target_id);
          if (target_id != id) {
            transitions_.push_back({id, target_id, rate * probability});
          }
        }
      }
    }
  }

  std::size_t intern(const Marking& m) {
    const auto [it, inserted] = index_.try_emplace(m, markings_.size());
    if (inserted) {
      if (markings_.size() >= options_.max_tangible_markings) {
        throw std::runtime_error(
            "generate_ctmc: tangible state space exceeds "
            "max_tangible_markings");
      }
      markings_.push_back(m);
    }
    return it->second;
  }

  // Distributes probability mass from a vanishing marking over the
  // tangible markings reachable by immediate firings.
  void resolve(const Marking& m, double probability,
               std::vector<std::pair<Marking, double>>& out,
               std::set<Marking>& on_path, std::size_t depth) {
    if (depth > options_.max_vanishing_depth) {
      throw std::runtime_error(
          "generate_ctmc: immediate-transition chain exceeds "
          "max_vanishing_depth");
    }
    if (!on_path.insert(m).second) {
      throw std::runtime_error(
          "generate_ctmc: vanishing loop (cycle of immediate transitions)");
    }
    const std::vector<TransitionId> immediates = eligible(net_, m);
    double total_weight = 0.0;
    for (TransitionId t : immediates) total_weight += net_.rate(t, m);
    for (TransitionId t : immediates) {
      const double p = probability * net_.rate(t, m) / total_weight;
      const Marking next = net_.fire(t, m);
      if (is_vanishing(net_, next)) {
        resolve(next, p, out, on_path, depth + 1);
      } else {
        out.emplace_back(next, p);
      }
    }
    on_path.erase(m);
  }

  ctmc::Ctmc make_chain() const {
    std::vector<ctmc::State> states;
    states.reserve(markings_.size());
    std::map<std::string, std::size_t> name_counts;
    for (const Marking& m : markings_) {
      std::string name = net_.format_marking(m);
      // format_marking is injective for distinct markings, but guard
      // against pathological place names colliding.
      const auto count = ++name_counts[name];
      if (count > 1) name += "#" + std::to_string(count);
      states.push_back({std::move(name), reward_(m)});
    }
    return ctmc::Ctmc(states, transitions_);
  }

  const PetriNet& net_;
  const RewardFunction& reward_;
  const ReachabilityOptions& options_;

  std::map<Marking, std::size_t> index_;
  std::vector<Marking> markings_;
  std::vector<ctmc::Transition> transitions_;
};

}  // namespace

GeneratedCtmc generate_ctmc(const PetriNet& net, const RewardFunction& reward,
                            const ReachabilityOptions& options) {
  if (net.num_places() == 0) {
    throw std::invalid_argument("generate_ctmc: net has no places");
  }
  if (!reward) {
    throw std::invalid_argument("generate_ctmc: null reward function");
  }
  Explorer explorer(net, reward, options);
  return explorer.run();
}

SparseGeneratedCtmc generate_sparse_ctmc(const PetriNet& net,
                                         const RewardFunction& reward,
                                         const ReachabilityOptions& options) {
  if (net.num_places() == 0) {
    throw std::invalid_argument("generate_sparse_ctmc: net has no places");
  }
  if (!reward) {
    throw std::invalid_argument("generate_sparse_ctmc: null reward function");
  }
  Explorer explorer(net, reward, options);
  return explorer.run_sparse();
}

}  // namespace rascal::spn

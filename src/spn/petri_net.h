// Generalized stochastic Petri nets (GSPN), in the SPNP / UltraSAN
// tradition the paper cites as the standard route to large Markov
// models: places hold tokens, timed transitions fire after an
// exponential delay (possibly marking-dependent), immediate
// transitions fire in zero time by priority and weight, and arcs may
// be input, output, or inhibitor.  reachability.h converts a bounded
// net into a ctmc::Ctmc.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace rascal::spn {

using PlaceId = std::size_t;
using TransitionId = std::size_t;
using Marking = std::vector<std::uint32_t>;

/// Marking-dependent rate (timed) or weight (immediate).
using RateFunction = std::function<double(const Marking&)>;
/// Extra enabling predicate on top of arc conditions.
using GuardFunction = std::function<bool(const Marking&)>;

class PetriNet {
 public:
  /// Adds a place with an initial token count; returns its id.
  PlaceId add_place(std::string name, std::uint32_t initial_tokens = 0);

  /// Adds an exponential transition with a fixed rate (> 0).
  TransitionId add_timed_transition(std::string name, double rate);
  /// Adds an exponential transition with a marking-dependent rate;
  /// the transition is disabled in markings where the rate is <= 0.
  TransitionId add_timed_transition(std::string name, RateFunction rate);

  /// Adds an immediate transition.  Among enabled immediates, only
  /// those of maximal priority may fire, with probability
  /// weight / (total weight of maximal-priority enabled immediates).
  TransitionId add_immediate_transition(std::string name, double weight = 1.0,
                                        int priority = 0);

  /// Firing `transition` consumes `multiplicity` tokens from `place`.
  PetriNet& input_arc(TransitionId transition, PlaceId place,
                      std::uint32_t multiplicity = 1);
  /// Firing `transition` deposits `multiplicity` tokens into `place`.
  PetriNet& output_arc(TransitionId transition, PlaceId place,
                       std::uint32_t multiplicity = 1);
  /// `transition` is disabled while `place` holds >= `multiplicity`
  /// tokens.
  PetriNet& inhibitor_arc(TransitionId transition, PlaceId place,
                          std::uint32_t multiplicity = 1);

  /// Attaches an additional guard predicate.
  PetriNet& set_guard(TransitionId transition, GuardFunction guard);

  [[nodiscard]] std::size_t num_places() const noexcept {
    return places_.size();
  }
  [[nodiscard]] std::size_t num_transitions() const noexcept {
    return transitions_.size();
  }
  [[nodiscard]] const std::string& place_name(PlaceId id) const;
  [[nodiscard]] const std::string& transition_name(TransitionId id) const;
  [[nodiscard]] Marking initial_marking() const;

  [[nodiscard]] bool is_immediate(TransitionId id) const;
  [[nodiscard]] int priority(TransitionId id) const;

  /// Arc-and-guard enabling test (ignores the priority rule among
  /// immediates, which reachability applies globally).
  [[nodiscard]] bool is_enabled(TransitionId id, const Marking& m) const;

  /// Rate (timed) or weight (immediate) in marking `m`.
  [[nodiscard]] double rate(TransitionId id, const Marking& m) const;

  /// Fires an enabled transition; throws std::logic_error when not
  /// enabled.
  [[nodiscard]] Marking fire(TransitionId id, const Marking& m) const;

  /// Human-readable marking, e.g. "NodesOk=2" (zero places omitted;
  /// the empty marking renders as "empty").
  [[nodiscard]] std::string format_marking(const Marking& m) const;

 private:
  struct Arc {
    PlaceId place = 0;
    std::uint32_t multiplicity = 1;
  };
  struct Transition {
    std::string name;
    bool immediate = false;
    int priority = 0;
    RateFunction rate;  // weight for immediates
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    std::vector<Arc> inhibitors;
    GuardFunction guard;  // may be empty
  };
  struct Place {
    std::string name;
    std::uint32_t initial = 0;
  };

  void check_place(PlaceId id) const;
  void check_transition(TransitionId id) const;

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace rascal::spn

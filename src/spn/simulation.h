// Direct simulation of a GSPN by playing the token game — no
// reachability graph, so it also works when the net is unbounded or
// its tangible state space is too large to generate (the standard
// SPNP fallback).  Timed transitions race with exponential delays;
// enabled immediates fire instantly by priority and weight.
#pragma once

#include <cstdint>

#include "spn/petri_net.h"
#include "spn/reachability.h"  // RewardFunction
#include "stats/rng.h"
#include "stats/summary.h"

namespace rascal::spn {

struct SpnSimOptions {
  double duration = 100000.0;
  std::size_t replications = 8;
  std::uint64_t seed = 1234;
  std::size_t max_immediate_chain = 10000;  // vanishing-loop guard
};

struct SpnSimResult {
  double mean_reward = 0.0;  // time-averaged reward over replications
  stats::Interval mean_reward_ci95;
  std::uint64_t timed_firings = 0;
  std::uint64_t immediate_firings = 0;
  stats::Summary per_replication_reward;
};

/// Estimates the steady-state expected reward rate of `net` under
/// `reward` by simulation.  Throws std::invalid_argument on bad
/// options and std::runtime_error on an immediate-transition loop.
[[nodiscard]] SpnSimResult simulate_spn(const PetriNet& net,
                                        const RewardFunction& reward,
                                        const SpnSimOptions& options = {});

}  // namespace rascal::spn

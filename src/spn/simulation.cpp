#include "spn/simulation.h"

#include <stdexcept>
#include <vector>

namespace rascal::spn {

namespace {

// Fires immediate transitions (highest priority first, weighted
// choice) until the marking is tangible.
Marking settle(const PetriNet& net, Marking marking,
               const SpnSimOptions& options, stats::RandomEngine& rng,
               std::uint64_t& immediate_firings) {
  for (std::size_t chain = 0;; ++chain) {
    if (chain > options.max_immediate_chain) {
      throw std::runtime_error(
          "simulate_spn: immediate-transition chain exceeded "
          "max_immediate_chain (vanishing loop?)");
    }
    std::vector<TransitionId> immediates;
    int best_priority = 0;
    for (TransitionId t = 0; t < net.num_transitions(); ++t) {
      if (!net.is_immediate(t) || !net.is_enabled(t, marking)) continue;
      if (immediates.empty() || net.priority(t) > best_priority) {
        immediates.clear();
        best_priority = net.priority(t);
      }
      if (net.priority(t) == best_priority) immediates.push_back(t);
    }
    if (immediates.empty()) return marking;

    double total_weight = 0.0;
    for (TransitionId t : immediates) total_weight += net.rate(t, marking);
    double pick = rng.uniform01() * total_weight;
    TransitionId chosen = immediates.back();
    for (TransitionId t : immediates) {
      const double w = net.rate(t, marking);
      if (pick < w) {
        chosen = t;
        break;
      }
      pick -= w;
    }
    marking = net.fire(chosen, marking);
    ++immediate_firings;
  }
}

}  // namespace

SpnSimResult simulate_spn(const PetriNet& net, const RewardFunction& reward,
                          const SpnSimOptions& options) {
  if (!(options.duration > 0.0) || options.replications == 0) {
    throw std::invalid_argument("simulate_spn: bad options");
  }
  if (!reward) {
    throw std::invalid_argument("simulate_spn: null reward function");
  }

  SpnSimResult result;
  stats::RandomEngine root(options.seed);
  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    stats::RandomEngine rng = root.split(rep);
    Marking marking = settle(net, net.initial_marking(), options, rng,
                             result.immediate_firings);
    double now = 0.0;
    double accumulated = 0.0;
    while (now < options.duration) {
      // Race the enabled timed transitions.
      double total_rate = 0.0;
      std::vector<std::pair<TransitionId, double>> enabled;
      for (TransitionId t = 0; t < net.num_transitions(); ++t) {
        if (net.is_immediate(t) || !net.is_enabled(t, marking)) continue;
        const double rate = net.rate(t, marking);
        enabled.emplace_back(t, rate);
        total_rate += rate;
      }
      const double r = reward(marking);
      if (enabled.empty()) {
        // Dead marking: the reward persists forever.
        accumulated += r * (options.duration - now);
        break;
      }
      const double hold = rng.exponential(total_rate);
      const double slice = std::min(hold, options.duration - now);
      accumulated += r * slice;
      now += hold;
      if (now >= options.duration) break;

      double pick = rng.uniform01() * total_rate;
      TransitionId chosen = enabled.back().first;
      for (const auto& [t, rate] : enabled) {
        if (pick < rate) {
          chosen = t;
          break;
        }
        pick -= rate;
      }
      marking = settle(net, net.fire(chosen, marking), options, rng,
                       result.immediate_firings);
      ++result.timed_firings;
    }
    result.per_replication_reward.add(accumulated / options.duration);
  }
  result.mean_reward = result.per_replication_reward.mean();
  result.mean_reward_ci95 =
      stats::mean_confidence_interval(result.per_replication_reward, 0.95);
  return result;
}

}  // namespace rascal::spn

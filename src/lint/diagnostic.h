// Structured diagnostics for the model linter (see docs/lint.md for
// the catalogue of codes).
//
// A Diagnostic pinpoints one defect in a model: a stable code
// ("R010"), a severity, a human-readable message, the location of the
// offending construct (state, transition, parameter, and/or
// file:line:column for models loaded from .rasc files), and an
// optional fix hint.  A LintReport collects them; LintError is the
// diagnostics-carrying exception the fail-fast solve pipeline throws.
//
// This header is dependency-free on purpose: the ctmc solvers link it
// for fail-fast validation, so it must sit below every model layer.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rascal::lint {

// Stable diagnostic codes (catalogued in docs/lint.md).  They live
// here rather than in lint.h because the ctmc solvers emit a subset
// of them (R010, R011, R015, R032) during fail-fast validation.
namespace codes {
inline constexpr const char* kParseError = "R000";
inline constexpr const char* kNonPositiveRate = "R001";
inline constexpr const char* kNonFiniteRate = "R002";
inline constexpr const char* kSelfLoop = "R003";
inline constexpr const char* kDuplicateTransition = "R004";
inline constexpr const char* kEndpointOutOfRange = "R005";
inline constexpr const char* kRowSumViolation = "R006";
inline constexpr const char* kNegativeOffDiagonal = "R007";
inline constexpr const char* kNonFiniteReward = "R008";
inline constexpr const char* kBadStateName = "R009";
inline constexpr const char* kNotIrreducible = "R010";
inline constexpr const char* kUnreachableState = "R011";
inline constexpr const char* kAbsorbingState = "R012";
inline constexpr const char* kAbsorbingClass = "R013";
inline constexpr const char* kDeadTransition = "R014";
inline constexpr const char* kTargetUnreachable = "R015";
inline constexpr const char* kUndefinedParameter = "R020";
inline constexpr const char* kUnusedParameter = "R021";
inline constexpr const char* kDivisionByZero = "R022";
inline constexpr const char* kBadRange = "R023";
inline constexpr const char* kZeroRate = "R024";
inline constexpr const char* kNegativeRateExpr = "R025";
inline constexpr const char* kStiffChain = "R030";
inline constexpr const char* kNearZeroRate = "R031";
inline constexpr const char* kHorizonInfeasible = "R032";
inline constexpr const char* kEmptyComposition = "R040";
inline constexpr const char* kReducibleComponent = "R041";
inline constexpr const char* kProductSpaceLarge = "R042";
inline constexpr const char* kConstantComponentReward = "R043";
inline constexpr const char* kDegenerateCompositeReward = "R044";
}  // namespace codes

enum class Severity {
  kNote,     // informational; never affects exit status
  kWarning,  // suspicious but solvable; fails under --werror
  kError,    // the model cannot be solved meaningfully
};

/// Stable lowercase name ("note", "warning", "error").
[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// Where a diagnostic points.  All fields are optional; empty string
/// / zero means "not applicable".  Lines and columns are 1-based.
struct Location {
  std::string state;      // state name
  std::string from;       // transition source state name
  std::string to;         // transition target state name
  std::string parameter;  // parameter / symbol name
  std::string file;       // model file path ("" when built in C++)
  std::size_t line = 0;
  std::size_t column = 0;

  /// Human-readable rendering, e.g. "model.rasc:12:8: transition
  /// 'Ok -> 2_Down'".  Empty when nothing is set.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const noexcept {
    return state.empty() && from.empty() && to.empty() &&
           parameter.empty() && file.empty() && line == 0;
  }
};

struct Diagnostic {
  std::string code;  // stable identifier, e.g. "R010"
  Severity severity = Severity::kWarning;
  std::string message;
  Location location;
  std::string fix_hint;  // actionable suggestion; may be empty
};

/// Ordered collection of diagnostics from one lint run.
class LintReport {
 public:
  void add(Diagnostic diagnostic);
  /// Appends every diagnostic of `other`.
  void merge(const LintReport& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return diagnostics_.size();
  }
  [[nodiscard]] std::size_t count(Severity severity) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept {
    return count(Severity::kError) > 0;
  }
  /// True when some diagnostic carries `code`.
  [[nodiscard]] bool has_code(const std::string& code) const noexcept;

  [[nodiscard]] auto begin() const noexcept { return diagnostics_.begin(); }
  [[nodiscard]] auto end() const noexcept { return diagnostics_.end(); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Thrown by the fail-fast solve pipeline (and lint-on-load) when a
/// model has error-severity diagnostics.  Derives from
/// std::domain_error: a structurally broken chain is an input-domain
/// violation, and callers that already handled domain_error keep
/// working.  The full report stays accessible via report().
class LintError : public std::domain_error {
 public:
  explicit LintError(LintReport report);

  [[nodiscard]] const LintReport& report() const noexcept {
    return *report_;
  }

 private:
  // shared_ptr keeps the exception nothrow-copyable.
  std::shared_ptr<const LintReport> report_;
};

}  // namespace rascal::lint

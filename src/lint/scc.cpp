#include "lint/scc.h"

#include <algorithm>
#include <limits>

namespace rascal::lint {

namespace {

constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

}  // namespace

SccResult tarjan_scc(const Adjacency& edges) {
  const std::size_t n = edges.size();
  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;  // Tarjan's component stack
  std::size_t next_index = 0;

  // Explicit DFS frame: vertex + position in its edge list, so deep
  // graphs cannot overflow the call stack.
  struct Frame {
    std::size_t vertex;
    std::size_t edge;
  };
  std::vector<Frame> dfs;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const std::size_t v = frame.vertex;
      if (frame.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (frame.edge < edges[v].size()) {
        const std::size_t w = edges[v][frame.edge++];
        if (index[w] == kUnvisited) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> component;
        std::size_t w = 0;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = result.components.size();
          component.push_back(w);
        } while (w != v);
        std::sort(component.begin(), component.end());
        result.components.push_back(std::move(component));
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const std::size_t parent = dfs.back().vertex;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

std::vector<bool> closed_components(const Adjacency& edges,
                                    const SccResult& scc) {
  std::vector<bool> closed(scc.num_components(), true);
  for (std::size_t v = 0; v < edges.size(); ++v) {
    for (const std::size_t w : edges[v]) {
      if (scc.component_of[v] != scc.component_of[w]) {
        closed[scc.component_of[v]] = false;
      }
    }
  }
  return closed;
}

std::vector<bool> reachable_from(const Adjacency& edges, std::size_t root) {
  std::vector<bool> seen(edges.size(), false);
  if (root >= edges.size()) return seen;
  std::vector<std::size_t> stack{root};
  seen[root] = true;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (const std::size_t w : edges[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

}  // namespace rascal::lint

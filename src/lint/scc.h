// Tarjan's strongly-connected-components algorithm over a generic
// directed graph (adjacency lists), plus the condensation queries the
// structural lint checks need: which components are closed (no edges
// leaving them) and which vertices are reachable from a root.
//
// Graph-only on purpose — the ctmc library uses this for
// is_irreducible and the solvers' fail-fast validation, so it must
// not depend on ctmc types.
#pragma once

#include <cstddef>
#include <vector>

namespace rascal::lint {

using Adjacency = std::vector<std::vector<std::size_t>>;

struct SccResult {
  /// Vertex -> component index.  Components are numbered in reverse
  /// topological order of the condensation (Tarjan's natural output):
  /// every edge between distinct components goes from a higher
  /// component index to a lower one.
  std::vector<std::size_t> component_of;
  /// Component index -> member vertices (ascending).
  std::vector<std::vector<std::size_t>> components;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return components.size();
  }
};

/// Iterative Tarjan over `edges` (size = vertex count).  Edge targets
/// must be in range.
[[nodiscard]] SccResult tarjan_scc(const Adjacency& edges);

/// Per-component flag: true when no edge leaves the component (a
/// closed, i.e. recurrent/absorbing, class of the chain).
[[nodiscard]] std::vector<bool> closed_components(const Adjacency& edges,
                                                  const SccResult& scc);

/// Per-vertex flag: reachable from `root` following `edges`
/// (including `root` itself).
[[nodiscard]] std::vector<bool> reachable_from(const Adjacency& edges,
                                               std::size_t root);

}  // namespace rascal::lint

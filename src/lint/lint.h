// Static analysis over availability models, run *before* any solve.
//
// The checks cover the defect classes a solver either trips over
// deep inside a factorization or — worse — silently absorbs into a
// garbage availability number:
//
//   - generator-matrix invariants (row sums ~0, sign pattern,
//     zero/duplicate/self-loop transitions),
//   - Tarjan-SCC structural analysis (irreducibility, unreachable
//     states, unintended absorbing states/classes, dead transitions),
//   - expression/parameter checks (undefined symbols, unused
//     parameters, guaranteed division by zero, sign-flipped rates),
//   - numerical-risk warnings (stiffness ratio, near-zero rates that
//     destabilize Gauss-Seidel / power iteration),
//   - hierarchical-composition checks (degenerate rewards, product
//     state-space blowup).
//
// Every finding is a structured Diagnostic (diagnostic.h) with a
// stable code; docs/lint.md catalogues all codes with examples and
// fixes.  Entry points return a LintReport instead of throwing, so
// callers decide policy (the CLI renders, the solvers throw
// LintError on errors).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ctmc/builder.h"
#include "ctmc/compose.h"
#include "ctmc/ctmc.h"
#include "expr/parameter_set.h"
#include "linalg/matrix.h"
#include "lint/diagnostic.h"
#include "stats/sampling.h"

namespace rascal::lint {

struct LintOptions {
  // Row-sum tolerance, relative to the largest magnitude in the row.
  double row_sum_tolerance = 1e-9;
  // max_rate / min_rate beyond which the chain is flagged stiff
  // (availability models legitimately span ~8 orders of magnitude;
  // the default only trips on pathological inputs).
  double stiffness_warn_ratio = 1e9;
  // Rates below near_zero_rel * max_rate are numerically dead in the
  // iterative solvers' updates.
  double near_zero_rel = 1e-13;
  // Product state-space size beyond which a composition is flagged.
  std::size_t compose_warn_states = 100000;
  // Report parameters bound but never referenced by any rate
  // expression.  Off by default: shared default sets (models/params)
  // legitimately bind more symbols than one model uses; model files
  // turn it on because their parameters are file-local.
  bool warn_unused_parameters = false;
  // Reachability reference (builder convention: the first declared
  // state is the initial / all-up state).
  ctmc::StateId initial_state = 0;
};

/// 1-based position of a construct in a model file (0 = unknown).
struct SourcePosition {
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Maps model constructs back to their source file, so diagnostics on
/// loaded models carry file:line:column locations.  Filled in by
/// io::parse_model; lint_model threads it into every diagnostic.
struct SourceMap {
  std::string file;
  std::map<std::string, SourcePosition> parameters;
  std::map<std::string, SourcePosition> states;
  // Position of the k-th symbolic transition (declaration order).
  std::vector<SourcePosition> transitions;
};

/// Lints raw states/transitions *before* Ctmc construction — reports
/// every violation the Ctmc constructor would reject one-at-a-time
/// (R001-R005, R008, R009), and when the raw model is constructible,
/// merges the structural/numerical analysis of lint_ctmc.
[[nodiscard]] LintReport lint_raw_model(
    const std::vector<ctmc::State>& states,
    const std::vector<ctmc::Transition>& transitions,
    const LintOptions& options = {});

/// Generator-matrix invariants on an arbitrary dense matrix: square,
/// finite, non-negative off-diagonals (R007), row sums ~0 (R006).
[[nodiscard]] LintReport lint_generator(const linalg::Matrix& q,
                                        const LintOptions& options = {});

/// Structural (Tarjan SCC: R010-R014) and numerical-risk (R030,
/// R031) analysis of a constructed chain, plus a sparse row-sum
/// re-check (R006).
[[nodiscard]] LintReport lint_ctmc(const ctmc::Ctmc& chain,
                                   const LintOptions& options = {});

/// Static checks of symbolic rate expressions against parameter
/// bindings: undefined symbols (R020), unused parameters (R021, when
/// enabled), division by zero / non-finite values (R022), zero rates
/// (R024), sign-flipped rates (R025), non-finite rewards (R008).
[[nodiscard]] LintReport lint_symbolic(const ctmc::SymbolicCtmc& model,
                                       const expr::ParameterSet& params,
                                       const LintOptions& options = {});

/// Uncertainty-range checks: inverted or non-finite bounds are errors,
/// degenerate (lo == hi) ranges and ranges over unbound parameters
/// are warnings (R023, R020).
[[nodiscard]] LintReport lint_ranges(
    const std::vector<stats::ParameterRange>& ranges,
    const expr::ParameterSet& params);

/// Hierarchical-composition checks for compose_independent: empty
/// part list (R040), reducible components (R041), product-space
/// blowup (R042), constant component rewards (R043), and a composite
/// reward range that can never distinguish up from down (R044).
[[nodiscard]] LintReport lint_composition(
    const std::vector<ctmc::Ctmc>& parts,
    const ctmc::RewardCombiner& combine = ctmc::min_reward_combiner(),
    const LintOptions& options = {});

/// Full pipeline over a symbolic model: lint_symbolic, then — when no
/// errors block binding — bind against `params` and run lint_ctmc on
/// the result.  When `source` is given, every diagnostic is annotated
/// with its file:line:column.
[[nodiscard]] LintReport lint_model(const ctmc::SymbolicCtmc& model,
                                    const expr::ParameterSet& params,
                                    const LintOptions& options = {},
                                    const SourceMap* source = nullptr);

}  // namespace rascal::lint

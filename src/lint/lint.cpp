#include "lint/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <stdexcept>

#include "expr/expression.h"
#include "lint/scc.h"

namespace rascal::lint {

namespace {

using ctmc::StateId;

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

Diagnostic make(const char* code, Severity severity, std::string message,
                Location location = {}, std::string fix_hint = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.location = std::move(location);
  d.fix_hint = std::move(fix_hint);
  return d;
}

Location state_loc(const std::string& name) {
  Location loc;
  loc.state = name;
  return loc;
}

Location transition_loc(const std::string& from, const std::string& to) {
  Location loc;
  loc.from = from;
  loc.to = to;
  return loc;
}

Location param_loc(const std::string& name) {
  Location loc;
  loc.parameter = name;
  return loc;
}

Adjacency adjacency_of(const ctmc::Ctmc& chain) {
  Adjacency edges(chain.num_states());
  for (const ctmc::Transition& t : chain.transitions()) {
    edges[t.from].push_back(t.to);
  }
  return edges;
}

// Structural analysis shared by lint_ctmc: Tarjan SCC over the chain.
void lint_structure(const ctmc::Ctmc& chain, const LintOptions& options,
                    LintReport& report) {
  const Adjacency edges = adjacency_of(chain);
  const SccResult scc = tarjan_scc(edges);
  const StateId initial =
      options.initial_state < chain.num_states() ? options.initial_state : 0;

  if (scc.num_components() > 1) {
    report.add(make(
        codes::kNotIrreducible, Severity::kError,
        "chain is not irreducible: " +
            std::to_string(scc.num_components()) +
            " strongly connected components (steady-state analysis "
            "requires every state to reach every other state)",
        {},
        "add the missing return transitions, or analyze the recurrent "
        "class alone"));
  }

  const std::vector<bool> reachable = reachable_from(edges, initial);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    if (!reachable[s]) {
      report.add(make(codes::kUnreachableState, Severity::kError,
                      "state '" + chain.state_name(s) +
                          "' is unreachable from initial state '" +
                          chain.state_name(initial) + "'",
                      state_loc(chain.state_name(s)),
                      "add a transition into the state or delete it"));
    }
  }

  const std::vector<bool> closed = closed_components(edges, scc);
  for (std::size_t c = 0; c < scc.num_components(); ++c) {
    if (!closed[c] || scc.components[c].size() == chain.num_states()) {
      continue;
    }
    if (scc.components[c].size() == 1 &&
        chain.exit_rate(scc.components[c].front()) == 0.0) {
      report.add(make(codes::kAbsorbingState, Severity::kWarning,
                      "state '" +
                          chain.state_name(scc.components[c].front()) +
                          "' is absorbing (no outgoing transitions)",
                      state_loc(chain.state_name(scc.components[c].front())),
                      "intended for MTTF analysis? steady state will "
                      "concentrate all probability here"));
    } else {
      std::string members;
      for (const std::size_t s : scc.components[c]) {
        if (!members.empty()) members += ", ";
        members += chain.state_name(s);
      }
      report.add(make(codes::kAbsorbingClass, Severity::kWarning,
                      "states {" + members +
                          "} form a closed class the chain can never "
                          "leave",
                      state_loc(chain.state_name(scc.components[c].front())),
                      "add an escape transition or model the class as a "
                      "separate chain"));
    }
  }

  for (const ctmc::Transition& t : chain.transitions()) {
    if (!reachable[t.from]) {
      report.add(make(codes::kDeadTransition, Severity::kWarning,
                      "transition '" + chain.state_name(t.from) + " -> " +
                          chain.state_name(t.to) +
                          "' can never fire (source state is unreachable)",
                      transition_loc(chain.state_name(t.from),
                                     chain.state_name(t.to))));
    }
  }
}

// Numerical-risk warnings: stiffness ratio and near-zero rates.
void lint_numerics(const ctmc::Ctmc& chain, const LintOptions& options,
                   LintReport& report) {
  if (chain.transitions().empty()) return;
  const ctmc::Transition* min_t = nullptr;
  const ctmc::Transition* max_t = nullptr;
  for (const ctmc::Transition& t : chain.transitions()) {
    if (!min_t || t.rate < min_t->rate) min_t = &t;
    if (!max_t || t.rate > max_t->rate) max_t = &t;
  }
  const double ratio = max_t->rate / min_t->rate;
  if (ratio > options.stiffness_warn_ratio) {
    report.add(make(
        codes::kStiffChain, Severity::kWarning,
        "stiff chain: rate ratio " + fmt(ratio) + " (fastest '" +
            chain.state_name(max_t->from) + " -> " +
            chain.state_name(max_t->to) + "' = " + fmt(max_t->rate) +
            ", slowest '" + chain.state_name(min_t->from) + " -> " +
            chain.state_name(min_t->to) + "' = " + fmt(min_t->rate) + ")",
        transition_loc(chain.state_name(min_t->from),
                       chain.state_name(min_t->to)),
        "prefer the GTH solver; power iteration and uniformization "
        "converge at the slow scale"));
  }
  const double floor = options.near_zero_rel * max_t->rate;
  for (const ctmc::Transition& t : chain.transitions()) {
    if (t.rate < floor) {
      report.add(make(
          codes::kNearZeroRate, Severity::kWarning,
          "rate " + fmt(t.rate) + " on '" + chain.state_name(t.from) +
              " -> " + chain.state_name(t.to) +
              "' is vanishing relative to the fastest rate " +
              fmt(max_t->rate) +
              " and will be lost in iterative solver updates",
          transition_loc(chain.state_name(t.from), chain.state_name(t.to)),
          "drop the transition or rescale the model's time unit"));
    }
  }
  // Sparse generator row-sum re-check (R006): off-diagonal mass must
  // cancel the diagonal exit rate exactly.
  for (StateId s = 0; s < chain.num_states(); ++s) {
    double row = -chain.exit_rate(s);
    double magnitude = chain.exit_rate(s);
    for (const ctmc::Transition& t : chain.transitions()) {
      if (t.from != s) continue;
      row += t.rate;
      magnitude = std::max(magnitude, std::abs(t.rate));
    }
    if (std::abs(row) > options.row_sum_tolerance * std::max(1.0, magnitude)) {
      report.add(make(codes::kRowSumViolation, Severity::kError,
                      "generator row for state '" + chain.state_name(s) +
                          "' sums to " + fmt(row) + " instead of 0",
                      state_loc(chain.state_name(s))));
    }
  }
}

}  // namespace

LintReport lint_ctmc(const ctmc::Ctmc& chain, const LintOptions& options) {
  LintReport report;
  lint_structure(chain, options, report);
  lint_numerics(chain, options, report);
  return report;
}

LintReport lint_raw_model(const std::vector<ctmc::State>& states,
                          const std::vector<ctmc::Transition>& transitions,
                          const LintOptions& options) {
  LintReport report;
  if (states.empty()) {
    report.add(make(codes::kBadStateName, Severity::kError,
                    "model declares no states"));
    return report;
  }
  std::set<std::string> names;
  for (const ctmc::State& s : states) {
    if (s.name.empty()) {
      report.add(
          make(codes::kBadStateName, Severity::kError, "empty state name"));
    } else if (!names.insert(s.name).second) {
      report.add(make(codes::kBadStateName, Severity::kError,
                      "duplicate state name '" + s.name + "'",
                      state_loc(s.name)));
    }
    if (!std::isfinite(s.reward)) {
      report.add(make(codes::kNonFiniteReward, Severity::kError,
                      "non-finite reward for state '" + s.name + "'",
                      state_loc(s.name)));
    }
  }

  const auto name_of = [&states](StateId id) {
    return id < states.size() ? states[id].name
                              : "#" + std::to_string(id);
  };
  for (const ctmc::Transition& t : transitions) {
    const Location loc = transition_loc(name_of(t.from), name_of(t.to));
    if (t.from >= states.size() || t.to >= states.size()) {
      report.add(make(codes::kEndpointOutOfRange, Severity::kError,
                      "transition endpoint out of range (" +
                          std::to_string(t.from) + " -> " +
                          std::to_string(t.to) + ", " +
                          std::to_string(states.size()) + " states)",
                      loc));
      continue;
    }
    if (t.from == t.to) {
      report.add(make(codes::kSelfLoop, Severity::kError,
                      "self-loop on state '" + states[t.from].name +
                          "' (self-loops are meaningless in a CTMC "
                          "generator)",
                      loc, "remove the transition"));
    }
    if (!std::isfinite(t.rate)) {
      report.add(make(codes::kNonFiniteRate, Severity::kError,
                      "non-finite rate on '" + states[t.from].name +
                          " -> " + states[t.to].name + "'",
                      loc));
    } else if (t.rate <= 0.0) {
      report.add(make(codes::kNonPositiveRate, Severity::kError,
                      (t.rate == 0.0 ? std::string("zero")
                                     : std::string("negative")) +
                          " rate " + fmt(t.rate) + " on '" +
                          states[t.from].name + " -> " +
                          states[t.to].name + "'",
                      loc,
                      "rates must be strictly positive; check for a "
                      "sign flip in the rate formula"));
    }
  }

  // Duplicate (parallel) transitions: merged by the constructor, but
  // almost always a copy-paste mistake in hand-written models.
  std::vector<std::pair<StateId, StateId>> pairs;
  pairs.reserve(transitions.size());
  for (const ctmc::Transition& t : transitions) {
    if (t.from < states.size() && t.to < states.size()) {
      pairs.emplace_back(t.from, t.to);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i] == pairs[i - 1] &&
        (i == 1 || pairs[i] != pairs[i - 2])) {
      report.add(make(codes::kDuplicateTransition, Severity::kWarning,
                      "duplicate transition '" + name_of(pairs[i].first) +
                          " -> " + name_of(pairs[i].second) +
                          "' (parallel rates are summed)",
                      transition_loc(name_of(pairs[i].first),
                                     name_of(pairs[i].second)),
                      "merge the rates into one transition"));
    }
  }

  if (!report.has_errors()) {
    report.merge(
        lint_ctmc(ctmc::Ctmc(states, transitions), options));
  }
  return report;
}

LintReport lint_generator(const linalg::Matrix& q,
                          const LintOptions& options) {
  LintReport report;
  if (q.rows() != q.cols()) {
    report.add(make(codes::kRowSumViolation, Severity::kError,
                    "generator matrix is not square (" +
                        std::to_string(q.rows()) + "x" +
                        std::to_string(q.cols()) + ")"));
    return report;
  }
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double sum = 0.0;
    double magnitude = 0.0;
    bool finite = true;
    for (std::size_t c = 0; c < q.cols(); ++c) {
      const double v = q(r, c);
      if (!std::isfinite(v)) {
        report.add(make(codes::kNonFiniteRate, Severity::kError,
                        "non-finite generator entry at (" +
                            std::to_string(r) + ", " + std::to_string(c) +
                            ")"));
        finite = false;
        continue;
      }
      if (r != c && v < 0.0) {
        report.add(make(codes::kNegativeOffDiagonal, Severity::kError,
                        "negative off-diagonal generator entry " + fmt(v) +
                            " at (" + std::to_string(r) + ", " +
                            std::to_string(c) + ")",
                        {},
                        "off-diagonal entries are rates and must be >= 0; "
                        "check for a sign flip"));
      }
      sum += v;
      magnitude = std::max(magnitude, std::abs(v));
    }
    if (finite &&
        std::abs(sum) > options.row_sum_tolerance * std::max(1.0, magnitude)) {
      report.add(make(codes::kRowSumViolation, Severity::kError,
                      "generator row " + std::to_string(r) + " sums to " +
                          fmt(sum) + " instead of 0",
                      {},
                      "the diagonal must equal the negated sum of the "
                      "row's off-diagonal rates"));
    }
  }
  return report;
}

LintReport lint_symbolic(const ctmc::SymbolicCtmc& model,
                         const expr::ParameterSet& params,
                         const LintOptions& options) {
  LintReport report;
  for (const ctmc::State& s : model.states()) {
    if (!std::isfinite(s.reward)) {
      report.add(make(codes::kNonFiniteReward, Severity::kError,
                      "non-finite reward for state '" + s.name + "'",
                      state_loc(s.name)));
    }
  }

  std::set<std::string> referenced;
  for (const ctmc::SymbolicCtmc::SymbolicTransition& t :
       model.transitions()) {
    const std::string& from = model.states()[t.from].name;
    const std::string& to = model.states()[t.to].name;
    const Location loc = transition_loc(from, to);
    const std::set<std::string> variables = t.rate.variables();
    referenced.insert(variables.begin(), variables.end());

    bool bound = true;
    for (const std::string& v : variables) {
      if (!params.contains(v)) {
        bound = false;
        Location ploc = loc;
        ploc.parameter = v;
        report.add(make(codes::kUndefinedParameter, Severity::kError,
                        "rate of '" + from + " -> " + to +
                            "' references undefined parameter '" + v + "'",
                        ploc, "add 'param " + v + " VALUE' or fix the "
                        "spelling"));
      }
    }
    if (!bound) continue;

    double value = 0.0;
    try {
      value = t.rate.evaluate(params);
    } catch (const std::domain_error& e) {
      report.add(make(codes::kDivisionByZero, Severity::kError,
                      "rate of '" + from + " -> " + to +
                          "' cannot be evaluated: " + e.what(),
                      loc,
                      "a denominator is exactly zero under the supplied "
                      "parameters"));
      continue;
    }
    if (!std::isfinite(value)) {
      report.add(make(codes::kDivisionByZero, Severity::kError,
                      "rate of '" + from + " -> " + to +
                          "' evaluates to a non-finite value (" +
                          fmt(value) + ")",
                      loc,
                      "check for division by zero or overflow in the "
                      "rate formula"));
    } else if (value < 0.0) {
      report.add(make(codes::kNegativeRateExpr, Severity::kError,
                      "rate of '" + from + " -> " + to +
                          "' evaluates to " + fmt(value) +
                          " under the supplied parameters",
                      loc,
                      "rates must be >= 0; check for a sign flip in '" +
                          t.rate.source() + "'"));
    } else if (value == 0.0) {
      report.add(make(codes::kZeroRate, Severity::kWarning,
                      "rate of '" + from + " -> " + to +
                          "' evaluates to zero (the transition is "
                          "dropped at bind time)",
                      loc,
                      "intended? remove the transition or make the "
                      "parameter nonzero"));
    }
  }

  if (options.warn_unused_parameters) {
    for (const auto& [name, value] : params) {
      (void)value;
      if (!referenced.count(name)) {
        report.add(make(codes::kUnusedParameter, Severity::kWarning,
                        "parameter '" + name +
                            "' is never referenced by a rate expression",
                        param_loc(name), "delete it or use it"));
      }
    }
  }
  return report;
}

LintReport lint_ranges(const std::vector<stats::ParameterRange>& ranges,
                       const expr::ParameterSet& params) {
  LintReport report;
  for (const stats::ParameterRange& r : ranges) {
    const Location loc = param_loc(r.name);
    if (r.name.empty()) {
      report.add(make(codes::kBadRange, Severity::kError,
                      "uncertainty range with empty parameter name"));
      continue;
    }
    if (!params.contains(r.name)) {
      report.add(make(codes::kUndefinedParameter, Severity::kWarning,
                      "uncertainty range over parameter '" + r.name +
                          "' which has no base binding",
                      loc));
    }
    if (!std::isfinite(r.lo) || !std::isfinite(r.hi)) {
      report.add(make(codes::kBadRange, Severity::kError,
                      "non-finite bounds [" + fmt(r.lo) + ", " + fmt(r.hi) +
                          "] for parameter '" + r.name + "'",
                      loc));
    } else if (r.lo > r.hi) {
      report.add(make(codes::kBadRange, Severity::kError,
                      "inverted bounds [" + fmt(r.lo) + ", " + fmt(r.hi) +
                          "] for parameter '" + r.name + "'",
                      loc, "swap lo and hi"));
    } else if (r.lo == r.hi) {
      report.add(make(codes::kBadRange, Severity::kWarning,
                      "degenerate range [" + fmt(r.lo) + ", " + fmt(r.hi) +
                          "] for parameter '" + r.name +
                          "' (every sample draws the same value)",
                      loc, "use a --set override instead of a range"));
    }
  }
  return report;
}

LintReport lint_composition(const std::vector<ctmc::Ctmc>& parts,
                            const ctmc::RewardCombiner& combine,
                            const LintOptions& options) {
  LintReport report;
  if (parts.empty()) {
    report.add(make(codes::kEmptyComposition, Severity::kError,
                    "composition has no component chains"));
    return report;
  }
  std::vector<double> min_rewards;
  std::vector<double> max_rewards;
  std::size_t total = 1;
  bool overflowed = false;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const ctmc::Ctmc& part = parts[k];
    if (!part.is_irreducible()) {
      report.add(make(codes::kReducibleComponent, Severity::kWarning,
                      "component " + std::to_string(k) +
                          " is not irreducible; the composed chain "
                          "inherits its unreachable/absorbing structure",
                      {}, "lint the component on its own for details"));
    }
    double lo = part.reward(0);
    double hi = part.reward(0);
    for (ctmc::StateId s = 1; s < part.num_states(); ++s) {
      lo = std::min(lo, part.reward(s));
      hi = std::max(hi, part.reward(s));
    }
    if (lo == hi) {
      report.add(make(codes::kConstantComponentReward, Severity::kWarning,
                      "component " + std::to_string(k) +
                          " has the same reward (" + fmt(lo) +
                          ") in every state and cannot affect the "
                          "composite availability",
                      {},
                      "check the component's up/down reward assignment"));
    }
    min_rewards.push_back(lo);
    max_rewards.push_back(hi);
    if (!overflowed &&
        total > options.compose_warn_states / std::max<std::size_t>(
                    part.num_states(), 1)) {
      overflowed = true;
    } else if (!overflowed) {
      total *= part.num_states();
    }
  }
  if (overflowed) {
    report.add(make(codes::kProductSpaceLarge, Severity::kWarning,
                    "product state space exceeds " +
                        std::to_string(options.compose_warn_states) +
                        " states",
                    {},
                    "lump components first (ctmc/lumping.h) or use the "
                    "two-state-equivalent hierarchy (core/hierarchy.h)"));
  }
  if (combine) {
    const double combined_lo = combine(min_rewards);
    const double combined_hi = combine(max_rewards);
    if (combined_lo == combined_hi) {
      report.add(make(codes::kDegenerateCompositeReward, Severity::kWarning,
                      "every composite state gets reward " +
                          fmt(combined_lo) +
                          "; the composition cannot distinguish up from "
                          "down",
                      {},
                      "check the reward combiner against the component "
                      "reward ranges"));
    }
  }
  return report;
}

LintReport lint_model(const ctmc::SymbolicCtmc& model,
                      const expr::ParameterSet& params,
                      const LintOptions& options, const SourceMap* source) {
  LintReport report = lint_symbolic(model, params, options);
  if (!report.has_errors()) {
    // Zero-rate transitions are legitimately dropped at bind; the
    // symbolic pass already warned about them (R024).
    report.merge(lint_ctmc(model.bind(params), options));
  }

  if (source == nullptr) return report;

  // Thread file:line:column into every diagnostic.  Transition
  // diagnostics map back through the (from, to) name pair; parallel
  // symbolic transitions resolve to the first declaration.
  LintReport located;
  for (Diagnostic d : report) {
    d.location.file = source->file;
    SourcePosition pos;
    if (!d.location.from.empty()) {
      for (std::size_t k = 0; k < model.transitions().size(); ++k) {
        const auto& t = model.transitions()[k];
        if (model.states()[t.from].name == d.location.from &&
            model.states()[t.to].name == d.location.to &&
            k < source->transitions.size()) {
          pos = source->transitions[k];
          break;
        }
      }
    } else if (!d.location.parameter.empty()) {
      const auto it = source->parameters.find(d.location.parameter);
      if (it != source->parameters.end()) pos = it->second;
    } else if (!d.location.state.empty()) {
      const auto it = source->states.find(d.location.state);
      if (it != source->states.end()) pos = it->second;
    }
    if (pos.line > 0) {
      d.location.line = pos.line;
      d.location.column = pos.column;
    }
    located.add(std::move(d));
  }
  return located;
}

}  // namespace rascal::lint

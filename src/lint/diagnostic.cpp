#include "lint/diagnostic.h"

#include <utility>

namespace rascal::lint {

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Location::to_string() const {
  std::string out;
  if (!file.empty()) {
    out = file;
    if (line > 0) {
      out += ':' + std::to_string(line);
      if (column > 0) out += ':' + std::to_string(column);
    }
  } else if (line > 0) {
    out = "line " + std::to_string(line);
    if (column > 0) out += ':' + std::to_string(column);
  }
  const auto append = [&out](const std::string& what) {
    if (!out.empty()) out += ": ";
    out += what;
  };
  if (!from.empty() || !to.empty()) {
    append("transition '" + from + " -> " + to + "'");
  } else if (!state.empty()) {
    append("state '" + state + "'");
  }
  if (!parameter.empty()) append("parameter '" + parameter + "'");
  return out;
}

void LintReport::add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void LintReport::merge(const LintReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t LintReport::count(Severity severity) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool LintReport::has_code(const std::string& code) const noexcept {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

namespace {

// Exception message: the first error plus a tally, so uncaught
// LintErrors are still actionable from the terminal.
std::string summarize(const LintReport& report) {
  std::string head = "model failed lint";
  for (const Diagnostic& d : report) {
    if (d.severity != Severity::kError) continue;
    head = "[" + d.code + "] " + d.message;
    const std::string where = d.location.to_string();
    if (!where.empty()) head += " (" + where + ")";
    break;
  }
  return head + " — " + std::to_string(report.count(Severity::kError)) +
         " error(s), " + std::to_string(report.count(Severity::kWarning)) +
         " warning(s)";
}

}  // namespace

LintError::LintError(LintReport report)
    : std::domain_error(summarize(report)),
      report_(std::make_shared<const LintReport>(std::move(report))) {}

}  // namespace rascal::lint

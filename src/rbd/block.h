// Reliability block diagrams (RBD): the classic combinatorial
// availability formalism (SHARPE lineage).  Components are repairable
// (lambda, mu) units assumed independent; structures are series,
// parallel, and k-of-n compositions.
//
// RBDs are the static approximation of the paper's Markov models:
// they cannot express workload acceleration, imperfect recovery, or
// shared manual restores.  to_ctmc() embeds an RBD into the Markov
// world (product chain + structure-function reward) so the tests can
// quantify exactly what those dynamic effects add.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctmc/ctmc.h"

namespace rascal::rbd {

class Block;
using BlockPtr = std::shared_ptr<const Block>;

enum class BlockKind { kComponent, kSeries, kParallel, kKofN };

class Block {
 public:
  virtual ~Block() = default;
  [[nodiscard]] virtual BlockKind kind() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// Steady-state availability under component independence.
  [[nodiscard]] virtual double availability() const = 0;
  /// Leaf components in deterministic (left-to-right) order.
  virtual void collect_components(std::vector<const Block*>& out) const = 0;
  /// Structure function: is the block up given the leaf up/down
  /// pattern?  `leaf_index` advances across the leaves in
  /// collect_components order.
  [[nodiscard]] virtual bool evaluate(const std::vector<bool>& leaf_up,
                                      std::size_t& leaf_index) const = 0;
};

/// Repairable component with exponential failure/repair.
/// Throws std::invalid_argument for non-positive rates.
[[nodiscard]] BlockPtr component(std::string name, double failure_rate,
                                 double repair_rate);

/// Up iff every child is up.  Throws std::invalid_argument when empty.
[[nodiscard]] BlockPtr series(std::string name,
                              std::vector<BlockPtr> children);

/// Up iff at least one child is up.
[[nodiscard]] BlockPtr parallel(std::string name,
                                std::vector<BlockPtr> children);

/// Up iff at least k children are up (1 <= k <= n).
[[nodiscard]] BlockPtr k_of_n(std::string name, std::size_t k,
                              std::vector<BlockPtr> children);

/// Embeds the RBD into a CTMC: the product of the component 2-state
/// chains, with reward 1 exactly on markings where the structure
/// function holds.  Component count is limited by the product-space
/// guard (2^n states).  Throws std::runtime_error past ~20 leaves.
[[nodiscard]] ctmc::Ctmc to_ctmc(const BlockPtr& root);

}  // namespace rascal::rbd

#include "rbd/cut_sets.h"

#include <algorithm>
#include <stdexcept>

namespace rascal::rbd {

namespace {

constexpr std::size_t kMaxLeaves = 20;

std::vector<const Block*> leaves_of(const BlockPtr& root) {
  if (!root) {
    throw std::invalid_argument("rbd analysis: null block");
  }
  std::vector<const Block*> leaves;
  root->collect_components(leaves);
  if (leaves.size() > kMaxLeaves) {
    throw std::runtime_error(
        "rbd analysis: too many components for exact enumeration");
  }
  return leaves;
}

bool system_up(const BlockPtr& root, const std::vector<bool>& leaf_up) {
  std::size_t index = 0;
  return root->evaluate(leaf_up, index);
}

}  // namespace

std::vector<std::vector<std::string>> minimal_cut_sets(
    const BlockPtr& root) {
  const auto leaves = leaves_of(root);
  const std::size_t n = leaves.size();

  // A cut set is a set of failed components that downs the system
  // with everything else up.  Scan by cardinality so supersets of an
  // already-found cut can be skipped (minimality).
  std::vector<std::uint32_t> minimal_masks;
  const std::uint32_t all = n == 32 ? 0xffffffffu : ((1u << n) - 1u);
  for (std::size_t size = 1; size <= n; ++size) {
    for (std::uint32_t mask = 1; mask <= all; ++mask) {
      if (static_cast<std::size_t>(__builtin_popcount(mask)) != size) {
        continue;
      }
      bool superset = false;
      for (std::uint32_t found : minimal_masks) {
        if ((mask & found) == found) {
          superset = true;
          break;
        }
      }
      if (superset) continue;
      std::vector<bool> leaf_up(n);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_up[i] = (mask & (1u << i)) == 0;
      }
      if (!system_up(root, leaf_up)) minimal_masks.push_back(mask);
    }
  }

  std::vector<std::vector<std::string>> cut_sets;
  cut_sets.reserve(minimal_masks.size());
  for (std::uint32_t mask : minimal_masks) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) names.push_back(leaves[i]->name());
    }
    cut_sets.push_back(std::move(names));
  }
  return cut_sets;
}

std::vector<ImportanceEntry> component_importance(const BlockPtr& root) {
  const auto leaves = leaves_of(root);
  const std::size_t n = leaves.size();

  // P(system up | leaf i forced up/down), exactly, by enumerating the
  // other leaves weighted by their availabilities.
  std::vector<double> availability(n);
  for (std::size_t i = 0; i < n; ++i) {
    availability[i] = leaves[i]->availability();
  }
  const auto conditional_up = [&](std::size_t fixed, bool up) {
    double total = 0.0;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<bool> leaf_up(n);
      double weight = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        leaf_up[i] = (mask & (1u << i)) != 0;
        if (i == fixed) continue;
        weight *= leaf_up[i] ? availability[i] : 1.0 - availability[i];
      }
      if (leaf_up[fixed] != up) continue;
      if (system_up(root, leaf_up)) total += weight;
    }
    return total;
  };

  const double system_unavailability = 1.0 - root->availability();
  std::vector<ImportanceEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ImportanceEntry entry;
    entry.component = leaves[i]->name();
    entry.birnbaum = conditional_up(i, true) - conditional_up(i, false);
    entry.criticality =
        system_unavailability > 0.0
            ? entry.birnbaum * (1.0 - availability[i]) /
                  system_unavailability
            : 0.0;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const ImportanceEntry& a, const ImportanceEntry& b) {
              return a.birnbaum > b.birnbaum;
            });
  return entries;
}

}  // namespace rascal::rbd

// Qualitative and importance analysis on reliability block diagrams:
//
//  * minimal cut sets — the irreducible combinations of component
//    failures that take the system down (here: {AS1, AS2}, {N1, N2},
//    {N3, N4} for the paper's Config 1 structure);
//  * Birnbaum importance I_i = P(system up | i up) - P(system up | i
//    down): how much the system availability responds to component i;
//  * criticality importance — Birnbaum weighted by the component's
//    own unavailability relative to the system's.
//
// Both are computed exactly from the structure function; the
// implementation enumerates component subsets and is intended for
// diagram-sized systems (<= ~20 leaves).
#pragma once

#include <string>
#include <vector>

#include "rbd/block.h"

namespace rascal::rbd {

/// Minimal cut sets as lists of leaf names (leaf order =
/// collect_components order).  Throws std::invalid_argument for null
/// blocks and std::runtime_error beyond 20 leaves.
[[nodiscard]] std::vector<std::vector<std::string>> minimal_cut_sets(
    const BlockPtr& root);

struct ImportanceEntry {
  std::string component;
  double birnbaum = 0.0;     // dA_sys / dA_i
  double criticality = 0.0;  // birnbaum * U_i / U_sys
};

/// Exact importance measures for every leaf, sorted by descending
/// Birnbaum value.
[[nodiscard]] std::vector<ImportanceEntry> component_importance(
    const BlockPtr& root);

}  // namespace rascal::rbd

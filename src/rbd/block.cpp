#include "rbd/block.h"

#include <stdexcept>

#include "ctmc/builder.h"
#include "ctmc/compose.h"

namespace rascal::rbd {

namespace {

class ComponentBlock final : public Block {
 public:
  ComponentBlock(std::string name, double failure_rate, double repair_rate)
      : name_(std::move(name)),
        failure_rate_(failure_rate),
        repair_rate_(repair_rate) {
    if (!(failure_rate > 0.0) || !(repair_rate > 0.0)) {
      throw std::invalid_argument("rbd::component: rates must be > 0");
    }
  }
  [[nodiscard]] BlockKind kind() const override {
    return BlockKind::kComponent;
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double availability() const override {
    return repair_rate_ / (failure_rate_ + repair_rate_);
  }
  void collect_components(std::vector<const Block*>& out) const override {
    out.push_back(this);
  }
  [[nodiscard]] bool evaluate(const std::vector<bool>& leaf_up,
                              std::size_t& leaf_index) const override {
    return leaf_up.at(leaf_index++);
  }

  [[nodiscard]] double failure_rate() const noexcept { return failure_rate_; }
  [[nodiscard]] double repair_rate() const noexcept { return repair_rate_; }

 private:
  std::string name_;
  double failure_rate_;
  double repair_rate_;
};

class CompositeBlock final : public Block {
 public:
  CompositeBlock(BlockKind kind, std::string name, std::size_t k,
                 std::vector<BlockPtr> children)
      : kind_(kind), name_(std::move(name)), k_(k),
        children_(std::move(children)) {
    if (children_.empty()) {
      throw std::invalid_argument("rbd: composite block with no children");
    }
    for (const BlockPtr& child : children_) {
      if (!child) {
        throw std::invalid_argument("rbd: null child block");
      }
    }
    if (kind_ == BlockKind::kKofN &&
        (k_ == 0 || k_ > children_.size())) {
      throw std::invalid_argument("rbd::k_of_n: requires 1 <= k <= n");
    }
  }
  [[nodiscard]] BlockKind kind() const override { return kind_; }
  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] double availability() const override {
    switch (kind_) {
      case BlockKind::kSeries: {
        double a = 1.0;
        for (const BlockPtr& child : children_) a *= child->availability();
        return a;
      }
      case BlockKind::kParallel: {
        double all_down = 1.0;
        for (const BlockPtr& child : children_) {
          all_down *= 1.0 - child->availability();
        }
        return 1.0 - all_down;
      }
      case BlockKind::kKofN: {
        // DP over the distribution of the number of up children.
        std::vector<double> up_count{1.0};
        for (const BlockPtr& child : children_) {
          const double a = child->availability();
          std::vector<double> next(up_count.size() + 1, 0.0);
          for (std::size_t u = 0; u < up_count.size(); ++u) {
            next[u + 1] += up_count[u] * a;
            next[u] += up_count[u] * (1.0 - a);
          }
          up_count = std::move(next);
        }
        double total = 0.0;
        for (std::size_t u = k_; u < up_count.size(); ++u) {
          total += up_count[u];
        }
        return total;
      }
      case BlockKind::kComponent: break;
    }
    throw std::logic_error("rbd: unreachable");
  }

  void collect_components(std::vector<const Block*>& out) const override {
    for (const BlockPtr& child : children_) child->collect_components(out);
  }

  [[nodiscard]] bool evaluate(const std::vector<bool>& leaf_up,
                              std::size_t& leaf_index) const override {
    std::size_t up = 0;
    // Children must always be evaluated (to advance leaf_index), so
    // no short-circuiting.
    for (const BlockPtr& child : children_) {
      if (child->evaluate(leaf_up, leaf_index)) ++up;
    }
    switch (kind_) {
      case BlockKind::kSeries: return up == children_.size();
      case BlockKind::kParallel: return up >= 1;
      case BlockKind::kKofN: return up >= k_;
      case BlockKind::kComponent: break;
    }
    throw std::logic_error("rbd: unreachable");
  }

 private:
  BlockKind kind_;
  std::string name_;
  std::size_t k_;
  std::vector<BlockPtr> children_;
};

}  // namespace

BlockPtr component(std::string name, double failure_rate,
                   double repair_rate) {
  return std::make_shared<ComponentBlock>(std::move(name), failure_rate,
                                          repair_rate);
}

BlockPtr series(std::string name, std::vector<BlockPtr> children) {
  return std::make_shared<CompositeBlock>(BlockKind::kSeries,
                                          std::move(name), 0,
                                          std::move(children));
}

BlockPtr parallel(std::string name, std::vector<BlockPtr> children) {
  return std::make_shared<CompositeBlock>(BlockKind::kParallel,
                                          std::move(name), 0,
                                          std::move(children));
}

BlockPtr k_of_n(std::string name, std::size_t k,
                std::vector<BlockPtr> children) {
  return std::make_shared<CompositeBlock>(BlockKind::kKofN, std::move(name),
                                          k, std::move(children));
}

ctmc::Ctmc to_ctmc(const BlockPtr& root) {
  if (!root) {
    throw std::invalid_argument("rbd::to_ctmc: null block");
  }
  std::vector<const Block*> leaves;
  root->collect_components(leaves);

  std::vector<ctmc::Ctmc> parts;
  parts.reserve(leaves.size());
  for (const Block* leaf : leaves) {
    const auto* comp = dynamic_cast<const ComponentBlock*>(leaf);
    if (comp == nullptr) {
      throw std::logic_error("rbd::to_ctmc: non-component leaf");
    }
    ctmc::CtmcBuilder b;
    const auto up = b.state(comp->name() + ":up", 1.0);
    const auto down = b.state(comp->name() + ":down", 0.0);
    b.rate(up, down, comp->failure_rate());
    b.rate(down, up, comp->repair_rate());
    parts.push_back(b.build());
  }

  // The composite reward applies the structure function to the
  // component up/down pattern (component chains list "up" first, so
  // reward >= 0.5 identifies the up state).
  const ctmc::RewardCombiner combiner =
      [root](const std::vector<double>& rewards) {
        std::vector<bool> leaf_up(rewards.size());
        for (std::size_t i = 0; i < rewards.size(); ++i) {
          leaf_up[i] = rewards[i] >= 0.5;
        }
        std::size_t index = 0;
        return root->evaluate(leaf_up, index) ? 1.0 : 0.0;
      };
  return ctmc::compose_independent(parts, combiner);
}

}  // namespace rascal::rbd

// Seeded random-model generation for property-based testing.
//
// Each generator produces a structured CTMC together with whatever
// ground truth its structure admits: birth-death chains carry their
// closed-form stationary vector, Erlang chains their exact mean
// absorption time, and general ergodic chains a guaranteed Hamiltonian
// cycle (irreducibility by construction).  The differential oracle
// (oracle.h) then cross-checks every solver path on the same chain —
// the tool-vs-tool validation style of the MAROS/GRIF comparison and
// the solver-vs-simulation drift studies for storage reliability
// models.
#pragma once

#include <optional>
#include <string>

#include "ctmc/ctmc.h"
#include "linalg/matrix.h"
#include "stats/rng.h"

namespace rascal::check {

struct RandomModelOptions {
  std::size_t min_states = 3;
  std::size_t max_states = 12;
  // Rates are drawn log-uniformly from [min_rate, max_rate]; widening
  // the ratio stresses stiffness (availability models span repair
  // rates of ~60/h against failure rates of ~1e-4/h).
  double min_rate = 0.1;
  double max_rate = 10.0;
  // Probability of each extra directed edge beyond the guaranteed
  // structure (cycle / birth-death skeleton).
  double extra_edge_probability = 0.3;
  // Probability that a state is "down" (reward 0) rather than "up".
  double down_probability = 0.4;
};

/// A generated chain plus the ground truth its structure guarantees.
struct GeneratedModel {
  ctmc::Ctmc chain;
  std::string description;  // e.g. "ergodic(n=7, seed stream 12)"
  // Closed-form stationary distribution (birth-death only).
  std::optional<linalg::Vector> analytic_steady;
  // Exact mean time to absorption from state 0 (Erlang chains only).
  std::optional<double> analytic_mtta;
};

/// Random irreducible chain: a Hamiltonian cycle through all states
/// (irreducibility by construction) plus random extra edges.  Rewards
/// are 0/1 with at least one up and one down state.
[[nodiscard]] GeneratedModel random_ergodic_ctmc(
    stats::RandomEngine& rng, const RandomModelOptions& options = {});

/// Random birth-death chain with closed-form stationary distribution
/// pi_k proportional to prod_{i<k} birth_i / death_{i+1}, attached as
/// analytic_steady.
[[nodiscard]] GeneratedModel random_birth_death(
    stats::RandomEngine& rng, const RandomModelOptions& options = {});

/// Erlang-style absorbing chain Stage1 -> ... -> StageK -> Absorbed
/// with random per-stage rates; analytic_mtta = sum of stage means.
[[nodiscard]] GeneratedModel random_erlang_chain(
    stats::RandomEngine& rng, const RandomModelOptions& options = {});

/// Uniformly rescales every transition rate by `factor` (> 0), the
/// basis of the rate-rescaling metamorphic property: the stationary
/// distribution is invariant and all first-passage times scale by
/// 1/factor.
[[nodiscard]] ctmc::Ctmc rescale_rates(const ctmc::Ctmc& chain,
                                       double factor);

/// Relabels the states: new state perm[i] is old state i (perm must
/// be a permutation of 0..n-1).  The basis of the state-permutation
/// metamorphic property: pi_new[perm[i]] must equal pi_old[i] for
/// every solver, which a solver with an order-dependent bias (e.g.
/// the Krylov augmented system pinning the *last* balance row) would
/// violate.  Throws std::invalid_argument on a malformed permutation.
[[nodiscard]] ctmc::Ctmc permute_states(
    const ctmc::Ctmc& chain, const std::vector<std::size_t>& perm);

/// A seeded random permutation of 0..n-1 (Fisher-Yates on the split
/// stream), for driving permute_states.
[[nodiscard]] std::vector<std::size_t> random_permutation(
    std::size_t n, stats::RandomEngine& rng);

// ---------------------------------------------------------------------------
// Broken-model mutants for linter property testing.
//
// The linter's property contract: every generator above lints clean,
// and injecting any single fault below never does.  Faults operate on
// the *raw* state/transition lists because the Ctmc constructor
// rejects several of them outright — exactly the defects
// lint::lint_raw_model must report all at once instead.

/// Raw (pre-construction) model: what the Ctmc constructor consumes.
struct RawModel {
  std::vector<ctmc::State> states;
  std::vector<ctmc::Transition> transitions;
};

/// Snapshot of a constructed chain as a raw model, ready for mutation.
[[nodiscard]] RawModel raw_model(const ctmc::Ctmc& chain);

/// Single structural faults, each detected by a distinct diagnostic.
enum class ModelFault {
  kNegativeRate,         // R001: sign-flip one rate
  kNonFiniteRate,        // R002: NaN rate
  kSelfLoop,             // R003: bend a transition back onto its source
  kDuplicateTransition,  // R004: copy-paste a transition
  kDanglingEndpoint,     // R005: point a transition past the state list
  kNonFiniteReward,      // R008: infinite reward
  kBadStateName,         // R009: duplicate state name
  kUnreachableState,     // R011 (+R010): orphan state, outgoing only
  kAbsorbingState,       // R012 (+R010): trap state, incoming only
  kDisconnectedClass,    // R013 (+R010): two-state island
};

/// Every fault, for table-driven tests.
[[nodiscard]] const std::vector<ModelFault>& all_model_faults();

/// The diagnostic code lint_raw_model is guaranteed to emit for the
/// fault (secondary codes like R010 may accompany it).
[[nodiscard]] const char* expected_code(ModelFault fault);

/// Returns a copy of `model` with exactly one instance of `fault`
/// injected at a seeded-random position.  The result never lints
/// clean; whether it still constructs a Ctmc depends on the fault.
[[nodiscard]] RawModel inject_fault(const RawModel& model, ModelFault fault,
                                    stats::RandomEngine& rng);

}  // namespace rascal::check

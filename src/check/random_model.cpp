#include "check/random_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace rascal::check {

namespace {

// Log-uniform draw over [options.min_rate, options.max_rate].
double random_rate(stats::RandomEngine& rng,
                   const RandomModelOptions& options) {
  const double lo = std::log(options.min_rate);
  const double hi = std::log(options.max_rate);
  return std::exp(rng.uniform(lo, hi));
}

std::size_t random_size(stats::RandomEngine& rng,
                        const RandomModelOptions& options) {
  if (options.min_states < 2 || options.max_states < options.min_states) {
    throw std::invalid_argument(
        "random model: need 2 <= min_states <= max_states");
  }
  return options.min_states +
         static_cast<std::size_t>(rng.uniform_index(
             options.max_states - options.min_states + 1));
}

}  // namespace

GeneratedModel random_ergodic_ctmc(stats::RandomEngine& rng,
                                   const RandomModelOptions& options) {
  const std::size_t n = random_size(rng, options);
  std::vector<ctmc::State> states;
  states.reserve(n);
  bool has_down = false;
  for (std::size_t i = 0; i < n; ++i) {
    // State 0 is always up so availability metrics are meaningful and
    // simulations can regenerate from an up state.
    const bool down =
        i > 0 && rng.bernoulli(options.down_probability);
    has_down = has_down || down;
    states.push_back({"s" + std::to_string(i), down ? 0.0 : 1.0});
  }
  if (!has_down) states.back().reward = 0.0;

  std::vector<ctmc::Transition> transitions;
  // Hamiltonian cycle 0 -> 1 -> ... -> n-1 -> 0 guarantees a single
  // recurrent class containing every state.
  for (std::size_t i = 0; i < n; ++i) {
    transitions.push_back({i, (i + 1) % n, random_rate(rng, options)});
  }
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to || to == (from + 1) % n) continue;
      if (rng.bernoulli(options.extra_edge_probability)) {
        transitions.push_back({from, to, random_rate(rng, options)});
      }
    }
  }
  GeneratedModel out{ctmc::Ctmc(std::move(states), std::move(transitions)),
                     "ergodic(n=" + std::to_string(n) + ")",
                     std::nullopt,
                     std::nullopt};
  return out;
}

GeneratedModel random_birth_death(stats::RandomEngine& rng,
                                  const RandomModelOptions& options) {
  const std::size_t n = random_size(rng, options);
  std::vector<ctmc::State> states;
  states.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Level 0 = all-up; the deepest levels are down, mirroring an
    // occupancy/repair model.
    states.push_back({"level" + std::to_string(i),
                      i + 1 == n ? 0.0 : 1.0});
  }
  std::vector<double> births(n - 1);
  std::vector<double> deaths(n - 1);  // deaths[i]: rate of i+1 -> i
  std::vector<ctmc::Transition> transitions;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    births[i] = random_rate(rng, options);
    deaths[i] = random_rate(rng, options);
    transitions.push_back({i, i + 1, births[i]});
    transitions.push_back({i + 1, i, deaths[i]});
  }
  // Closed form: pi_k = pi_0 * prod_{i<k} births[i]/deaths[i].
  linalg::Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    pi[k] = pi[k - 1] * births[k - 1] / deaths[k - 1];
  }
  double total = 0.0;
  for (double p : pi) total += p;
  for (double& p : pi) p /= total;

  GeneratedModel out{ctmc::Ctmc(std::move(states), std::move(transitions)),
                     "birth-death(n=" + std::to_string(n) + ")",
                     std::move(pi),
                     std::nullopt};
  return out;
}

GeneratedModel random_erlang_chain(stats::RandomEngine& rng,
                                   const RandomModelOptions& options) {
  const std::size_t stages = random_size(rng, options);
  std::vector<ctmc::State> states;
  states.reserve(stages + 1);
  for (std::size_t i = 0; i < stages; ++i) {
    states.push_back({"stage" + std::to_string(i), 1.0});
  }
  states.push_back({"absorbed", 0.0});
  std::vector<ctmc::Transition> transitions;
  double mtta = 0.0;
  for (std::size_t i = 0; i < stages; ++i) {
    const double rate = random_rate(rng, options);
    mtta += 1.0 / rate;
    transitions.push_back({i, i + 1, rate});
  }
  // A slow return edge keeps the chain a valid Ctmc object for any
  // analysis that requires every state to have an exit; absorption
  // analyses treat "absorbed" as a target and ignore its exits.
  transitions.push_back({stages, 0, 1.0});
  GeneratedModel out{ctmc::Ctmc(std::move(states), std::move(transitions)),
                     "erlang(k=" + std::to_string(stages) + ")",
                     std::nullopt,
                     mtta};
  return out;
}

ctmc::Ctmc rescale_rates(const ctmc::Ctmc& chain, double factor) {
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    throw std::invalid_argument("rescale_rates: factor must be positive");
  }
  std::vector<ctmc::Transition> transitions = chain.transitions();
  for (ctmc::Transition& t : transitions) t.rate *= factor;
  return ctmc::Ctmc(chain.states(), std::move(transitions));
}

ctmc::Ctmc permute_states(const ctmc::Ctmc& chain,
                          const std::vector<std::size_t>& perm) {
  const std::size_t n = chain.num_states();
  if (perm.size() != n) {
    throw std::invalid_argument("permute_states: permutation size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (const std::size_t p : perm) {
    if (p >= n || seen[p]) {
      throw std::invalid_argument("permute_states: not a permutation");
    }
    seen[p] = true;
  }
  std::vector<ctmc::State> states(n);
  for (std::size_t i = 0; i < n; ++i) states[perm[i]] = chain.states()[i];
  std::vector<ctmc::Transition> transitions = chain.transitions();
  for (ctmc::Transition& t : transitions) {
    t.from = perm[t.from];
    t.to = perm[t.to];
  }
  return ctmc::Ctmc(std::move(states), std::move(transitions));
}

std::vector<std::size_t> random_permutation(std::size_t n,
                                            stats::RandomEngine& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

RawModel raw_model(const ctmc::Ctmc& chain) {
  return {chain.states(), chain.transitions()};
}

const std::vector<ModelFault>& all_model_faults() {
  static const std::vector<ModelFault> faults = {
      ModelFault::kNegativeRate,       ModelFault::kNonFiniteRate,
      ModelFault::kSelfLoop,           ModelFault::kDuplicateTransition,
      ModelFault::kDanglingEndpoint,   ModelFault::kNonFiniteReward,
      ModelFault::kBadStateName,       ModelFault::kUnreachableState,
      ModelFault::kAbsorbingState,     ModelFault::kDisconnectedClass,
  };
  return faults;
}

const char* expected_code(ModelFault fault) {
  switch (fault) {
    case ModelFault::kNegativeRate: return "R001";
    case ModelFault::kNonFiniteRate: return "R002";
    case ModelFault::kSelfLoop: return "R003";
    case ModelFault::kDuplicateTransition: return "R004";
    case ModelFault::kDanglingEndpoint: return "R005";
    case ModelFault::kNonFiniteReward: return "R008";
    case ModelFault::kBadStateName: return "R009";
    case ModelFault::kUnreachableState: return "R011";
    case ModelFault::kAbsorbingState: return "R012";
    case ModelFault::kDisconnectedClass: return "R013";
  }
  return "R000";  // unreachable
}

RawModel inject_fault(const RawModel& model, ModelFault fault,
                      stats::RandomEngine& rng) {
  RawModel out = model;
  if (out.states.empty() || out.transitions.empty()) {
    throw std::invalid_argument("inject_fault: model must be non-trivial");
  }
  const std::size_t t = rng.uniform_index(out.transitions.size());
  const std::size_t s = rng.uniform_index(out.states.size());
  switch (fault) {
    case ModelFault::kNegativeRate:
      out.transitions[t].rate = -out.transitions[t].rate;
      break;
    case ModelFault::kNonFiniteRate:
      out.transitions[t].rate = std::numeric_limits<double>::quiet_NaN();
      break;
    case ModelFault::kSelfLoop:
      out.transitions[t].to = out.transitions[t].from;
      break;
    case ModelFault::kDuplicateTransition:
      out.transitions.push_back(out.transitions[t]);
      break;
    case ModelFault::kDanglingEndpoint:
      out.transitions[t].to = out.states.size();
      break;
    case ModelFault::kNonFiniteReward:
      out.states[s].reward = std::numeric_limits<double>::infinity();
      break;
    case ModelFault::kBadStateName:
      out.states[s].name =
          out.states[(s + 1) % out.states.size()].name;
      break;
    case ModelFault::kUnreachableState:
      // Orphan with an exit but no entrance: unreachable, and its
      // transition can never fire.
      out.transitions.push_back({out.states.size(), 0, 1.0});
      out.states.push_back({"mutant_orphan", 1.0});
      break;
    case ModelFault::kAbsorbingState:
      // Trap with an entrance but no exit.
      out.transitions.push_back(
          {out.transitions[t].from, out.states.size(), 1.0});
      out.states.push_back({"mutant_trap", 0.0});
      break;
    case ModelFault::kDisconnectedClass:
      // Two-state island, internally connected, cut off from the rest.
      out.transitions.push_back(
          {out.states.size(), out.states.size() + 1, 1.0});
      out.transitions.push_back(
          {out.states.size() + 1, out.states.size(), 1.0});
      out.states.push_back({"mutant_island_a", 1.0});
      out.states.push_back({"mutant_island_b", 0.0});
      break;
  }
  return out;
}

}  // namespace rascal::check
